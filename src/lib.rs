//! Facade crate re-exporting the whole workspace.
pub use tp_core as core;
pub use tp_core::prelude;
