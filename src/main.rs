//! `tpdb` — command-line front end for the temporal-probabilistic database.
//!
//! ```text
//! tpdb query  [--db DIR] [--csv] "<query>"   evaluate a TP set query
//! tpdb explain [--db DIR] "<query>"          show the plan + output bounds
//! tpdb show   [--db DIR] <relation>          print a stored relation
//! tpdb demo                                  run the paper's Fig. 1 example
//! ```
//!
//! With `--db DIR`, base relations are loaded from the `*.tp` files in
//! `DIR` (see `tp_core::io` for the format). Without it, the paper's
//! supermarket relations (`a`, `b`, `c`) are preloaded. Queries use the
//! grammar of `tp_core::parser`, e.g. `"c except (a union b)"` or
//! `"sigma[f0='milk'](c) except a"`.

use std::process::ExitCode;

use tpdb::prelude::*;

fn demo_database() -> Result<Database> {
    let mut db = Database::new();
    db.add_base_relation(
        "a",
        vec![
            (Fact::single("milk"), Interval::at(2, 10), 0.3),
            (Fact::single("chips"), Interval::at(4, 7), 0.8),
            (Fact::single("dates"), Interval::at(1, 3), 0.6),
        ],
    )?;
    db.add_base_relation(
        "b",
        vec![
            (Fact::single("milk"), Interval::at(5, 9), 0.6),
            (Fact::single("chips"), Interval::at(3, 6), 0.9),
        ],
    )?;
    db.add_base_relation(
        "c",
        vec![
            (Fact::single("milk"), Interval::at(1, 4), 0.6),
            (Fact::single("milk"), Interval::at(6, 8), 0.7),
            (Fact::single("chips"), Interval::at(4, 5), 0.7),
            (Fact::single("chips"), Interval::at(7, 9), 0.8),
        ],
    )?;
    Ok(db)
}

struct Args {
    command: String,
    db_dir: Option<String>,
    csv: bool,
    rest: Vec<String>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> std::result::Result<Args, String> {
    let command = argv.next().ok_or_else(usage)?;
    let mut db_dir = None;
    let mut csv = false;
    let mut rest = Vec::new();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--db" => db_dir = Some(argv.next().ok_or("--db requires a directory".to_string())?),
            "--csv" => csv = true,
            _ => rest.push(arg),
        }
    }
    Ok(Args {
        command,
        db_dir,
        csv,
        rest,
    })
}

fn usage() -> String {
    "usage: tpdb <query|explain|show|demo> [--db DIR] [--csv] [ARGS]".to_string()
}

fn open_database(args: &Args) -> Result<Database> {
    match &args.db_dir {
        Some(dir) => Database::load_from_dir(dir),
        None => demo_database(),
    }
}

fn print_relation_csv(rel: &TpRelation, db: &Database) -> Result<()> {
    println!("fact,ts,te,lineage,p");
    for t in rel.canonicalized().iter() {
        let p = prob::marginal(&t.lineage, db.vars())?;
        println!(
            "{},{},{},{},{p:.6}",
            t.fact,
            t.interval.start(),
            t.interval.end(),
            t.lineage.display_with(db.vars().resolver())
        );
    }
    Ok(())
}

fn run(args: Args) -> Result<()> {
    match args.command.as_str() {
        "demo" => {
            let db = demo_database()?;
            let q = Query::parse("c except (a union b)")?;
            println!("query: {q}\n");
            let out = q.eval(&db)?;
            print!("{}", out.canonicalized().render(db.vars()));
            Ok(())
        }
        "query" => {
            let text = args.rest.first().ok_or(Error::Parse {
                position: 0,
                message: "missing query argument".into(),
            })?;
            let db = open_database(&args)?;
            let q = Query::parse(text)?;
            let out = q.eval(&db)?;
            if args.csv {
                print_relation_csv(&out, &db)?;
            } else {
                print!("{}", out.canonicalized().render(db.vars()));
            }
            Ok(())
        }
        "explain" => {
            let text = args.rest.first().ok_or(Error::Parse {
                position: 0,
                message: "missing query argument".into(),
            })?;
            let db = open_database(&args)?;
            let q = Query::parse(text)?;
            print!("{}", q.explain(&db)?);
            println!(
                "non-repeating: {} (1OF lineage {})",
                q.is_non_repeating(),
                if q.is_non_repeating() {
                    "guaranteed — linear-time probabilities"
                } else {
                    "not guaranteed — Shannon/BDD valuation"
                }
            );
            Ok(())
        }
        "show" => {
            let name = args
                .rest
                .first()
                .ok_or_else(|| Error::UnknownRelation("<missing relation argument>".into()))?;
            let db = open_database(&args)?;
            let rel = db.relation(name)?;
            if args.csv {
                print_relation_csv(rel, &db)?;
            } else {
                print!("{}", rel.canonicalized().render(db.vars()));
            }
            Ok(())
        }
        other => Err(Error::Parse {
            position: 0,
            message: format!("unknown command '{other}' — {}", usage()),
        }),
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
