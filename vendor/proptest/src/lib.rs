//! Vendored, offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this repository's integration
//! tests use: the [`Strategy`] trait, range and tuple strategies,
//! `prop::collection::vec`, the [`proptest!`] macro with a
//! `#![proptest_config(ProptestConfig::with_cases(N))]` header, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a fixed per-case seed (fully deterministic
//!   across runs and machines);
//! * there is **no shrinking** — a failing case reports its inputs via the
//!   panic message of the underlying assertion instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Re-export used by the generated code and by strategy implementations.
pub use rand::RngExt;

/// The per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error type carried by `prop_assert!` failures inside a test body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The RNG handed to strategies; deterministic per (test, case index).
pub type TestRng = StdRng;

/// Builds the RNG for one case. The seed mixes a fixed tag with the case
/// index so every case of every test draws an independent stream.
pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x9e37_79b9)
}

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy simply produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::RngExt;

        /// Strategy for `Vec`s of `element` values with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.random_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test usually imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Declares property tests. Each function body runs `cases` times with
/// freshly generated inputs; `prop_assert*` failures report the case index.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut proptest_rng = $crate::rng_for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                    let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?} ({})", l, r, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
/// (This shim simply succeeds the case; no retry is attempted.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = Vec<(u8, i64)>> {
        prop::collection::vec((0u8..4, -5i64..5), 0..=6)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_values_in_bounds(v in arb_pair(), x in 1usize..9) {
            prop_assert!((1..9).contains(&x));
            prop_assert!(v.len() <= 6);
            for (a, b) in v {
                prop_assert!(a < 4, "a = {}", a);
                prop_assert!((-5..5).contains(&b));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = arb_pair();
        let a = s.generate(&mut crate::rng_for_case("t", 3));
        let b = s.generate(&mut crate::rng_for_case("t", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::rng_for_case("t", 4));
        // Overwhelmingly likely to differ for at least one of many cases;
        // this specific pair differs under the fixed hash/seed scheme.
        let _ = c;
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 200, "x = {}", x);
            }
        }
        inner();
    }
}
