//! Vendored, offline stand-in for `serde`.
//!
//! The workspace's `serde` feature only attaches `derive(Serialize,
//! Deserialize)` attributes to a few core types; nothing consumes the trait
//! bounds yet (persistence goes through the custom text format in
//! `tp_core::io`). This shim therefore provides the trait *names* plus no-op
//! derive macros, so the feature compiles in an offline environment. Swap it
//! for real serde by pointing the workspace dependency at crates.io.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name; carries no methods in
/// this shim (see the crate docs).
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name; carries no methods in
/// this shim (see the crate docs).
pub trait Deserialize<'de> {}
