//! Vendored, offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! carries a minimal random-number library with an API compatible with the
//! subset the repository uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`RngExt`] extension trait providing `random::<T>()`,
//! `random_range(..)` and `random_bool(..)`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic for a
//! given seed, which is all the experiments and property tests require. It is
//! **not** a cryptographic RNG and makes no cross-version stability promise
//! beyond this workspace.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// The standard generator of this shim: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Types that can be sampled uniformly "from all values" via `random()`.
pub trait StandardSample: Sized {
    /// Draws one value from the generator.
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl StandardSample for f64 {
    fn sample(rng: &mut impl RngCore) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample(rng: &mut impl RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample(rng: &mut impl RngCore) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for i64 {
    fn sample(rng: &mut impl RngCore) -> i64 {
        rng.next_u64() as i64
    }
}

impl StandardSample for usize {
    fn sample(rng: &mut impl RngCore) -> usize {
        rng.next_u64() as usize
    }
}

/// Uniform sampling from a range, used by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value of the range from the generator.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

/// Rejection-free (modulo-bias-free) sampling of `[0, bound)` via Lemire's
/// method with a widening multiply, falling back to rejection on the rare
/// biased slice.
fn uniform_below(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound && low < bound.wrapping_neg() % bound {
            continue;
        }
        return (m >> 64) as u64;
    }
}

/// Types that can be sampled uniformly from a half-open or inclusive range.
/// The blanket [`SampleRange`] impls below go through this trait, so the
/// range's element type unifies with the requested output type during
/// inference — exactly like real rand's `SampleUniform`.
pub trait SampleUniform: Sized {
    /// Samples from `[low, high)` (`inclusive = false`) or `[low, high]`.
    fn sample_range(rng: &mut impl RngCore, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut impl RngCore, low: $t, high: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(low <= high, "cannot sample empty range");
                    let span = (high as i128 - low as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as i128 + uniform_below(rng, span + 1) as i128) as $t
                } else {
                    assert!(low < high, "cannot sample empty range");
                    let span = (high as i128 - low as i128) as u64;
                    (low as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut impl RngCore, low: f64, high: f64, inclusive: bool) -> f64 {
        if inclusive {
            assert!(low <= high, "cannot sample empty range");
            let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            low + u * (high - low)
        } else {
            assert!(low < high, "cannot sample empty range");
            low + f64::sample(rng) * (high - low)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut impl RngCore, low: f32, high: f32, inclusive: bool) -> f32 {
        f64::sample_range(rng, low as f64, high as f64, inclusive) as f32
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing sampling interface (the rand 0.9 `Rng` surface this
/// repository uses, under the name its call sites import).
pub trait RngExt: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept for call sites written against the classic `rand::Rng` name.
pub use self::RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17u64);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
            let u = rng.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
