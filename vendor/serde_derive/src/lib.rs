//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde
//! shim: they accept the annotated item and emit nothing, which is exactly
//! enough for `#[cfg_attr(feature = "serde", derive(..))]` attributes to
//! compile while no code consumes the trait bounds.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
