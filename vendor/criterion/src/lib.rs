//! Vendored, offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the benches use — `Criterion::benchmark_group`,
//! group configuration (`sample_size`, `warm_up_time`, `measurement_time`,
//! `throughput`), `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple wall-clock sampler: per benchmark it warms up
//! for `warm_up_time`, then collects `sample_size` timed samples (each sized
//! to roughly fill `measurement_time / sample_size`) and reports the median
//! with min/max spread.
//!
//! No statistics beyond that, no HTML reports, no comparison to baselines —
//! the `experiments` binary is the canonical measurement path; these benches
//! are smoke-level micro-benchmarks.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing context passed to the closure of `bench_function`.
pub struct Bencher {
    /// Number of iterations the sampler asks for in this sample.
    iters: u64,
    /// Measured duration of the sample, set by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut f);
        self
    }

    /// Runs one benchmark, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        // Warm-up: repeat single iterations until the warm-up budget is
        // spent; the last duration calibrates the per-sample iteration count.
        let warm_start = Instant::now();
        let mut one;
        loop {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            one = b.elapsed.max(Duration::from_nanos(1));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_sample =
            self.measurement_time.max(Duration::from_millis(1)) / self.sample_size as u32;
        let iters = (per_sample.as_secs_f64() / one.as_secs_f64())
            .ceil()
            .max(1.0) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let (min, max) = (samples[0], samples[samples.len() - 1]);
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:.3} Melem/s", n as f64 / median / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / median / (1024.0 * 1024.0)
                )
            }
            None => String::new(),
        };
        println!(
            "{full:<48} time: [{} {} {}]{thr}",
            fmt_time(min),
            fmt_time(median),
            fmt_time(max)
        );
        self.criterion.completed += 1;
    }

    /// Ends the group (report spacing only in this shim).
    pub fn finish(&mut self) {
        println!();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    completed: usize,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        };
        group.run(id, &mut f);
        self
    }

    /// Final hook invoked by `criterion_main!`.
    pub fn final_summary(&self) {
        println!("completed {} benchmark(s)", self.completed);
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip measuring.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5))
                .throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 1 + 2));
            g.finish();
        }
        assert_eq!(c.completed, 2);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
