//! Live alert maintenance: the streaming twin of `weather_alerts`.
//!
//! The same Meteo-like scenario — `forecast` vs a time-shifted `confirmed`
//! stream — but instead of batch set operations over finished relations,
//! tuples *arrive* out of order and a continuous engine maintains
//! `forecast −Tp confirmed` (uncorroborated-forecast alerts) and
//! `forecast ∩Tp confirmed` (agreement periods) incrementally: every
//! watermark advance emits only the deltas, and finalized epochs release
//! their share of the valuation cache.
//!
//! ```text
//! cargo run --release --example streaming_alerts
//! ```

use tp_stream::{Delta, EngineConfig, EpochScope, ReplayConfig, StreamSink};
use tp_workloads::{meteo_stream, MeteoConfig};
use tpdb::prelude::*;

/// A monitoring sink: counts deltas per op, valuates the probability of
/// every *alert* insert as it appears, and remembers the most probable
/// alerts seen so far — all strictly incrementally.
struct AlertMonitor<'a> {
    vars: &'a VarTable,
    alert_deltas: u64,
    agreement_deltas: u64,
    /// `(probability, tuple)` of the strongest alerts, kept sorted.
    top: Vec<(f64, TpTuple)>,
}

impl StreamSink for AlertMonitor<'_> {
    fn on_delta(&mut self, op: SetOp, delta: &Delta) {
        match op {
            SetOp::Except => {
                self.alert_deltas += 1;
                if let Delta::Insert(t) = delta {
                    let p = prob::marginal(&t.lineage, self.vars).expect("vars registered");
                    self.top.push((p, t.clone()));
                    self.top
                        .sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.fact.cmp(&b.1.fact)));
                    self.top.truncate(5);
                }
            }
            SetOp::Intersect => self.agreement_deltas += 1,
            SetOp::Union => {}
        }
    }
}

fn main() -> Result<()> {
    let mut vars = VarTable::new();
    // Forecasts for 80 stations, confirmations lagging by up to six hours
    // (10-minute ticks), replayed with up to two hours of arrival lateness
    // and a watermark advance every 256 arrivals.
    let workload = meteo_stream(
        &MeteoConfig {
            stations: 80,
            tuples: 20_000,
            ..Default::default()
        },
        6 * 600,
        &ReplayConfig {
            lateness: 2 * 600,
            advance_every: 256,
            seed: 7,
        },
        &mut vars,
    );
    println!(
        "replaying {} forecast + {} confirmation tuples as a stream ({} watermark advances)",
        workload.r.len(),
        workload.s.len(),
        workload.script.advances(),
    );

    let mut monitor = AlertMonitor {
        vars: &vars,
        alert_deltas: 0,
        agreement_deltas: 0,
        top: Vec::new(),
    };
    // Alert probabilities are valuated per delta; once the replay (one
    // long epoch here) is finalized, its scratch marginals are released.
    let epoch = EpochScope::begin();
    let t0 = std::time::Instant::now();
    let totals = workload
        .script
        .run_into(EngineConfig::default(), &mut monitor);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let cached = vars.valuation_cache_len();
    epoch.release_marginals(&vars);

    println!(
        "maintained −Tp and ∩Tp continuously in {ms:.1} ms: \
         {} windows, {} inserts + {} extends across ops, 0 late drops ({:?})",
        totals.windows, totals.inserts, totals.extends, totals.late,
    );
    println!(
        "alert deltas: {}, agreement deltas: {}, valuation cache {} → {} entries after epoch release",
        monitor.alert_deltas,
        monitor.agreement_deltas,
        cached,
        vars.valuation_cache_len(),
    );

    println!("\nstrongest uncorroborated-forecast alerts seen live:");
    for (p, t) in &monitor.top {
        println!(
            "  station {} over {} with probability {p:.3}",
            t.fact, t.interval
        );
    }

    // The continuously maintained result is the batch result.
    let (sink, _) = workload.script.run(EngineConfig::default());
    let batch = except(&workload.r, &workload.s);
    assert_eq!(
        sink.relation(SetOp::Except).canonicalized(),
        batch.canonicalized()
    );
    println!("\nstream/batch cross-check passed: streamed −Tp equals batch −Tp exactly");
    Ok(())
}
