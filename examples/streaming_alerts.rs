//! Live alert maintenance: the streaming twin of `weather_alerts`, in
//! **bounded memory**.
//!
//! The same Meteo-like scenario — `forecast` vs a time-shifted `confirmed`
//! stream — but instead of batch set operations over finished relations,
//! tuples *arrive* out of order and a continuous engine maintains
//! `forecast −Tp confirmed` (uncorroborated-forecast alerts) and
//! `forecast ∩Tp confirmed` (agreement periods) incrementally. The engine
//! runs in reclaim mode: it hosts lineage in a private segmented arena,
//! seals one segment per watermark advance, and retires every segment the
//! live window no longer reaches — so the arena residency plateaus no
//! matter how long the stream runs, and the monitor's valuation cache is
//! trimmed per retired segment (O(1)) through `on_retire`.
//!
//! ```text
//! cargo run --release --example streaming_alerts
//! ```

use tp_stream::{
    Delta, EngineConfig, ParallelConfig, ReclaimConfig, ReplayConfig, ReplayEvent, StreamEngine,
    StreamSink, ValuatingSink,
};
use tp_workloads::{meteo_stream, MeteoConfig};
use tpdb::prelude::*;

/// A monitoring sink: counts deltas per op and retired segments. Alert
/// valuation is *not* done here tuple-by-tuple — the monitor is wrapped in
/// a [`ValuatingSink`] which batches every alert insert of an advance into
/// one columnar `valuate_batch` pass (inside the engine's arena scope — the
/// reclaim-mode consumption contract) and also owns the per-segment
/// valuation-cache eviction on retire.
struct AlertMonitor {
    alert_deltas: u64,
    agreement_deltas: u64,
    retired_segments: u64,
}

impl StreamSink for AlertMonitor {
    fn on_delta(&mut self, op: SetOp, _delta: &Delta) {
        match op {
            SetOp::Except => self.alert_deltas += 1,
            SetOp::Intersect => self.agreement_deltas += 1,
            SetOp::Union => {}
        }
    }

    fn on_retire(&mut self, _seg: SegmentId) {
        self.retired_segments += 1;
    }
}

fn main() -> Result<()> {
    let mut vars = VarTable::new();
    // Forecasts for 80 stations, confirmations lagging by up to six hours
    // (10-minute ticks), replayed with up to two hours of arrival lateness
    // and a watermark advance every 256 arrivals.
    let workload = meteo_stream(
        &MeteoConfig {
            stations: 80,
            tuples: 20_000,
            ..Default::default()
        },
        6 * 600,
        &ReplayConfig {
            lateness: 2 * 600,
            advance_every: 256,
            seed: 7,
        },
        &mut vars,
    );
    println!(
        "replaying {} forecast + {} confirmation tuples as a stream ({} watermark advances)",
        workload.r.len(),
        workload.s.len(),
        workload.script.advances(),
    );

    // Batched sink-side valuation: every alert insert of an advance is
    // valuated in one columnar pass instead of one memoized walk per root.
    let mut monitor = ValuatingSink::new(
        AlertMonitor {
            alert_deltas: 0,
            agreement_deltas: 0,
            retired_segments: 0,
        },
        &vars,
    )
    .with_ops(&[SetOp::Except]);
    // `(probability, station, interval)` of the strongest alerts, kept as
    // plain values so nothing holds dead lineage handles after retirement.
    let mut top: Vec<(f64, String, Interval)> = Vec::new();
    let keep_top = |top: &mut Vec<(f64, String, Interval)>,
                    batch: Vec<tp_stream::ValuatedDelta>| {
        for v in batch {
            top.push((v.p, v.fact.to_string(), v.interval));
        }
        top.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        top.truncate(5);
    };
    // Reclaim mode: private arena, one sealed segment per advance,
    // retirement once the live window moves past a segment. Fat advances
    // additionally shard their sweep over region workers (byte-identical
    // output; wall-time win on multi-core hardware).
    let mut engine = StreamEngine::new(EngineConfig {
        reclaim: Some(ReclaimConfig::default()),
        // A fixed demo budget (not available_parallelism): the gauges
        // below should show sharding even on small machines — the output
        // is byte-identical either way.
        parallel: Some(ParallelConfig {
            workers: 4,
            min_tuples: 128,
            cuts: None,
        }),
        ..Default::default()
    });
    let t0 = std::time::Instant::now();
    let mut peak_nodes = 0usize;
    let (mut windows, mut inserts, mut extends) = (0usize, 0u64, 0u64);
    let (mut max_regions, mut worst_balance) = (0usize, 0.0f64);
    let (mut max_stitch_depth, mut interior_retired) = (0usize, 0u64);
    let (mut peak_occupancy, mut retrains, mut worst_shift_p99) = (0u32, 0u64, 0u32);
    for event in &workload.script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(w) => {
                let stats = engine.advance(*w, &mut monitor).expect("monotone script");
                keep_top(&mut top, monitor.drain_valuated());
                windows += stats.windows;
                inserts += stats.inserts;
                extends += stats.extends;
                max_regions = max_regions.max(stats.regions_used);
                worst_balance = worst_balance.max(stats.region_balance());
                max_stitch_depth = max_stitch_depth.max(stats.stitch_depth);
                interior_retired += stats.interior_retired_segments;
                peak_occupancy = peak_occupancy.max(stats.gap_occupancy_permille);
                retrains += stats.index_retrains;
                worst_shift_p99 = worst_shift_p99.max(stats.shift_distance_p99);
                peak_nodes = peak_nodes.max(engine.arena_stats().expect("reclaim mode").nodes);
            }
        }
    }
    engine.finish(&mut monitor).expect("final advance");
    keep_top(&mut top, monitor.drain_valuated());
    let monitor = monitor.into_inner();
    let ms = t0.elapsed().as_secs_f64() * 1e3;

    println!(
        "maintained −Tp and ∩Tp continuously in {ms:.1} ms: \
         {windows} windows, {inserts} inserts + {extends} extends across ops, {:?} late drops",
        engine.late_dropped(),
    );
    let arena = engine.arena_stats().expect("reclaim mode");
    let (seg_retired, nodes_retired) = engine.reclaimed();
    // tp_advance_ns is registered by the engine itself; fetching the same
    // (name, labels) pair returns that handle, quantiles included.
    let advance_ns = tp_stream::obs::global().histogram("tp_advance_ns", &[]);
    let sections = [
        tp_stream::arena_section(&arena)
            .row("peak live nodes", peak_nodes)
            .row(
                "retired on the way",
                format!(
                    "{nodes_retired} nodes in {seg_retired} segments ({} seen by the monitor)",
                    monitor.retired_segments
                ),
            )
            .row(
                "interior retires",
                format!("{interior_retired} segments freed behind the live frontier"),
            ),
        tp_stream::Section::new("region-parallel advance")
            .row("max regions per sweep", max_regions)
            .row("worker budget", engine.region_workers())
            .row("worst balance", format!("{worst_balance:.2} (1.0 = even)"))
            .row(
                "stitch depth",
                format!("{max_stitch_depth} reduction rounds at the widest sweep"),
            ),
        tp_stream::Section::new("ingestion index")
            .row("peak gap occupancy", format!("{peak_occupancy}‰"))
            .row("rebuilds", retrains)
            .row("worst shift p99", format!("{worst_shift_p99} slots")),
        tp_stream::Section::new("advance latency (tp_advance_ns)")
            .row("advances", advance_ns.count())
            .row("p50", format!("{} µs", advance_ns.p50() / 1_000))
            .row("p95", format!("{} µs", advance_ns.p95() / 1_000))
            .row("p99", format!("{} µs", advance_ns.p99() / 1_000)),
        tp_stream::Section::new("alerts")
            .row("alert deltas", monitor.alert_deltas)
            .row("agreement deltas", monitor.agreement_deltas)
            .row(
                "valuation cache",
                format!(
                    "{} entries after per-segment release",
                    vars.valuation_cache_len()
                ),
            ),
    ];
    println!("{}", tp_stream::render_all(&sections));

    println!("\nstrongest uncorroborated-forecast alerts seen live:");
    for (p, station, interval) in &top {
        println!("  station {station} over {interval} with probability {p:.3}");
    }

    // The continuously maintained result is the batch result: replay the
    // same script through a plain (global-arena) engine and compare.
    let (sink, _) = workload.script.run(EngineConfig::default());
    let batch = except(&workload.r, &workload.s);
    assert_eq!(
        sink.relation(SetOp::Except).canonicalized(),
        batch.canonicalized()
    );
    println!("\nstream/batch cross-check passed: streamed −Tp equals batch −Tp exactly");
    Ok(())
}
