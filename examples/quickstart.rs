//! Quickstart: the paper's running example (Fig. 1).
//!
//! A supermarket records product purchases (`a`), online orders (`b`) and
//! stock (`c`) as temporal-probabilistic relations. The query
//! `Q = c −Tp (a ∪Tp b)` asks, per day, for the probability that a product
//! is in stock but neither bought nor ordered.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tpdb::prelude::*;

fn main() -> Result<()> {
    let mut db = Database::new();
    // Fig. 1a: base relations. Each row is (fact, interval, probability);
    // lineage variables a1, a2, … are assigned automatically.
    db.add_base_relation(
        "a", // productsBought
        vec![
            (Fact::single("milk"), Interval::at(2, 10), 0.3),
            (Fact::single("chips"), Interval::at(4, 7), 0.8),
            (Fact::single("dates"), Interval::at(1, 3), 0.6),
        ],
    )?;
    db.add_base_relation(
        "b", // productsOrdered
        vec![
            (Fact::single("milk"), Interval::at(5, 9), 0.6),
            (Fact::single("chips"), Interval::at(3, 6), 0.9),
        ],
    )?;
    db.add_base_relation(
        "c", // productsInStock
        vec![
            (Fact::single("milk"), Interval::at(1, 4), 0.6),
            (Fact::single("milk"), Interval::at(6, 8), 0.7),
            (Fact::single("chips"), Interval::at(4, 5), 0.7),
            (Fact::single("chips"), Interval::at(7, 9), 0.8),
        ],
    )?;

    // Fig. 1b: the query plan, written as text and parsed.
    let query = Query::parse("c except (a union b)")?;
    println!("query: {query}");
    println!(
        "non-repeating: {} (⇒ 1OF lineage, linear-time probabilities)\n",
        query.is_non_repeating()
    );

    // Evaluate with LAWA and print the Fig. 1c table.
    let result = query.eval(&db)?;
    println!("{}", result.canonicalized().render(db.vars()));

    // Individual probabilities are derived from lineage on demand.
    for t in result.canonicalized().iter() {
        let p = prob::marginal(&t.lineage, db.vars())?;
        println!(
            "P[{} @ {}] = {p:.4}   (λ = {})",
            t.fact,
            t.interval,
            t.lineage.display_with(db.vars().resolver())
        );
    }
    Ok(())
}
