//! A miniature interactive shell over a TP database.
//!
//! Starts with the paper's supermarket relations loaded (`a`, `b`, `c`) and
//! evaluates TP set queries typed on stdin:
//!
//! ```text
//! cargo run --example repl
//! tp> c except (a union b)
//! tp> (a union b) intersect c
//! tp> \d a            -- show a relation
//! tp> \load r file    -- load a base relation from a file
//! tp> \arena          -- lineage-arena statistics (segments, nodes, bytes)
//! tp> \parallel a c 4 -- region-parallel streamed sweep of two relations,
//!                        with per-advance region/balance gauges
//! tp> \index a c      -- streamed sweep on the gapped learned timestamp
//!                        index, with per-advance occupancy/retrain gauges
//! tp> \plan a c       -- stream two relations through a tenant's standing
//!                        plans (a shared join under two alert rules) and
//!                        print the lowered DAG: per-operator state rows,
//!                        observed delta rates, sharing annotations
//! tp> \metrics        -- Prometheus-style snapshot of the metrics registry
//!                        (\metrics json for the JSON snapshot)
//! tp> \trace out.json -- dump recorded stage spans as a chrome://tracing
//!                        profile (open in chrome://tracing or Perfetto)
//! tp> \q
//! ```

use std::io::{BufRead, Write};

use tpdb::prelude::*;

fn seed_database() -> Result<Database> {
    let mut db = Database::new();
    db.add_base_relation(
        "a",
        vec![
            (Fact::single("milk"), Interval::at(2, 10), 0.3),
            (Fact::single("chips"), Interval::at(4, 7), 0.8),
            (Fact::single("dates"), Interval::at(1, 3), 0.6),
        ],
    )?;
    db.add_base_relation(
        "b",
        vec![
            (Fact::single("milk"), Interval::at(5, 9), 0.6),
            (Fact::single("chips"), Interval::at(3, 6), 0.9),
        ],
    )?;
    db.add_base_relation(
        "c",
        vec![
            (Fact::single("milk"), Interval::at(1, 4), 0.6),
            (Fact::single("milk"), Interval::at(6, 8), 0.7),
            (Fact::single("chips"), Interval::at(4, 5), 0.7),
            (Fact::single("chips"), Interval::at(7, 9), 0.8),
        ],
    )?;
    Ok(db)
}

fn handle_command(db: &mut Database, line: &str) -> Result<bool> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(true);
    }
    if let Some(rest) = line.strip_prefix('\\') {
        let mut parts = rest.split_whitespace();
        match parts.next() {
            Some("q") | Some("quit") => return Ok(false),
            Some("d") => match parts.next() {
                Some(name) => println!("{}", db.relation(name)?.canonicalized().render(db.vars())),
                None => {
                    println!(
                        "relations: {}",
                        db.relation_names().collect::<Vec<_>>().join(", ")
                    )
                }
            },
            Some("load") => {
                let (Some(name), Some(path)) = (parts.next(), parts.next()) else {
                    println!("usage: \\load <name> <path>");
                    return Ok(true);
                };
                let text = std::fs::read_to_string(path)?;
                db.load_relation(name, &text)?;
                println!("loaded '{name}' ({} tuples)", db.relation(name)?.len());
            }
            Some("arena") => {
                let stats = LineageArena::global().stats();
                let section = tp_stream::arena_section(&stats).row(
                    "valuation cache",
                    format!("{} memoized marginals", db.vars().valuation_cache_len()),
                );
                println!("{}", section.render());
            }
            Some("parallel") => {
                let (Some(left), Some(right)) = (parts.next(), parts.next()) else {
                    println!("usage: \\parallel <left> <right> [workers]");
                    return Ok(true);
                };
                let workers = parts
                    .next()
                    .and_then(|w| w.parse::<usize>().ok())
                    .unwrap_or(4);
                show_parallel_sweep(db, left, right, workers)?;
            }
            Some("index") => {
                let (Some(left), Some(right)) = (parts.next(), parts.next()) else {
                    println!("usage: \\index <left> <right>");
                    return Ok(true);
                };
                show_index_sweep(db, left, right)?;
            }
            Some("plan") => {
                let (Some(left), Some(right)) = (parts.next(), parts.next()) else {
                    println!("usage: \\plan <left> <right>");
                    return Ok(true);
                };
                show_standing_plans(db, left, right)?;
            }
            Some("metrics") => match parts.next() {
                Some("json") => println!("{}", tp_stream::metrics_json()),
                _ => print!("{}", tp_stream::metrics_text()),
            },
            Some("trace") => {
                let Some(path) = parts.next() else {
                    println!("usage: \\trace <file>");
                    return Ok(true);
                };
                let json = tp_stream::trace_json();
                std::fs::write(path, &json)?;
                println!(
                    "wrote {} bytes to {path} — open in chrome://tracing or https://ui.perfetto.dev",
                    json.len()
                );
            }
            Some(other) => {
                println!(
                    "unknown command \\{other} (try \\d, \\load, \\arena, \\parallel, \\index, \
                     \\plan, \\metrics, \\trace, \\q)"
                )
            }
            None => {}
        }
        return Ok(true);
    }
    let query = Query::parse(line)?;
    let result = query.eval(db)?;
    if !query.is_non_repeating() {
        println!("(repeating query: probabilities use Shannon expansion)");
    }
    println!("{}", result.canonicalized().render(db.vars()));
    Ok(true)
}

/// Streams `left op right` through a region-parallel engine (advances at
/// the quartiles of the time hull) and prints the per-advance sharding
/// gauges — the streaming twin of `\arena`'s introspection. The result is
/// byte-identical to the sequential sweep by construction; this command
/// shows *how* the advance was sharded.
fn show_parallel_sweep(db: &Database, left: &str, right: &str, workers: usize) -> Result<()> {
    use tp_stream::{CollectingSink, EngineConfig, ParallelConfig, Side, StreamEngine};

    let r = db.relation(left)?;
    let s = db.relation(right)?;
    let hull = match (r.time_range(), s.time_range()) {
        (Some(a), Some(b)) => a.hull(&b),
        (Some(h), None) | (None, Some(h)) => h,
        (None, None) => {
            println!("both relations are empty — nothing to sweep");
            return Ok(());
        }
    };
    let mut engine = StreamEngine::new(EngineConfig {
        parallel: Some(ParallelConfig {
            workers: workers.max(1),
            min_tuples: 0, // demo-sized relations should still shard
            cuts: None,
        }),
        ..Default::default()
    });
    let mut sink = CollectingSink::new();
    for t in r.iter() {
        engine.push(Side::Left, t.clone());
    }
    for t in s.iter() {
        engine.push(Side::Right, t.clone());
    }
    println!(
        "region-parallel sweep of {left} op {right} over [{}, {}), budget {} workers:",
        hull.start(),
        hull.end(),
        workers.max(1),
    );
    let span = (hull.end() - hull.start()).max(4);
    for q in 1..=4i64 {
        let w = hull.start() + span * q / 4 + i64::from(q == 4);
        if w <= engine.watermark() {
            continue;
        }
        let stats = engine
            .advance(w, &mut sink)
            .expect("quartile watermarks are monotone");
        println!("{}", tp_stream::advance_section(&stats).render());
    }
    engine
        .finish(&mut sink)
        .expect("finish never regresses the watermark");
    for op in [SetOp::Union, SetOp::Intersect, SetOp::Except] {
        println!("-- {op}: {} result tuples", sink.len(op));
    }
    Ok(())
}

/// Streams `left`/`right` through an engine on the gapped learned
/// timestamp index (advances at the quartiles of the time hull) and prints
/// the ingestion-index gauges of every advance — gap occupancy, rebuilds,
/// model misses and shift distances — plus the final index posture. The
/// index twin of `\parallel`'s sharding gauges.
fn show_index_sweep(db: &Database, left: &str, right: &str) -> Result<()> {
    use tp_stream::{BufferKind, CollectingSink, EngineConfig, Side, StreamEngine};

    let r = db.relation(left)?;
    let s = db.relation(right)?;
    let hull = match (r.time_range(), s.time_range()) {
        (Some(a), Some(b)) => a.hull(&b),
        (Some(h), None) | (None, Some(h)) => h,
        (None, None) => {
            println!("both relations are empty — nothing to sweep");
            return Ok(());
        }
    };
    let mut engine = StreamEngine::new(EngineConfig {
        buffer: BufferKind::Sorted,
        ..Default::default()
    });
    let mut sink = CollectingSink::new();
    for t in r.iter() {
        engine.push(Side::Left, t.clone());
    }
    for t in s.iter() {
        engine.push(Side::Right, t.clone());
    }
    let (occ, _) = engine.index_stats();
    println!(
        "ingestion index over {left}/{right}: {} + {} tuples buffered, {} permille occupied:",
        r.len(),
        s.len(),
        occ,
    );
    let span = (hull.end() - hull.start()).max(4);
    for q in 1..=4i64 {
        let w = hull.start() + span * q / 4 + i64::from(q == 4);
        if w <= engine.watermark() {
            continue;
        }
        let stats = engine
            .advance(w, &mut sink)
            .expect("quartile watermarks are monotone");
        println!("{}", tp_stream::advance_section(&stats).render());
    }
    engine
        .finish(&mut sink)
        .expect("finish never regresses the watermark");
    let (occ, retrains) = engine.index_stats();
    println!(
        "  final posture: {} permille occupied, {} lifetime rebuilds",
        occ, retrains,
    );
    for op in [SetOp::Union, SetOp::Intersect, SetOp::Except] {
        println!("-- {op}: {} result tuples", sink.len(op));
    }
    Ok(())
}

/// Streams `left`/`right` through an engine carrying **two standing
/// plans over one shared hash join** (a keyed-count rule and a distinct
/// rule, both over `Except ⋈ Intersect` on the fact key) and prints the
/// lowered DAG after every advance: per-operator live state rows, the
/// observed EWMA delta rates, `shared(xK)` annotations, and each plan's
/// view — the introspection surface of the adaptive pipeline layer.
fn show_standing_plans(db: &Database, left: &str, right: &str) -> Result<()> {
    use tp_relalg::{AggFn, Plan, Relation, Schema};
    use tp_stream::{CollectingSink, EngineConfig, Side, StreamEngine};

    let r = db.relation(left)?;
    let s = db.relation(right)?;
    let hull = match (r.time_range(), s.time_range()) {
        (Some(a), Some(b)) => a.hull(&b),
        (Some(h), None) | (None, Some(h)) => h,
        (None, None) => {
            println!("both relations are empty — nothing to maintain");
            return Ok(());
        }
    };
    let leaf = || Plan::values(Relation::empty(Schema::new(["k", "ts", "te"])));
    let join = || leaf().hash_join(leaf(), vec![0], vec![0]);
    let plans = [
        join().aggregate(vec![0], vec![AggFn::Count]),
        join().project(vec![0]).distinct(),
    ];
    let taps = vec![
        vec![SetOp::Except, SetOp::Intersect],
        vec![SetOp::Except, SetOp::Intersect],
    ];
    let mut engine = StreamEngine::with_plans(EngineConfig::default(), &plans, &taps)
        .expect("demo plans compile");
    let mut sink = CollectingSink::new();
    for t in r.iter() {
        engine.push(Side::Left, t.clone());
    }
    for t in s.iter() {
        engine.push(Side::Right, t.clone());
    }
    println!(
        "standing plans over {left} op {right}: count-per-key and distinct-keys rules \
         sharing one Except ⋈ Intersect join"
    );
    let span = (hull.end() - hull.start()).max(4);
    for q in 1..=4i64 {
        let w = hull.start() + span * q / 4 + i64::from(q == 4);
        if w <= engine.watermark() {
            continue;
        }
        engine
            .advance(w, &mut sink)
            .expect("quartile watermarks are monotone");
    }
    engine
        .finish(&mut sink)
        .expect("finish never regresses the watermark");
    let pipeline = engine.pipeline().expect("plans attached above");
    print!("{}", pipeline.describe());
    for p in 0..pipeline.plan_count() {
        let view = pipeline.materialized_view(p);
        println!("-- view #{p}: {} standing rows", view.len());
    }
    Ok(())
}

fn main() -> Result<()> {
    let mut db = seed_database()?;
    println!("tpdb repl — relations a, b, c loaded (paper Fig. 1a). \\q to quit.");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("tp> ");
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        match handle_command(&mut db, &line) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
