//! Weather-prediction scenario on the Meteo-like workload (§VII-C).
//!
//! Two TP relations over the same 80 stations: `forecast` (the simulated
//! Meteo Swiss prediction stream) and `confirmed` (a shifted copy standing
//! in for later re-predictions). Typical monitoring questions:
//!
//! * `forecast except confirmed` — when is a station's forecast *not*
//!   corroborated (alerting on model disagreement)?
//! * `forecast intersect confirmed` — when do both streams agree, and with
//!   what joint confidence?
//!
//! ```text
//! cargo run --release --example weather_alerts
//! ```

use tp_workloads::{shifted_copy, DatasetStats, MeteoConfig};
use tpdb::prelude::*;

fn main() -> Result<()> {
    let mut vars = VarTable::new();
    let forecast = tp_workloads::meteo::generate(
        &MeteoConfig {
            stations: 80,
            tuples: 20_000,
            ..Default::default()
        },
        &mut vars,
    );
    let confirmed = shifted_copy(&forecast, "k", 6 * 600, 7, &mut vars);

    println!("== dataset profiles (cf. paper Table IV) ==");
    println!("{}", DatasetStats::measure(&forecast).render("forecast"));
    println!("{}", DatasetStats::measure(&confirmed).render("confirmed"));

    // Uncorroborated forecast periods, with the probability that the
    // forecast holds while the confirmation does not.
    let (ms, alerts) = {
        let t0 = std::time::Instant::now();
        let out = except(&forecast, &confirmed);
        (t0.elapsed().as_secs_f64() * 1e3, out)
    };
    println!(
        "forecast −Tp confirmed: {} alert tuples from {} + {} inputs in {ms:.1} ms",
        alerts.len(),
        forecast.len(),
        confirmed.len()
    );

    // The five most probable alerts for station 0.
    let station = Fact::single(0i64);
    let mut station_alerts: Vec<_> = alerts
        .iter()
        .filter(|t| t.fact == station)
        .map(|t| {
            let p = prob::marginal(&t.lineage, &vars).expect("vars registered");
            (p, t.clone())
        })
        .collect();
    station_alerts.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("\ntop alerts for station 0:");
    for (p, t) in station_alerts.iter().take(5) {
        println!("  {} with probability {p:.3}", t.interval);
    }

    // Agreement periods: both streams predict, joint confidence = P(λr ∧ λs).
    // One columnar batch pass over all sampled roots (recorded as a
    // `valuate_batch` sub-span + `tp_valuation_batched_nodes_total`).
    let agree = intersect(&forecast, &confirmed);
    println!("\nforecast ∩Tp confirmed: {} agreement tuples", agree.len());
    let sample: Vec<_> = agree.iter().take(1_000).map(|t| t.lineage).collect();
    let joint = tp_stream::obs::valuate_batch(&sample, &vars)?;
    let avg: f64 = joint.iter().sum::<f64>() / joint.len().max(1) as f64;
    println!("average joint confidence over the first 1000: {avg:.3}");
    println!(
        "columnar kernel: {} arena nodes valuated in one batch pass",
        tp_stream::obs::global()
            .counter("tp_valuation_batched_nodes_total", &[])
            .get()
    );

    // Model invariants hold on derived data, too.
    assert!(alerts.check_duplicate_free().is_ok());
    assert!(alerts.satisfies_change_preservation());
    Ok(())
}
