//! Multi-tenant live alerting: N independent alert streams — one per
//! city — served by a single [`tp_stream::StreamServer`] with **fully
//! bounded memory per tenant**.
//!
//! Each tenant runs the streaming twin of `weather_alerts` in isolation:
//! its own private lineage arena (one tenant's segment retirement can
//! never touch another's handles) *and* its own sliding `VarTable`
//! registry, so both lineage nodes and variable probabilities stay
//! proportional to the live window no matter how long the stream runs —
//! the serving shape the multi-tenant north star demands. Watermark waves
//! advance the whole fleet at once, sharded across worker threads.
//!
//! ```text
//! cargo run --release --example multi_tenant_alerts
//! ```

use std::sync::Arc;

use tp_stream::{Delta, ServerConfig, StreamServer, StreamSink, ValuatingSink};
use tp_workloads::{multi_tenant_stream, replay_waves, MultiTenantConfig};
use tpdb::prelude::*;

/// Per-tenant monitor: counts deltas and keeps the strongest alerts as
/// plain values so nothing holds dead lineage or released variables
/// afterwards. Valuation is not done here tuple-by-tuple: each tenant's
/// monitor is wrapped in a [`ValuatingSink`] over the tenant's shared
/// `Arc<VarTable>`, which batches every `−Tp` insert of a wave into one
/// columnar pass (inside the tenant's arena scope, against the tenant's
/// live var registry — the reclaim-mode consumption contract).
struct AlertMonitor {
    alert_deltas: u64,
    agreement_deltas: u64,
    top: Vec<(f64, String, Interval)>,
}

impl AlertMonitor {
    /// Folds freshly valuated alert inserts into the running top-3.
    fn keep_top(&mut self, batch: Vec<tp_stream::ValuatedDelta>) {
        for v in batch {
            self.top.push((v.p, v.fact.to_string(), v.interval));
        }
        self.top
            .sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        self.top.truncate(3);
    }
}

impl StreamSink for AlertMonitor {
    fn on_delta(&mut self, op: SetOp, _delta: &Delta) {
        match op {
            SetOp::Except => self.alert_deltas += 1,
            SetOp::Intersect => self.agreement_deltas += 1,
            SetOp::Union => {}
        }
    }
}

/// The full per-tenant sink: batched valuation decorating the monitor.
type TenantSink = ValuatingSink<Arc<VarTable>, AlertMonitor>;

fn main() -> Result<()> {
    let cities = ["zurich", "bern", "geneva", "basel", "lugano", "chur"];
    // One sliding forecast-vs-confirmation stream per city, all on the
    // same epoch schedule, 150 epochs deep.
    let scripts = multi_tenant_stream(&MultiTenantConfig {
        tenants: cities.len(),
        epochs: 150,
        per_epoch: 12,
        facts: 6,
        ..Default::default()
    });
    let mut server: StreamServer<TenantSink> = StreamServer::new(ServerConfig::default());
    let ids: Vec<_> = cities
        .iter()
        .zip(&scripts)
        .map(|(city, _)| {
            server.add_tenant_with(*city, |vars| {
                ValuatingSink::new(
                    AlertMonitor {
                        alert_deltas: 0,
                        agreement_deltas: 0,
                        top: Vec::new(),
                    },
                    Arc::clone(vars),
                )
                .with_ops(&[SetOp::Except])
            })
        })
        .collect();

    // Replay: the shared wave driver pushes each tenant's arrivals, then
    // advances the whole fleet in one wave per watermark (sharded over
    // the worker pool), sampling live peaks after each wave.
    let t0 = std::time::Instant::now();
    let mut peak_nodes = vec![0usize; scripts.len()];
    let mut peak_vars = vec![0usize; scripts.len()];
    let waves = replay_waves(&scripts, &mut server, &ids, |server| {
        for (k, &id) in ids.iter().enumerate() {
            peak_nodes[k] = peak_nodes[k].max(server.arena_stats(id).nodes);
            peak_vars[k] = peak_vars[k].max(server.vars(id).live_vars());
        }
    });
    server.finish_all();
    // Fold every wave's batched alert valuations into the per-tenant top
    // lists. Each record is plain values (valuated inside its wave's arena
    // scope), so folding after the fact is safe even in reclaim mode.
    for &id in &ids {
        let sink = server.sink_mut(id);
        let batch = sink.drain_valuated();
        sink.inner_mut().keep_top(batch);
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3;

    let total_rows: u64 = ids.iter().map(|&id| server.pushed(id)).sum();
    println!(
        "served {} tenants × {waves} watermark waves ({total_rows} rows) in {ms:.1} ms",
        cities.len(),
    );
    println!("\nper-tenant bounded-memory gauges (live peaks over the whole run):");
    let tenant_sections: Vec<tp_stream::Section> = ids
        .iter()
        .enumerate()
        .map(|(k, &id)| {
            let stats = server.arena_stats(id);
            let (segs, nodes) = server.engine(id).reclaimed();
            // The server registered this histogram under the tenant's
            // label; fetching the same (name, labels) returns that handle.
            let wave_ns = tp_stream::obs::global()
                .histogram("tp_wave_advance_ns", &[("tenant", server.tenant_name(id))]);
            tp_stream::Section::new(server.tenant_name(id))
                .row(
                    "peaks",
                    format!(
                        "{} lineage nodes, {} live vars",
                        peak_nodes[k], peak_vars[k]
                    ),
                )
                .row(
                    "retired",
                    format!(
                        "{nodes} nodes in {segs} segments, {} of {} vars released",
                        server.engine(id).reclaimed_vars(),
                        server.pushed(id),
                    ),
                )
                .row(
                    "final",
                    format!(
                        "{} nodes, {} vars",
                        stats.nodes,
                        server.vars(id).live_vars()
                    ),
                )
                .row(
                    "wave latency",
                    format!(
                        "p50 {} µs / p95 {} µs over {} waves",
                        wave_ns.p50() / 1_000,
                        wave_ns.p95() / 1_000,
                        wave_ns.count(),
                    ),
                )
        })
        .collect();
    println!("{}", tp_stream::render_all(&tenant_sections));

    println!("\nstrongest uncorroborated-forecast alerts seen live, per city:");
    for &id in &ids {
        let monitor = server.sink(id).inner();
        println!(
            "  {:<8} ({} alert deltas, {} agreement deltas)",
            server.tenant_name(id),
            monitor.alert_deltas,
            monitor.agreement_deltas,
        );
        for (p, fact, interval) in &monitor.top {
            println!("    sensor {fact} over {interval} with probability {p:.3}");
        }
    }

    // Use-after-release is detectable, never silently wrong: variable 0 of
    // tenant 0 retired long ago with its cohort.
    let err = server.vars(ids[0]).prob(TupleId(0)).unwrap_err();
    println!("\nprobe of a long-retired variable: {err}");

    // TP_TRACE=<file>: dump every stage span the run recorded — one lane
    // per worker thread, tenants distinguishable by their span context —
    // as a chrome://tracing profile (open in Perfetto).
    if let Ok(path) = std::env::var("TP_TRACE") {
        let json = tp_stream::trace_json();
        std::fs::write(&path, &json)?;
        println!(
            "wrote {} bytes of trace to {path} — open in chrome://tracing or https://ui.perfetto.dev",
            json.len()
        );
    }
    Ok(())
}
