//! Repository-audit scenario on the WebKit-like workload (§VII-C).
//!
//! Two TP relations over the same files: `trunk` (the simulated SVN
//! history: a fact per file, valid while the file is unchanged) and
//! `mirror` (a shifted copy standing in for an out-of-sync replica). The
//! audit asks where the mirror diverges and runs the same queries with the
//! baseline approaches to show Table II and the performance gap in action.
//!
//! ```text
//! cargo run --release --example revision_audit
//! ```

use tp_baselines::Approach;
use tp_workloads::{shifted_copy, DatasetStats, WebkitConfig};
use tpdb::prelude::*;

fn main() -> Result<()> {
    let mut vars = VarTable::new();
    let trunk = tp_workloads::webkit::generate(
        &WebkitConfig {
            files: 4_000,
            tuples: 12_000,
            ..Default::default()
        },
        &mut vars,
    );
    let mirror = shifted_copy(&trunk, "m", 10_000, 3, &mut vars);

    println!("== dataset profile (cf. paper Table IV) ==");
    println!(
        "{}",
        DatasetStats::measure(&trunk).render("trunk (simulated WebKit)")
    );

    // Periods where trunk has an unchanged file state not mirrored.
    let divergence = except(&trunk, &mirror);
    // Periods where both agree.
    let in_sync = intersect(&trunk, &mirror);
    // The union view: any recorded state on either side.
    let coverage = union(&trunk, &mirror);
    println!(
        "divergence (−Tp): {} tuples | in-sync (∩Tp): {} | coverage (∪Tp): {}",
        divergence.len(),
        in_sync.len(),
        coverage.len()
    );

    // Linear output-size guarantee of TP set queries (Theorem 1's counting
    // argument): outputs never exceed ~2× the input sizes.
    let bound = 2 * (trunk.len() + mirror.len());
    assert!(coverage.len() <= bound);
    println!("output-size bound respected: {} ≤ {bound}", coverage.len());

    // Per-approach timing on the intersection (Table II limits apply).
    println!("\n== approach timings, trunk ∩Tp mirror ==");
    for approach in Approach::ALL {
        if !approach.supports(SetOp::Intersect) {
            continue;
        }
        // The quadratic baselines get a subsample to stay interactive.
        let cap = match approach {
            Approach::Norm | Approach::Tpdb => 1_500,
            _ => usize::MAX,
        };
        let r_in: TpRelation = trunk.iter().take(cap).cloned().collect();
        let s_in: TpRelation = mirror.iter().take(cap).cloned().collect();
        let t0 = std::time::Instant::now();
        let out = approach.run(SetOp::Intersect, &r_in, &s_in)?;
        println!(
            "  {:<5} {:>8.1} ms on {:>6} tuples/side → {} output tuples",
            approach.name(),
            t0.elapsed().as_secs_f64() * 1e3,
            r_in.len(),
            out.len()
        );
    }

    // A composite audit query through the query layer: states only ever
    // seen on exactly one side.
    let mut db = Database::new();
    db.add_relation("trunk", trunk)?;
    db.add_relation("mirror", mirror)?;
    // Reuse the shared variable table so probabilities stay resolvable.
    *db.vars_mut() = vars;
    let q = Query::parse("(trunk union mirror) except (trunk intersect mirror)")?;
    println!(
        "\naudit query: {q} (non-repeating: {})",
        q.is_non_repeating()
    );
    let exclusive = q.eval(&db)?;
    println!(
        "states seen on exactly one side: {} tuples",
        exclusive.len()
    );
    // Repeating query ⇒ some lineages repeat variables; probabilities still
    // computable via Shannon expansion.
    let sample = exclusive
        .iter()
        .find(|t| !t.lineage.is_one_occurrence_form());
    if let Some(t) = sample {
        let p = prob::marginal(&t.lineage, db.vars())?;
        println!(
            "example non-1OF lineage {} has P = {p:.4}",
            t.lineage.display_with(db.vars().resolver())
        );
    }
    Ok(())
}
