//! The full supermarket scenario: every TP set operation of the paper's
//! Fig. 3, the lineage-aware temporal windows behind them (Fig. 4 / Fig. 6),
//! and a comparison of every implemented approach on the same inputs.
//!
//! ```text
//! cargo run --example supermarket
//! ```

use tp_baselines::Approach;
use tpdb::core::window::Lawa;
use tpdb::prelude::*;

fn main() -> Result<()> {
    let mut db = Database::new();
    db.add_base_relation(
        "a",
        vec![
            (Fact::single("milk"), Interval::at(2, 10), 0.3),
            (Fact::single("chips"), Interval::at(4, 7), 0.8),
            (Fact::single("dates"), Interval::at(1, 3), 0.6),
        ],
    )?;
    db.add_base_relation(
        "c",
        vec![
            (Fact::single("milk"), Interval::at(1, 4), 0.6),
            (Fact::single("milk"), Interval::at(6, 8), 0.7),
            (Fact::single("chips"), Interval::at(4, 5), 0.7),
            (Fact::single("chips"), Interval::at(7, 9), 0.8),
        ],
    )?;
    let a = db.relation("a")?.clone();
    let c = db.relation("c")?.clone();

    // --- Fig. 3: the three TP set operations between a and c. ---
    for (name, out) in [
        ("a ∪Tp c", union(&a, &c)),
        ("a −Tp c", except(&a, &c)),
        ("a ∩Tp c", intersect(&a, &c)),
    ] {
        println!("== {name} ==");
        println!("{}", out.canonicalized().render(db.vars()));
    }

    // --- Fig. 6: the lineage-aware temporal windows of σ F='milk'(c) −Tp
    //     σ F='milk'(a), with the λ-filter verdict per window. ---
    println!("== lineage-aware temporal windows of σmilk(c) −Tp σmilk(a) ==");
    let milk = Fact::single("milk");
    let cm = select(&c, |f| *f == milk).sorted();
    let am = select(&a, |f| *f == milk).sorted();
    for w in Lawa::new(cm.tuples(), am.tuples()) {
        let fmt = |l: &Option<Lineage>| match l {
            Some(l) => l.display_with(db.vars().resolver()).to_string(),
            None => "null".to_string(),
        };
        let verdict = if w.lambda_r.is_some() { "✓" } else { "✗" };
        println!(
            "  window {} λr={:<6} λs={:<6} → {verdict}",
            w.interval,
            fmt(&w.lambda_r),
            fmt(&w.lambda_s)
        );
    }
    println!();

    // --- Every approach computes the same result (Table II permitting). ---
    println!("== approach agreement on a ∩Tp c ==");
    let reference = intersect(&a, &c).canonicalized();
    for approach in Approach::ALL {
        match approach.run(SetOp::Intersect, &a, &c) {
            Ok(out) => println!(
                "  {:<5} {} tuples, equal to LAWA: {}",
                approach.name(),
                out.len(),
                out.canonicalized() == reference
            ),
            Err(e) => println!("  {:<5} {e}", approach.name()),
        }
    }
    println!();
    println!("== Table II ==\n{}", tp_baselines::support_matrix());
    Ok(())
}
