//! Compares the four probability-valuation backends on lineage of growing
//! hardness — the engines the paper's §III points at ("exact … or
//! approximate algorithms"):
//!
//! * linear independent valuation (exact only for 1OF lineage),
//! * Shannon expansion (exact, worst-case exponential),
//! * ROBDD compilation (exact, shares isomorphic subproblems),
//! * Monte-Carlo / anytime sampling (approximate, confidence-bounded).
//!
//! ```text
//! cargo run --release --example probability_engines
//! ```

use std::time::Instant;

use tpdb::core::bdd;
use tpdb::prelude::*;

/// Builds the lineage of the repeating query `(r ∪ s) −Tp (r ∩ u)` chained
/// `k` times — each level reuses variables, defeating the 1OF fast path.
fn hard_lineage(k: usize, vars: &mut VarTable) -> Lineage {
    let ids: Vec<TupleId> = (0..(2 * k + 2))
        .map(|i| {
            vars.register(format!("x{i}"), 0.3 + 0.4 * ((i % 5) as f64) / 5.0)
                .unwrap()
        })
        .collect();
    let mut acc = Lineage::var(ids[0]);
    for level in 0..k {
        let a = Lineage::var(ids[2 * level]);
        let b = Lineage::var(ids[2 * level + 1]);
        let c = Lineage::var(ids[2 * level + 2]);
        acc = Lineage::and_not(&Lineage::or(&acc, &b), Some(&Lineage::and(&a, &c)));
    }
    acc
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64() * 1e3, out)
}

fn main() -> Result<()> {
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>14} {:>16}",
        "levels", "vars", "shannon", "bdd", "mc(50k)", "anytime(±0.005)"
    );
    for k in [2usize, 4, 8, 12, 16] {
        let mut vars = VarTable::new();
        let lineage = hard_lineage(k, &mut vars);
        assert!(!lineage.is_one_occurrence_form());

        let (t_shannon, p_shannon) = time(|| prob::exact(&lineage, &vars).unwrap());
        let (t_bdd, p_bdd) = time(|| bdd::probability(&lineage, &vars).unwrap());
        let (t_mc, est) = time(|| prob::monte_carlo(&lineage, &vars, 50_000, 7).unwrap());
        let (t_any, any) =
            time(|| prob::monte_carlo_until(&lineage, &vars, 0.005, 10_000_000, 7).unwrap());

        assert!((p_shannon - p_bdd).abs() < 1e-9, "exact engines must agree");
        assert!((est.estimate - p_shannon).abs() <= est.half_width_95 + 0.01);
        println!(
            "{k:<8} {:>8} {t_shannon:>11.2}ms {t_bdd:>11.2}ms {t_mc:>11.2}ms {t_any:>13.2}ms   P={p_shannon:.5} (mc {:.5}±{:.3}, n={})",
            lineage.vars().len(),
            any.estimate,
            any.half_width_95,
            any.samples,
        );
    }

    // The 1OF fast path on a real query result for contrast.
    let mut db = Database::new();
    db.add_base_relation("a", vec![(Fact::single("milk"), Interval::at(2, 10), 0.3)])?;
    db.add_base_relation("b", vec![(Fact::single("milk"), Interval::at(5, 9), 0.6)])?;
    let out = Query::parse("a union b")?.eval(&db)?;
    for t in out.iter() {
        assert!(t.lineage.is_one_occurrence_form());
        let p_lin = prob::independent(&t.lineage, db.vars())?;
        let p_bdd = bdd::probability(&t.lineage, db.vars())?;
        assert!((p_lin - p_bdd).abs() < 1e-12);
    }
    println!("\n1OF query lineage: linear valuation = BDD valuation (Corollary 1).");
    Ok(())
}
