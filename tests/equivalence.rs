//! Randomized cross-validation: LAWA, all four baselines and the literal
//! snapshot-semantics oracle must produce identical relations (same facts,
//! intervals and — syntactically — lineage) for every supported operation.

mod common;

use common::{arb_raw_relation, build_relation};
use proptest::prelude::*;
use tp_baselines::Approach;
use tpdb::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lawa_matches_snapshot_oracle(
        raw_r in arb_raw_relation(18),
        raw_s in arb_raw_relation(18),
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        for op in SetOp::ALL {
            let fast = apply(op, &r, &s).canonicalized();
            let oracle = set_op_by_snapshots(op, &r, &s).canonicalized();
            prop_assert_eq!(&fast, &oracle, "op {}", op);
        }
    }

    #[test]
    fn baselines_match_lawa(
        raw_r in arb_raw_relation(18),
        raw_s in arb_raw_relation(18),
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        for op in SetOp::ALL {
            let reference = apply(op, &r, &s).canonicalized();
            for a in Approach::ALL {
                if !a.supports(op) {
                    continue;
                }
                let got = a.run(op, &r, &s).unwrap().canonicalized();
                prop_assert_eq!(&got, &reference, "{} {}", a, op);
            }
        }
    }

    #[test]
    fn asymmetric_inputs(
        raw_r in arb_raw_relation(25),
    ) {
        // One empty side, both orders.
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let empty = TpRelation::new();
        prop_assert_eq!(union(&r, &empty).canonicalized(), r.canonicalized());
        prop_assert_eq!(union(&empty, &r).canonicalized(), r.canonicalized());
        prop_assert!(intersect(&r, &empty).is_empty());
        prop_assert!(intersect(&empty, &r).is_empty());
        prop_assert_eq!(except(&r, &empty).canonicalized(), r.canonicalized());
        prop_assert!(except(&empty, &r).is_empty());
    }

    #[test]
    fn self_operations_match_oracle(
        raw in arb_raw_relation(15),
    ) {
        // r op r is legal (repeating lineage); the oracle still agrees.
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw, &mut vars);
        for op in SetOp::ALL {
            let fast = apply(op, &r, &r).canonicalized();
            let oracle = set_op_by_snapshots(op, &r, &r).canonicalized();
            prop_assert_eq!(&fast, &oracle, "op {}", op);
        }
    }
}

#[test]
fn oip_both_modes_agree_on_larger_input() {
    use tp_baselines::{OipConfig, OipMode};
    let mut vars = VarTable::new();
    let cfg = tp_workloads::SynthConfig::with_facts(3_000, 20, 99);
    let (r, s) = tp_workloads::synth::generate(&cfg, &mut vars);
    let reference = intersect(&r, &s).canonicalized();
    for mode in [OipMode::FactGrouped, OipMode::EqualityFilter] {
        for granule_size in [None, Some(1), Some(10)] {
            let got = tp_baselines::oip::intersect(&r, &s, OipConfig { granule_size, mode });
            assert_eq!(got.canonicalized(), reference, "{mode:?} {granule_size:?}");
        }
    }
}

#[test]
fn all_approaches_agree_on_synthetic_workload() {
    let mut vars = VarTable::new();
    let cfg = tp_workloads::SynthConfig::with_facts(1_000, 7, 123);
    let (r, s) = tp_workloads::synth::generate(&cfg, &mut vars);
    for op in SetOp::ALL {
        let reference = apply(op, &r, &s).canonicalized();
        for a in Approach::ALL {
            if !a.supports(op) {
                continue;
            }
            assert_eq!(
                a.run(op, &r, &s).unwrap().canonicalized(),
                reference,
                "{a} {op}"
            );
        }
    }
}

#[test]
fn all_approaches_agree_on_real_world_workloads() {
    let mut vars = VarTable::new();
    let meteo = tp_workloads::meteo::generate(
        &tp_workloads::MeteoConfig {
            tuples: 600,
            ..Default::default()
        },
        &mut vars,
    );
    let meteo_s = tp_workloads::shifted_copy(&meteo, "s", 3 * 600, 7, &mut vars);
    let webkit = tp_workloads::webkit::generate(
        &tp_workloads::WebkitConfig {
            files: 150,
            tuples: 600,
            ..Default::default()
        },
        &mut vars,
    );
    let webkit_s = tp_workloads::shifted_copy(&webkit, "t", 5_000, 7, &mut vars);
    for (r, s) in [(&meteo, &meteo_s), (&webkit, &webkit_s)] {
        for op in SetOp::ALL {
            let reference = apply(op, r, s).canonicalized();
            for a in Approach::ALL {
                if !a.supports(op) {
                    continue;
                }
                assert_eq!(
                    a.run(op, r, s).unwrap().canonicalized(),
                    reference,
                    "{a} {op}"
                );
            }
        }
    }
}
