//! Edge cases of `split_at_watermark` and the ingestion boundary: zero
//! lateness, duplicate timestamps exactly at the cut, watermark-regression
//! rejection, and empty-epoch advances — all cross-checked against batch
//! through the shared differential oracle.

mod common;

use common::oracle::assert_stream_matches_batch;
use tp_core::window::split_at_watermark;
use tp_stream::{
    CollectingSink, CountingSink, EngineConfig, IngestOutcome, ReclaimConfig, Side, StreamEngine,
    StreamError, StreamSink, WatermarkPolicy,
};
use tpdb::prelude::*;

fn tup(vars: &mut VarTable, f: &str, s: i64, e: i64) -> TpTuple {
    let id = vars.register(format!("{f}[{s},{e})"), 0.5).unwrap();
    TpTuple::new(f, Lineage::var(id), Interval::at(s, e))
}

#[test]
fn split_at_watermark_boundary_partition() {
    let mut vars = VarTable::new();
    // end == w → fully closed; start == w → fully residual; straddling →
    // both sides, same lineage handle.
    let closed_exact = tup(&mut vars, "a", 1, 5);
    let open_exact = tup(&mut vars, "b", 5, 9);
    let straddle = tup(&mut vars, "c", 3, 8);
    let (closed, residual) = split_at_watermark(
        vec![closed_exact.clone(), open_exact.clone(), straddle.clone()],
        5,
    );
    assert_eq!(closed.len(), 2);
    assert_eq!(residual.len(), 2);
    assert_eq!(
        closed[0], closed_exact,
        "end == w belongs to the closed side"
    );
    assert_eq!(
        residual[0], open_exact,
        "start == w belongs to the residual"
    );
    // The straddler is cut at exactly w with the lineage handle preserved
    // on both sides (the O(1) Extend-merge precondition).
    assert_eq!(closed[1].interval, Interval::at(3, 5));
    assert_eq!(residual[1].interval, Interval::at(5, 8));
    assert_eq!(closed[1].lineage, straddle.lineage);
    assert_eq!(residual[1].lineage, straddle.lineage);
    // Degenerate inputs.
    let (c, r) = split_at_watermark(Vec::<TpTuple>::new(), 5);
    assert!(c.is_empty() && r.is_empty());
}

#[test]
fn zero_lateness_policy_accepts_the_boundary_and_drops_below_it() {
    // lateness = 0: the watermark rides exactly on the highest start seen.
    let mut vars = VarTable::new();
    let mut engine = StreamEngine::new(EngineConfig {
        policy: WatermarkPolicy::BoundedLateness(0),
        ..Default::default()
    });
    let mut sink = CountingSink::new();
    engine.push(Side::Left, tup(&mut vars, "f", 0, 4));
    let stats = engine.poll(&mut sink).expect("watermark moves to 0");
    assert_eq!(stats.watermark, 0);
    engine.push(Side::Left, tup(&mut vars, "f", 10, 14));
    assert_eq!(engine.poll(&mut sink).unwrap().watermark, 10);
    // Start exactly AT the watermark: still legal (the promise is about
    // starts *below* it).
    assert_eq!(
        engine.push(Side::Left, tup(&mut vars, "g", 10, 12)),
        IngestOutcome::Accepted
    );
    // One tick below: late, dropped, counted.
    assert_eq!(
        engine.push(Side::Left, tup(&mut vars, "g", 9, 12)),
        IngestOutcome::Late
    );
    assert_eq!(engine.late_dropped(), [1, 0]);
}

#[test]
fn duplicate_timestamps_at_the_cut_reassemble_exactly() {
    // Several same-fact and different-fact tuples whose endpoints pile up
    // exactly on the watermark: the artificial cuts must reassemble to the
    // batch result (tuples, lineage handles, marginals).
    let mut vars = VarTable::new();
    let r: TpRelation = vec![
        tup(&mut vars, "f", 0, 5),  // ends at the cut
        tup(&mut vars, "f", 5, 10), // starts at the cut (adjacent, same fact)
        tup(&mut vars, "g", 2, 8),  // straddles the cut
        tup(&mut vars, "h", 5, 7),  // starts at the cut, distinct fact
    ]
    .into_iter()
    .collect();
    let s: TpRelation = vec![
        tup(&mut vars, "f", 3, 5),
        tup(&mut vars, "g", 5, 9),
        tup(&mut vars, "h", 0, 5),
    ]
    .into_iter()
    .collect();
    let mut engine = StreamEngine::new(EngineConfig {
        verify_batch: true, // the engine's own cross-check runs too
        ..Default::default()
    });
    let mut sink = CollectingSink::new();
    for t in r.iter() {
        engine.push(Side::Left, t.clone());
    }
    for t in s.iter() {
        engine.push(Side::Right, t.clone());
    }
    // Advance exactly onto the pile-up point, then past everything.
    engine.advance(5, &mut sink).unwrap();
    engine.finish(&mut sink).unwrap();
    assert_stream_matches_batch(&sink, &r, &s, &vars);
}

#[test]
fn watermark_regression_is_rejected_and_harmless() {
    let mut vars = VarTable::new();
    let mut engine = StreamEngine::default();
    let mut sink = CountingSink::new();
    engine.push(Side::Left, tup(&mut vars, "f", 0, 20));
    engine.advance(10, &mut sink).unwrap();
    let deltas_before = sink.total();
    let buffered_before = engine.buffered();
    // Equal and lower targets are rejected with the current watermark in
    // the error…
    for bad in [10, 9, i64::MIN] {
        match engine.advance(bad, &mut sink) {
            Err(StreamError::NonMonotonicWatermark { current, requested }) => {
                assert_eq!(current, 10);
                assert_eq!(requested, bad);
            }
            other => panic!("advance({bad}) returned {other:?}"),
        }
    }
    // …and the engine state is untouched: same watermark, same buffers,
    // no deltas, and a later legal advance still works.
    assert_eq!(engine.watermark(), 10);
    assert_eq!(engine.buffered(), buffered_before);
    assert_eq!(sink.total(), deltas_before);
    let stats = engine.advance(20, &mut sink).unwrap();
    assert_eq!(stats.watermark, 20);
}

#[test]
fn empty_epoch_advances_are_cheap_and_do_not_leak() {
    // A reclaiming engine advanced through epochs with no arrivals must
    // not grow anything: no windows, no segments sealed (empty segments
    // are not sealed), no var cohorts stranded — and a stream resuming
    // after the gap still matches batch.
    struct RetireCount(u64);
    impl StreamSink for RetireCount {
        fn on_delta(&mut self, _op: SetOp, _d: &tp_stream::Delta) {}
        fn on_retire(&mut self, _seg: SegmentId) {
            self.0 += 1;
        }
    }
    let vars = std::sync::Arc::new(VarTable::new());
    let mut engine = StreamEngine::new(EngineConfig {
        reclaim: Some(ReclaimConfig {
            keep_epochs: 1,
            vars: Some(std::sync::Arc::clone(&vars)),
            ..Default::default()
        }),
        ..Default::default()
    });
    let mut sink = RetireCount(0);
    let segments_before = engine.arena_stats().unwrap().segments;
    for w in 1..=40i64 {
        let stats = engine.advance(w, &mut sink).unwrap();
        assert_eq!(stats.windows, 0);
        assert_eq!((stats.inserts, stats.extends), (0, 0));
        assert_eq!(stats.released, [0, 0]);
    }
    let after = engine.arena_stats().unwrap();
    assert_eq!(
        after.segments, segments_before,
        "empty advances must not burn arena segments"
    );
    assert_eq!(after.nodes, 0);
    assert_eq!(vars.live_vars(), 0);
    // Resume with real traffic: the gap leaves no residue in the results.
    let id = vars.register_shared("late-bloomer", 0.7).unwrap();
    let scope = engine.enter_arena();
    let t = TpTuple::new("f", Lineage::var(id), Interval::at(50, 60));
    engine.push(Side::Left, t);
    drop(scope);
    let stats = engine.advance(100, &mut sink).unwrap();
    assert_eq!(stats.inserts, 2); // union + except emit the lone tuple
    assert_eq!(stats.windows, 1);
    // And the retire cycle still functions after the empty stretch.
    for w in 101..=110i64 {
        engine.advance(w, &mut sink).unwrap();
    }
    assert!(engine.reclaimed().0 > 0);
    assert_eq!(engine.reclaimed_vars(), 1);
    assert!(matches!(vars.prob(id), Err(Error::ReleasedVariable(_))));
    assert!(sink.0 > 0);
}
