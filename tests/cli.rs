//! End-to-end tests of the `tpdb` CLI binary (spawned as a subprocess via
//! the path Cargo exports for integration tests).

use std::process::Command;

fn tpdb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tpdb"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn demo_prints_fig1c() {
    let out = tpdb(&["demo"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("c except (a union b)"));
    assert!(stdout.contains("c1∧¬a1"));
    assert!(stdout.contains("0.4200"));
    assert!(stdout.contains("0.1960"));
}

#[test]
fn query_on_builtin_relations() {
    let out = tpdb(&["query", "a intersect c"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("a1∧c1"));
    assert!(stdout.contains("[2,4)"));
}

#[test]
fn query_csv_output() {
    let out = tpdb(&["query", "--csv", "a intersect c"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let mut lines = stdout.lines();
    assert_eq!(lines.next(), Some("fact,ts,te,lineage,p"));
    assert!(stdout.contains("'chips',4,5,a2∧c3,0.560000"));
}

#[test]
fn explain_shows_plan() {
    let out = tpdb(&["explain", "c except (a union b)"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("except"));
    assert!(stdout.contains("Scan a (3 tuples)"));
    assert!(stdout.contains("non-repeating: true"));
}

#[test]
fn show_relation() {
    let out = tpdb(&["show", "b"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("b1"));
    assert!(stdout.contains("[5,9)"));
}

#[test]
fn db_directory_roundtrip() {
    use tpdb::prelude::*;
    let dir = std::env::temp_dir().join(format!("tpdb-cli-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Database::new();
    db.add_base_relation(
        "sensors",
        vec![
            (Fact::single("s1"), Interval::at(0, 50), 0.9),
            (Fact::single("s2"), Interval::at(10, 30), 0.7),
        ],
    )
    .unwrap();
    db.add_base_relation(
        "faults",
        vec![(Fact::single("s1"), Interval::at(20, 40), 0.2)],
    )
    .unwrap();
    db.save_to_dir(&dir).unwrap();

    let out = tpdb(&[
        "query",
        "--db",
        dir.to_str().unwrap(),
        "sensors except faults",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("'s1'"));
    assert!(stdout.contains("'s2'"));
    assert!(stdout.contains("¬faults1"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let out = tpdb(&["query", "a union ("]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("parse error"));

    let out = tpdb(&["show", "nope"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown relation"));

    let out = tpdb(&["frobnicate"]);
    assert!(!out.status.success());

    let out = tpdb(&[]);
    assert_eq!(out.status.code(), Some(2));
}
