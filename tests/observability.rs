//! Observability suite: the tp-obs layer must never change what the engine
//! computes, only describe it. The strongest oracle is differential — the
//! same replay fully instrumented and with every layer force-disabled must
//! emit **byte-identical** delta logs in every engine mode. On top of that:
//! histogram quantiles stay inside the exact answer's power-of-two bucket
//! (property test), trace rings stay bounded under concurrent writers,
//! stage spans tile each advance exactly, and both export formats parse.

mod common;

use std::sync::Arc;

use common::oracle::assert_delta_logs_identical;
use proptest::prelude::*;
use tp_obs::{
    chrome_trace_json, ctx_id, json, snapshot_spans, Histogram, MetricsRegistry, SpanEvent,
    TraceRing,
};
use tp_stream::{
    EngineConfig, MaterializingSink, ObsConfig, ParallelConfig, ReclaimConfig, ReplayConfig,
    ServerConfig, Side, StreamScript, StreamServer,
};
use tp_workloads::{sliding_synth_stream, SlidingConfig};
use tpdb::prelude::*;

/// Replays `script` through one engine with the given config; returns the
/// materialized delta log (finish included by the script's epilogue).
fn run(script: &StreamScript, cfg: EngineConfig) -> MaterializingSink {
    let mut sink = MaterializingSink::new();
    script.run_into(cfg, &mut sink);
    sink
}

fn sliding_script() -> StreamScript {
    let mut vars = VarTable::new();
    let w = sliding_synth_stream(
        &SlidingConfig {
            epochs: 12,
            per_epoch: 30,
            ..Default::default()
        },
        &mut vars,
    );
    StreamScript::from_pair(
        &w.r,
        &w.s,
        &ReplayConfig {
            lateness: 24,
            advance_every: 32,
            seed: 7,
        },
    )
}

// ---------------------------------------------------------------------------
// Histograms: quantiles within one power-of-two bucket of the exact answer.
// ---------------------------------------------------------------------------

/// Mirror of the histogram's bucketing rule: 0 for 0, else the bit length.
fn bucket_of(v: u64) -> u32 {
    u64::BITS - v.leading_zeros()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `count`/`sum` are exact, and every quantile lands in the same log2
    /// bucket as the exact order statistic it approximates.
    #[test]
    fn histogram_quantiles_bracket_exact(
        samples in prop::collection::vec(0u64..1u64 << 40, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        for &q in &qs {
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let exact = sorted[(rank - 1) as usize];
            let approx = h.quantile(q);
            prop_assert_eq!(
                bucket_of(approx),
                bucket_of(exact),
                "q={} approx={} exact={}",
                q,
                approx,
                exact
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Trace rings: bounded and loss-free up to capacity, under contention.
// ---------------------------------------------------------------------------

#[test]
fn trace_ring_wraps_to_capacity_and_keeps_newest() {
    let ring = TraceRing::new(8);
    for i in 0..20u64 {
        ring.record(SpanEvent {
            name: "probe",
            cat: "test",
            ts_ns: i,
            dur_ns: 1,
            tid: 1,
            ctx: 0,
            arg: i,
        });
    }
    let events = ring.snapshot();
    assert_eq!(events.len(), 8, "ring must cap at its capacity");
    // Oldest-first snapshot of the newest 8 of 20 events.
    let args: Vec<u64> = events.iter().map(|e| e.arg).collect();
    assert_eq!(args, (12..20).collect::<Vec<u64>>());
}

#[test]
fn trace_ring_is_bounded_under_concurrent_writers() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 2_000;
    let ring = TraceRing::new(256);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ring = &ring;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    ring.record(SpanEvent {
                        name: "probe",
                        cat: "test",
                        ts_ns: i,
                        dur_ns: 1,
                        tid: w as u32,
                        ctx: 0,
                        arg: w * PER_WRITER + i,
                    });
                }
            });
        }
    });
    let events = ring.snapshot();
    assert_eq!(events.len(), 256, "ring overflowed its capacity");
    for e in &events {
        let w = e.arg / PER_WRITER;
        assert!(w < WRITERS, "event not written by any writer: {e:?}");
        assert_eq!(
            e.arg % PER_WRITER,
            e.ts_ns,
            "event torn by concurrent writes"
        );
    }
}

// ---------------------------------------------------------------------------
// The differential gate: instrumentation must be invisible in the output.
// ---------------------------------------------------------------------------

/// Every engine mode, instrumented (metrics + spans into a private
/// registry) versus force-disabled, must emit byte-identical delta logs.
#[test]
fn instrumented_replay_is_byte_identical_to_uninstrumented() {
    let script = sliding_script();
    let parallel = || {
        Some(ParallelConfig {
            workers: 4,
            min_tuples: 64,
            cuts: None,
        })
    };
    let modes: Vec<(&str, EngineConfig)> = vec![
        ("sequential", EngineConfig::default()),
        (
            "parallel",
            EngineConfig {
                parallel: parallel(),
                ..Default::default()
            },
        ),
        (
            "reclaim",
            EngineConfig {
                reclaim: Some(ReclaimConfig::default()),
                ..Default::default()
            },
        ),
        (
            "reclaim+parallel",
            EngineConfig {
                reclaim: Some(ReclaimConfig::default()),
                parallel: parallel(),
                ..Default::default()
            },
        ),
    ];
    for (mode, cfg) in modes {
        let registry = Arc::new(MetricsRegistry::new());
        let tenant = format!("obs-test-diff-{mode}");
        let instrumented = run(
            &script,
            EngineConfig {
                obs: ObsConfig {
                    enabled: true,
                    tenant: Some(tenant.clone()),
                    registry: Some(Arc::clone(&registry)),
                },
                ..cfg.clone()
            },
        );
        // Force every layer dark for the baseline — engine, arena, index —
        // then restore the default so concurrent tests keep their signals.
        tp_stream::set_obs_enabled(false);
        let baseline = run(
            &script,
            EngineConfig {
                obs: ObsConfig {
                    enabled: false,
                    tenant: None,
                    registry: None,
                },
                ..cfg
            },
        );
        tp_stream::set_obs_enabled(true);
        assert_delta_logs_identical(
            &instrumented,
            &baseline,
            &format!("instrumented vs uninstrumented [{mode}]"),
        );
        // The instrumented run really was instrumented.
        assert!(
            registry
                .counter("tp_advances_total", &[("tenant", tenant.as_str())])
                .get()
                > 0,
            "[{mode}] no advances counted in the private registry"
        );
    }
}

// ---------------------------------------------------------------------------
// Stage spans: the taxonomy tiles each advance exactly.
// ---------------------------------------------------------------------------

/// Stage spans are cut from one cursor, so per context they must sum to
/// exactly the advance spans they tile — 100% coverage, not just >= 95%.
#[test]
fn stage_spans_tile_every_advance() {
    let script = sliding_script();
    let label = "obs-test-coverage";
    let registry = Arc::new(MetricsRegistry::new());
    run(
        &script,
        EngineConfig {
            reclaim: Some(ReclaimConfig::default()),
            parallel: Some(ParallelConfig {
                workers: 4,
                min_tuples: 64,
                cuts: None,
            }),
            obs: ObsConfig {
                enabled: true,
                tenant: Some(label.to_string()),
                registry: Some(registry),
            },
            ..Default::default()
        },
    );
    let ctx = ctx_id(label);
    let spans: Vec<SpanEvent> = snapshot_spans()
        .into_iter()
        .filter(|e| e.ctx == ctx)
        .collect();
    let advances: Vec<&SpanEvent> = spans.iter().filter(|e| e.cat == "advance").collect();
    let stages: Vec<&SpanEvent> = spans.iter().filter(|e| e.cat == "stage").collect();
    assert!(!advances.is_empty(), "no advance spans recorded");
    assert_eq!(
        stages.len(),
        advances.len() * tp_stream::STAGES.len(),
        "each advance must record exactly one span per stage"
    );
    for s in &stages {
        assert!(
            tp_stream::STAGES.contains(&s.name),
            "unknown stage name {:?}",
            s.name
        );
    }
    let advance_ns: u64 = advances.iter().map(|e| e.dur_ns).sum();
    let stage_ns: u64 = stages.iter().map(|e| e.dur_ns).sum();
    assert_eq!(
        stage_ns, advance_ns,
        "stage spans must tile the advance wall time exactly"
    );
    // Each stage span nests inside an advance span.
    for s in &stages {
        assert!(
            advances
                .iter()
                .any(|a| a.ts_ns <= s.ts_ns && s.ts_ns + s.dur_ns <= a.ts_ns + a.dur_ns),
            "stage span {:?} escapes every advance span",
            s.name
        );
    }
}

// ---------------------------------------------------------------------------
// Exports: Prometheus text, JSON registry dump, chrome://tracing.
// ---------------------------------------------------------------------------

#[test]
fn exports_are_well_formed_after_a_replay() {
    let script = sliding_script();
    let label = "obs-test-exports";
    let registry = Arc::new(MetricsRegistry::new());
    run(
        &script,
        EngineConfig {
            reclaim: Some(ReclaimConfig::default()),
            obs: ObsConfig {
                enabled: true,
                tenant: Some(label.to_string()),
                registry: Some(Arc::clone(&registry)),
            },
            ..Default::default()
        },
    );
    let text = registry.prometheus_text();
    for metric in [
        "tp_advances_total",
        "tp_windows_total",
        "tp_advance_ns",
        "tp_stage_ns",
    ] {
        assert!(text.contains(metric), "prometheus text missing {metric}");
    }
    assert!(
        text.contains("tenant=\"obs-test-exports\""),
        "tenant label missing from prometheus text"
    );
    json::validate(&registry.json()).expect("registry JSON dump must parse");

    let ctx = ctx_id(label);
    let spans: Vec<SpanEvent> = snapshot_spans()
        .into_iter()
        .filter(|e| e.ctx == ctx)
        .collect();
    assert!(!spans.is_empty(), "no spans to export");
    let trace = chrome_trace_json(&spans);
    json::validate(&trace).expect("chrome trace JSON must parse");
    assert!(
        trace.contains("\"ph\":\"X\""),
        "trace events must be complete spans"
    );
    assert!(
        trace.contains(label),
        "trace args must carry the context label"
    );
}

// ---------------------------------------------------------------------------
// Multi-tenant: spans and metrics stay attributable per tenant.
// ---------------------------------------------------------------------------

#[test]
fn multi_tenant_spans_and_metrics_stay_attributable() {
    let registry = Arc::new(MetricsRegistry::new());
    let mut server: StreamServer<MaterializingSink> = StreamServer::new(ServerConfig {
        workers: 2,
        obs: ObsConfig {
            enabled: true,
            tenant: None, // overwritten per tenant
            registry: Some(Arc::clone(&registry)),
        },
        ..Default::default()
    });
    let tenants = ["obs-test-mt-alpha", "obs-test-mt-beta"];
    let ids: Vec<_> = tenants
        .iter()
        .map(|name| server.add_tenant(*name, MaterializingSink::new()))
        .collect();
    for wave in 0..8i64 {
        let base = wave * 32;
        for &id in &ids {
            for k in 0..6i64 {
                let t = base + 4 * k;
                server
                    .push_row(id, Side::Left, Fact::single(k), Interval::at(t, t + 9), 0.5)
                    .unwrap();
                server
                    .push_row(
                        id,
                        Side::Right,
                        Fact::single(k),
                        Interval::at(t + 1, t + 7),
                        0.4,
                    )
                    .unwrap();
            }
        }
        for result in server.advance_all(base + 16) {
            result.unwrap();
        }
    }
    for result in server.finish_all() {
        result.unwrap();
    }
    for name in tenants {
        let labels = [("tenant", name)];
        assert!(
            registry.counter("tp_advances_total", &labels).get() >= 8,
            "{name}: advances not counted under the tenant label"
        );
        assert!(
            registry.histogram("tp_wave_advance_ns", &labels).count() >= 8,
            "{name}: wave latency histogram empty"
        );
        let ctx = ctx_id(name);
        let spans: Vec<SpanEvent> = snapshot_spans()
            .into_iter()
            .filter(|e| e.ctx == ctx)
            .collect();
        assert!(
            spans.iter().any(|e| e.cat == "advance"),
            "{name}: no advance spans attributed to the tenant"
        );
        let trace = chrome_trace_json(&spans);
        json::validate(&trace).expect("per-tenant trace must parse");
        assert!(
            trace.contains(name),
            "{name}: trace args lost the tenant label"
        );
    }
}

// ---------------------------------------------------------------------------
// finish() on a drained engine reports real posture, not defaults.
// ---------------------------------------------------------------------------

#[test]
fn finish_on_drained_engine_reports_live_posture() {
    let mut vars = VarTable::new();
    let mut engine = tp_stream::StreamEngine::new(EngineConfig {
        reclaim: Some(ReclaimConfig::default()),
        ..Default::default()
    });
    let mut sink = MaterializingSink::new();
    for k in 0..40i64 {
        let t = 4 * k;
        let id = vars.register(format!("v{k}"), 0.5).unwrap();
        let scope = engine.enter_arena();
        let tuple = TpTuple::new(Fact::single(k), Lineage::var(id), Interval::at(t, t + 9));
        engine.push(Side::Left, tuple);
        drop(scope);
    }
    // Drain everything in one advance just past the data — the freshly
    // sealed segment is still inside the keep window, so the arena holds
    // live nodes — then finish on the now-empty engine: the empty path
    // must still report the watermark, carried counts, index occupancy,
    // and live arena posture instead of a default struct.
    engine.advance(170, &mut sink).unwrap();
    let stats = engine.finish(&mut sink).unwrap();
    assert_eq!(stats.watermark, 170, "empty finish lost the watermark");
    assert_eq!(stats.carried, [0, 0]);
    assert_eq!(stats.windows, 0, "nothing left to release");
    assert!(
        stats.arena_live_nodes > 0,
        "reclaim-mode finish must report live arena nodes"
    );
    assert!(
        stats.arena_resident_bytes > 0,
        "reclaim-mode finish must report resident arena bytes"
    );
}
