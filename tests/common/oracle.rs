//! The differential oracle: one reusable stream-vs-batch equivalence
//! checker shared by every streaming/reclamation test.
//!
//! "Equivalent" means the full contract, not just tuple sets:
//!
//! 1. **tuples** — same facts and intervals in canonical `(F, Ts)` order;
//! 2. **lineage** — identical interned handles (for same-arena
//!    comparisons) or identical formulas after tree re-interning (for
//!    reclaim-mode streams whose arena is private);
//! 3. **marginals** — every output tuple valuates to the same probability
//!    on both sides.
//!
//! Before this module, `tests/stream_props.rs` and `tests/arena_reclaim.rs`
//! each carried an ad-hoc copy of these loops; they now call in here, as do
//! the multi-tenant and edge-case suites.

use tpdb::prelude::*;

use tp_stream::{CollectingSink, MaterializingSink};

/// Asserts the full three-way equivalence (tuples, lineage, marginals) of
/// a streamed result relation with its batch twin. `ctx` names the case in
/// failure messages.
pub fn assert_relation_equivalence(
    streamed: &TpRelation,
    batch: &TpRelation,
    vars: &VarTable,
    ctx: &str,
) {
    let streamed = streamed.canonicalized();
    let batch = batch.canonicalized();
    assert_eq!(streamed, batch, "{ctx}: streamed != batch");
    // Tuple equality already compares interned lineage handles; valuating
    // both sides additionally proves the handles resolve to the same
    // marginals under `vars` (the acceptance criterion's wording).
    for (st, bt) in streamed.iter().zip(batch.iter()) {
        let ps = prob::marginal(&st.lineage, vars).unwrap();
        let pb = prob::marginal(&bt.lineage, vars).unwrap();
        assert!(
            (ps - pb).abs() < 1e-12,
            "{ctx}: marginal mismatch {ps} vs {pb} for {st}"
        );
    }
}

/// Asserts that a [`CollectingSink`]'s materialized result equals batch
/// LAWA on `(r, s)` for all three set operations — the same-arena oracle
/// (plain engines interning into the global arena).
pub fn assert_stream_matches_batch(
    sink: &CollectingSink,
    r: &TpRelation,
    s: &TpRelation,
    vars: &VarTable,
) {
    for op in SetOp::ALL {
        assert_relation_equivalence(&sink.relation(op), &apply(op, r, s), vars, &format!("{op}"));
    }
}

/// Asserts that a [`MaterializingSink`]'s delta log replays to the batch
/// result for all three set operations — the reclaim-mode oracle: the
/// stream ran in a private arena whose segments may be retired, so its
/// deltas were materialized as trees and are re-interned into the
/// *current* arena here (identical formulas ⇒ identical handles there).
pub fn assert_materialized_matches_batch(
    sink: &MaterializingSink,
    r: &TpRelation,
    s: &TpRelation,
    vars: &VarTable,
) {
    let streamed = sink.replay();
    for op in SetOp::ALL {
        assert_relation_equivalence(
            &streamed.relation(op),
            &apply(op, r, s),
            vars,
            &format!("{op} (reclaiming)"),
        );
    }
}

/// Asserts that a marginal computed in a (possibly reclaiming) subject
/// arena matches the formula's tree shape re-interned into the control
/// (current, usually global) arena — the single-formula differential
/// check of the arena-reclamation and var-registry suites. Two separate
/// `VarTable`s with identical probabilities are required because a table's
/// valuation cache is keyed by arena refs and must never serve two arenas.
/// `tol` loosens the comparison for backends with their own rounding
/// (e.g. BDD-based valuation).
pub fn assert_formula_matches_control(
    subject_marginal: f64,
    tree: &LineageTree,
    control_vars: &VarTable,
    tol: f64,
) {
    let control_lineage = Lineage::from_tree(tree); // current arena
    let control = prob::exact(&control_lineage, control_vars).unwrap();
    assert!(
        (subject_marginal - control).abs() < tol,
        "marginal diverged from control arena: {subject_marginal} vs {control}"
    );
}

/// Asserts two delta logs are **byte-identical**: same op, fact, interval
/// boundaries, delta kind, lineage (as arena-independent trees) — and the
/// same order. This is the strongest stream-equivalence statement the
/// suite makes: the two engines *behaved* identically, not merely
/// converged to the same relation. The region-parallel differential tests
/// use it to pin a sharded advance to the sequential one.
pub fn assert_delta_logs_identical(a: &MaterializingSink, b: &MaterializingSink, ctx: &str) {
    for (i, (da, db)) in a.deltas.iter().zip(&b.deltas).enumerate() {
        assert_eq!(da, db, "{ctx}: delta #{i} diverged");
    }
    assert_eq!(
        a.deltas.len(),
        b.deltas.len(),
        "{ctx}: {} vs {} deltas",
        a.deltas.len(),
        b.deltas.len()
    );
}

/// Asserts a memory plateau: the peak of the second half of `samples`
/// (steady state) must stay within `factor`× the peak of the first
/// `warmup` samples (the one-window footprint). Returns the ratio.
pub fn assert_plateau(samples: &[usize], warmup: usize, factor: f64, what: &str) -> f64 {
    assert!(!samples.is_empty(), "{what}: no samples collected");
    let warmup = warmup.clamp(1, samples.len());
    let one_window = samples[..warmup].iter().copied().max().unwrap().max(1);
    let steady = samples[samples.len() / 2..]
        .iter()
        .copied()
        .max()
        .unwrap_or(0);
    let ratio = steady as f64 / one_window as f64;
    assert!(
        ratio <= factor,
        "{what}: no plateau — one-window {one_window}, steady-state {steady} \
         ({ratio:.2}× > {factor}×; samples {samples:?})"
    );
    ratio
}
