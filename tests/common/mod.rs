#![allow(dead_code)]

//! Shared helpers for the integration tests: random duplicate-free relation
//! generation (proptest raw input + deterministic repair), the paper's
//! running-example relations, and the stream-vs-batch differential oracle
//! ([`oracle`]).

pub mod oracle;

use proptest::prelude::*;
use tpdb::prelude::*;

/// Raw tuple description produced by proptest: `(fact id, start, length)`.
pub type RawTuple = (u8, i64, i64);

/// Strategy for a raw relation over a small domain (keeps the snapshot
/// oracle affordable).
pub fn arb_raw_relation(max_tuples: usize) -> impl Strategy<Value = Vec<RawTuple>> {
    prop::collection::vec((0u8..4, 0i64..40, 1i64..8), 0..=max_tuples)
}

/// Repairs raw tuples into a duplicate-free relation: per fact, tuples are
/// laid out greedily (sorted by start; an overlapping tuple is shifted to
/// start at the previous end, preserving its length).
pub fn build_relation(prefix: &str, raw: &[RawTuple], vars: &mut VarTable) -> TpRelation {
    use std::collections::BTreeMap;
    let mut per_fact: BTreeMap<u8, Vec<(i64, i64)>> = BTreeMap::new();
    for &(f, s, len) in raw {
        per_fact.entry(f).or_default().push((s, len));
    }
    let mut rows = Vec::new();
    for (f, mut items) in per_fact {
        items.sort_unstable();
        let mut cursor = i64::MIN;
        for (s, len) in items {
            let start = s.max(cursor);
            let end = start + len;
            cursor = end;
            rows.push((Fact::single(f as i64), Interval::at(start, end), 0.5));
        }
    }
    TpRelation::base(prefix, rows, vars).expect("repair produces duplicate-free rows")
}

/// The supermarket relations of the paper's Fig. 1a, behind a [`Database`].
pub fn supermarket_db() -> Database {
    let mut db = Database::new();
    db.add_base_relation(
        "a",
        vec![
            (Fact::single("milk"), Interval::at(2, 10), 0.3),
            (Fact::single("chips"), Interval::at(4, 7), 0.8),
            (Fact::single("dates"), Interval::at(1, 3), 0.6),
        ],
    )
    .unwrap();
    db.add_base_relation(
        "b",
        vec![
            (Fact::single("milk"), Interval::at(5, 9), 0.6),
            (Fact::single("chips"), Interval::at(3, 6), 0.9),
        ],
    )
    .unwrap();
    db.add_base_relation(
        "c",
        vec![
            (Fact::single("milk"), Interval::at(1, 4), 0.6),
            (Fact::single("milk"), Interval::at(6, 8), 0.7),
            (Fact::single("chips"), Interval::at(4, 5), 0.7),
            (Fact::single("chips"), Interval::at(7, 9), 0.8),
        ],
    )
    .unwrap();
    db
}
