//! Property-based validation of the extended operators (join, projection,
//! parallel execution) against independent oracles, plus BDD/Shannon
//! agreement on real query lineage.

mod common;

use common::{arb_raw_relation, build_relation};
use proptest::prelude::*;
use tpdb::core::bdd;
use tpdb::core::ops::{apply_parallel, join, project};
use tpdb::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn join_matches_pairwise_oracle(
        raw_r in arb_raw_relation(15),
        raw_s in arb_raw_relation(15),
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        let out = join(&r, &s, &[0], &[0]);
        // Oracle: enumerate pairs.
        let mut expected = 0usize;
        for a in r.iter() {
            for b in s.iter() {
                if a.fact == b.fact && a.interval.overlaps(&b.interval) {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(out.len(), expected);
        prop_assert!(out.check_duplicate_free().is_ok());
        // Join of duplicate-free bases yields 1OF conjunctions.
        prop_assert!(out.iter().all(|t| t.lineage.is_one_occurrence_form()));
    }

    #[test]
    fn join_on_all_attrs_equals_intersection(
        raw_r in arb_raw_relation(15),
        raw_s in arb_raw_relation(15),
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        let via_join = join(&r, &s, &[0], &[0]).canonicalized();
        let via_intersect = intersect(&r, &s).canonicalized();
        prop_assert_eq!(via_join.len(), via_intersect.len());
        for (a, b) in via_join.iter().zip(via_intersect.iter()) {
            prop_assert_eq!(&a.fact, &b.fact);
            prop_assert_eq!(a.interval, b.interval);
            prop_assert_eq!(&a.lineage, &b.lineage);
        }
    }

    #[test]
    fn parallel_matches_sequential(
        raw_r in arb_raw_relation(20),
        raw_s in arb_raw_relation(20),
        threads in 1usize..6,
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        for op in SetOp::ALL {
            let sequential = apply(op, &r, &s).canonicalized();
            let parallel = apply_parallel(op, &r, &s, threads).canonicalized();
            prop_assert_eq!(&parallel, &sequential, "op {} threads {}", op, threads);
        }
    }

    #[test]
    fn projection_identity_and_coverage(
        raw in arb_raw_relation(20),
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw, &mut vars);
        // Identity projection of a single-attribute relation.
        let out = project(&r, &[0]);
        prop_assert_eq!(out.canonicalized(), r.canonicalized());
        // Projection to arity 0: coverage equals the union of all facts'
        // coverage.
        let collapsed = project(&r, &[]);
        prop_assert!(collapsed.check_duplicate_free().is_ok());
        let all_cov: IntervalSet = r.iter().map(|t| t.interval).collect();
        let out_cov: IntervalSet = collapsed.iter().map(|t| t.interval).collect();
        prop_assert_eq!(out_cov, all_cov);
    }

    #[test]
    fn bdd_agrees_with_shannon_on_query_lineage(
        raw_r in arb_raw_relation(10),
        raw_s in arb_raw_relation(10),
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        // Repeating composition: (r ∪ s) − (r ∩ s).
        let out = except(&union(&r, &s), &intersect(&r, &s));
        for t in out.iter() {
            let a = bdd::probability(&t.lineage, &vars).unwrap();
            let b = prob::exact(&t.lineage, &vars).unwrap();
            prop_assert!((a - b).abs() < 1e-9, "{}: {} vs {}", t.lineage, a, b);
        }
    }
}

#[test]
fn parallel_on_generated_workloads() {
    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(
        &tp_workloads::SynthConfig::with_facts(20_000, 50, 9),
        &mut vars,
    );
    for op in SetOp::ALL {
        let sequential = apply(op, &r, &s);
        let parallel = apply_parallel(op, &r, &s, 4);
        assert_eq!(parallel.canonicalized(), sequential.canonicalized(), "{op}");
    }
}
