//! Failure injection and boundary conditions across the whole stack:
//! pathological interval layouts, extreme coordinates, degenerate relations
//! and invalid inputs — everything must either work or fail with a precise
//! error, never panic or silently corrupt.

mod common;

use tp_baselines::Approach;
use tpdb::prelude::*;

fn base(rows: Vec<(&str, i64, i64)>, vars: &mut VarTable) -> TpRelation {
    TpRelation::base(
        "r",
        rows.into_iter()
            .map(|(f, s, e)| (Fact::single(f), Interval::at(s, e), 0.5)),
        vars,
    )
    .unwrap()
}

#[test]
fn single_point_intervals() {
    let mut vars = VarTable::new();
    let r = base(vec![("x", 5, 6)], &mut vars);
    let s = base(vec![("x", 5, 6), ("x", 6, 7)], &mut vars);
    let out = intersect(&r, &s);
    assert_eq!(out.len(), 1);
    assert_eq!(out.tuples()[0].interval, Interval::at(5, 6));
    let out = union(&r, &s).canonicalized();
    assert_eq!(out.len(), 2); // [5,6) or-merged, [6,7) alone
    let oracle = set_op_by_snapshots(SetOp::Union, &r, &s).canonicalized();
    assert_eq!(out, oracle);
}

#[test]
fn negative_and_large_coordinates() {
    let mut vars = VarTable::new();
    let big = 1_000_000_000_000i64;
    let r = base(vec![("x", -big, -big + 10), ("x", big, big + 5)], &mut vars);
    let s = base(vec![("x", -big + 5, big + 2)], &mut vars);
    for op in SetOp::ALL {
        let fast = apply(op, &r, &s);
        assert!(fast.check_duplicate_free().is_ok(), "op {op}");
        // Spot-check coverage at the extremes.
        if op == SetOp::Intersect {
            assert!(
                fast.iter().any(|t| t.interval.contains(-big + 7)),
                "left overlap found"
            );
            assert!(
                fast.iter().any(|t| t.interval.contains(big)),
                "right overlap"
            );
        }
    }
    // OIP and TI handle the same coordinates.
    let via_oip = Approach::Oip.run(SetOp::Intersect, &r, &s).unwrap();
    let via_ti = Approach::Ti.run(SetOp::Intersect, &r, &s).unwrap();
    let reference = intersect(&r, &s).canonicalized();
    assert_eq!(via_oip.canonicalized(), reference);
    assert_eq!(via_ti.canonicalized(), reference);
}

#[test]
fn long_adjacent_chains_stay_distinct() {
    // 1000 adjacent tuples of the same fact: no merging (different
    // lineages), linear output for union with an overlapping partner.
    let mut vars = VarTable::new();
    let chain: Vec<(Fact, Interval, f64)> = (0..1000)
        .map(|i| (Fact::single("x"), Interval::at(i, i + 1), 0.5))
        .collect();
    let r = TpRelation::base("r", chain, &mut vars).unwrap();
    let s = base(vec![("x", 0, 1000)], &mut vars);
    let out = union(&r, &s);
    assert_eq!(out.len(), 1000); // each unit interval gets its own or-lineage
    assert!(out.satisfies_change_preservation());
    let diff = except(&s, &r);
    assert_eq!(diff.len(), 1000);
    // Every difference tuple references the single s-tuple plus one r-tuple.
    assert!(diff.iter().all(|t| t.lineage.vars().len() == 2));
}

#[test]
fn empty_fact_arity_zero() {
    // Facts with no attributes are legal: a single global timeline.
    let mut vars = VarTable::new();
    let f = Fact::new(Vec::<Value>::new());
    let r = TpRelation::base("r", vec![(f.clone(), Interval::at(1, 5), 0.5)], &mut vars).unwrap();
    let s = TpRelation::base("s", vec![(f.clone(), Interval::at(3, 8), 0.5)], &mut vars).unwrap();
    let out = intersect(&r, &s);
    assert_eq!(out.len(), 1);
    assert_eq!(
        out.tuples()[0].interval,
        Interval::at(3, 8).intersect(&Interval::at(1, 5)).unwrap()
    );
}

#[test]
fn interval_constructor_rejects_garbage() {
    assert!(Interval::new(5, 5).is_err());
    assert!(Interval::new(7, 2).is_err());
    assert!(Interval::new(i64::MIN, 0).is_err());
    assert!(Interval::new(0, i64::MAX).is_err());
}

#[test]
fn duplicate_free_validation_catches_all_shapes() {
    let mk = |rows: Vec<(i64, i64)>| -> tpdb::core::error::Result<TpRelation> {
        let mut vars = VarTable::new();
        TpRelation::base(
            "r",
            rows.into_iter()
                .map(|(s, e)| (Fact::single("x"), Interval::at(s, e), 0.5)),
            &mut vars,
        )
    };
    assert!(mk(vec![(1, 5), (4, 8)]).is_err()); // partial overlap
    assert!(mk(vec![(1, 8), (2, 3)]).is_err()); // containment
    assert!(mk(vec![(1, 5), (1, 5)]).is_err()); // identical
    assert!(mk(vec![(1, 5), (5, 8)]).is_ok()); // adjacency is fine
}

#[test]
fn probability_domain_is_enforced_everywhere() {
    let mut db = Database::new();
    for bad in [0.0, -0.1, 1.00001, f64::NAN, f64::INFINITY] {
        let res = db.add_base_relation("r", vec![(Fact::single("x"), Interval::at(1, 2), bad)]);
        assert!(matches!(res, Err(Error::InvalidProbability(_))), "{bad}");
    }
    // Exactly 1.0 is legal (certain tuples).
    assert!(db
        .add_base_relation("ok", vec![(Fact::single("x"), Interval::at(1, 2), 1.0)])
        .is_ok());
}

#[test]
fn operations_on_certain_tuples() {
    // p = 1 tuples: difference lineage still references them; probability
    // of r − s where s is certain collapses to 0 over the overlap.
    let mut db = Database::new();
    db.add_base_relation("r", vec![(Fact::single("x"), Interval::at(1, 9), 0.8)])
        .unwrap();
    db.add_base_relation("s", vec![(Fact::single("x"), Interval::at(1, 9), 1.0)])
        .unwrap();
    let out = except(db.relation("r").unwrap(), db.relation("s").unwrap());
    assert_eq!(out.len(), 1);
    let p = prob::marginal(&out.tuples()[0].lineage, db.vars()).unwrap();
    assert!(
        p.abs() < 1e-12,
        "P(r ∧ ¬s) with certain s must be 0, got {p}"
    );
}

#[test]
fn interleaved_facts_across_relations() {
    // r's facts and s's facts only partially intersect; LAWA must walk both
    // fact sequences without skipping or stalling.
    let mut vars = VarTable::new();
    let r = base(vec![("a", 1, 4), ("c", 2, 6), ("e", 0, 3)], &mut vars);
    let s = base(vec![("b", 1, 4), ("c", 4, 9), ("d", 0, 5)], &mut vars);
    for op in SetOp::ALL {
        let fast = apply(op, &r, &s).canonicalized();
        let oracle = set_op_by_snapshots(op, &r, &s).canonicalized();
        assert_eq!(fast, oracle, "op {op}");
    }
    // Union sees all five facts.
    assert_eq!(union(&r, &s).distinct_facts().len(), 5);
}

#[test]
fn massive_gap_between_tuples() {
    let mut vars = VarTable::new();
    let r = base(vec![("x", 0, 1), ("x", 1_000_000, 1_000_001)], &mut vars);
    let s = base(vec![("x", 500_000, 500_001)], &mut vars);
    let out = union(&r, &s);
    assert_eq!(out.len(), 3); // no window materializes the gaps
    let oracle_len = 3;
    assert_eq!(out.len(), oracle_len);
}

#[test]
fn repeated_composition_stays_sound() {
    // Fold 8 alternating ops over the same pair: invariants hold at every
    // level even as lineage nests deeply.
    let mut vars = VarTable::new();
    let r = base(vec![("x", 0, 10), ("y", 5, 9)], &mut vars);
    let s = base(vec![("x", 4, 14), ("y", 0, 6)], &mut vars);
    let mut acc = r.clone();
    for (i, op) in [SetOp::Union, SetOp::Except, SetOp::Intersect]
        .iter()
        .cycle()
        .take(8)
        .enumerate()
    {
        acc = apply(*op, &acc, &s);
        assert!(acc.check_duplicate_free().is_ok(), "step {i}");
        assert!(acc.satisfies_change_preservation(), "step {i}");
    }
    for t in acc.iter() {
        let p = prob::marginal(&t.lineage, &vars).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }
}

#[test]
fn query_parser_rejects_malformed_input_without_panic() {
    for text in [
        "",
        "(",
        ")",
        "union union",
        "a except",
        "a (b)",
        "a ∪",
        "((a)",
        "a intersect (b union)",
        "∩",
        "123abc!",
    ] {
        assert!(Query::parse(text).is_err(), "{text:?} should fail");
    }
}
