//! Property tests for the hash-consed lineage arena: on randomized formulas,
//! the arena-backed implementations (memoized `prob::marginal`, O(1)
//! metadata, variable-set extraction) must agree with independent
//! computations on the legacy recursive [`LineageTree`], and hash-consing
//! must make structural equality coincide with handle equality
//! (`a == b ⇔ ref(a) == ref(b)`).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tpdb::prelude::*;

/// Random formula over `vars` variables with ids offset by `base` (distinct
/// offsets keep tests from trivially sharing every node).
fn random_formula(rng: &mut StdRng, base: u64, nvars: u64, depth: usize) -> Lineage {
    if depth == 0 || rng.random::<f64>() < 0.3 {
        return Lineage::var(TupleId(base + rng.random_range(0..nvars)));
    }
    match rng.random_range(0..3u32) {
        0 => random_formula(rng, base, nvars, depth - 1).negate(),
        1 => Lineage::and(
            &random_formula(rng, base, nvars, depth - 1),
            &random_formula(rng, base, nvars, depth - 1),
        ),
        _ => Lineage::or(
            &random_formula(rng, base, nvars, depth - 1),
            &random_formula(rng, base, nvars, depth - 1),
        ),
    }
}

/// Registers probabilities for `[base, base + nvars)` in a fresh table.
/// Variable ids in a `VarTable` are dense from 0, so the filler below `base`
/// gets arbitrary probabilities too.
fn table_for(rng: &mut StdRng, base: u64, nvars: u64) -> VarTable {
    let mut vt = VarTable::new();
    for i in 0..(base + nvars) {
        vt.register(format!("t{i}"), rng.random_range(0.05..1.0))
            .unwrap();
    }
    vt
}

/// Ground truth by possible-world enumeration over the legacy tree.
fn brute_force_tree(tree: &LineageTree, vars: &VarTable) -> f64 {
    let ids: Vec<TupleId> = tree.vars().into_iter().collect();
    assert!(ids.len() <= 12, "brute force domain too large");
    let mut total = 0.0;
    for world in 0..(1u64 << ids.len()) {
        let assign = |id: TupleId| {
            let idx = ids.iter().position(|&x| x == id).unwrap();
            world >> idx & 1 == 1
        };
        if tree.eval(&assign) {
            let mut wp = 1.0;
            for (idx, id) in ids.iter().enumerate() {
                let p = vars.prob(*id).unwrap();
                wp *= if world >> idx & 1 == 1 { p } else { 1.0 - p };
            }
            total += wp;
        }
    }
    total
}

#[test]
fn arena_marginal_agrees_with_legacy_tree() {
    let mut rng = StdRng::seed_from_u64(0xA12E_4A01);
    for case in 0..120u64 {
        let nvars = rng.random_range(1..6u64);
        let base = 1000 + case * 16;
        let vars = table_for(&mut rng, base, nvars);
        let l = random_formula(&mut rng, base, nvars, 5);
        let tree = l.to_tree();
        let truth = brute_force_tree(&tree, &vars);
        // The dispatching arena-backed valuation is exact for every shape.
        let got = prob::marginal(&l, &vars).unwrap();
        assert!(
            (got - truth).abs() < 1e-9,
            "case {case}, formula {l}: arena {got} vs tree {truth}"
        );
        // And a second call (served from the memo) returns the same value.
        let again = prob::marginal(&l, &vars).unwrap();
        assert_eq!(got, again, "memoized revaluation changed the result");
        // On 1OF formulas the legacy un-memoized tree walker agrees too.
        if l.is_one_occurrence_form() {
            let legacy = tree.independent_prob(&vars).unwrap();
            assert!(
                (got - legacy).abs() < 1e-9,
                "case {case}: {got} vs {legacy}"
            );
        }
    }
}

#[test]
fn arena_variable_sets_agree_with_legacy_tree() {
    let mut rng = StdRng::seed_from_u64(0xA12E_4A02);
    for case in 0..200u64 {
        let nvars = rng.random_range(1..8u64);
        let base = 40_000 + case * 16;
        let l = random_formula(&mut rng, base, nvars, 6);
        let tree = l.to_tree();
        assert_eq!(l.vars(), tree.vars(), "case {case}: variable sets differ");
        assert_eq!(
            l.var_occurrences(),
            tree.var_occurrences(),
            "case {case}: occurrence counts differ"
        );
        assert_eq!(l.size(), tree.size(), "case {case}: sizes differ");
        assert_eq!(
            l.is_one_occurrence_form(),
            tree.is_one_occurrence_form(),
            "case {case}: 1OF flags differ for {l}"
        );
    }
}

#[test]
fn arena_eval_agrees_with_legacy_tree() {
    let mut rng = StdRng::seed_from_u64(0xA12E_4A03);
    for case in 0..100u64 {
        let nvars = rng.random_range(1..6u64);
        let base = 70_000 + case * 8;
        let l = random_formula(&mut rng, base, nvars, 5);
        let tree = l.to_tree();
        for world in 0u64..(1 << nvars) {
            let assign = |id: TupleId| world >> (id.0 - base) & 1 == 1;
            assert_eq!(
                l.eval(&assign),
                tree.eval(&assign),
                "case {case}, world {world:b}, formula {l}"
            );
        }
    }
}

#[test]
fn hash_consing_equality_iff_ref_equality() {
    let mut formulas: Vec<Lineage> = Vec::new();
    // Independently rebuilt structurally identical formulas intern to the
    // same handle: rebuild from the same sub-seed twice.
    for case in 0..60u64 {
        let seed = 0xBEEF + case;
        let base = 90_000 + (case % 7) * 4; // overlapping var ranges on purpose
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let a = random_formula(&mut r1, base, 4, 4);
        let b = random_formula(&mut r2, base, 4, 4);
        assert_eq!(a, b, "identical construction must be equal");
        assert_eq!(a.node_ref(), b.node_ref(), "equal formulas share one node");
        formulas.push(a);
    }
    // Across arbitrary pairs: handle equality ⇔ structural (tree) equality.
    for (i, a) in formulas.iter().enumerate() {
        for b in formulas.iter().skip(i) {
            let refs_equal = a.node_ref() == b.node_ref();
            let handles_equal = a == b;
            let trees_equal = a.to_tree() == b.to_tree();
            assert_eq!(refs_equal, handles_equal);
            assert_eq!(
                handles_equal, trees_equal,
                "handle equality must coincide with structural equality: {a} vs {b}"
            );
        }
    }
}

#[test]
fn tree_round_trip_is_identity_on_random_formulas() {
    let mut rng = StdRng::seed_from_u64(0xA12E_4A05);
    for case in 0..100u64 {
        let base = 120_000 + case * 8;
        let l = random_formula(&mut rng, base, 5, 5);
        assert_eq!(Lineage::from_tree(&l.to_tree()), l, "case {case}");
    }
}

#[test]
fn query_lineage_valuation_matches_tree_on_real_operations() {
    // End to end: run the three set operations on random relations, then
    // check every output tuple's arena marginal against the tree oracle.
    let mut rng = StdRng::seed_from_u64(0xA12E_4A06);
    for _case in 0..10 {
        let mut vars = VarTable::new();
        let mut rows = |prefix: &str, vars: &mut VarTable| {
            let n = rng.random_range(1..12usize);
            let mut out = Vec::new();
            let mut cursor = 0i64;
            for _ in 0..n {
                cursor += rng.random_range(0..4i64);
                let len = rng.random_range(1..6i64);
                out.push((
                    Fact::single("f"),
                    Interval::at(cursor, cursor + len),
                    rng.random_range(0.1..1.0),
                ));
                cursor += len;
            }
            TpRelation::base(prefix, out, vars).unwrap()
        };
        let r = rows("r", &mut vars);
        let s = rows("s", &mut vars);
        for op in SetOp::ALL {
            for t in apply(op, &r, &s).iter() {
                let got = prob::marginal(&t.lineage, &vars).unwrap();
                let truth = brute_force_tree(&t.lineage.to_tree(), &vars);
                assert!(
                    (got - truth).abs() < 1e-9,
                    "{op}: {} → {got} vs {truth}",
                    t.lineage
                );
            }
        }
    }
}
