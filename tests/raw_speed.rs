//! The raw-speed pass differentials (PR 8): the three fast paths must be
//! invisible except in wall time.
//!
//! * **Columnar marginal kernel** — `prob::marginal_batch` must match the
//!   memoized per-root evaluator to 1e-12 on the output of every workload
//!   generator the harness owns.
//! * **Tree-reduction stitch** — a region-parallel engine at 1/2/4/8
//!   workers with arbitrary pinned region plans must emit a delta log
//!   byte-identical to the sequential engine.
//! * **Interior-segment reclamation** — random interior retire
//!   interleavings never invalidate live refs and post-retire marginals
//!   equal a never-retired control; at the engine layer, interior mode is
//!   delta-identical to prefix mode and no-reclaim across sequential ×
//!   parallel, while its steady-state residency under the immortal-facts
//!   workload stays strictly below the prefix-retire baseline.

mod common;

use common::oracle::{assert_delta_logs_identical, assert_formula_matches_control};
use common::{arb_raw_relation, build_relation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tp_core::arena::{LineageArena, SegmentState};
use tp_stream::{
    EngineConfig, MaterializingSink, ParallelConfig, ReclaimConfig, ReplayConfig, ReplayEvent,
    StreamEngine, StreamScript,
};
use tp_workloads::{
    immortal_facts_stream, meteo_stream, skewed_synth_stream, sliding_synth_stream, synth_stream,
    webkit_stream, ImmortalConfig, MeteoConfig, SkewedConfig, SlidingConfig, StreamWorkload,
    SynthConfig, WebkitConfig,
};
use tpdb::prelude::*;

/// Every workload generator the harness owns, small enough for CI.
fn all_generators(vars: &mut VarTable) -> Vec<(&'static str, StreamWorkload)> {
    let replay = ReplayConfig {
        lateness: 40,
        advance_every: 24,
        seed: 7,
    };
    vec![
        (
            "synth",
            synth_stream(&SynthConfig::with_facts(400, 5, 11), &replay, vars),
        ),
        (
            "sliding",
            sliding_synth_stream(
                &SlidingConfig {
                    epochs: 12,
                    ..Default::default()
                },
                vars,
            ),
        ),
        (
            "skewed",
            skewed_synth_stream(
                &SkewedConfig {
                    epochs: 8,
                    per_epoch: 40,
                    ..Default::default()
                },
                vars,
            ),
        ),
        (
            "meteo",
            meteo_stream(
                &MeteoConfig {
                    stations: 6,
                    tuples: 240,
                    ..Default::default()
                },
                6 * 600,
                &ReplayConfig {
                    lateness: 600,
                    advance_every: 32,
                    seed: 5,
                },
                vars,
            ),
        ),
        (
            "webkit",
            webkit_stream(
                &WebkitConfig {
                    files: 40,
                    tuples: 240,
                    ..Default::default()
                },
                10_000,
                &ReplayConfig {
                    lateness: 2_000,
                    advance_every: 48,
                    seed: 9,
                },
                vars,
            ),
        ),
        (
            "immortal",
            immortal_facts_stream(
                &ImmortalConfig {
                    epochs: 12,
                    ..Default::default()
                },
                vars,
            ),
        ),
    ]
}

#[test]
fn columnar_marginals_match_memoized_on_every_generator() {
    let mut vars = VarTable::new();
    for (name, w) in all_generators(&mut vars) {
        for op in SetOp::ALL {
            let out = apply(op, &w.r, &w.s);
            let lineages: Vec<Lineage> = out.iter().map(|t| t.lineage).collect();
            if lineages.is_empty() {
                continue;
            }
            // Memoized per-root walk first (it may populate the cache);
            // the batch kernel must agree regardless of cache state.
            let expect: Vec<f64> = lineages
                .iter()
                .map(|l| prob::marginal(l, &vars).unwrap())
                .collect();
            let got = prob::marginal_batch(&lineages, &vars).unwrap();
            for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
                assert!(
                    (e - g).abs() <= 1e-12,
                    "{name}/{op}: root #{i} diverged: memoized {e} vs columnar {g}"
                );
            }
            // And again on a cold cache, batch first.
            vars.clear_valuation_cache();
            let cold = prob::marginal_batch(&lineages, &vars).unwrap();
            for (i, (e, g)) in expect.iter().zip(&cold).enumerate() {
                assert!(
                    (e - g).abs() <= 1e-12,
                    "{name}/{op}: cold root #{i} diverged: {e} vs {g}"
                );
            }
        }
    }
}

/// Strategy for arbitrary cut vectors (same domain as the generated
/// relations' starts, plus out-of-span cuts).
fn arb_cuts() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-10i64..60, 0..=9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stitch_reduction_is_delta_identical_at_every_worker_count(
        raw_r in arb_raw_relation(20),
        raw_s in arb_raw_relation(20),
        cuts in arb_cuts(),
        advance_every in 1usize..32,
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        let script = StreamScript::from_pair(
            &r,
            &s,
            &ReplayConfig {
                lateness: 3,
                advance_every,
                seed: 0xD00DAD,
            },
        );
        let run = |parallel: Option<ParallelConfig>| {
            let mut sink = MaterializingSink::new();
            script.run_into(
                EngineConfig {
                    parallel,
                    ..Default::default()
                },
                &mut sink,
            );
            sink
        };
        let sequential = run(None);
        for workers in [1usize, 2, 4, 8] {
            let sharded = run(Some(ParallelConfig {
                workers,
                min_tuples: 0,
                cuts: Some(cuts.clone()),
            }));
            assert_delta_logs_identical(
                &sharded,
                &sequential,
                &format!("{workers} workers, cuts {cuts:?}"),
            );
        }
    }
}

/// One reclaiming replay of the immortal-facts workload; returns the delta
/// log, per-advance resident-byte samples, and the (total, interior)
/// retired-segment counts accumulated from `AdvanceStats`.
fn run_immortal(
    w: &StreamWorkload,
    interior: bool,
    parallel: Option<ParallelConfig>,
) -> (MaterializingSink, Vec<usize>, (u64, u64)) {
    let mut engine = StreamEngine::new(EngineConfig {
        reclaim: Some(ReclaimConfig {
            keep_epochs: 2,
            interior,
            ..Default::default()
        }),
        parallel,
        ..Default::default()
    });
    let mut sink = MaterializingSink::new();
    let mut resident = Vec::new();
    let mut retired = (0u64, 0u64);
    for event in &w.script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(wm) => {
                let stats = engine.advance(*wm, &mut sink).unwrap();
                retired.0 += stats.retired_segments;
                retired.1 += stats.interior_retired_segments;
                resident.push(engine.arena_stats().unwrap().resident_bytes);
            }
        }
    }
    let fin = engine.finish(&mut sink).unwrap();
    assert_eq!(
        retired.0 + fin.retired_segments,
        engine.reclaimed().0,
        "AdvanceStats retired_segments must add up to the engine total"
    );
    (sink, resident, retired)
}

#[test]
fn interior_reclaim_is_delta_identical_and_beats_prefix_residency() {
    let mut vars = VarTable::new();
    let w = immortal_facts_stream(
        &ImmortalConfig {
            epochs: 48,
            ..Default::default()
        },
        &mut vars,
    );
    let parallel = Some(ParallelConfig {
        workers: 4,
        min_tuples: 0,
        cuts: None,
    });
    let (seq_interior, interior_resident, (retired, interior_retired)) =
        run_immortal(&w, true, None);
    let (seq_prefix, prefix_resident, (prefix_retired, prefix_interior)) =
        run_immortal(&w, false, None);
    let (par_interior, ..) = run_immortal(&w, true, parallel.clone());
    let (par_prefix, ..) = run_immortal(&w, false, parallel);
    // Retirement scheduling must never change behavior: all four delta
    // logs byte-identical.
    assert_delta_logs_identical(
        &seq_prefix,
        &seq_interior,
        "prefix vs interior (sequential)",
    );
    assert_delta_logs_identical(&par_interior, &seq_interior, "parallel interior");
    assert_delta_logs_identical(&par_prefix, &seq_interior, "parallel prefix");
    common::oracle::assert_materialized_matches_batch(&seq_interior, &w.r, &w.s, &vars);
    // The immortal cohort pins the first sealed segment. Prefix mode
    // therefore retires nothing until the final flush consumes the
    // immortal residuals (one end-of-run burst); interior mode reclaims
    // the dead body segments as it goes, as holes.
    assert_eq!(prefix_interior, 0, "prefix mode must never punch holes");
    let _ = prefix_retired; // only the final burst — compared via residency below
    assert!(
        interior_retired > 10,
        "immortal workload produced only {interior_retired} interior retires"
    );
    assert!(
        retired >= interior_retired,
        "interior retires {interior_retired} exceed total {retired}"
    );
    // ...and its steady-state residency stays strictly below the
    // prefix-retire baseline (the acceptance criterion).
    let steady = |samples: &[usize]| samples[samples.len() / 2..].iter().copied().max().unwrap();
    let (si, sp) = (steady(&interior_resident), steady(&prefix_resident));
    assert!(
        si < sp,
        "interior steady-state residency {si} not below prefix baseline {sp}"
    );
    // Interior residency plateaus despite the immortal pin.
    common::oracle::assert_plateau(&interior_resident, 8, 2.0, "interior reclaim");
}

/// Replays the immortal-facts script through a reclaiming engine with an
/// **attached var registry**, re-registering every arriving tuple's
/// variable into the engine's own table (the push-time registration
/// contract of `ReclaimConfig::vars`). Returns per-advance `live_vars`
/// samples plus the registry and the engine's released-var total.
fn run_immortal_with_registry(
    w: &StreamWorkload,
    src: &VarTable,
    interior: bool,
) -> (Vec<usize>, u64, std::sync::Arc<VarTable>) {
    let vars = std::sync::Arc::new(VarTable::new());
    let mut engine = StreamEngine::new(EngineConfig {
        reclaim: Some(ReclaimConfig {
            keep_epochs: 2,
            interior,
            vars: Some(std::sync::Arc::clone(&vars)),
            ..Default::default()
        }),
        ..Default::default()
    });
    let mut sink = MaterializingSink::new();
    let mut live = Vec::new();
    let mut n = 0u64;
    for event in &w.script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                // Base tuples carry a single-var lineage, so the marginal
                // against the generator's table IS the tuple probability.
                let p = prob::marginal(&t.lineage, src).unwrap();
                let id = vars.register_shared(format!("v{n}"), p).unwrap();
                n += 1;
                let scope = engine.enter_arena();
                let fresh = TpTuple::new(t.fact.clone(), Lineage::var(id), t.interval);
                engine.push(*side, fresh);
                drop(scope);
            }
            ReplayEvent::Advance(wm) => {
                engine.advance(*wm, &mut sink).unwrap();
                live.push(vars.live_vars());
            }
        }
    }
    engine.finish(&mut sink).unwrap();
    (live, engine.reclaimed_vars(), vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The cohort-granular release property: under the immortal-facts
    /// workload the pinned first cohort must NOT hold every later var
    /// cohort resident — interior mode's steady-state `live_vars` stays
    /// strictly below the prefix-release baseline and plateaus, for any
    /// probability seed and immortal-cohort size.
    #[test]
    fn interior_cohort_release_keeps_live_vars_below_prefix_baseline(
        seed in 0u64..1024,
        immortals in 1usize..4,
    ) {
        let mut src = VarTable::new();
        let w = immortal_facts_stream(
            &ImmortalConfig {
                epochs: 40,
                immortals,
                seed,
                ..Default::default()
            },
            &mut src,
        );
        let (interior_live, interior_released, ivars) =
            run_immortal_with_registry(&w, &src, true);
        let (prefix_live, _, _) = run_immortal_with_registry(&w, &src, false);
        prop_assert_eq!(interior_live.len(), prefix_live.len());
        let steady =
            |samples: &[usize]| samples[samples.len() / 2..].iter().copied().max().unwrap();
        let (si, sp) = (steady(&interior_live), steady(&prefix_live));
        prop_assert!(
            si < sp,
            "interior steady-state live_vars {} not below prefix baseline {} \
             (interior {:?} prefix {:?})",
            si, sp, interior_live, prefix_live
        );
        // Interior live_vars plateaus despite the immortal pin...
        common::oracle::assert_plateau(&interior_live, 8, 2.0, "interior live_vars");
        // ...and the engine's release counter agrees with the registry.
        prop_assert!(interior_released > 0, "interior mode released no vars");
        prop_assert_eq!(interior_released, ivars.released_vars());
    }
}

/// One live formula tracked through the interleaving: the reclaiming-arena
/// handle plus the tree shape it must keep agreeing with.
struct LiveFormula {
    lineage: Lineage,
    tree: LineageTree,
}

fn vt(nvars: u64) -> VarTable {
    let mut vt = VarTable::new();
    for i in 0..nvars {
        vt.register(format!("t{i}"), 0.05 + 0.9 * ((i % 13) as f64) / 13.0)
            .unwrap();
    }
    vt
}

#[test]
fn random_interior_retire_interleavings_preserve_live_marginals() {
    // The interior generalization of the arena-reclaim property suite:
    // instead of retiring only below the live frontier, retire ANY sealed
    // segment no live formula's coverage interval `[min_segment, segment]`
    // touches — in random order, holes and all. Live formulas must stay
    // intact and valuate exactly like a never-retired control arena.
    let mut rng = StdRng::seed_from_u64(0x1A7E_121E);
    let mut total_interior = 0usize;
    for _case in 0..10u64 {
        let arena = LineageArena::shared(2);
        let nvars = 24u64;
        let subject_vars = vt(nvars);
        let control_vars = vt(nvars);
        let mut live: Vec<LiveFormula> = Vec::new();
        for _step in 0..240 {
            match rng.random_range(0..100u32) {
                // Intern a fresh var or a combination of live formulas.
                0..=49 => {
                    let _scope = LineageArena::enter(&arena);
                    let fresh = Lineage::var(TupleId(rng.random_range(0..nvars)));
                    let fresh_tree = fresh.to_tree();
                    let (lineage, tree) = if live.is_empty() || rng.random::<bool>() {
                        (fresh, fresh_tree)
                    } else {
                        let pick = &live[rng.random_range(0..live.len())];
                        if rng.random::<bool>() {
                            (
                                Lineage::and(&pick.lineage, &fresh),
                                LineageTree::And(Box::new(pick.tree.clone()), Box::new(fresh_tree)),
                            )
                        } else {
                            (
                                Lineage::or(&pick.lineage, &fresh),
                                LineageTree::Or(Box::new(pick.tree.clone()), Box::new(fresh_tree)),
                            )
                        }
                    };
                    live.push(LiveFormula { lineage, tree });
                }
                // Drop a live formula.
                50..=64 => {
                    if !live.is_empty() {
                        let at = rng.random_range(0..live.len());
                        live.swap_remove(at);
                    }
                }
                // Seal the open segment.
                65..=74 => {
                    let _ = arena.seal();
                }
                // Retire a random DEAD sealed segment — anywhere in the
                // order, not just the prefix.
                75..=89 => {
                    let scope = LineageArena::enter(&arena);
                    let covered: Vec<(u32, u32)> = live
                        .iter()
                        .map(|f| {
                            let r = f.lineage.node_ref();
                            (f.lineage.min_segment().0, r.segment().0)
                        })
                        .collect();
                    let open = arena.open_segment().0;
                    drop(scope);
                    let mut dead: Vec<u32> = (0..open)
                        .filter(|&seg| {
                            arena.segment_state(SegmentId(seg)) == Some(SegmentState::Sealed)
                                && !covered.iter().any(|&(lo, hi)| lo <= seg && seg <= hi)
                        })
                        .collect();
                    if dead.is_empty() {
                        continue;
                    }
                    let at = rng.random_range(0..dead.len());
                    let seg = SegmentId(dead.swap_remove(at));
                    let freed = arena.retire(seg).expect("dead sealed segment must retire");
                    if freed.interior {
                        total_interior += 1;
                    }
                }
                // Spot-check a live formula against the control arena.
                _ => {
                    if !live.is_empty() {
                        let pick = &live[rng.random_range(0..live.len())];
                        let scope = LineageArena::enter(&arena);
                        let subject = prob::exact(&pick.lineage, &subject_vars).unwrap();
                        drop(scope);
                        assert_formula_matches_control(subject, &pick.tree, &control_vars, 1e-12);
                    }
                }
            }
        }
        // Post-retire sweep: every survivor — individually and through
        // the columnar batch kernel — equals the never-retired control.
        let scope = LineageArena::enter(&arena);
        let lineages: Vec<Lineage> = live.iter().map(|f| f.lineage).collect();
        let singles: Vec<f64> = lineages
            .iter()
            .map(|l| prob::marginal(l, &subject_vars).unwrap())
            .collect();
        let batched = prob::marginal_batch(&lineages, &subject_vars).unwrap();
        drop(scope);
        for ((f, single), batch) in live.iter().zip(&singles).zip(&batched) {
            assert!(
                (single - batch).abs() <= 1e-12,
                "columnar diverged from memoized after interior retires: {single} vs {batch}"
            );
            assert_formula_matches_control(*single, &f.tree, &control_vars, 1e-12);
        }
        // The books stay consistent with holes present.
        let stats = arena.stats();
        assert_eq!(
            stats.nodes as u64,
            stats.total_interned - stats.retired_nodes
        );
        assert_eq!(stats.live_segments + stats.retired_segments, stats.segments);
    }
    assert!(
        total_interior > 0,
        "no case ever punched a hole — the schedule generator is degenerate"
    );
}

#[test]
fn arena_stats_reflect_interior_holes() {
    let arena = LineageArena::shared(1);
    let _scope = LineageArena::enter(&arena);
    // Three sealed segments, each holding its own var.
    let keep_lo = Lineage::var(TupleId(0));
    arena.seal();
    let _dead = Lineage::var(TupleId(1));
    arena.seal();
    let keep_hi = Lineage::var(TupleId(2));
    arena.seal();
    let before = arena.stats();
    // Retire the middle segment: an interior hole.
    let freed = arena.retire(SegmentId(1)).unwrap();
    assert!(freed.interior, "segment 1 retired below a resident prefix");
    let after = arena.stats();
    assert_eq!(after.retired_segments, before.retired_segments + 1);
    assert_eq!(after.live_segments, before.live_segments - 1);
    assert!(
        after.resident_bytes < before.resident_bytes,
        "residency ignored the hole: {} vs {}",
        after.resident_bytes,
        before.resident_bytes
    );
    // The hole's neighbors still resolve.
    assert_eq!(keep_lo.min_segment(), SegmentId(0));
    assert!(keep_hi.node_ref().segment() > SegmentId(1));
    // Retiring the prefix afterwards is NOT interior.
    let freed = arena.retire(SegmentId(0)).unwrap();
    assert!(!freed.interior, "segment 0 was the resident prefix");
}
