//! Integration tests of the query layer: parsing, evaluation against the
//! catalog, safety analysis, and probability computation across the three
//! valuation algorithms.

mod common;

use common::supermarket_db;
use tpdb::prelude::*;

#[test]
fn parser_and_builder_agree() {
    let built = Query::rel("c").except(Query::rel("a").union(Query::rel("b")));
    assert_eq!(Query::parse("c except (a union b)").unwrap(), built);
    assert_eq!(Query::parse("c − (a ∪ b)").unwrap(), built);
    assert_eq!(Query::parse(&built.to_string()).unwrap(), built);
}

#[test]
fn eval_composes_like_manual_ops() {
    let db = supermarket_db();
    let a = db.relation("a").unwrap();
    let b = db.relation("b").unwrap();
    let c = db.relation("c").unwrap();
    let manual = except(c, &union(a, b)).canonicalized();
    let via_query = Query::parse("c except (a union b)")
        .unwrap()
        .eval(&db)
        .unwrap()
        .canonicalized();
    assert_eq!(manual, via_query);
}

#[test]
fn nested_query_against_oracle() {
    let db = supermarket_db();
    let q = Query::parse("(a union b) intersect c").unwrap();
    let got = q.eval(&db).unwrap().canonicalized();
    let oracle = set_op_by_snapshots(
        SetOp::Intersect,
        &set_op_by_snapshots(
            SetOp::Union,
            db.relation("a").unwrap(),
            db.relation("b").unwrap(),
        ),
        db.relation("c").unwrap(),
    )
    .canonicalized();
    assert_eq!(got, oracle);
}

#[test]
fn repeating_query_probabilities_cross_check() {
    // (a ∪ b) − (a ∩ c) repeats `a` (the paper's #P-hard shape). Exact
    // Shannon expansion and Monte-Carlo must agree within the confidence
    // bound; the naive independent valuation generally must not.
    let db = supermarket_db();
    let q = Query::parse("(a union b) except (a intersect c)").unwrap();
    assert!(!q.is_non_repeating());
    let out = q.eval(&db).unwrap();
    let mut saw_non_1of = false;
    for t in out.iter() {
        let exact = prob::exact(&t.lineage, db.vars()).unwrap();
        let mc = prob::monte_carlo(&t.lineage, db.vars(), 60_000, 11).unwrap();
        assert!(
            (exact - mc.estimate).abs() <= mc.half_width_95,
            "lineage {}: exact {exact} vs mc {}",
            t.lineage,
            mc.estimate
        );
        saw_non_1of |= !t.lineage.is_one_occurrence_form();
    }
    assert!(
        saw_non_1of,
        "the repeating query must produce non-1OF lineage"
    );
}

#[test]
fn query_over_unknown_relation_fails_cleanly() {
    let db = supermarket_db();
    let q = Query::parse("a union nope").unwrap();
    assert!(matches!(q.eval(&db), Err(Error::UnknownRelation(_))));
}

#[test]
fn deep_query_chain() {
    // Left-deep chain of 6 operators over the three relations (repeating):
    // evaluation stays correct and invariant-preserving.
    let db = supermarket_db();
    let q = Query::parse("((((a union b) intersect c) except b) union (a intersect c)) except b")
        .unwrap();
    assert_eq!(q.op_count(), 6);
    let out = q.eval(&db).unwrap();
    assert!(out.check_duplicate_free().is_ok());
    assert!(out.satisfies_change_preservation());
    for t in out.iter() {
        let p = prob::marginal(&t.lineage, db.vars()).unwrap();
        assert!(p > 0.0 && p <= 1.0);
    }
}

#[test]
fn timeslice_on_query_results() {
    // τᵖ₂ of the Fig. 1 query contains exactly 'milk' with lineage c1∧¬a1.
    let db = supermarket_db();
    let out = Query::parse("c except (a union b)")
        .unwrap()
        .eval(&db)
        .unwrap();
    let snap = timeslice(&out, 2);
    assert_eq!(snap.len(), 1);
    let t = &snap.tuples()[0];
    assert_eq!(t.fact, Fact::single("milk"));
    assert_eq!(
        t.lineage.display_with(db.vars().resolver()).to_string(),
        "c1∧¬a1"
    );
    assert_eq!(t.interval, Interval::at(2, 3));
}

#[test]
fn sigma_and_pi_through_the_text_interface() {
    // The paper's Example 4, entirely through text: σF='milk'(c) −Tp
    // σF='milk'(a).
    let db = supermarket_db();
    let q = Query::parse("sigma[f0='milk'](c) except sigma[f0='milk'](a)").unwrap();
    let out = q.eval(&db).unwrap().canonicalized();
    let intervals: Vec<String> = out.iter().map(|t| t.interval.to_string()).collect();
    assert_eq!(intervals, vec!["[1,2)", "[2,4)", "[6,8)"]);
    // Projection to the empty fact collapses to a single "anything valid"
    // timeline.
    let q = Query::parse("pi[0](a union c)").unwrap();
    let out = q.eval(&db).unwrap();
    assert!(out.check_duplicate_free().is_ok());
    assert!(q.is_non_repeating());
    assert!(out.iter().all(|t| t.lineage.is_one_occurrence_form()));
}

#[test]
fn explain_includes_extended_operators() {
    let db = supermarket_db();
    let q = Query::parse("pi[0](sigma[f0='milk'](c) union a)").unwrap();
    let text = q.explain(&db).unwrap();
    assert!(text.contains("project"));
    assert!(text.contains("select f0='milk'"));
    assert!(text.contains("Scan c"));
}
