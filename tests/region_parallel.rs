//! The stitch invariant of region-parallel LAWA: **any** region plan —
//! random cut counts and positions, empty regions, duplicate-timestamp
//! boundaries, cuts outside the data span — yields results byte-identical
//! to the sequential sweep, at both layers:
//!
//! * `tp_core::window::region_windows` versus `all_windows` (the window
//!   stream itself), and
//! * a `tp_stream::StreamEngine` with region-parallel advances versus the
//!   sequential engine (the emitted delta log, compared delta for delta
//!   through the differential oracle in `tests/common/oracle.rs`).
//!
//! Plus the composition with reclaim mode (private arenas, retirement) and
//! the `finish` flush, which must ride the same advance path.

mod common;

use common::oracle::{assert_delta_logs_identical, assert_stream_matches_batch};
use common::{arb_raw_relation, build_relation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tp_core::window::{all_windows, region_windows, RegionPlan};
use tp_stream::{
    CollectingSink, EngineConfig, MaterializingSink, ParallelConfig, ReclaimConfig, ReplayConfig,
    Side, StreamEngine, StreamScript,
};
use tp_workloads::{skewed_synth_stream, sliding_synth_stream, SkewedConfig, SlidingConfig};
use tpdb::prelude::*;

/// Strategy for arbitrary cut vectors: unsorted, duplicated, and partly
/// outside the generated relations' time span (starts lie in `0..40`).
fn arb_cuts() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-10i64..60, 0..=9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_region_plan_yields_the_sequential_window_stream(
        raw_r in arb_raw_relation(24),
        raw_s in arb_raw_relation(24),
        cuts in arb_cuts(),
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        let plan = RegionPlan::from_cuts(cuts.clone());
        let got = region_windows(r.tuples(), s.tuples(), &plan);
        let batch = all_windows(r.tuples(), s.tuples());
        prop_assert_eq!(got, batch, "cuts {:?}", cuts);
    }

    #[test]
    fn any_pinned_plan_through_the_engine_is_delta_identical(
        raw_r in arb_raw_relation(20),
        raw_s in arb_raw_relation(20),
        cuts in arb_cuts(),
        advance_every in 1usize..32,
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        let script = StreamScript::from_pair(
            &r,
            &s,
            &ReplayConfig {
                lateness: 3,
                advance_every,
                seed: 0xC0FFEE,
            },
        );
        let run = |parallel: Option<ParallelConfig>| {
            let mut sink = MaterializingSink::new();
            script.run_into(
                EngineConfig {
                    parallel,
                    ..Default::default()
                },
                &mut sink,
            );
            sink
        };
        let sequential = run(None);
        let pinned = run(Some(ParallelConfig {
            workers: 4,
            min_tuples: 0,
            cuts: Some(cuts.clone()),
        }));
        assert_delta_logs_identical(&pinned, &sequential, &format!("cuts {cuts:?}"));
        // And the applied result still equals batch LAWA (tuples, lineage,
        // marginals) — the full oracle contract.
        let applied = pinned.replay();
        assert_stream_matches_batch(&applied, &r, &s, &vars);
    }
}

/// Balanced planning (the production path) at several worker budgets over
/// the workloads built to stress it — the smooth sliding stream and the
/// Zipf-hot skewed stream.
#[test]
fn balanced_plans_are_delta_identical_across_worker_counts() {
    for skewed in [false, true] {
        let mut vars = VarTable::new();
        let w = if skewed {
            skewed_synth_stream(
                &SkewedConfig {
                    epochs: 10,
                    per_epoch: 60,
                    ..Default::default()
                },
                &mut vars,
            )
        } else {
            sliding_synth_stream(
                &SlidingConfig {
                    epochs: 10,
                    per_epoch: 48,
                    ..Default::default()
                },
                &mut vars,
            )
        };
        let run = |parallel: Option<ParallelConfig>| {
            let mut sink = MaterializingSink::new();
            w.script.run_into(
                EngineConfig {
                    parallel,
                    ..Default::default()
                },
                &mut sink,
            );
            sink
        };
        let sequential = run(None);
        for workers in [2usize, 3, 8] {
            let parallel = run(Some(ParallelConfig {
                workers,
                min_tuples: 0,
                cuts: None,
            }));
            assert_delta_logs_identical(
                &parallel,
                &sequential,
                &format!("skewed={skewed}, {workers} workers"),
            );
        }
        let applied = sequential.replay();
        assert_stream_matches_batch(&applied, &w.r, &w.s, &vars);
    }
}

#[test]
fn parallel_reclaiming_engine_is_delta_identical_and_still_plateaus() {
    // Region workers intern into the engine's PRIVATE arena; the delta
    // log, the retirement totals and the memory plateau must all match
    // the sequential reclaiming engine.
    let mut vars = VarTable::new();
    let w = sliding_synth_stream(
        &SlidingConfig {
            epochs: 60,
            ..Default::default()
        },
        &mut vars,
    );
    let run = |parallel: Option<ParallelConfig>| {
        let mut engine = StreamEngine::new(EngineConfig {
            reclaim: Some(ReclaimConfig {
                keep_epochs: 2,
                ..Default::default()
            }),
            parallel,
            ..Default::default()
        });
        let mut sink = MaterializingSink::new();
        let mut live_samples = Vec::new();
        for event in &w.script.events {
            match event {
                tp_stream::ReplayEvent::Arrive(side, t) => {
                    engine.push(*side, t.clone());
                }
                tp_stream::ReplayEvent::Advance(wm) => {
                    engine.advance(*wm, &mut sink).unwrap();
                    live_samples.push(engine.arena_stats().unwrap().nodes);
                }
            }
        }
        engine.finish(&mut sink).unwrap();
        (sink, engine.reclaimed(), live_samples)
    };
    let (seq_sink, seq_reclaimed, _) = run(None);
    let (par_sink, par_reclaimed, par_samples) = run(Some(ParallelConfig {
        workers: 4,
        min_tuples: 0,
        cuts: None,
    }));
    assert_delta_logs_identical(&par_sink, &seq_sink, "reclaim + parallel");
    assert_eq!(par_reclaimed, seq_reclaimed);
    assert!(seq_reclaimed.0 > 10, "soak retired almost nothing");
    common::oracle::assert_plateau(&par_samples, 8, 2.0, "parallel reclaiming engine");
    common::oracle::assert_materialized_matches_batch(&par_sink, &w.r, &w.s, &vars);
}

#[test]
fn finish_flush_rides_the_parallel_advance_path() {
    // Push a fat buffered backlog and NEVER advance manually: the whole
    // sweep happens inside finish, which must shard it by region exactly
    // like a mid-stream advance would.
    let mut rng = StdRng::seed_from_u64(0x9E6104);
    let build_events = || {
        let mut vars = VarTable::new();
        let mut events = Vec::new();
        for f in 0..6i64 {
            for k in 0..50i64 {
                for (side, off) in [(Side::Left, 0i64), (Side::Right, 2)] {
                    let id = vars.register(format!("v{f}_{k}_{off}"), 0.5).unwrap();
                    events.push((
                        side,
                        TpTuple::new(
                            Fact::single(f),
                            Lineage::var(id),
                            Interval::at(10 * k + off, 10 * k + off + 7),
                        ),
                    ));
                }
            }
        }
        events
    };
    let mut events = build_events();
    for i in (1..events.len()).rev() {
        let j = rng.random_range(0..=i);
        events.swap(i, j);
    }
    let run = |parallel: Option<ParallelConfig>| {
        let mut engine = StreamEngine::new(EngineConfig {
            parallel,
            ..Default::default()
        });
        let mut sink = MaterializingSink::new();
        for (side, t) in &events {
            engine.push(*side, t.clone());
        }
        let stats = engine.finish(&mut sink).unwrap();
        (sink, stats)
    };
    let (seq_sink, seq_stats) = run(None);
    assert_eq!(seq_stats.regions_used, 1);
    let (par_sink, par_stats) = run(Some(ParallelConfig {
        workers: 4,
        min_tuples: 64,
        cuts: None,
    }));
    assert!(
        par_stats.regions_used > 1,
        "finish's flush stayed sequential ({} tuple pieces)",
        par_stats.region_tuples
    );
    assert!(par_stats.region_balance() >= 1.0);
    assert_delta_logs_identical(&par_sink, &seq_sink, "finish flush");
}

#[test]
fn region_gauges_reflect_skew() {
    // On the Zipf-hot stream the balanced planner must still spread load:
    // every fat advance shards, and the reported balance stays finite and
    // sane (max/mean within the region count by definition).
    let mut vars = VarTable::new();
    let w = skewed_synth_stream(
        &SkewedConfig {
            epochs: 6,
            per_epoch: 80,
            ..Default::default()
        },
        &mut vars,
    );
    let mut engine = StreamEngine::new(EngineConfig {
        parallel: Some(ParallelConfig {
            workers: 4,
            min_tuples: 32,
            cuts: None,
        }),
        ..Default::default()
    });
    let mut sink = CollectingSink::new();
    let mut fat_advances = 0usize;
    for event in &w.script.events {
        match event {
            tp_stream::ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            tp_stream::ReplayEvent::Advance(wm) => {
                let stats = engine.advance(*wm, &mut sink).unwrap();
                if stats.region_tuples >= 32 {
                    fat_advances += 1;
                    assert!(stats.regions_used > 1, "fat advance stayed sequential");
                    let balance = stats.region_balance();
                    assert!(balance >= 1.0, "balance {balance} below 1");
                    assert!(
                        balance <= stats.regions_used as f64 + 1e-9,
                        "balance {balance} exceeds region count {}",
                        stats.regions_used
                    );
                }
            }
        }
    }
    engine.finish(&mut sink).unwrap();
    assert!(fat_advances > 0, "workload produced no fat advances");
    assert_stream_matches_batch(&sink, &w.r, &w.s, &vars);
}

/// The sampling-bias fix: `RegionPlan::balanced` step-samples at most 2048
/// start points from the *arrival-ordered* buffer, so an arrival order that
/// aliases with the sampling stride (here: even pushes in a hot cluster,
/// odd pushes spread wide — stride 2 sees only the cluster) yields cuts
/// that pile half the data into one region. The gapped index hands the
/// planner the exact ts-sorted starts, so its cuts are true quantiles. Same
/// pushes, same deltas — only the balance differs.
#[test]
fn index_cuts_dominate_aliased_sampled_cuts() {
    let run = |buffer: tp_stream::BufferKind| {
        let mut vars = VarTable::new();
        let mut engine = StreamEngine::new(EngineConfig {
            parallel: Some(ParallelConfig {
                workers: 4,
                min_tuples: 64,
                cuts: None,
            }),
            buffer,
            ..Default::default()
        });
        let mut sink = MaterializingSink::new();
        for i in 0..6000i64 {
            // Aliased arrival: even pushes land in the hot cluster
            // [0, 3000), odd pushes spread over [100_000, 220_000).
            let start = if i % 2 == 0 {
                i / 2
            } else {
                100_000 + (i / 2) * 40
            };
            let id = vars.register(format!("t{i}"), 0.5).unwrap();
            engine.push(
                Side::Left,
                TpTuple::new(
                    Fact::single(i),
                    Lineage::var(id),
                    Interval::at(start, start + 1),
                ),
            );
        }
        let stats = engine.advance(300_000, &mut sink).unwrap();
        (stats, sink)
    };
    let (legacy, legacy_log) = run(tp_stream::BufferKind::Legacy);
    let (sorted, sorted_log) = run(tp_stream::BufferKind::Sorted);
    assert_delta_logs_identical(&sorted_log, &legacy_log, "aliased arrival");
    assert_eq!(sorted.regions_used, 4, "index plan filled the budget");
    // Sampled cuts all land inside the hot cluster: the last region soaks
    // up every spread tuple (~2.5× the mean). Index cuts are exact.
    assert!(
        legacy.region_balance() > 2.0,
        "expected aliased sampling to skew, got balance {}",
        legacy.region_balance()
    );
    assert!(
        sorted.region_balance() < 1.2,
        "index cuts should be near-perfect, got balance {}",
        sorted.region_balance()
    );
}

/// On the Zipf-hot skewed stream with advances fat enough to force the
/// legacy planner into sampling (step > 1), the index's exact cuts must
/// never balance *worse* than the sampled ones — and the delta logs stay
/// byte-identical throughout.
#[test]
fn index_cuts_dominate_sampled_cuts_on_skewed_stream() {
    let mut vars = VarTable::new();
    let w = skewed_synth_stream(
        &SkewedConfig {
            epochs: 6,
            per_epoch: 2400, // 4800 pieces per advance → sampling step 2
            ..Default::default()
        },
        &mut vars,
    );
    let run = |buffer: tp_stream::BufferKind| {
        let mut engine = StreamEngine::new(EngineConfig {
            parallel: Some(ParallelConfig {
                workers: 4,
                min_tuples: 64,
                cuts: None,
            }),
            buffer,
            ..Default::default()
        });
        let mut sink = MaterializingSink::new();
        let mut balances = Vec::new();
        for event in &w.script.events {
            match event {
                tp_stream::ReplayEvent::Arrive(side, t) => {
                    engine.push(*side, t.clone());
                }
                tp_stream::ReplayEvent::Advance(wm) => {
                    let stats = engine.advance(*wm, &mut sink).unwrap();
                    if stats.regions_used > 1 {
                        balances.push(stats.region_balance());
                    }
                }
            }
        }
        engine.finish(&mut sink).unwrap();
        (balances, sink)
    };
    let (legacy_bal, legacy_log) = run(tp_stream::BufferKind::Legacy);
    let (sorted_bal, sorted_log) = run(tp_stream::BufferKind::Sorted);
    assert_delta_logs_identical(&sorted_log, &legacy_log, "skewed stream");
    assert!(!sorted_bal.is_empty(), "no parallel advances happened");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&sorted_bal) <= avg(&legacy_bal) + 0.05,
        "index cuts balanced worse than sampled cuts: {} vs {}",
        avg(&sorted_bal),
        avg(&legacy_bal)
    );
}
