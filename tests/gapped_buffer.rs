//! Property suite of the gapped learned timestamp index (`BufferKind`):
//! for any arrival permutation within the lateness bound, an engine on the
//! gapped index must behave **byte-identically** to one on the legacy
//! sorted buffer — same delta logs (the strongest oracle the suite has),
//! sequential and region-parallel, reclaim on and off, through `finish`.

mod common;

use common::oracle::{assert_delta_logs_identical, assert_materialized_matches_batch};
use tp_stream::{
    BufferKind, EngineConfig, MaterializingSink, ParallelConfig, ReclaimConfig, ReplayConfig,
    StreamScript,
};
use tp_workloads::{skewed_synth_stream, sliding_synth_stream, SkewedConfig, SlidingConfig};
use tpdb::prelude::*;

/// Replays `script` through one engine with the given config; returns the
/// materialized delta log (finish included by the script's epilogue).
fn run(script: &StreamScript, cfg: EngineConfig) -> MaterializingSink {
    let mut sink = MaterializingSink::new();
    script.run_into(cfg, &mut sink);
    sink
}

/// The differential gate of the tentpole: every engine mode must agree
/// byte-for-byte across the two buffer kinds on the same replay.
fn assert_index_matches_legacy(script: &StreamScript, ctx: &str) {
    let parallel = || {
        Some(ParallelConfig {
            workers: 4,
            min_tuples: 64,
            cuts: None,
        })
    };
    let modes: Vec<(&str, EngineConfig)> = vec![
        ("sequential", EngineConfig::default()),
        (
            "parallel",
            EngineConfig {
                parallel: parallel(),
                ..Default::default()
            },
        ),
        (
            "reclaim",
            EngineConfig {
                reclaim: Some(ReclaimConfig::default()),
                ..Default::default()
            },
        ),
        (
            "reclaim+parallel",
            EngineConfig {
                reclaim: Some(ReclaimConfig::default()),
                parallel: parallel(),
                ..Default::default()
            },
        ),
    ];
    for (mode, cfg) in modes {
        let legacy = run(
            script,
            EngineConfig {
                buffer: BufferKind::Legacy,
                ..cfg.clone()
            },
        );
        let sorted = run(
            script,
            EngineConfig {
                buffer: BufferKind::Sorted,
                ..cfg
            },
        );
        assert_delta_logs_identical(&sorted, &legacy, &format!("{ctx} [{mode}]"));
    }
}

#[test]
fn sliding_stream_is_byte_identical_across_buffer_kinds() {
    let mut vars = VarTable::new();
    let w = sliding_synth_stream(
        &SlidingConfig {
            epochs: 24,
            per_epoch: 40,
            ..Default::default()
        },
        &mut vars,
    );
    // The workload's own schedule plus harsher permutations: heavier
    // lateness shuffles and watermarks slicing mid-tuple.
    assert_index_matches_legacy(&w.script, "sliding (native schedule)");
    for (lateness, advance_every, seed) in [(0, 64, 1), (48, 32, 2), (160, 7, 3)] {
        let script = StreamScript::from_pair(
            &w.r,
            &w.s,
            &ReplayConfig {
                lateness,
                advance_every,
                seed,
            },
        );
        assert_index_matches_legacy(
            &script,
            &format!("sliding lateness={lateness} advance_every={advance_every}"),
        );
    }
}

#[test]
fn skewed_stream_is_byte_identical_across_buffer_kinds() {
    let mut vars = VarTable::new();
    let w = skewed_synth_stream(
        &SkewedConfig {
            epochs: 16,
            ..Default::default()
        },
        &mut vars,
    );
    assert_index_matches_legacy(&w.script, "skewed (native schedule)");
    let script = StreamScript::from_pair(
        &w.r,
        &w.s,
        &ReplayConfig {
            lateness: 96,
            advance_every: 48,
            seed: 11,
        },
    );
    assert_index_matches_legacy(&script, "skewed (shuffled)");
}

/// Adversarial arrival orders the model must survive: strictly reversed
/// batches (every insert lands at the buffer's front) and an interleave of
/// two distant epochs (bimodal key space under one model).
#[test]
fn adversarial_arrival_orders_are_byte_identical() {
    let mut vars = VarTable::new();
    let w = sliding_synth_stream(
        &SlidingConfig {
            epochs: 12,
            per_epoch: 32,
            ..Default::default()
        },
        &mut vars,
    );
    let mut events = Vec::new();
    let mut batch = Vec::new();
    for ev in &w.script.events {
        match ev {
            tp_stream::ReplayEvent::Arrive(..) => batch.push(ev.clone()),
            tp_stream::ReplayEvent::Advance(_) => {
                batch.reverse(); // adversarial: reverse every inter-advance batch
                events.append(&mut batch);
                events.push(ev.clone());
            }
        }
    }
    batch.reverse();
    events.append(&mut batch);
    let script = StreamScript { events };
    assert_index_matches_legacy(&script, "reversed batches");
}

/// End-to-end reclaim-mode oracle on the index engine itself (not just
/// index-vs-legacy): materialized deltas replay to the batch result.
#[test]
fn index_engine_reclaim_run_matches_batch_oracle() {
    let mut vars = VarTable::new();
    let w = sliding_synth_stream(
        &SlidingConfig {
            epochs: 20,
            per_epoch: 24,
            ..Default::default()
        },
        &mut vars,
    );
    let sink = run(
        &w.script,
        EngineConfig {
            buffer: BufferKind::Sorted,
            reclaim: Some(ReclaimConfig::default()),
            parallel: Some(ParallelConfig {
                workers: 3,
                min_tuples: 32,
                cuts: None,
            }),
            ..Default::default()
        },
    );
    assert_materialized_matches_batch(&sink, &w.r, &w.s, &vars);
}
