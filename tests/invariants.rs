//! Property-based verification of the model-level guarantees the paper
//! proves: duplicate-freeness of outputs, change preservation (Def. 2),
//! snapshot reducibility (Def. 1), Theorem 1 (1OF lineage for non-repeating
//! queries), Proposition 1 (window-count bound) and the linear output-size
//! bound.

mod common;

use common::{arb_raw_relation, build_relation};
use proptest::prelude::*;
use tpdb::core::window::all_windows;
use tpdb::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn outputs_are_duplicate_free_and_change_preserving(
        raw_r in arb_raw_relation(20),
        raw_s in arb_raw_relation(20),
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        for op in SetOp::ALL {
            let out = apply(op, &r, &s);
            prop_assert!(out.check_duplicate_free().is_ok(), "op {}", op);
            prop_assert!(out.satisfies_change_preservation(), "op {}", op);
            prop_assert!(out.is_sorted_by_fact_start(), "op {}", op);
        }
    }

    #[test]
    fn snapshot_reducibility(
        raw_r in arb_raw_relation(14),
        raw_s in arb_raw_relation(14),
        t in 0i64..50,
    ) {
        // Def. 1: τᵖt(r opTp s) ≡ τᵖt(r) opp τᵖt(s). The probabilistic
        // operator on single-point snapshots is the same set operation
        // applied to the snapshot relations.
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        for op in SetOp::ALL {
            let lhs = timeslice(&apply(op, &r, &s), t).canonicalized();
            let rhs = apply(op, &timeslice(&r, t), &timeslice(&s, t)).canonicalized();
            // Fact/interval sets agree, and lineages are logically
            // equivalent at the time point (intervals on the lhs inherit the
            // coalesced lineage, which is identical by construction).
            prop_assert_eq!(&lhs, &rhs, "op {} at t={}", op, t);
        }
    }

    #[test]
    fn theorem1_nonrepeating_yields_1of(
        raw_r in arb_raw_relation(15),
        raw_s in arb_raw_relation(15),
        raw_u in arb_raw_relation(15),
    ) {
        let mut db = Database::new();
        {
            let mut vars = VarTable::new();
            let r = build_relation("r", &raw_r, &mut vars);
            let s = build_relation("s", &raw_s, &mut vars);
            let u = build_relation("u", &raw_u, &mut vars);
            *db.vars_mut() = vars;
            db.add_relation("r", r).unwrap();
            db.add_relation("s", s).unwrap();
            db.add_relation("u", u).unwrap();
        }
        for text in [
            "r union (s intersect u)",
            "(r except s) except u",
            "(r union s) except u",
            "r intersect (s union u)",
        ] {
            let q = Query::parse(text).unwrap();
            prop_assert!(q.is_non_repeating());
            let out = q.eval(&db).unwrap();
            for t in out.iter() {
                prop_assert!(t.lineage.is_one_occurrence_form(), "{}: {}", text, t.lineage);
            }
        }
    }

    #[test]
    fn proposition1_window_bound(
        raw_r in arb_raw_relation(20),
        raw_s in arb_raw_relation(20),
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars).sorted();
        let s = build_relation("s", &raw_s, &mut vars).sorted();
        let windows = all_windows(r.tuples(), s.tuples());
        // nr + ns − fd with nr/ns counting start and end points.
        let nr = 2 * r.len();
        let ns = 2 * s.len();
        let mut facts = r.distinct_facts();
        facts.extend(s.distinct_facts());
        if facts.is_empty() {
            prop_assert!(windows.is_empty());
        } else {
            prop_assert!(
                windows.len() <= nr + ns - facts.len(),
                "{} windows > {} + {} - {}",
                windows.len(), nr, ns, facts.len()
            );
        }
    }

    #[test]
    fn output_sizes_are_linear(
        raw_r in arb_raw_relation(20),
        raw_s in arb_raw_relation(20),
    ) {
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        let bound = 2 * (r.len() + s.len());
        prop_assert!(union(&r, &s).len() <= bound);
        prop_assert!(intersect(&r, &s).len() <= bound);
        prop_assert!(except(&r, &s).len() <= bound);
    }

    #[test]
    fn per_timepoint_semantics(
        raw_r in arb_raw_relation(12),
        raw_s in arb_raw_relation(12),
    ) {
        // Definition 3's coverage conditions, checked pointwise: a (fact, t)
        // is in the union iff it is in r or s; in the intersection iff in
        // both; in the difference iff in r.
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        let u = union(&r, &s);
        let i = intersect(&r, &s);
        let d = except(&r, &s);
        let covered = |rel: &TpRelation, fact: &Fact, t: i64| {
            rel.iter().any(|x| &x.fact == fact && x.interval.contains(t))
        };
        let mut facts = r.distinct_facts();
        facts.extend(s.distinct_facts());
        for fact in &facts {
            for t in 0..60 {
                let in_r = covered(&r, fact, t);
                let in_s = covered(&s, fact, t);
                prop_assert_eq!(covered(&u, fact, t), in_r || in_s);
                prop_assert_eq!(covered(&i, fact, t), in_r && in_s);
                prop_assert_eq!(covered(&d, fact, t), in_r);
            }
        }
    }

    #[test]
    fn probabilities_are_valid_and_consistent(
        raw_r in arb_raw_relation(10),
        raw_s in arb_raw_relation(10),
    ) {
        // Every output lineage valuates to a probability in (0, 1]; for 1OF
        // lineage the linear and Shannon paths agree.
        let mut vars = VarTable::new();
        let r = build_relation("r", &raw_r, &mut vars);
        let s = build_relation("s", &raw_s, &mut vars);
        for op in SetOp::ALL {
            for t in apply(op, &r, &s).iter() {
                let p = prob::marginal(&t.lineage, &vars).unwrap();
                prop_assert!(p > 0.0 && p <= 1.0, "p = {p}");
                let shannon = prob::exact(&t.lineage, &vars).unwrap();
                prop_assert!((p - shannon).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn lawa_never_needs_coalescing() {
    // Change preservation holds directly on LAWA output: a coalescing pass
    // is a no-op. (Deterministic sample of seeds; the proptest above covers
    // random shapes.)
    for seed in 0..10u64 {
        let mut vars = VarTable::new();
        let (r, s) = tp_workloads::synth::generate(
            &tp_workloads::SynthConfig::with_facts(400, 5, seed),
            &mut vars,
        );
        for op in SetOp::ALL {
            let out = apply(op, &r, &s);
            assert_eq!(out.coalesce().len(), out.len(), "op {op} seed {seed}");
        }
    }
}
