//! Property tests for the sliding var registry (`VarTable` cohorts):
//! random register / seal / release interleavings under the engine's
//! contract (release only cohorts no live-window lineage references) must
//! never change the marginal of any live-window formula compared to a
//! never-released control table — and looking up a released variable is an
//! error, never a stale or wrong probability.

mod common;

use common::oracle::assert_formula_matches_control;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tpdb::prelude::*;

/// One live-window formula: the handle (global arena — the registry
/// slides independently of the arena here), its tree oracle, and the
/// epoch of the oldest cohort it references (the formula must be dropped
/// before that cohort may be released — the live-window contract).
struct LiveFormula {
    lineage: Lineage,
    tree: LineageTree,
    oldest_epoch: u64,
}

/// Builds a random formula over the given live variable ids.
fn random_formula(rng: &mut StdRng, ids: &[TupleId]) -> Lineage {
    let mut acc = Lineage::var(ids[0]);
    for &id in &ids[1..] {
        let v = Lineage::var(id);
        acc = match rng.random_range(0..3u32) {
            0 => Lineage::and(&acc, &v),
            1 => Lineage::or(&acc, &v),
            _ => Lineage::and_not(&acc, Some(&v)),
        };
    }
    if ids.len() == 1 && rng.random::<bool>() {
        acc = acc.negate();
    }
    acc
}

#[test]
fn random_register_seal_release_interleavings_preserve_live_marginals() {
    let mut rng = StdRng::seed_from_u64(0x5EA1_0A27);
    let mut total_released = 0u64;
    for case in 0..8u64 {
        let mut subject = VarTable::new();
        let mut control = VarTable::new();
        // Per variable id: the epoch of the cohort it was registered into.
        let mut cohort_of: Vec<u64> = Vec::new();
        let mut live: Vec<LiveFormula> = Vec::new();
        let mut release_floor_epoch = 0u64;
        for _step in 0..400 {
            match rng.random_range(0..100u32) {
                // Register a small batch into both tables (same order, so
                // ids align between subject and control).
                0..=34 => {
                    let epoch = subject.open_var_epoch().0;
                    for _ in 0..rng.random_range(1..4usize) {
                        let p = rng.random_range(0.05..0.95);
                        let label = format!("v{}", cohort_of.len());
                        let a = subject.register(label.clone(), p).unwrap();
                        let b = control.register(label, p).unwrap();
                        assert_eq!(a, b, "case {case}: id skew");
                        cohort_of.push(epoch);
                    }
                }
                // Build a live-window formula over currently live vars.
                35..=59 => {
                    let floor = subject.released_vars();
                    let n = subject.len() as u64;
                    if n > floor {
                        let ids: Vec<TupleId> = (0..rng.random_range(1..5usize))
                            .map(|_| TupleId(floor + rng.random_range(0..n - floor)))
                            .collect();
                        let lineage = random_formula(&mut rng, &ids);
                        live.push(LiveFormula {
                            lineage,
                            tree: lineage.to_tree(),
                            oldest_epoch: ids
                                .iter()
                                .map(|id| cohort_of[id.0 as usize])
                                .min()
                                .expect("at least one id"),
                        });
                    }
                }
                // Seal the open cohort.
                60..=74 => {
                    let _ = subject.seal_vars();
                }
                // Release with a two-cohort grace window, dropping the
                // formulas that reference soon-dead cohorts first — the
                // same order the streaming engine guarantees (a cohort's
                // segment only retires once the live frontier passed it).
                75..=89 => {
                    let target = subject.open_var_epoch().0.saturating_sub(2);
                    if target > release_floor_epoch {
                        live.retain(|f| f.oldest_epoch >= target);
                        let released = subject.release_vars_before(VarEpoch(target));
                        total_released += released.vars;
                        release_floor_epoch = target;
                    }
                }
                // Differential check of a random live formula.
                _ => {
                    if !live.is_empty() {
                        let f = &live[rng.random_range(0..live.len())];
                        let p = prob::exact(&f.lineage, &subject).unwrap();
                        assert_formula_matches_control(p, &f.tree, &control, 1e-12);
                    }
                }
            }
        }
        // Final sweep: every surviving live-window formula still agrees
        // with the never-released control, however much was released.
        for f in &live {
            let p = prob::exact(&f.lineage, &subject).unwrap();
            assert_formula_matches_control(p, &f.tree, &control, 1e-12);
        }
        // Released lookups error — at the registry level...
        let floor = subject.released_vars();
        if floor > 0 {
            assert!(matches!(
                subject.prob(TupleId(floor - 1)),
                Err(Error::ReleasedVariable(_))
            ));
            // ...and at the valuation level: *fresh* valuation work over
            // a released variable is an error, never a number. (A
            // marginal cached before the release may keep answering — it
            // is still the correct value, computed while the vars were
            // live; the engine wiring evicts those rows with the bound
            // segment. Clearing the cache here isolates the fresh path.)
            subject.clear_valuation_cache();
            let dead = random_formula(&mut rng, &[TupleId(0), TupleId(floor - 1)]);
            assert!(
                prob::marginal(&dead, &subject).is_err(),
                "case {case}: released vars valuated silently"
            );
            // The control table (never released) still resolves them.
            assert!(prob::marginal(&dead, &control).is_ok());
        }
    }
    assert!(
        total_released > 0,
        "no case ever released a cohort — the schedule generator is degenerate"
    );
}

#[test]
fn use_after_release_is_an_error_not_a_stale_probability() {
    // Deterministic core of the contract: release a cohort, then probe
    // every released id — the registry must answer `ReleasedVariable`,
    // and live ids must keep their exact original values.
    let mut vt = VarTable::new();
    let mut expected = Vec::new();
    for k in 0..20u64 {
        let p = 0.05 + (k as f64) * 0.04;
        vt.register(format!("v{k}"), p).unwrap();
        expected.push(p);
        if k % 5 == 4 {
            vt.seal_vars().unwrap();
        }
    }
    let released = vt.release_vars_before(VarEpoch(2));
    assert_eq!(released.vars, 10);
    for id in 0..10u64 {
        assert!(
            matches!(vt.prob(TupleId(id)), Err(Error::ReleasedVariable(i)) if i == id),
            "id {id} did not error"
        );
    }
    for id in 10..20u64 {
        assert_eq!(vt.prob(TupleId(id)).unwrap(), expected[id as usize]);
    }
    assert_eq!(vt.live_vars(), 10);
    assert_eq!(vt.released_vars(), 10);
}
