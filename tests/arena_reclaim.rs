//! Property tests for segmented-arena reclamation: random interleavings of
//! intern / seal / retire under a valid liveness schedule (retire only
//! below the live frontier, as the streaming engine does) must never
//! invalidate a live ref, and valuation/BDD results computed against a
//! reclaiming arena must be identical to a never-retired control arena
//! (the process-global one).

mod common;

use common::oracle::assert_formula_matches_control;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tp_core::arena::{LineageArena, RetireError, SegmentId, SegmentState};
use tp_core::bdd;
use tp_core::lineage::{Lineage, LineageTree, TupleId};
use tp_core::prob;
use tp_core::relation::VarTable;

/// One live formula tracked through the interleaving: the handle in the
/// reclaiming arena plus its tree shape — the oracle the handle must keep
/// agreeing with, and the bridge into the control (global) arena.
struct LiveFormula {
    lineage: Lineage,
    tree: LineageTree,
}

fn vt(nvars: u64) -> VarTable {
    let mut vt = VarTable::new();
    for i in 0..nvars {
        vt.register(format!("t{i}"), 0.05 + 0.9 * ((i % 13) as f64) / 13.0)
            .unwrap();
    }
    vt
}

/// Checks one live formula against its tree oracle and the control arena:
/// metadata, evaluation, exact marginal, and the BDD backend.
///
/// Two variable tables with identical probabilities are used deliberately:
/// a `VarTable`'s valuation cache is keyed by arena refs, so one table
/// must never serve formulas of two different arenas (colliding
/// `(segment, slot)` keys would alias distinct formulas).
fn check_live(
    f: &LiveFormula,
    arena: &std::sync::Arc<LineageArena>,
    subject_vars: &VarTable,
    control_vars: &VarTable,
) {
    let scope = LineageArena::enter(arena);
    assert_eq!(f.lineage.size(), f.tree.size(), "size diverged");
    assert_eq!(f.lineage.vars(), f.tree.vars(), "vars diverged");
    assert_eq!(
        f.lineage.var_occurrences(),
        f.tree.var_occurrences(),
        "occurrences diverged"
    );
    let assign = |id: TupleId| id.0.is_multiple_of(3);
    assert_eq!(
        f.lineage.eval(&assign),
        f.tree.eval(&assign),
        "eval diverged"
    );
    // Exact marginal in the reclaiming arena...
    let subject = prob::exact(&f.lineage, subject_vars).unwrap();
    let via_bdd = bdd::probability(&f.lineage, subject_vars).unwrap();
    drop(scope);
    // ...must equal the control arena's answer for the same formula — the
    // shared differential oracle re-interns the tree into the global arena
    // and compares.
    assert_formula_matches_control(subject, &f.tree, control_vars, 1e-12);
    assert_formula_matches_control(via_bdd, &f.tree, control_vars, 1e-9);
}

#[test]
fn random_intern_seal_retire_interleavings_never_invalidate_live_refs() {
    let mut rng = StdRng::seed_from_u64(0xA11E_0A01);
    let mut total_retired = 0usize;
    for _case in 0..12u64 {
        let arena = LineageArena::shared(4);
        let nvars = 24u64;
        let subject_vars = vt(nvars);
        let control_vars = vt(nvars);
        let mut live: Vec<LiveFormula> = Vec::new();
        let mut retired_count = 0usize;
        for step in 0..300 {
            match rng.random_range(0..100u32) {
                // Intern: a fresh var, or a combination of live formulas.
                0..=54 => {
                    let _scope = LineageArena::enter(&arena);
                    let fresh = Lineage::var(TupleId(rng.random_range(0..nvars)));
                    let fresh_tree = fresh.to_tree();
                    let (lineage, tree) = if live.is_empty() || rng.random::<bool>() {
                        (fresh, fresh_tree)
                    } else {
                        let pick = &live[rng.random_range(0..live.len())];
                        match rng.random_range(0..3u32) {
                            0 => (
                                Lineage::and(&pick.lineage, &fresh),
                                LineageTree::And(Box::new(pick.tree.clone()), Box::new(fresh_tree)),
                            ),
                            1 => (
                                Lineage::or(&pick.lineage, &fresh),
                                LineageTree::Or(Box::new(pick.tree.clone()), Box::new(fresh_tree)),
                            ),
                            _ => (
                                pick.lineage.negate(),
                                LineageTree::Not(Box::new(pick.tree.clone())),
                            ),
                        }
                    };
                    live.push(LiveFormula { lineage, tree });
                }
                // Drop a live formula (its nodes may become reclaimable).
                55..=69 => {
                    if !live.is_empty() {
                        let at = rng.random_range(0..live.len());
                        live.swap_remove(at);
                    }
                }
                // Seal the open segment.
                70..=79 => {
                    let _ = arena.seal();
                }
                // Retire everything below the live frontier — the valid
                // schedule the streaming engine follows.
                80..=89 => {
                    let scope = LineageArena::enter(&arena);
                    let frontier = live
                        .iter()
                        .map(|f| f.lineage.min_segment())
                        .min()
                        .unwrap_or_else(|| arena.open_segment());
                    drop(scope);
                    for id in 0..frontier.0 {
                        let seg = SegmentId(id);
                        if arena.segment_state(seg) == Some(SegmentState::Sealed) {
                            match arena.retire(seg) {
                                Ok(_) => retired_count += 1,
                                Err(RetireError::AlreadyRetired) => {}
                                Err(e) => panic!("retire({seg}) failed: {e}"),
                            }
                        }
                    }
                }
                // Spot-check a random live formula.
                _ => {
                    if !live.is_empty() {
                        let pick = &live[rng.random_range(0..live.len())];
                        check_live(pick, &arena, &subject_vars, &control_vars);
                    }
                }
            }
            // Every few steps, verify the arena's books.
            if step % 97 == 0 {
                let stats = arena.stats();
                assert_eq!(
                    stats.nodes as u64,
                    stats.total_interned - stats.retired_nodes
                );
                assert_eq!(stats.live_segments + stats.retired_segments, stats.segments);
            }
        }
        // Final sweep: every live formula fully intact after the dust
        // settles, regardless of how much was reclaimed.
        for f in &live {
            check_live(f, &arena, &subject_vars, &control_vars);
        }
        total_retired += retired_count;
    }
    assert!(
        total_retired > 0,
        "no case ever retired a segment — the schedule generator is degenerate"
    );
}

#[test]
fn post_retire_results_match_a_never_retired_arena() {
    // Deterministic end-to-end: build formulas over three "epochs",
    // retire the dead epochs, and compare every surviving marginal and
    // BDD probability against the control (global) arena.
    let arena = LineageArena::shared(2);
    let subject_vars = vt(12);
    let control_vars = vt(12);
    let mut survivors: Vec<LiveFormula> = Vec::new();
    for epoch in 0..3u64 {
        let _scope = LineageArena::enter(&arena);
        let mut scratch = Vec::new();
        for k in 0..40u64 {
            let a = Lineage::var(TupleId((epoch * 4 + k) % 12));
            let b = Lineage::var(TupleId((epoch * 4 + k + 5) % 12));
            let l = if k % 2 == 0 {
                Lineage::and_not(&a, Some(&b))
            } else {
                Lineage::or(&a, &Lineage::and(&a, &b)) // repeating: Shannon path
            };
            scratch.push(l);
            if k % 8 == 0 {
                survivors.push(LiveFormula {
                    lineage: l,
                    tree: l.to_tree(),
                });
            }
        }
        drop(_scope);
        let _ = arena.seal();
    }
    // Retire everything below the survivors' frontier.
    let frontier = {
        let _scope = LineageArena::enter(&arena);
        survivors
            .iter()
            .map(|f| f.lineage.min_segment())
            .min()
            .unwrap()
    };
    let mut retired = 0;
    for id in 0..frontier.0 {
        if arena.segment_state(SegmentId(id)) == Some(SegmentState::Sealed)
            && arena.retire(SegmentId(id)).is_ok()
        {
            retired += 1;
        }
    }
    // The survivors' shared leaves keep their segments alive, so this
    // schedule may legitimately retire nothing; force a split epoch to
    // guarantee coverage of the retired path.
    let dead_ref = {
        let _scope = LineageArena::enter(&arena);
        let dead = Lineage::and(
            &Lineage::var(TupleId(990_001 % 12)),
            &Lineage::var(TupleId(990_007 % 12)),
        );
        dead.node_ref()
    };
    let dead_seg = dead_ref.segment();
    // Nothing live references the new segment (survivors predate it).
    let sealed = arena.seal();
    assert_eq!(sealed, Some(dead_seg));
    arena.retire(dead_seg).expect("fresh segment is dead");
    retired += 1;
    assert!(retired >= 1);
    // Survivors still valuate identically to the control arena.
    for f in &survivors {
        check_live(f, &arena, &subject_vars, &control_vars);
    }
    // And the dead handle is detected, not misread.
    let _scope = LineageArena::enter(&arena);
    let dead = Lineage::from_node_ref(dead_ref);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dead.size()))
        .expect_err("use-after-retire must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("use-after-retire"), "got: {msg}");
}

#[test]
fn marginal_cache_never_aliases_across_arenas() {
    // A VarTable that cached marginals for one arena must not return them
    // for a *different* arena's refs, even when the (segment, slot) keys
    // collide — the cache binds to its first arena and reads from any
    // other arena are misses (correct, just uncached).
    let vars = vt(8);
    // Global arena: cache a marginal whose ref sits at some (seg, slot).
    let g = Lineage::and(&Lineage::var(TupleId(1)), &Lineage::var(TupleId(2)));
    let pg = prob::marginal(&g, &vars).unwrap();
    assert!(vars.valuation_cache_len() > 0, "premise: cache is warm");
    // Fresh private arena: its first refs occupy the lowest (0, slot)
    // keys — maximally collision-prone with the global cache's entries.
    let arena = LineageArena::shared(2);
    {
        let _scope = LineageArena::enter(&arena);
        for i in 0..6u64 {
            // Different formulas than the globally cached ones.
            let l = Lineage::or(&Lineage::var(TupleId(i)), &Lineage::var(TupleId(i + 1)));
            let got = prob::marginal(&l, &vars).unwrap();
            let want = l.to_tree().independent_prob(&vars).unwrap();
            assert!(
                (got - want).abs() < 1e-12,
                "aliased marginal for private formula {i}: {got} vs {want}"
            );
        }
    }
    // And the global cache still answers correctly afterwards.
    let pg2 = prob::marginal(&g, &vars).unwrap();
    assert_eq!(pg, pg2);
}

#[test]
fn marginal_cache_survives_segment_release_with_identical_values() {
    // Releasing marginals per segment must be invisible to results: the
    // next valuation recomputes the same numbers.
    let arena = LineageArena::shared(2);
    let vars = vt(10);
    let _scope = LineageArena::enter(&arena);
    let l = Lineage::and_not(
        &Lineage::or(&Lineage::var(TupleId(1)), &Lineage::var(TupleId(2))),
        Some(&Lineage::var(TupleId(3))),
    );
    let p1 = prob::marginal(&l, &vars).unwrap();
    assert!(vars.valuation_cache_len() > 0);
    vars.release_marginals_for_segment(l.node_ref().segment());
    assert_eq!(vars.valuation_cache_len(), 0);
    let p2 = prob::marginal(&l, &vars).unwrap();
    assert_eq!(p1, p2);
}
