//! Property tests for the continuous LAWA engine (`tp-stream`): for random
//! inputs, *any* arrival permutation within the lateness bound and *any*
//! watermark schedule, the streamed results of all three set operations
//! must be tuple-, interval-, lineage- and marginal-identical to batch LAWA
//! on the same inputs — and the epoch-partitioned executor must agree too.
//!
//! All equivalence checks go through the shared differential oracle
//! (`tests/common/oracle.rs`).

mod common;

use common::oracle::{assert_plateau, assert_stream_matches_batch};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tp_stream::{
    apply_epoched, CollectingSink, EngineConfig, EpochConfig, ReplayConfig, ReplayEvent, Side,
    StreamEngine, StreamScript,
};
use tp_workloads::SynthConfig;
use tpdb::prelude::*;

#[test]
fn random_synth_streams_match_batch_for_all_ops() {
    let mut rng = StdRng::seed_from_u64(0x57AE_A401);
    for case in 0..25u64 {
        let mut vars = VarTable::new();
        let tuples = rng.random_range(50..400usize);
        let facts = rng.random_range(1..8usize);
        let cfg = if rng.random::<bool>() {
            SynthConfig::with_facts(tuples, facts, 100 + case)
        } else {
            SynthConfig::with_zipf_facts(tuples, facts, 1.1, 100 + case)
        };
        let (r, s) = tp_workloads::synth::generate(&cfg, &mut vars);
        let replay = ReplayConfig {
            lateness: rng.random_range(0..10i64),
            advance_every: rng.random_range(1..64usize),
            seed: 500 + case,
        };
        let script = StreamScript::from_pair(&r, &s, &replay);
        let (sink, totals) = script.run(EngineConfig::default());
        assert_eq!(totals.late, [0, 0], "case {case}: scripts never drop");
        assert_stream_matches_batch(&sink, &r, &s, &vars);
    }
}

#[test]
fn adversarial_watermark_schedules_match_batch() {
    // Extremes: an advance after every single arrival, and one big-bang
    // advance at the very end.
    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(&SynthConfig::with_facts(300, 4, 9), &mut vars);
    for advance_every in [1usize, usize::MAX] {
        let script = StreamScript::from_pair(
            &r,
            &s,
            &ReplayConfig {
                lateness: 6,
                advance_every: advance_every.min(10_000),
                seed: 3,
            },
        );
        let (sink, _) = script.run(EngineConfig::default());
        assert_stream_matches_batch(&sink, &r, &s, &vars);
    }
}

#[test]
fn engine_internal_cross_check_passes_on_random_streams() {
    // The engine's own verify mode re-runs batch LAWA over the closed
    // region after every advance; it must stay silent on random streams.
    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(&SynthConfig::with_facts(150, 3, 21), &mut vars);
    let script = StreamScript::from_pair(
        &r,
        &s,
        &ReplayConfig {
            lateness: 5,
            advance_every: 16,
            seed: 11,
        },
    );
    let (sink, _) = script.run(EngineConfig {
        verify_batch: true,
        ..Default::default()
    });
    assert_stream_matches_batch(&sink, &r, &s, &vars);
}

#[test]
fn random_manual_schedules_with_scrambled_pushes_match_batch() {
    // Not script-generated: pushes are scrambled arbitrarily (no lateness
    // discipline at all) and the watermark only ever advances to times at
    // or below every unpushed tuple's start, so nothing is late.
    let mut rng = StdRng::seed_from_u64(0x57AE_A402);
    for case in 0..10u64 {
        let mut vars = VarTable::new();
        let (r, s) =
            tp_workloads::synth::generate(&SynthConfig::with_facts(120, 2, 40 + case), &mut vars);
        let mut events: Vec<(Side, TpTuple)> = r
            .iter()
            .map(|t| (Side::Left, t.clone()))
            .chain(s.iter().map(|t| (Side::Right, t.clone())))
            .collect();
        // Fisher-Yates scramble.
        for i in (1..events.len()).rev() {
            let j = rng.random_range(0..=i);
            events.swap(i, j);
        }
        let mut engine = StreamEngine::default();
        let mut sink = CollectingSink::new();
        let mut min_unpushed: Vec<i64> = Vec::new();
        for (idx, (side, t)) in events.iter().enumerate() {
            engine.push(*side, t.clone());
            // Occasionally advance to the lowest start among unpushed
            // tuples (the tightest watermark that cannot drop anything).
            if rng.random::<f64>() < 0.2 {
                min_unpushed.clear();
                min_unpushed.extend(events[idx + 1..].iter().map(|(_, t)| t.interval.start()));
                let safe = min_unpushed.iter().copied().min().unwrap_or(i64::MAX - 1);
                if safe > engine.watermark() {
                    engine.advance(safe, &mut sink).unwrap();
                }
            }
        }
        engine.finish(&mut sink).unwrap();
        assert_eq!(engine.late_dropped(), [0, 0], "case {case}");
        assert_stream_matches_batch(&sink, &r, &s, &vars);
    }
}

#[test]
fn epoched_executor_matches_batch_on_random_inputs() {
    let mut rng = StdRng::seed_from_u64(0x57AE_A403);
    for case in 0..10u64 {
        let mut vars = VarTable::new();
        let (r, s) = tp_workloads::synth::generate(
            &SynthConfig::with_facts(rng.random_range(50..300usize), 3, 70 + case),
            &mut vars,
        );
        let cfg = EpochConfig {
            epoch_width: rng.random_range(5..200i64),
            threads: rng.random_range(1..6usize),
        };
        for op in SetOp::ALL {
            let got = apply_epoched(op, &r, &s, &cfg, Some(&vars)).canonicalized();
            let batch = apply(op, &r, &s).canonicalized();
            assert_eq!(got, batch, "case {case}, {op}, {cfg:?}");
        }
    }
}

#[test]
fn reclaiming_sliding_stream_plateaus_and_stays_batch_identical() {
    // ISSUE 3 acceptance: a sliding-window replay of ≥ 50 epochs through a
    // *reclaiming* engine must (a) plateau in arena node count at steady
    // state and (b) remain tuple-, lineage- and marginal-identical to
    // batch LAWA over the same inputs.
    use tp_stream::{MaterializingSink, ReclaimConfig, ReplayEvent};
    use tp_workloads::{sliding_synth_stream, SlidingConfig};

    let mut vars = VarTable::new();
    let epochs = 60usize;
    let w = sliding_synth_stream(
        &SlidingConfig {
            epochs,
            ..Default::default()
        },
        &mut vars,
    );
    let mut engine = StreamEngine::new(tp_stream::EngineConfig {
        reclaim: Some(ReclaimConfig {
            keep_epochs: 2,
            ..Default::default()
        }),
        ..Default::default()
    });
    // Deltas are materialized as trees the moment they arrive (the
    // reclaim-mode consumption contract), so results survive retirement
    // and can be re-interned into the global arena for comparison.
    let mut sink = MaterializingSink::new();
    let mut live_samples: Vec<usize> = Vec::new();
    let mut advances = 0usize;
    for event in &w.script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(wm) => {
                engine.advance(*wm, &mut sink).unwrap();
                advances += 1;
                live_samples.push(engine.arena_stats().unwrap().nodes);
            }
        }
    }
    engine.finish(&mut sink).unwrap();
    assert_eq!(engine.late_dropped(), [0, 0]);
    assert!(advances >= 50, "only {advances} epochs replayed");

    // (a) Plateau: steady-state residency stays within 2× of the warm-up
    // footprint (one window's worth of lineage), independent of history.
    let (retired_segments, retired_nodes) = engine.reclaimed();
    assert!(
        retired_segments as usize >= advances / 2,
        "only {retired_segments} segments retired over {advances} advances"
    );
    assert!(retired_nodes > 0);
    assert_eq!(sink.retired_segments, retired_segments);
    assert_plateau(&live_samples, 8, 2.0, "arena nodes");

    // (b) Equivalence: replay the materialized deltas into the global
    // arena and compare — tuples, intervals, lineage (via interning the
    // trees: identical formulas ⇒ identical handles), then marginals.
    common::oracle::assert_materialized_matches_batch(&sink, &w.r, &w.s, &vars);
}

#[test]
fn replay_scripts_cover_out_of_order_arrivals() {
    // Sanity on the harness itself: with a positive lateness bound, the
    // generated arrival order actually differs from the sorted order (the
    // permutations the equivalence tests claim to cover do occur).
    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(&SynthConfig::single_fact(200, 5), &mut vars);
    let script = StreamScript::from_pair(
        &r,
        &s,
        &ReplayConfig {
            lateness: 8,
            advance_every: 32,
            seed: 17,
        },
    );
    let starts: Vec<i64> = script
        .events
        .iter()
        .filter_map(|e| match e {
            ReplayEvent::Arrive(_, t) => Some(t.interval.start()),
            _ => None,
        })
        .collect();
    assert!(
        starts.windows(2).any(|w| w[0] > w[1]),
        "arrivals were fully ordered; the lateness bound generated no permutation"
    );
}
