//! Multi-tenant soak: N tenants with private arenas and sliding var
//! registries, advanced in parallel waves on N worker threads, must
//! produce results **byte-identical** to N serial single-tenant runs; one
//! tenant's retirement must never move another tenant's `ArenaStats`; and
//! every tenant must plateau on *both* memory axes (arena nodes and live
//! vars) while staying batch-equivalent per the differential oracle.

mod common;

use common::oracle::{assert_materialized_matches_batch, assert_plateau};
use tp_stream::{MaterializedDelta, MaterializingSink, ServerConfig, Side, StreamServer, TenantId};
use tp_workloads::{multi_tenant_stream, replay_waves, MultiTenantConfig, TenantScript};
use tpdb::prelude::*;

const TENANTS: usize = 6;
const EPOCHS: usize = 60;

fn workload() -> Vec<TenantScript> {
    multi_tenant_stream(&MultiTenantConfig {
        tenants: TENANTS,
        epochs: EPOCHS,
        ..Default::default()
    })
}

/// Replays the scripts through one server, pushing each tenant's arrivals
/// and driving watermark waves over all tenants (`advance_all`, sharded
/// over `workers` threads). Returns per-tenant `(delta log, node samples,
/// live-var samples)`.
#[allow(clippy::type_complexity)]
fn replay(
    scripts: &[TenantScript],
    workers: usize,
) -> (
    StreamServer<MaterializingSink>,
    Vec<TenantId>,
    Vec<Vec<usize>>,
    Vec<Vec<usize>>,
) {
    let mut server: StreamServer<MaterializingSink> = StreamServer::new(ServerConfig {
        workers,
        ..Default::default()
    });
    let ids: Vec<TenantId> = scripts
        .iter()
        .map(|s| server.add_tenant(s.name.clone(), MaterializingSink::new()))
        .collect();
    let mut node_samples = vec![Vec::new(); scripts.len()];
    let mut var_samples = vec![Vec::new(); scripts.len()];
    // All tenants share the epoch schedule by construction; the shared
    // wave driver pushes each tenant's arrivals and advances the fleet in
    // collective waves, sampling both memory gauges after each wave.
    replay_waves(scripts, &mut server, &ids, |server| {
        for (k, &id) in ids.iter().enumerate() {
            node_samples[k].push(server.arena_stats(id).nodes);
            var_samples[k].push(server.vars(id).live_vars());
        }
    });
    for result in server.finish_all() {
        result.expect("finish never regresses the watermark");
    }
    (server, ids, node_samples, var_samples)
}

#[test]
fn parallel_waves_are_byte_identical_to_serial_single_tenant_runs() {
    let scripts = workload();
    // N tenants on N threads...
    let (parallel, par_ids, node_samples, var_samples) = replay(&scripts, TENANTS);
    // ...versus N separate serial runs, one tenant each.
    for (k, script) in scripts.iter().enumerate() {
        let (serial, ser_ids, _, _) = replay(std::slice::from_ref(script), 1);
        let serial_log: &Vec<MaterializedDelta> = &serial.sink(ser_ids[0]).deltas;
        let parallel_log: &Vec<MaterializedDelta> = &parallel.sink(par_ids[k]).deltas;
        assert_eq!(
            parallel_log, serial_log,
            "tenant {k}: parallel delta log diverged from the serial run"
        );
        // Reclamation bookkeeping is identical too.
        assert_eq!(
            parallel.engine(par_ids[k]).reclaimed(),
            serial.engine(ser_ids[0]).reclaimed(),
            "tenant {k}: retirement schedule diverged"
        );
        assert_eq!(
            parallel.engine(par_ids[k]).reclaimed_vars(),
            serial.engine(ser_ids[0]).reclaimed_vars(),
        );
    }

    // Differential oracle per tenant: stream ≡ batch on tuples, lineage
    // and marginals (control relations re-register in push order, so ids
    // align).
    for (k, script) in scripts.iter().enumerate() {
        let mut control_vars = VarTable::new();
        let (r, s) = script.relations(&mut control_vars);
        assert_materialized_matches_batch(parallel.sink(par_ids[k]), &r, &s, &control_vars);
    }

    // Bounded memory on both axes, per tenant.
    for (k, &id) in par_ids.iter().enumerate() {
        assert!(node_samples[k].len() >= 50, "tenant {k}: too few advances");
        assert_plateau(&node_samples[k], 8, 2.0, &format!("tenant {k} arena nodes"));
        assert_plateau(&var_samples[k], 8, 2.0, &format!("tenant {k} live vars"));
        let (segs, nodes) = parallel.engine(id).reclaimed();
        assert!(segs > 10, "tenant {k}: only {segs} segments retired");
        assert!(nodes > 0);
        assert!(
            parallel.engine(id).reclaimed_vars() > 0,
            "tenant {k}: no vars retired"
        );
        assert_eq!(
            engine_floor(&parallel, id),
            parallel.engine(id).reclaimed_vars()
        );
    }
}

fn engine_floor(server: &StreamServer<MaterializingSink>, id: TenantId) -> u64 {
    server.vars(id).released_vars()
}

#[test]
fn one_tenants_retirement_never_moves_anothers_stats() {
    let scripts = workload();
    let (mut server, ids, _, _) = replay(&scripts, TENANTS);
    // Snapshot everyone, then drive ONLY tenant 0 through more epochs
    // (with retirement), and verify nobody else's gauges moved.
    let before: Vec<_> = ids
        .iter()
        .map(|&id| {
            (
                server.arena_stats(id),
                server.vars(id).live_vars(),
                server.engine(id).reclaimed(),
            )
        })
        .collect();
    let t0 = ids[0];
    let hot = server.engine(t0).watermark();
    for e in 1..=12i64 {
        let base = hot + e * 64;
        server
            .push_row(
                t0,
                Side::Left,
                Fact::single(0i64),
                Interval::at(base, base + 9),
                0.5,
            )
            .unwrap();
        server.advance(t0, base + 16).unwrap();
    }
    let after_t0 = server.engine(t0).reclaimed();
    assert!(
        after_t0.0 > before[0].2 .0,
        "tenant 0 was supposed to retire more segments"
    );
    for (k, &id) in ids.iter().enumerate().skip(1) {
        assert_eq!(
            server.arena_stats(id),
            before[k].0,
            "tenant {k}: ArenaStats moved while only tenant 0 advanced"
        );
        assert_eq!(server.vars(id).live_vars(), before[k].1);
        assert_eq!(server.engine(id).reclaimed(), before[k].2);
    }
}
