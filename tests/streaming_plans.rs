//! Differential tests of the standing incremental pipelines
//! (`tp_stream::pipeline`): a compiled `tp_relalg::Plan` maintained over
//! the engine's delta streams must produce a materialized view
//! **row-identical** to executing the batch plan over the closed region —
//! for every plan shape (select/project/join/union/distinct/aggregate),
//! every arrival permutation within the lateness bound, every watermark
//! schedule, sequential and region-parallel sweeps, reclaim mode on and
//! off. In reclaim mode, operator state must additionally **plateau**
//! under extend-dominated workloads (the bounded-memory claim).
//!
//! The batch twin is constructed with `encode_relation` over the closed
//! output of a `CollectingSink` (the proven delta-apply semantics) and
//! `bind_sources` + `Plan::execute` — so both sides share exactly one
//! source encoding and one batch executor.

mod common;

use common::oracle::assert_plateau;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tp_relalg::{bind_sources, AggFn, CmpOp, Plan, Predicate, Relation, Row, Schema};
use tp_stream::{
    encode_relation, CollectingSink, EngineConfig, ParallelConfig, ReclaimConfig, ReplayConfig,
    ReplayEvent, Side, StreamEngine, StreamScript,
};
use tp_workloads::SynthConfig;
use tpdb::prelude::*;

/// The source schema every plan below reads: synth facts are single-value,
/// so an encoded row is `[k, ts, te]`.
fn source_schema() -> Schema {
    Schema::new(["k", "ts", "te"])
}

fn leaf() -> Plan {
    Plan::values(Relation::empty(source_schema()))
}

/// The four engine configurations of the sweep matrix.
fn engine_config(parallel: bool, reclaim: bool) -> EngineConfig {
    EngineConfig {
        parallel: parallel.then_some(ParallelConfig {
            workers: 3,
            min_tuples: 8,
            cuts: None,
        }),
        reclaim: reclaim.then(|| ReclaimConfig {
            keep_epochs: 2,
            ..Default::default()
        }),
        ..Default::default()
    }
}

/// Plan shapes under test, each with its taps. Every shape exercises a
/// different operator mix; together they cover all eight lowered ops.
fn plan_cases() -> Vec<(&'static str, Plan, Vec<SetOp>)> {
    vec![
        (
            "hash_join+aggregate",
            leaf()
                .hash_join(leaf(), vec![0], vec![0])
                .aggregate(vec![0], vec![AggFn::Count, AggFn::Max(2), AggFn::Min(1)]),
            vec![SetOp::Union, SetOp::Intersect],
        ),
        (
            "select+union_all+project+distinct",
            leaf()
                .select(Predicate::col_const(
                    CmpOp::Ge,
                    1,
                    tp_core::value::Value::int(0),
                ))
                .union_all(leaf())
                .project(vec![0])
                .distinct(),
            vec![SetOp::Except, SetOp::Union],
        ),
        (
            "nl_join(key+overlap)+select",
            // Key equality inside the theta predicate keeps the join
            // output linear (pure overlap is quadratic in stream pieces —
            // fine for the batch executor, pathological for a standing
            // view); the trailing select then trims by time.
            leaf()
                .nl_join(
                    leaf(),
                    Predicate::col_eq(0, 3).and(Predicate::overlap(1, 2, 4, 5)),
                )
                .select(Predicate::col_const(
                    CmpOp::Ge,
                    1,
                    tp_core::value::Value::int(2),
                )),
            vec![SetOp::Union, SetOp::Except],
        ),
    ]
}

/// Executes the batch plan over the closed-region output of the sink's
/// tapped relations, canonically sorted.
fn batch_rows(plan: &Plan, sink: &CollectingSink, taps: &[SetOp]) -> Vec<Row> {
    let schema = source_schema();
    let tables: Vec<Relation> = taps
        .iter()
        .map(|&op| encode_relation(&sink.relation(op), &schema))
        .collect();
    let mut rows = bind_sources(plan, &tables).execute().rows;
    rows.sort();
    rows
}

/// Replays a script through an engine with the plan attached and returns
/// `(materialized pipeline rows, batch twin rows, advances)`.
fn run_case(
    plan: &Plan,
    taps: &[SetOp],
    script: &StreamScript,
    cfg: EngineConfig,
) -> (Vec<Row>, Vec<Row>, usize) {
    let mut engine = StreamEngine::with_plan(cfg, plan, taps).expect("plan compiles");
    let mut sink = CollectingSink::new();
    let mut advances = 0usize;
    for event in &script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(wm) => {
                engine.advance(*wm, &mut sink).unwrap();
                advances += 1;
            }
        }
    }
    engine.finish(&mut sink).unwrap();
    assert_eq!(engine.late_dropped(), [0, 0], "scripts never drop");
    let got = engine.pipeline().unwrap().materialized().rows;
    let expect = batch_rows(plan, &sink, taps);
    (got, expect, advances)
}

#[test]
fn pipelines_match_batch_across_plans_and_engine_matrix() {
    // The full matrix: 3 plan shapes × sequential/parallel × reclaim
    // on/off, each over a fresh random input and replay schedule.
    let mut rng = StdRng::seed_from_u64(0x51A9_0001);
    for (case, (name, plan, taps)) in plan_cases().into_iter().enumerate() {
        for parallel in [false, true] {
            for reclaim in [false, true] {
                let mut vars = VarTable::new();
                // Keys spread over enough facts to keep per-key piece
                // counts small: IVM join/aggregate maintenance is
                // O(per-key state) per delta, so a few hot keys over many
                // tuples is the pathological shape, not the realistic one.
                let tuples = rng.random_range(60..180usize);
                let facts = rng.random_range(5..12usize);
                let (r, s) = tp_workloads::synth::generate(
                    &SynthConfig::with_facts(tuples, facts, 900 + case as u64),
                    &mut vars,
                );
                let script = StreamScript::from_pair(
                    &r,
                    &s,
                    &ReplayConfig {
                        lateness: rng.random_range(0..8i64),
                        advance_every: rng.random_range(1..48usize),
                        seed: 70 + case as u64,
                    },
                );
                let (got, expect, _) =
                    run_case(&plan, &taps, &script, engine_config(parallel, reclaim));
                assert_eq!(
                    got, expect,
                    "{name}: pipeline != batch (parallel={parallel}, reclaim={reclaim})"
                );
            }
        }
    }
}

#[test]
fn arrival_permutations_and_watermark_schedules_are_invisible() {
    // The same input under different arrival permutations and watermark
    // schedules must materialize the *identical* view — the pipeline's
    // output is a function of the closed region, not of the replay.
    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(&SynthConfig::with_facts(100, 8, 3111), &mut vars);
    let (name, plan, taps) = plan_cases().remove(0);
    let mut views: Vec<Vec<Row>> = Vec::new();
    for (perm_seed, advance_every) in [(1u64, 1usize), (2, 17), (3, 10_000)] {
        let script = StreamScript::from_pair(
            &r,
            &s,
            &ReplayConfig {
                lateness: 6,
                advance_every,
                seed: perm_seed,
            },
        );
        let (got, expect, _) = run_case(&plan, &taps, &script, engine_config(false, false));
        assert_eq!(
            got, expect,
            "{name}: schedule ({perm_seed},{advance_every})"
        );
        views.push(got);
    }
    assert!(!views[0].is_empty(), "vacuous: empty view proves nothing");
    assert!(
        views.windows(2).all(|w| w[0] == w[1]),
        "materialized view varied across replay schedules"
    );
}

#[test]
fn reclaiming_pipeline_state_plateaus_on_extend_dominated_streams() {
    // Immortal facts cut by the watermark: after warm-up every advance
    // re-emits each fact's output as an Extend, so pipeline operators only
    // retract-and-regrow standing rows. With interior reclamation on, the
    // engine retires history underneath the pipeline — whose state stores
    // owned lineage trees and must neither dangle nor grow.
    let (_, plan, taps) = plan_cases().remove(0);
    let epochs = 60i64;
    let mut engine =
        StreamEngine::with_plan(engine_config(false, true), &plan, &taps).expect("plan compiles");
    let mut sink = CollectingSink::new();
    for f in 0..5i64 {
        for (side, off) in [(Side::Left, 0u64), (Side::Right, 1)] {
            engine.push(
                side,
                TpTuple::new(
                    Fact::single(f),
                    Lineage::var(TupleId(f as u64 * 2 + off)),
                    Interval::at(0, epochs * 10),
                ),
            );
        }
    }
    let mut state_samples = Vec::new();
    for epoch in 0..epochs {
        engine.advance((epoch + 1) * 10, &mut sink).unwrap();
        state_samples.push(engine.pipeline().unwrap().state_rows());
    }
    engine.finish(&mut sink).unwrap();
    // History actually retired underneath the standing state.
    let (retired_segments, _) = engine.reclaimed();
    assert!(
        retired_segments > 0,
        "reclaim never fired; the plateau would be vacuous"
    );
    assert_plateau(&state_samples, 4, 1.0, "pipeline operator state");
    // And the view still matches batch over the full closed region.
    let got = engine.pipeline().unwrap().materialized().rows;
    let expect = batch_rows(&plan, &sink, &taps);
    assert!(!expect.is_empty());
    assert_eq!(got, expect, "reclaiming pipeline != batch");
}

#[test]
fn pipeline_stats_and_metadata_are_live() {
    let (_, plan, taps) = plan_cases().remove(0);
    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(&SynthConfig::with_facts(80, 3, 77), &mut vars);
    let script = StreamScript::from_pair(
        &r,
        &s,
        &ReplayConfig {
            lateness: 4,
            advance_every: 16,
            seed: 5,
        },
    );
    let mut engine =
        StreamEngine::with_plan(engine_config(false, false), &plan, &taps).expect("compiles");
    let mut sink = CollectingSink::new();
    let mut pipeline_deltas = 0u64;
    for event in &script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(wm) => {
                pipeline_deltas += engine.advance(*wm, &mut sink).unwrap().pipeline_deltas;
            }
        }
    }
    pipeline_deltas += engine.finish(&mut sink).unwrap().pipeline_deltas;
    let p = engine.pipeline().unwrap();
    assert_eq!(p.taps(), &taps[..]);
    assert_eq!(p.schema().columns(), &["l.k", "count", "max_2", "min_1"]);
    assert_eq!(p.deltas_total(), pipeline_deltas);
    assert!(p.advances() > 0);
    // Every operator of the plan saw traffic.
    for (op_name, emitted) in p.operator_deltas() {
        assert!(emitted > 0, "operator {op_name} never emitted");
    }
}
