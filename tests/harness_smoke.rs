//! Smoke tests of the benchmark harness: the tables render with the right
//! content and the figure machinery produces sane series on miniature
//! inputs (the full sweeps run in `cargo run -p tp-bench --bin experiments`).

use tp_baselines::Approach;
use tp_bench::runner::{default_cap, run_one};
use tpdb::prelude::*;

#[test]
fn table2_matches_paper() {
    let rendered = tp_bench::table2_support();
    // One row per approach, LAWA and NORM full "yes" rows.
    for name in ["LAWA", "NORM", "TPDB", "OIP", "TI"] {
        assert!(rendered.contains(name), "{name} missing");
    }
    let row = |name: &str| {
        rendered
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap()
            .to_string()
    };
    assert_eq!(row("LAWA").matches("yes").count(), 3);
    assert_eq!(row("NORM").matches("yes").count(), 3);
    assert_eq!(row("TPDB").matches("yes").count(), 2);
    assert_eq!(row("OIP").matches("yes").count(), 1);
    assert_eq!(row("TI").matches("yes").count(), 1);
}

#[test]
fn run_one_measures_supported_combinations_only() {
    let mut vars = VarTable::new();
    let (r, s) =
        tp_workloads::synth::generate(&tp_workloads::SynthConfig::single_fact(300, 3), &mut vars);
    for a in Approach::ALL {
        for op in SetOp::ALL {
            let ms = run_one(a, op, &r, &s, default_cap(a));
            assert_eq!(ms.is_some(), a.supports(op), "{a} {op}");
            if let Some(ms) = ms {
                assert!(ms >= 0.0);
            }
        }
    }
}

#[test]
fn scaled_respects_default() {
    if std::env::var("TP_SCALE").is_err() {
        assert_eq!(tp_bench::scaled(2_000), 2_000);
    }
}

#[test]
fn experiment_result_rendering() {
    use tp_bench::experiments::{ExperimentResult, Series};
    let res = ExperimentResult {
        id: "Fig. T".into(),
        title: "test".into(),
        x_label: "tuples".into(),
        xs: vec!["1K".into(), "2K".into()],
        series: vec![
            Series {
                name: "LAWA".into(),
                values: vec![Some(1.25), Some(2.5)],
            },
            Series {
                name: "NORM".into(),
                values: vec![Some(10.0), None],
            },
        ],
        notes: vec!["capped".into()],
    };
    let text = res.render();
    assert!(text.contains("Fig. T"));
    assert!(text.contains("1.2ms") || text.contains("1.3ms"));
    assert!(text.contains('-'));
    assert!(text.contains("note: capped"));
    assert!(res.series_of("LAWA").is_some());
    assert!(res.series_of("XX").is_none());
}

#[test]
fn table3_reports_measured_factors() {
    // Keep it cheap: the function scales with TP_SCALE, which is unset in
    // tests (10K tuples per preset).
    let rendered = tp_bench::table3_datasets();
    assert!(rendered.contains("0.03"));
    assert!(rendered.contains("0.8"));
    assert!(rendered.contains("measured"));
}
