//! Integration tests for the extension surface beyond the paper's core:
//! projection, interval sets, relation I/O, lineage transformations and
//! conditional probabilities — exercised together through the public API.

mod common;

use common::supermarket_db;
use tpdb::core::interval_set::IntervalSet;
use tpdb::core::ops::project;
use tpdb::prelude::*;

#[test]
fn projection_composes_with_set_operations() {
    // Two-attribute inventory (product, store); project to product, then
    // subtract the per-product order stream.
    let mut db = Database::new();
    let f = |p: &str, s: i64| Fact::new(vec![Value::str(p), Value::int(s)]);
    db.add_base_relation(
        "stock",
        vec![
            (f("milk", 1), Interval::at(1, 5), 0.9),
            (f("milk", 2), Interval::at(3, 8), 0.8),
            (f("chips", 1), Interval::at(2, 6), 0.7),
        ],
    )
    .unwrap();
    db.add_base_relation(
        "orders",
        vec![(Fact::single("milk"), Interval::at(4, 7), 0.5)],
    )
    .unwrap();

    let any_store = project(db.relation("stock").unwrap(), &[0]);
    assert!(any_store.check_duplicate_free().is_ok());
    let unordered = except(&any_store, db.relation("orders").unwrap());
    assert!(unordered.satisfies_change_preservation());
    // 'milk' timeline: store boundaries at 3 and 5 (projection), order
    // boundaries at 4 and 7 (difference) — five maximal segments.
    let milk: Vec<String> = unordered
        .canonicalized()
        .iter()
        .filter(|t| t.fact == Fact::single("milk"))
        .map(|t| t.interval.to_string())
        .collect();
    assert_eq!(milk, vec!["[1,3)", "[3,4)", "[4,5)", "[5,7)", "[7,8)"]);
    for t in unordered.iter() {
        let p = prob::marginal(&t.lineage, db.vars()).unwrap();
        assert!(p > 0.0 && p <= 1.0);
    }
}

#[test]
fn interval_sets_mirror_set_operation_coverage() {
    // Coverage algebra agrees with the TP operations when lineage is
    // ignored: coverage(r op s) per fact equals the set-algebra of the
    // coverages (for union/except; intersection coverage = both).
    let db = supermarket_db();
    let a = db.relation("a").unwrap();
    let c = db.relation("c").unwrap();
    for fact in ["milk", "chips", "dates"] {
        let fact = Fact::single(fact);
        let ca = IntervalSet::coverage_of(a, &fact);
        let cc = IntervalSet::coverage_of(c, &fact);
        assert_eq!(IntervalSet::coverage_of(&union(a, c), &fact), ca.union(&cc));
        assert_eq!(
            IntervalSet::coverage_of(&intersect(a, c), &fact),
            ca.intersect(&cc)
        );
        // −Tp keeps *all* of r's coverage (probabilistic difference).
        assert_eq!(IntervalSet::coverage_of(&except(a, c), &fact), ca);
    }
}

#[test]
fn relation_io_roundtrip_through_query() {
    // Dump base relations, reload into a fresh database, re-run the Fig. 1
    // query: same facts/intervals/probabilities.
    let db = supermarket_db();
    let mut db2 = Database::new();
    for name in ["a", "b", "c"] {
        let text = db.dump_relation(name).unwrap();
        db2.load_relation(name, &text).unwrap();
    }
    let q = Query::parse("c except (a union b)").unwrap();
    let profile = |db: &Database| -> Vec<(String, String, String)> {
        q.eval(db)
            .unwrap()
            .canonicalized()
            .iter()
            .map(|t| {
                (
                    t.fact.to_string(),
                    t.interval.to_string(),
                    format!("{:.6}", prob::marginal(&t.lineage, db.vars()).unwrap()),
                )
            })
            .collect()
    };
    assert_eq!(profile(&db), profile(&db2));
}

#[test]
fn nnf_of_query_lineage_preserves_probability() {
    let db = supermarket_db();
    let q = Query::parse("(a union b) except (a intersect c)").unwrap();
    for t in q.eval(&db).unwrap().iter() {
        let nnf = t.lineage.to_nnf();
        assert!(nnf.is_nnf());
        let p1 = prob::exact(&t.lineage, db.vars()).unwrap();
        let p2 = prob::exact(&nnf, db.vars()).unwrap();
        assert!((p1 - p2).abs() < 1e-12);
    }
}

#[test]
fn conditional_probability_on_query_results() {
    // P(in stock | bought): conditional over lineages of matching tuples.
    let db = supermarket_db();
    let a = db.relation("a").unwrap(); // bought
    let c = db.relation("c").unwrap(); // stock
    let both = intersect(c, a);
    for t in both.iter() {
        // Split and(λc, λa) back apart for the test.
        let LineageKind::And(lc, la) = t.lineage.kind() else {
            panic!("intersection lineage must be a conjunction");
        };
        let p_cond = prob::conditional(&lc, &la, db.vars()).unwrap();
        // Base tuples are independent: P(c | a) = P(c).
        let p_c = prob::exact(&lc, db.vars()).unwrap();
        assert!((p_cond - p_c).abs() < 1e-12);
    }
}

#[test]
fn projection_then_query_via_database() {
    // Derived relations can be registered and queried by name.
    let mut db = supermarket_db();
    let merged = project(db.relation("c").unwrap(), &[0]);
    db.add_relation("stocked", merged).unwrap();
    let q = Query::parse("stocked except a").unwrap();
    let out = q.eval(&db).unwrap();
    assert!(!out.is_empty());
    assert!(out.check_duplicate_free().is_ok());
}
