//! Differentials of the adaptive pipeline layer (PR 10): rate-aware plan
//! re-optimization, multi-plan operator-state sharing, and dirty-key
//! recompute under join-key skew.
//!
//! * **Plan swap** — an engine re-optimizing mid-run must emit a delta log
//!   **byte-identical** to the frozen engine's, and its standing view must
//!   match the batch twin, across sequential/parallel × reclaim on/off.
//!   The swap itself is proven to have happened (the keyed nested-loop
//!   join becomes a hash join, `reopts() ≥ 1`).
//! * **State sharing** — a shared multi-plan pipeline must materialize
//!   each plan's view row-identical to a dedicated single-plan engine and
//!   to the batch twin, with strictly sub-additive standing state.
//! * **Skewed dirty keys** — under Zipf-hot keys, the grouped operators
//!   must republish at most the touched keys of each advance (≤ 2 deltas
//!   per dirty group), never the full standing group set.
//! * **Valuation** — the shared views' ∨-folded lineage must valuate
//!   through the lane-blocked batch kernel within 1e-12 of the memoized
//!   per-root evaluator (the generator-wide kernel sweep lives in
//!   `raw_speed.rs`).

mod common;

use std::collections::HashSet;

use common::oracle::assert_delta_logs_identical;
use tp_relalg::{bind_sources, AggFn, Plan, Predicate, Relation, Row, Schema};
use tp_stream::{
    encode_relation, CollectingSink, Delta, EngineConfig, MaterializingSink, ParallelConfig,
    ReclaimConfig, ReplayConfig, ReplayEvent, StreamEngine, StreamScript, StreamSink,
};
use tp_workloads::{skewed_synth_stream, SkewedConfig, SynthConfig};
use tpdb::prelude::*;

fn source_schema() -> Schema {
    Schema::new(["k", "ts", "te"])
}

fn leaf() -> Plan {
    Plan::values(Relation::empty(source_schema()))
}

fn engine_config(parallel: bool, reclaim: bool) -> EngineConfig {
    EngineConfig {
        parallel: parallel.then_some(ParallelConfig {
            workers: 3,
            min_tuples: 8,
            cuts: None,
        }),
        reclaim: reclaim.then(|| ReclaimConfig {
            keep_epochs: 2,
            ..Default::default()
        }),
        ..Default::default()
    }
}

fn batch_rows(plan: &Plan, sink: &CollectingSink, taps: &[SetOp]) -> Vec<Row> {
    let schema = source_schema();
    let tables: Vec<Relation> = taps
        .iter()
        .map(|&op| encode_relation(&sink.relation(op), &schema))
        .collect();
    let mut rows = bind_sources(plan, &tables).execute().rows;
    rows.sort();
    rows
}

fn drive(engine: &mut StreamEngine, script: &StreamScript, sink: &mut impl StreamSink) {
    for event in &script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(wm) => {
                engine.advance(*wm, sink).unwrap();
            }
        }
    }
    engine.finish(sink).unwrap();
}

/// A keyed nested-loop join the re-optimizer provably rewrites into a hash
/// join once it has observed any source rates.
fn swap_bait_plan() -> (Plan, Vec<SetOp>) {
    let plan = leaf()
        .nl_join(leaf(), Predicate::col_eq(0, 3))
        .aggregate(vec![0], vec![AggFn::Count, AggFn::Max(2)]);
    (plan, vec![SetOp::Union, SetOp::Intersect])
}

#[test]
fn plan_swap_is_invisible_in_delta_log_and_view_across_engine_matrix() {
    for parallel in [false, true] {
        for reclaim in [false, true] {
            let mut vars = VarTable::new();
            let w = tp_workloads::synth_stream(
                &SynthConfig::with_facts(140, 9, 4242),
                &ReplayConfig {
                    lateness: 6,
                    advance_every: 24,
                    seed: 11,
                },
                &mut vars,
            );
            let (plan, taps) = swap_bait_plan();
            let ctx = format!("parallel={parallel}, reclaim={reclaim}");

            let mut frozen =
                StreamEngine::with_plan(engine_config(parallel, reclaim), &plan, &taps).unwrap();
            let mut frozen_sink = MaterializingSink::new();
            drive(&mut frozen, &w.script, &mut frozen_sink);

            let adaptive_cfg = EngineConfig {
                reopt_every: Some(3),
                ..engine_config(parallel, reclaim)
            };
            let mut adaptive = StreamEngine::with_plan(adaptive_cfg, &plan, &taps).unwrap();
            let mut adaptive_sink = MaterializingSink::new();
            drive(&mut adaptive, &w.script, &mut adaptive_sink);

            // The swap actually happened and installed the hash join.
            let p = adaptive.pipeline().unwrap();
            assert!(p.reopts() >= 1, "{ctx}: re-optimization never fired");
            assert!(
                p.operator_deltas().iter().any(|(n, _)| *n == "hash_join"),
                "{ctx}: swapped pipeline still runs the nested-loop join"
            );
            assert!(
                frozen
                    .pipeline()
                    .unwrap()
                    .operator_deltas()
                    .iter()
                    .any(|(n, _)| *n == "nl_join"),
                "{ctx}: frozen engine should keep the nested-loop join"
            );

            // Byte-identical delta logs and row-identical views.
            assert_delta_logs_identical(&frozen_sink, &adaptive_sink, &ctx);
            let frozen_view = frozen.pipeline().unwrap().materialized().rows;
            let adaptive_view = p.materialized().rows;
            assert!(!frozen_view.is_empty(), "{ctx}: vacuous");
            assert_eq!(adaptive_view, frozen_view, "{ctx}: views diverged");

            // And both match the batch twin over the closed region.
            let mut check = StreamEngine::with_plan(
                EngineConfig {
                    reopt_every: Some(3),
                    ..engine_config(parallel, reclaim)
                },
                &plan,
                &taps,
            )
            .unwrap();
            let mut collecting = CollectingSink::new();
            drive(&mut check, &w.script, &mut collecting);
            let expect = batch_rows(&plan, &collecting, &taps);
            assert_eq!(
                check.pipeline().unwrap().materialized().rows,
                expect,
                "{ctx}: adaptive pipeline != batch"
            );
        }
    }
}

/// Three alert rules over one shared `Union ⋈ Intersect` hash join.
fn shared_rules() -> (Vec<Plan>, Vec<Vec<SetOp>>) {
    let join = || leaf().hash_join(leaf(), vec![0], vec![0]);
    let plans = vec![
        join().aggregate(vec![0], vec![AggFn::Count, AggFn::Max(2)]),
        join().project(vec![0]).distinct(),
        join().aggregate(vec![0], vec![AggFn::Min(1)]),
    ];
    let taps = vec![vec![SetOp::Union, SetOp::Intersect]; 3];
    (plans, taps)
}

#[test]
fn shared_pipeline_matches_solo_engines_and_batch_with_subadditive_state() {
    for parallel in [false, true] {
        for reclaim in [false, true] {
            let mut vars = VarTable::new();
            let w = tp_workloads::synth_stream(
                &SynthConfig::with_facts(150, 10, 515),
                &ReplayConfig {
                    lateness: 5,
                    advance_every: 32,
                    seed: 12,
                },
                &mut vars,
            );
            let (plans, taps) = shared_rules();
            let ctx = format!("parallel={parallel}, reclaim={reclaim}");

            let mut shared =
                StreamEngine::with_plans(engine_config(parallel, reclaim), &plans, &taps).unwrap();
            let mut sink = CollectingSink::new();
            drive(&mut shared, &w.script, &mut sink);

            let mut solo_state = 0usize;
            for (i, plan) in plans.iter().enumerate() {
                let mut solo =
                    StreamEngine::with_plan(engine_config(parallel, reclaim), plan, &taps[i])
                        .unwrap();
                let mut solo_sink = CollectingSink::new();
                drive(&mut solo, &w.script, &mut solo_sink);
                let expect = batch_rows(plan, &solo_sink, &taps[i]);
                assert!(!expect.is_empty(), "{ctx}: plan #{i} vacuous");
                let solo_view = solo.pipeline().unwrap().materialized().rows;
                let shared_view = shared.pipeline().unwrap().materialized_view(i).rows;
                assert_eq!(shared_view, expect, "{ctx}: shared view #{i} != batch");
                assert_eq!(shared_view, solo_view, "{ctx}: shared view #{i} != solo");
                solo_state += solo.pipeline().unwrap().state_rows();
            }
            let sp = shared.pipeline().unwrap();
            assert!(
                sp.shared_operators() >= 3,
                "{ctx}: join + sources should be shared, got {}",
                sp.shared_operators()
            );
            assert!(
                sp.state_rows() < solo_state,
                "{ctx}: shared state {} not sub-additive vs duplicated {solo_state}",
                sp.state_rows()
            );
        }
    }
}

#[test]
fn shared_views_valuate_through_batch_kernel_within_1e12() {
    let mut vars = VarTable::new();
    let w = tp_workloads::synth_stream(
        &SynthConfig::with_facts(120, 8, 909),
        &ReplayConfig {
            lateness: 4,
            advance_every: 20,
            seed: 13,
        },
        &mut vars,
    );
    // Three rules over a shared `Union → project → distinct` chain. The
    // first view's rows keep the tap tuples' 1OF lineage (Corollary 1), so
    // the lane-blocked kernel genuinely runs instead of routing everything
    // to the per-root fallback; the narrower projections ∨-merge only the
    // few rows that collide after a column drop, exercising the fallback
    // on small non-1OF cones.
    let prefix = || leaf().project(vec![0, 1, 2]).distinct();
    let plans = vec![
        prefix(),
        prefix().project(vec![0, 2]).distinct(),
        prefix().project(vec![0, 1]).distinct(),
    ];
    let taps = vec![vec![SetOp::Union]; 3];
    let mut engine = StreamEngine::with_plans(engine_config(false, false), &plans, &taps).unwrap();
    let mut sink = CollectingSink::new();
    drive(&mut engine, &w.script, &mut sink);
    let p = engine.pipeline().unwrap();
    assert!(
        p.shared_operators() >= 3,
        "source + project + distinct should be shared, got {}",
        p.shared_operators()
    );
    let mut kernel_roots = 0usize;
    for view in 0..plans.len() {
        let out = p.materialized_lineage_view(view);
        assert!(!out.is_empty(), "view #{view} vacuous: no standing lineage");
        let lineages: Vec<Lineage> = out
            .iter()
            .map(|(_, tree)| Lineage::from_tree(tree))
            .collect();
        kernel_roots += lineages
            .iter()
            .filter(|l| l.is_one_occurrence_form())
            .count();
        let batched = prob::marginal_batch(&lineages, &vars).unwrap();
        for (i, (l, b)) in lineages.iter().zip(&batched).enumerate() {
            let single = prob::marginal(l, &vars).unwrap();
            assert!(
                (single - b).abs() <= 1e-12,
                "view #{view} root #{i}: memoized {single} vs lane-blocked kernel {b}"
            );
        }
    }
    // Non-vacuity: the kernel must have owned a real share of the batch.
    assert!(
        kernel_roots > 100,
        "only {kernel_roots} 1OF roots — the kernel path is vacuous here"
    );
}

/// Wraps `CollectingSink` and counts the distinct fact keys the pipeline's
/// taps delivered between consecutive watermarks — the "touched keys" the
/// dirty-key recompute bound is stated against.
struct TouchCountingSink {
    inner: CollectingSink,
    taps: Vec<SetOp>,
    touched: HashSet<Fact>,
    per_advance: Vec<usize>,
}

impl TouchCountingSink {
    fn new(taps: &[SetOp]) -> Self {
        TouchCountingSink {
            inner: CollectingSink::new(),
            taps: taps.to_vec(),
            touched: HashSet::new(),
            per_advance: Vec::new(),
        }
    }
}

impl StreamSink for TouchCountingSink {
    fn on_delta(&mut self, op: SetOp, delta: &Delta) {
        if self.taps.contains(&op) {
            let fact = match delta {
                Delta::Insert(t) => t.fact.clone(),
                Delta::Extend { fact, .. } => fact.clone(),
            };
            self.touched.insert(fact);
        }
        self.inner.on_delta(op, delta);
    }

    fn on_watermark(&mut self, w: tp_core::interval::TimePoint) {
        self.per_advance.push(self.touched.len());
        self.touched.clear();
        self.inner.on_watermark(w);
    }
}

#[test]
fn skewed_keys_republish_at_most_touched_groups_per_advance() {
    let mut vars = VarTable::new();
    let w = skewed_synth_stream(
        &SkewedConfig {
            epochs: 24,
            per_epoch: 32,
            slots: 8,
            exponent: 1.5,
            stride: 512,
            seed: 23,
        },
        &mut vars,
    );
    let plan = leaf()
        .hash_join(leaf(), vec![0], vec![0])
        .aggregate(vec![0], vec![AggFn::Count, AggFn::Max(2)]);
    let taps = [SetOp::Union, SetOp::Intersect];
    let mut engine = StreamEngine::with_plan(engine_config(false, false), &plan, &taps).unwrap();
    let mut sink = TouchCountingSink::new(&taps);
    let agg_emitted = |engine: &StreamEngine| -> u64 {
        engine
            .pipeline()
            .unwrap()
            .operator_deltas()
            .iter()
            .find(|(n, _)| *n == "aggregate")
            .map(|&(_, e)| e)
            .unwrap()
    };
    let mut prev = 0u64;
    let mut republished = Vec::new();
    for event in &w.script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(wm) => {
                engine.advance(*wm, &mut sink).unwrap();
                let now = agg_emitted(&engine);
                republished.push(now - prev);
                prev = now;
            }
        }
    }
    engine.finish(&mut sink).unwrap();
    republished.push(agg_emitted(&engine) - prev);
    // `finish` flushes the residual region without a closing watermark;
    // pair its republish count with the taps delivered since the last one.
    let residual = sink.touched.len();
    sink.per_advance.push(residual);
    assert_eq!(republished.len(), sink.per_advance.len());

    // The dirty-key bound: a touched group republishes at most a
    // retract + regrow pair, so ≤ 2 deltas per touched key — never the
    // full standing group set.
    let mut partial_advances = 0usize;
    let standing_groups = engine
        .pipeline()
        .unwrap()
        .operator_stats()
        .iter()
        .find(|(n, _, _, _)| *n == "aggregate")
        .map(|&(_, rows, _, _)| rows)
        .unwrap();
    for (i, (&rep, &touched)) in republished.iter().zip(&sink.per_advance).enumerate() {
        assert!(
            rep <= 2 * touched as u64,
            "advance #{i}: republished {rep} > 2 × {touched} touched keys"
        );
        if touched > 0 && touched < standing_groups {
            partial_advances += 1;
        }
    }
    // Non-vacuity: the Zipf tail guarantees advances that touch only a
    // subset of the standing groups — exactly where a full recompute
    // would have violated the bound.
    assert!(
        partial_advances > 5,
        "skew never produced partial advances (standing {standing_groups}); bound is vacuous"
    );

    // And the final view still matches the batch twin.
    let expect = batch_rows(&plan, &sink.inner, &taps);
    assert!(!expect.is_empty());
    assert_eq!(engine.pipeline().unwrap().materialized().rows, expect);
}
