//! End-to-end reproduction of every worked example in the paper: Fig. 1c,
//! Example 2, Fig. 3, Example 3/Fig. 4 and Example 4/Fig. 6 — through the
//! public facade only.

mod common;

use common::supermarket_db;
use tpdb::core::window::Lawa;
use tpdb::prelude::*;

fn probs_of(rel: &TpRelation, db: &Database) -> Vec<(String, String, f64)> {
    rel.canonicalized()
        .iter()
        .map(|t| {
            (
                t.fact.to_string(),
                t.interval.to_string(),
                prob::marginal(&t.lineage, db.vars()).unwrap(),
            )
        })
        .collect()
}

#[test]
fn fig1c_query_result() {
    let db = supermarket_db();
    let q = Query::parse("c except (a union b)").unwrap();
    let out = q.eval(&db).unwrap();
    let got = probs_of(&out, &db);
    // Fig. 1c, in canonical (fact, start) order.
    let want: Vec<(&str, &str, f64)> = vec![
        ("'chips'", "[4,5)", 0.014),
        ("'chips'", "[7,9)", 0.8),
        ("'milk'", "[1,2)", 0.6),
        ("'milk'", "[2,4)", 0.42),
        ("'milk'", "[6,8)", 0.196),
    ];
    assert_eq!(got.len(), want.len());
    for ((gf, gi, gp), (wf, wi, wp)) in got.iter().zip(want) {
        assert_eq!(gf, wf);
        assert_eq!(gi, wi);
        assert!((gp - wp).abs() < 1e-9, "{gf}@{gi}: {gp} vs {wp}");
    }
}

#[test]
fn fig1c_lineage_rendering() {
    let db = supermarket_db();
    let q = Query::parse("c except (a union b)").unwrap();
    let out = q.eval(&db).unwrap().canonicalized();
    let rendered: Vec<String> = out
        .iter()
        .map(|t| t.lineage.display_with(db.vars().resolver()).to_string())
        .collect();
    assert_eq!(
        rendered,
        vec!["c3∧¬(a2∨b2)", "c4", "c1", "c1∧¬a1", "c2∧¬(a1∨b1)"]
    );
}

#[test]
fn example2_selected_difference_tuples() {
    // Example 2 / Fig. 2: selected tuples of a −Tp c with probabilities
    // a3 → 0.6, a2∧¬c3 → 0.24, a1∧¬c2 → 0.09.
    let db = supermarket_db();
    let out = except(db.relation("a").unwrap(), db.relation("c").unwrap());
    let got = probs_of(&out, &db);
    let find = |f: &str, i: &str| {
        got.iter()
            .find(|(gf, gi, _)| gf == f && gi == i)
            .unwrap_or_else(|| panic!("missing {f}@{i}"))
            .2
    };
    assert!((find("'dates'", "[1,3)") - 0.6).abs() < 1e-9);
    assert!((find("'chips'", "[4,5)") - 0.24).abs() < 1e-9);
    assert!((find("'milk'", "[6,8)") - 0.09).abs() < 1e-9);
}

#[test]
fn fig3_union_table() {
    let db = supermarket_db();
    let out = union(db.relation("a").unwrap(), db.relation("c").unwrap());
    let got = probs_of(&out, &db);
    let want: Vec<(&str, &str, f64)> = vec![
        ("'chips'", "[4,5)", 0.94),
        ("'chips'", "[5,7)", 0.8),
        ("'chips'", "[7,9)", 0.8),
        ("'dates'", "[1,3)", 0.6),
        ("'milk'", "[1,2)", 0.6),
        ("'milk'", "[2,4)", 0.72),
        ("'milk'", "[4,6)", 0.3),
        ("'milk'", "[6,8)", 0.79),
        ("'milk'", "[8,10)", 0.3),
    ];
    assert_eq!(got.len(), want.len());
    for ((gf, gi, gp), (wf, wi, wp)) in got.iter().zip(want) {
        assert_eq!((gf.as_str(), gi.as_str()), (wf, wi));
        assert!((gp - wp).abs() < 1e-9, "{gf}@{gi}: {gp} vs {wp}");
    }
}

#[test]
fn fig3_difference_table() {
    let db = supermarket_db();
    let out = except(db.relation("a").unwrap(), db.relation("c").unwrap());
    let got = probs_of(&out, &db);
    let want: Vec<(&str, &str, f64)> = vec![
        ("'chips'", "[4,5)", 0.24),
        ("'chips'", "[5,7)", 0.8),
        ("'dates'", "[1,3)", 0.6),
        ("'milk'", "[2,4)", 0.12),
        ("'milk'", "[4,6)", 0.3),
        ("'milk'", "[6,8)", 0.09),
        ("'milk'", "[8,10)", 0.3),
    ];
    assert_eq!(got.len(), want.len());
    for ((gf, gi, gp), (wf, wi, wp)) in got.iter().zip(want) {
        assert_eq!((gf.as_str(), gi.as_str()), (wf, wi));
        assert!((gp - wp).abs() < 1e-9, "{gf}@{gi}: {gp} vs {wp}");
    }
}

#[test]
fn fig3_intersection_table() {
    let db = supermarket_db();
    let out = intersect(db.relation("a").unwrap(), db.relation("c").unwrap());
    let got = probs_of(&out, &db);
    let want: Vec<(&str, &str, f64)> = vec![
        ("'chips'", "[4,5)", 0.56),
        ("'milk'", "[2,4)", 0.18),
        ("'milk'", "[6,8)", 0.21),
    ];
    assert_eq!(got.len(), want.len());
    for ((gf, gi, gp), (wf, wi, wp)) in got.iter().zip(want) {
        assert_eq!((gf.as_str(), gi.as_str()), (wf, wi));
        assert!((gp - wp).abs() < 1e-9, "{gf}@{gi}: {gp} vs {wp}");
    }
}

#[test]
fn example3_fig4_window_sequence() {
    // LAWA over left = c, right = a, restricted to 'milk': the paper walks
    // windows [1,2), [2,4), …, [8,10).
    let db = supermarket_db();
    let milk = Fact::single("milk");
    let c = select(db.relation("c").unwrap(), |f| *f == milk).sorted();
    let a = select(db.relation("a").unwrap(), |f| *f == milk).sorted();
    let windows: Vec<_> = Lawa::new(c.tuples(), a.tuples()).collect();
    let described: Vec<(String, bool, bool)> = windows
        .iter()
        .map(|w| {
            (
                w.interval.to_string(),
                w.lambda_r.is_some(),
                w.lambda_s.is_some(),
            )
        })
        .collect();
    assert_eq!(
        described,
        vec![
            ("[1,2)".to_string(), true, false),
            ("[2,4)".to_string(), true, true),
            ("[4,6)".to_string(), false, true),
            ("[6,8)".to_string(), true, true),
            ("[8,10)".to_string(), false, true),
        ]
    );
}

#[test]
fn example4_fig6_filtered_output() {
    // σF='milk'(c) −Tp σF='milk'(a): candidates [4,6) and [8,10) are
    // rejected (λr = null), the rest pass.
    let db = supermarket_db();
    let milk = Fact::single("milk");
    let c = select(db.relation("c").unwrap(), |f| *f == milk);
    let a = select(db.relation("a").unwrap(), |f| *f == milk);
    let out = except(&c, &a).canonicalized();
    let intervals: Vec<String> = out.iter().map(|t| t.interval.to_string()).collect();
    assert_eq!(intervals, vec!["[1,2)", "[2,4)", "[6,8)"]);
    let lineages: Vec<String> = out
        .iter()
        .map(|t| t.lineage.display_with(db.vars().resolver()).to_string())
        .collect();
    assert_eq!(lineages, vec!["c1", "c1∧¬a1", "c2∧¬a1"]);
}

#[test]
fn theorem1_one_occurrence_form() {
    // Any non-repeating query over the supermarket relations yields 1OF
    // lineage on every output tuple.
    let db = supermarket_db();
    for text in [
        "a union b",
        "a intersect c",
        "c except (a union b)",
        "(a union b) intersect c",
        "(a except b) union c",
    ] {
        let q = Query::parse(text).unwrap();
        assert!(q.is_non_repeating(), "{text}");
        let out = q.eval(&db).unwrap();
        assert!(
            out.iter().all(|t| t.lineage.is_one_occurrence_form()),
            "{text}"
        );
    }
}
