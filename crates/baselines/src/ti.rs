//! TI — the Timeline Index baseline (Kaufmann et al., paper refs \[12\],
//! \[16\]).
//!
//! The Timeline Index of a relation maps every interval start/end point to
//! the list of tuple ids starting or ending there, in time order. The
//! Timeline Join merges the two indexes while maintaining the sets of
//! *active* tuple ids per relation; whenever a tuple of one relation starts,
//! it is paired with every active tuple of the other. The join itself never
//! touches tuple payloads — but forming output tuples requires **fetching
//! the original tuples** for every candidate pair, both to apply the
//! fact-equality filter and to build the output, which is exactly the
//! lookup cost the paper blames for TI's performance (§VII-B and the WebKit
//! discussion in §VII-C).
//!
//! TI computes `∩Tp` only (Table II).

use tp_core::error::{Error, Result};
use tp_core::interval::TimePoint;
use tp_core::ops::SetOp;
use tp_core::relation::TpRelation;

use crate::common::intersection_output;

/// One entry of a timeline index: a time point plus the ids of tuples
/// starting/ending there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// The indexed time point.
    pub at: TimePoint,
    /// Tuple ids whose interval starts at `at`.
    pub starts: Vec<usize>,
    /// Tuple ids whose interval ends at `at`.
    pub ends: Vec<usize>,
}

/// The Timeline Index: entries sorted by time.
#[derive(Debug, Clone, Default)]
pub struct TimelineIndex {
    entries: Vec<TimelineEntry>,
}

impl TimelineIndex {
    /// Builds the index of a relation in `O(n log n)`.
    pub fn build(rel: &TpRelation) -> Self {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<TimePoint, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
        for (i, t) in rel.iter().enumerate() {
            map.entry(t.interval.start()).or_default().0.push(i);
            map.entry(t.interval.end()).or_default().1.push(i);
        }
        TimelineIndex {
            entries: map
                .into_iter()
                .map(|(at, (starts, ends))| TimelineEntry { at, starts, ends })
                .collect(),
        }
    }

    /// The index entries, in time order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }
}

/// The Timeline Join: merges two indexes, maintaining active-id sets, and
/// pairs each starting tuple with the active tuples of the other side.
/// Returns candidate `(r idx, s idx)` pairs — *before* the fact filter,
/// because the index carries no payloads.
pub fn timeline_join_pairs(ri: &TimelineIndex, si: &TimelineIndex) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut active_r: Vec<usize> = Vec::new();
    let mut active_s: Vec<usize> = Vec::new();
    let (re, se) = (ri.entries(), si.entries());
    let (mut i, mut j) = (0usize, 0usize);
    while i < re.len() || j < se.len() {
        // Merge by time; at equal time points, process end lists before
        // start lists on both sides (half-open intervals: a tuple ending at
        // t does not overlap one starting at t).
        let tr = re.get(i).map(|e| e.at).unwrap_or(TimePoint::MAX);
        let ts = se.get(j).map(|e| e.at).unwrap_or(TimePoint::MAX);
        let t = tr.min(ts);
        if tr == t {
            for &id in &re[i].ends {
                active_r.retain(|&x| x != id);
            }
        }
        if ts == t {
            for &id in &se[j].ends {
                active_s.retain(|&x| x != id);
            }
        }
        if tr == t {
            for &id in &re[i].starts {
                for &sid in &active_s {
                    pairs.push((id, sid));
                }
                active_r.push(id);
            }
            i += 1;
        }
        if ts == t {
            for &id in &se[j].starts {
                for &rid in &active_r {
                    pairs.push((rid, id));
                }
                active_s.push(id);
            }
            j += 1;
        }
    }
    pairs
}

/// `r ∩Tp s` with the Timeline Join: build indexes, merge-join them, then
/// fetch the original tuples of every candidate pair for the fact filter and
/// output formation.
pub fn intersect(r: &TpRelation, s: &TpRelation) -> TpRelation {
    let ri = TimelineIndex::build(r);
    let si = TimelineIndex::build(s);
    let pairs = timeline_join_pairs(&ri, &si);
    let mut out = Vec::new();
    for (i, j) in pairs {
        // The expensive lookup: fetch payloads to filter and to build output.
        let rt = &r.tuples()[i];
        let st = &s.tuples()[j];
        if rt.fact != st.fact {
            continue;
        }
        if let Some(tuple) = intersection_output(rt, st) {
            out.push(tuple);
        }
    }
    let rel: TpRelation = out.into_iter().collect();
    rel.canonicalized()
}

/// Computes `r op s` with TI. Only `∩Tp` is supported (Table II).
pub fn set_op(op: SetOp, r: &TpRelation, s: &TpRelation) -> Result<TpRelation> {
    match op {
        SetOp::Intersect => Ok(intersect(r, s)),
        SetOp::Union => Err(Error::Unsupported {
            approach: "TI",
            operation: "union",
        }),
        SetOp::Except => Err(Error::Unsupported {
            approach: "TI",
            operation: "except",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::fact::Fact;
    use tp_core::interval::Interval;
    use tp_core::relation::VarTable;
    use tp_core::snapshot::set_op_by_snapshots;

    fn rel(prefix: &str, rows: Vec<(&str, i64, i64)>, vars: &mut VarTable) -> TpRelation {
        TpRelation::base(
            prefix,
            rows.into_iter()
                .map(|(f, s, e)| (Fact::single(f), Interval::at(s, e), 0.5)),
            vars,
        )
        .unwrap()
    }

    #[test]
    fn index_orders_events() {
        let mut vars = VarTable::new();
        let r = rel("r", vec![("a", 1, 4), ("b", 2, 4)], &mut vars);
        let idx = TimelineIndex::build(&r);
        let times: Vec<i64> = idx.entries().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![1, 2, 4]);
        assert_eq!(idx.entries()[2].ends.len(), 2);
    }

    #[test]
    fn timeline_join_finds_overlaps_only() {
        let mut vars = VarTable::new();
        let r = rel("r", vec![("a", 1, 4), ("a", 6, 9)], &mut vars);
        let s = rel("s", vec![("a", 3, 7), ("a", 9, 12)], &mut vars);
        let pairs = timeline_join_pairs(&TimelineIndex::build(&r), &TimelineIndex::build(&s));
        let mut pairs = pairs;
        pairs.sort();
        // [1,4)x[3,7) and [6,9)x[3,7); [9,12) touches [6,9) only at 9 (no overlap).
        assert_eq!(pairs, vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn adjacent_intervals_do_not_pair() {
        let mut vars = VarTable::new();
        let r = rel("r", vec![("a", 1, 5)], &mut vars);
        let s = rel("s", vec![("a", 5, 9)], &mut vars);
        assert!(
            timeline_join_pairs(&TimelineIndex::build(&r), &TimelineIndex::build(&s)).is_empty()
        );
    }

    #[test]
    fn ti_matches_oracle() {
        let mut vars = VarTable::new();
        let r = rel(
            "r",
            vec![("milk", 2, 10), ("chips", 4, 7), ("dates", 1, 3)],
            &mut vars,
        );
        let s = rel(
            "s",
            vec![
                ("milk", 1, 4),
                ("milk", 6, 8),
                ("chips", 4, 5),
                ("chips", 7, 9),
            ],
            &mut vars,
        );
        let got = intersect(&r, &s).canonicalized();
        let want = set_op_by_snapshots(SetOp::Intersect, &r, &s).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn ti_pairs_across_facts_then_filters() {
        // The index pairs by time only; the fact filter happens at lookup.
        let mut vars = VarTable::new();
        let r = rel("r", vec![("a", 1, 5)], &mut vars);
        let s = rel("s", vec![("b", 2, 4)], &mut vars);
        let pairs = timeline_join_pairs(&TimelineIndex::build(&r), &TimelineIndex::build(&s));
        assert_eq!(pairs.len(), 1); // candidate produced...
        assert!(intersect(&r, &s).is_empty()); // ...then rejected
    }

    #[test]
    fn ti_rejects_union_and_except() {
        let r = TpRelation::new();
        assert!(set_op(SetOp::Union, &r, &r).is_err());
        assert!(set_op(SetOp::Except, &r, &r).is_err());
    }
}
