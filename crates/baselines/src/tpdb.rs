//! TPDB — the grounding + deduplication baseline (Dylla et al., paper
//! ref \[1\]).
//!
//! TPDB evaluates Datalog rules with temporal predicates in two stages:
//!
//! * **Grounding** translates each deduction rule into a SQL join and runs it
//!   in the DBMS. For `∩Tp`, the paper uses *six* reduction rules, one per
//!   Allen overlap relationship, each becoming an inner join whose predicate
//!   combines fact equality with interval inequalities; for `∪Tp`, a single
//!   rule corresponds to a conventional union. Lineage never enters the
//!   DBMS — it is kept in a main-memory side structure keyed by tuple
//!   position.
//! * **Deduplication** removes the duplicates grounding may produce by
//!   adjusting their intervals (splitting at same-fact boundaries and
//!   merging lineages).
//!
//! `−Tp` is **not expressible**: its result contains subintervals present in
//! only one input relation, which the grounding step cannot produce
//! (Table II). [`set_op`] returns [`tp_core::error::Error::Unsupported`].

use std::collections::HashMap;

use tp_core::error::{Error, Result};
use tp_core::interval::Interval;
use tp_core::lineage::Lineage;
use tp_core::ops::SetOp;
use tp_core::relation::TpRelation;
use tp_core::tuple::TpTuple;
use tp_relalg::{CmpOp, Predicate};

use crate::common::{encode, fact_eq_pred, frag_key, fragment, FragKey};

/// The six mutually exclusive Allen-overlap reduction rules used to ground
/// `∩Tp`. Together they cover exactly the interval pairs that share a time
/// point. Column layout: left `(ts, te)` at `(a, a+1)`, right at
/// `(w+a, w+a+1)` with `a` = fact arity and `w` = left row width.
fn allen_overlap_rules(arity: usize, left_width: usize) -> Vec<(&'static str, Predicate)> {
    let l_ts = arity;
    let l_te = arity + 1;
    let r_ts = left_width + arity;
    let r_te = left_width + arity + 1;
    let cmp = |op, a, b| Predicate::col_cmp(op, a, b);
    use CmpOp::*;
    vec![
        // r OVERLAPS s: ts < ts' ∧ ts' < te ∧ te < te'
        (
            "overlaps",
            cmp(Lt, l_ts, r_ts)
                .and(cmp(Lt, r_ts, l_te))
                .and(cmp(Lt, l_te, r_te)),
        ),
        // r OVERLAPPED-BY s: ts' < ts ∧ ts < te' ∧ te' < te
        (
            "overlapped-by",
            cmp(Lt, r_ts, l_ts)
                .and(cmp(Lt, l_ts, r_te))
                .and(cmp(Lt, r_te, l_te)),
        ),
        // r DURING s: ts > ts' ∧ te < te'
        ("during", cmp(Gt, l_ts, r_ts).and(cmp(Lt, l_te, r_te))),
        // r CONTAINS s: ts < ts' ∧ te > te'
        ("contains", cmp(Lt, l_ts, r_ts).and(cmp(Gt, l_te, r_te))),
        // r STARTS/FINISHES/EQUALS s: shares a boundary and is contained.
        (
            "starts-finishes-equals",
            cmp(Eq, l_ts, r_ts)
                .and(cmp(Le, l_te, r_te))
                .or(cmp(Eq, l_te, r_te).and(cmp(Gt, l_ts, r_ts))),
        ),
        // r STARTED-BY/FINISHED-BY s: shares a boundary and contains.
        (
            "started-by-finished-by",
            cmp(Eq, l_ts, r_ts)
                .and(cmp(Gt, l_te, r_te))
                .or(cmp(Eq, l_te, r_te).and(cmp(Lt, l_ts, r_ts))),
        ),
    ]
}

/// Grounding for `∩Tp`: one inner join per Allen-overlap rule, each built
/// as a [`tp_relalg::Plan`] and *submitted to the engine* — the analogue of
/// TPDB translating every Datalog rule to SQL and shipping it to
/// PostgreSQL. The materialized results are read back through their `idx`
/// columns to fetch lineage from the main-memory side structure.
///
/// Each overlapping pair is produced by exactly one rule (the rules
/// partition the overlap cases).
fn ground_intersection(r: &TpRelation, s: &TpRelation) -> Vec<TpTuple> {
    let enc_r = encode(r);
    let enc_s = encode(s);
    let fact_eq = fact_eq_pred(enc_r.arity, enc_r.width());
    let (l_idx_col, r_idx_col) = (enc_r.idx_col(), enc_r.width() + enc_s.idx_col());
    let mut out = Vec::new();
    for (_name, rule) in allen_overlap_rules(enc_r.arity, enc_r.width()) {
        let plan = tp_relalg::Plan::values(enc_r.rel.clone())
            .nl_join(
                tp_relalg::Plan::values(enc_s.rel.clone()),
                fact_eq.clone().and(rule),
            )
            .project(vec![l_idx_col, r_idx_col]);
        for row in plan.execute().rows {
            let i = row[0].as_int().expect("idx column is Int") as usize;
            let j = row[1].as_int().expect("idx column is Int") as usize;
            let rt = &enc_r.tuples[i];
            let st = &enc_s.tuples[j];
            let interval = rt
                .interval
                .intersect(&st.interval)
                .expect("rule guarantees overlap");
            out.push(TpTuple::new(
                rt.fact.clone(),
                Lineage::and(&rt.lineage, &st.lineage),
                interval,
            ));
        }
    }
    out
}

/// Grounding for `∪Tp`: a conventional relational union of both inputs,
/// tagged by origin so deduplication can respect the `or(λr, λs)` operand
/// order of Table I.
fn ground_union(r: &TpRelation, s: &TpRelation) -> Vec<(bool, TpTuple)> {
    let mut out: Vec<(bool, TpTuple)> = Vec::with_capacity(r.len() + s.len());
    out.extend(r.iter().map(|t| (true, t.clone())));
    out.extend(s.iter().map(|t| (false, t.clone())));
    out
}

/// Deduplication for `∪Tp`: candidates of the same fact may overlap; their
/// intervals are adjusted by splitting at all same-fact boundaries, then
/// same-interval fragments are merged with `or`.
fn dedup_union(candidates: Vec<(bool, TpTuple)>) -> TpRelation {
    // Collect boundaries per fact.
    let mut boundaries: HashMap<tp_core::fact::Fact, Vec<i64>> = HashMap::new();
    for (_, t) in &candidates {
        let b = boundaries.entry(t.fact.clone()).or_default();
        b.push(t.interval.start());
        b.push(t.interval.end());
    }
    for b in boundaries.values_mut() {
        b.sort_unstable();
        b.dedup();
    }
    // Fragment and align.
    let mut groups: HashMap<FragKey, (Option<Lineage>, Option<Lineage>)> = HashMap::new();
    for (from_left, t) in &candidates {
        for frag in fragment(t, &boundaries[&t.fact]) {
            let slot = groups.entry(frag_key(&frag)).or_default();
            if *from_left {
                slot.0 = Some(frag.lineage);
            } else {
                slot.1 = Some(frag.lineage);
            }
        }
    }
    let out: Vec<TpTuple> = groups
        .into_iter()
        .map(|((fact, ts, te), (lr, ls))| {
            let lineage = Lineage::or_opt(lr.as_ref(), ls.as_ref())
                .expect("every group has at least one operand");
            TpTuple::new(fact, lineage, Interval::at(ts, te))
        })
        .collect();
    let rel: TpRelation = out.into_iter().collect();
    rel.coalesce()
}

/// Deduplication for `∩Tp`: over duplicate-free inputs the grounding output
/// is already disjoint per fact; the stage still runs the paper's
/// sort-and-adjust pass (here: sort + assert disjointness).
fn dedup_intersection(candidates: Vec<TpTuple>) -> TpRelation {
    let rel: TpRelation = candidates.into_iter().collect();
    let rel = rel.coalesce(); // sorts; merging never fires for 1OF lineages
    debug_assert!(rel.check_duplicate_free().is_ok());
    rel
}

/// Computes `r op s` with the TPDB pipeline. `−Tp` returns
/// [`Error::Unsupported`] (Table II).
pub fn set_op(op: SetOp, r: &TpRelation, s: &TpRelation) -> Result<TpRelation> {
    match op {
        SetOp::Intersect => Ok(dedup_intersection(ground_intersection(r, s))),
        SetOp::Union => Ok(dedup_union(ground_union(r, s))),
        SetOp::Except => Err(Error::Unsupported {
            approach: "TPDB",
            operation: "except",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::fact::Fact;
    use tp_core::relation::VarTable;
    use tp_core::snapshot::set_op_by_snapshots;

    fn supermarket_ac() -> (TpRelation, TpRelation) {
        let mut vars = VarTable::new();
        let a = TpRelation::base(
            "a",
            vec![
                (Fact::single("milk"), Interval::at(2, 10), 0.3),
                (Fact::single("chips"), Interval::at(4, 7), 0.8),
                (Fact::single("dates"), Interval::at(1, 3), 0.6),
            ],
            &mut vars,
        )
        .unwrap();
        let c = TpRelation::base(
            "c",
            vec![
                (Fact::single("milk"), Interval::at(1, 4), 0.6),
                (Fact::single("milk"), Interval::at(6, 8), 0.7),
                (Fact::single("chips"), Interval::at(4, 5), 0.7),
                (Fact::single("chips"), Interval::at(7, 9), 0.8),
            ],
            &mut vars,
        )
        .unwrap();
        (a, c)
    }

    #[test]
    fn allen_rules_partition_overlap_cases() {
        // Exhaustive over a grid: each overlapping pair matches exactly one
        // rule; non-overlapping pairs match none.
        let rules = allen_overlap_rules(0, 3); // arity 0 layout: ts,te,idx
        let mk = |s: i64, e: i64| {
            vec![
                tp_core::value::Value::int(s),
                tp_core::value::Value::int(e),
                tp_core::value::Value::int(0),
            ]
        };
        for a0 in 0..5 {
            for a1 in (a0 + 1)..6 {
                for b0 in 0..5 {
                    for b1 in (b0 + 1)..6 {
                        let l = mk(a0, a1);
                        let r = mk(b0, b1);
                        let matches = rules.iter().filter(|(_, p)| p.eval_pair(&l, &r)).count();
                        let overlaps = a0 < b1 && b0 < a1;
                        assert_eq!(matches, usize::from(overlaps), "[{a0},{a1}) vs [{b0},{b1})");
                    }
                }
            }
        }
    }

    #[test]
    fn tpdb_intersection_matches_oracle() {
        let (a, c) = supermarket_ac();
        let got = set_op(SetOp::Intersect, &a, &c).unwrap().canonicalized();
        let want = set_op_by_snapshots(SetOp::Intersect, &a, &c).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn tpdb_union_matches_oracle() {
        let (a, c) = supermarket_ac();
        let got = set_op(SetOp::Union, &a, &c).unwrap().canonicalized();
        let want = set_op_by_snapshots(SetOp::Union, &a, &c).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn tpdb_difference_unsupported() {
        let (a, c) = supermarket_ac();
        assert!(matches!(
            set_op(SetOp::Except, &a, &c),
            Err(Error::Unsupported {
                approach: "TPDB",
                ..
            })
        ));
    }

    #[test]
    fn tpdb_union_with_empty() {
        let (a, _) = supermarket_ac();
        let empty = TpRelation::new();
        assert_eq!(
            set_op(SetOp::Union, &a, &empty).unwrap().canonicalized(),
            a.canonicalized()
        );
        assert!(set_op(SetOp::Intersect, &a, &empty).unwrap().is_empty());
    }
}
