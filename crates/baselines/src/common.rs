//! Shared plumbing: encoding TP relations into the relational substrate and
//! assembling TP output tuples from matched pairs.

use tp_core::fact::Fact;
use tp_core::interval::Interval;
use tp_core::lineage::Lineage;
use tp_core::relation::TpRelation;
use tp_core::tuple::TpTuple;
use tp_core::value::Value;
use tp_relalg::{CmpOp, Expr, Predicate, Relation, Schema};

/// A TP relation encoded as a flat table for the relational baselines.
///
/// Schema: `f0, …, f{arity-1}, ts, te, idx` where `idx` is the position of
/// the original tuple (lineage is kept out of the engine, in a side
/// structure — exactly how the TPDB implementation keeps lineage "as an
/// internal data structure in main memory").
pub struct Encoded<'a> {
    /// The flat table.
    pub rel: Relation,
    /// Arity of the fact part.
    pub arity: usize,
    /// The original tuples, indexable by the `idx` column.
    pub tuples: &'a [TpTuple],
}

impl<'a> Encoded<'a> {
    /// Column position of `ts`.
    pub fn ts_col(&self) -> usize {
        self.arity
    }
    /// Column position of `te`.
    pub fn te_col(&self) -> usize {
        self.arity + 1
    }
    /// Column position of `idx`.
    pub fn idx_col(&self) -> usize {
        self.arity + 2
    }
    /// Total number of columns.
    pub fn width(&self) -> usize {
        self.arity + 3
    }
}

/// Encodes a TP relation. All facts must share one arity (the baselines,
/// like the paper's SQL implementations, work on fixed relational schemas);
/// an empty relation encodes with arity 1.
pub fn encode(rel: &TpRelation) -> Encoded<'_> {
    let arity = rel.tuples().first().map(|t| t.fact.arity()).unwrap_or(1);
    assert!(
        rel.iter().all(|t| t.fact.arity() == arity),
        "baselines require a uniform fact arity"
    );
    let mut cols: Vec<String> = (0..arity).map(|i| format!("f{i}")).collect();
    cols.extend(["ts".to_string(), "te".to_string(), "idx".to_string()]);
    let rows = rel
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut row: Vec<Value> = t.fact.values().to_vec();
            row.push(Value::int(t.interval.start()));
            row.push(Value::int(t.interval.end()));
            row.push(Value::int(i as i64));
            row
        })
        .collect();
    Encoded {
        rel: Relation::new(Schema::new(cols), rows),
        arity,
        tuples: rel.tuples(),
    }
}

/// Join predicate asserting fact equality between the left table (columns
/// `0..arity`) and the right table (columns `lw..lw+arity`, `lw` = left
/// width).
pub fn fact_eq_pred(arity: usize, left_width: usize) -> Predicate {
    let mut pred = Predicate::True;
    for i in 0..arity {
        let cmp = Predicate::Cmp(CmpOp::Eq, Expr::Col(i), Expr::Col(left_width + i));
        pred = match pred {
            Predicate::True => cmp,
            other => other.and(cmp),
        };
    }
    pred
}

/// Join predicate asserting interval overlap: `l.ts < r.te AND r.ts < l.te`.
pub fn overlap_pred(arity: usize, left_width: usize) -> Predicate {
    Predicate::overlap(arity, arity + 1, left_width + arity, left_width + arity + 1)
}

/// Builds the `∩Tp` output tuple for an overlapping pair: fact, lineage
/// `and(λr, λs)` (Table I), interval = the pair's overlap.
pub fn intersection_output(r: &TpTuple, s: &TpTuple) -> Option<TpTuple> {
    let interval = r.interval.intersect(&s.interval)?;
    debug_assert_eq!(r.fact, s.fact);
    Some(TpTuple::new(
        r.fact.clone(),
        Lineage::and(&r.lineage, &s.lineage),
        interval,
    ))
}

/// Fragments a tuple's interval at the given (sorted, deduplicated) split
/// points, yielding sub-tuples with unchanged fact and lineage. Points
/// outside the interval are ignored.
pub fn fragment(tuple: &TpTuple, split_points: &[i64]) -> Vec<TpTuple> {
    debug_assert!(split_points.is_sorted(), "split points must be sorted");
    let (s, e) = (tuple.interval.start(), tuple.interval.end());
    // Binary-search the relevant range so fragmenting a tuple costs
    // O(log n + #splits inside), not a scan of every boundary.
    let from = split_points.partition_point(|&p| p <= s);
    let to = split_points.partition_point(|&p| p < e);
    let inner = &split_points[from..to];
    let mut bounds = Vec::with_capacity(inner.len() + 2);
    bounds.push(s);
    bounds.extend_from_slice(inner);
    bounds.push(e);
    bounds
        .windows(2)
        .map(|w| TpTuple::new(tuple.fact.clone(), tuple.lineage, Interval::at(w[0], w[1])))
        .collect()
}

/// Canonical grouping key for aligned fragments.
pub type FragKey = (Fact, i64, i64);

/// Key of a fragment: `(fact, ts, te)`.
pub fn frag_key(t: &TpTuple) -> FragKey {
    (t.fact.clone(), t.interval.start(), t.interval.end())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::lineage::TupleId;

    fn tup(f: &str, s: i64, e: i64, id: u64) -> TpTuple {
        TpTuple::new(f, Lineage::var(TupleId(id)), Interval::at(s, e))
    }

    #[test]
    fn encode_roundtrip() {
        let rel: TpRelation = vec![tup("milk", 1, 4, 0), tup("chips", 2, 5, 1)]
            .into_iter()
            .collect();
        let enc = encode(&rel);
        assert_eq!(enc.arity, 1);
        assert_eq!(enc.rel.len(), 2);
        assert_eq!(enc.rel.schema.columns(), &["f0", "ts", "te", "idx"]);
        assert_eq!(enc.rel.rows[0][enc.ts_col()], Value::int(1));
        assert_eq!(enc.rel.rows[1][enc.idx_col()], Value::int(1));
        assert_eq!(enc.width(), 4);
    }

    #[test]
    fn encode_empty() {
        let rel = TpRelation::new();
        let enc = encode(&rel);
        assert!(enc.rel.is_empty());
        assert_eq!(enc.arity, 1);
    }

    #[test]
    fn fact_eq_and_overlap_preds() {
        let rel: TpRelation = vec![tup("a", 1, 4, 0)].into_iter().collect();
        let other: TpRelation = vec![tup("a", 3, 6, 0), tup("b", 3, 6, 1)]
            .into_iter()
            .collect();
        let l = encode(&rel);
        let r = encode(&other);
        let pred = fact_eq_pred(1, l.width()).and(overlap_pred(1, l.width()));
        let pairs = tp_relalg::nested_loop_join_pairs(&l.rel, &r.rel, &pred);
        assert_eq!(pairs, vec![(0, 0)]); // 'b' filtered by fact equality
    }

    #[test]
    fn intersection_output_builds_and_lineage() {
        let r = tup("x", 1, 6, 0);
        let s = tup("x", 4, 9, 1);
        let out = intersection_output(&r, &s).unwrap();
        assert_eq!(out.interval, Interval::at(4, 6));
        assert_eq!(out.lineage.to_string(), "t0∧t1");
        assert!(intersection_output(&tup("x", 1, 2, 0), &tup("x", 5, 6, 1)).is_none());
    }

    #[test]
    fn fragment_splits_within_bounds() {
        let t = tup("x", 2, 10, 0);
        let frags = fragment(&t, &[0, 2, 4, 7, 10, 12]);
        let ivs: Vec<_> = frags.iter().map(|f| f.interval).collect();
        assert_eq!(
            ivs,
            vec![Interval::at(2, 4), Interval::at(4, 7), Interval::at(7, 10)]
        );
        assert!(frags.iter().all(|f| f.lineage == t.lineage));
    }

    #[test]
    fn fragment_with_no_points_is_identity() {
        let t = tup("x", 2, 10, 0);
        assert_eq!(fragment(&t, &[]), vec![t]);
    }
}
