//! Uniform dispatch over the five approaches compared in the paper's
//! evaluation, and the support matrix of Table II.

use std::fmt;

use tp_core::error::Result;
use tp_core::ops::{self, SetOp};
use tp_core::relation::TpRelation;

use crate::oip::OipConfig;
use crate::{norm, oip, ti, tpdb};

/// The five approaches of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// This paper's lineage-aware window advancer.
    Lawa,
    /// Normalization (Dignös et al. \[2\], \[3\]).
    Norm,
    /// Grounding + deduplication (Dylla et al. \[1\]).
    Tpdb,
    /// Overlap Interval Partition join (Dignös et al. \[13\]).
    Oip,
    /// Timeline Index join (Kaufmann et al. \[12\]).
    Ti,
}

impl Approach {
    /// All approaches, in the paper's Table II order.
    pub const ALL: [Approach; 5] = [
        Approach::Lawa,
        Approach::Norm,
        Approach::Tpdb,
        Approach::Oip,
        Approach::Ti,
    ];

    /// Display name used in figures and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::Lawa => "LAWA",
            Approach::Norm => "NORM",
            Approach::Tpdb => "TPDB",
            Approach::Oip => "OIP",
            Approach::Ti => "TI",
        }
    }

    /// Whether the approach supports the operation (Table II).
    pub fn supports(&self, op: SetOp) -> bool {
        match self {
            Approach::Lawa | Approach::Norm => true,
            Approach::Tpdb => matches!(op, SetOp::Union | SetOp::Intersect),
            Approach::Oip | Approach::Ti => matches!(op, SetOp::Intersect),
        }
    }

    /// Runs `r op s` with this approach. Unsupported combinations return
    /// [`tp_core::error::Error::Unsupported`]. OIP runs with its default
    /// configuration; use [`crate::oip::set_op`] directly to tune it.
    pub fn run(&self, op: SetOp, r: &TpRelation, s: &TpRelation) -> Result<TpRelation> {
        match self {
            Approach::Lawa => Ok(ops::apply(op, r, s)),
            Approach::Norm => Ok(norm::set_op(op, r, s)),
            Approach::Tpdb => tpdb::set_op(op, r, s),
            Approach::Oip => oip::set_op(op, r, s, OipConfig::default()),
            Approach::Ti => ti::set_op(op, r, s),
        }
    }
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Renders Table II: which approach supports which TP set operation.
pub fn support_matrix() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8}",
        "Approach", "r∪Tps", "r−Tps", "r∩Tps"
    );
    for a in Approach::ALL {
        let mark = |op| if a.supports(op) { "yes" } else { "no" };
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8}",
            a.name(),
            mark(SetOp::Union),
            mark(SetOp::Except),
            mark(SetOp::Intersect)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::fact::Fact;
    use tp_core::interval::Interval;
    use tp_core::relation::VarTable;
    use tp_core::snapshot::set_op_by_snapshots;

    fn sample() -> (TpRelation, TpRelation) {
        let mut vars = VarTable::new();
        let r = TpRelation::base(
            "r",
            vec![
                (Fact::single("milk"), Interval::at(2, 10), 0.3),
                (Fact::single("chips"), Interval::at(4, 7), 0.8),
            ],
            &mut vars,
        )
        .unwrap();
        let s = TpRelation::base(
            "s",
            vec![
                (Fact::single("milk"), Interval::at(1, 4), 0.6),
                (Fact::single("chips"), Interval::at(5, 9), 0.7),
            ],
            &mut vars,
        )
        .unwrap();
        (r, s)
    }

    #[test]
    fn table2_support_matrix() {
        // Exactly the paper's Table II.
        assert!(Approach::Lawa.supports(SetOp::Union));
        assert!(Approach::Lawa.supports(SetOp::Except));
        assert!(Approach::Lawa.supports(SetOp::Intersect));
        assert!(Approach::Norm.supports(SetOp::Union));
        assert!(Approach::Norm.supports(SetOp::Except));
        assert!(Approach::Norm.supports(SetOp::Intersect));
        assert!(Approach::Tpdb.supports(SetOp::Union));
        assert!(!Approach::Tpdb.supports(SetOp::Except));
        assert!(Approach::Tpdb.supports(SetOp::Intersect));
        assert!(!Approach::Oip.supports(SetOp::Union));
        assert!(!Approach::Oip.supports(SetOp::Except));
        assert!(Approach::Oip.supports(SetOp::Intersect));
        assert!(!Approach::Ti.supports(SetOp::Union));
        assert!(!Approach::Ti.supports(SetOp::Except));
        assert!(Approach::Ti.supports(SetOp::Intersect));
    }

    #[test]
    fn run_matches_supports() {
        let (r, s) = sample();
        for a in Approach::ALL {
            for op in SetOp::ALL {
                let res = a.run(op, &r, &s);
                assert_eq!(res.is_ok(), a.supports(op), "{a} {op}");
            }
        }
    }

    #[test]
    fn all_supported_paths_agree_with_oracle() {
        let (r, s) = sample();
        for a in Approach::ALL {
            for op in SetOp::ALL {
                if !a.supports(op) {
                    continue;
                }
                let got = a.run(op, &r, &s).unwrap().canonicalized();
                let want = set_op_by_snapshots(op, &r, &s).canonicalized();
                assert_eq!(got, want, "{a} {op}");
            }
        }
    }

    #[test]
    fn support_matrix_renders() {
        let m = support_matrix();
        assert!(m.contains("LAWA"));
        assert!(m.contains("TPDB"));
        // TPDB row: union yes, except no.
        let tpdb_line = m.lines().find(|l| l.starts_with("TPDB")).unwrap();
        assert!(tpdb_line.contains("yes"));
        assert!(tpdb_line.contains("no"));
    }
}
