//! OIP — the Overlap Interval Partition join baseline (Dignös et al.,
//! paper ref \[13\]).
//!
//! OIP splits the time domain into granules of equal size. A tuple spanning
//! granules `[first, last]` is assigned to the partition identified by
//! `(duration class d = last − first, offset o = first)` — the smallest
//! granule-aligned range into which it fits. The join proceeds in two
//! phases, exactly as the paper describes:
//!
//! 1. *identify overlapping partitions* (fast): for every partition of `r`
//!    and every duration class of `s`, the overlapping `s` partitions are
//!    found by offset arithmetic and hash lookups — no tuple is touched;
//! 2. *join the tuples of overlapping partitions* (slow): a nested loop over
//!    the two member lists, checking actual interval overlap (and, in
//!    [`OipMode::EqualityFilter`], fact equality).
//!
//! Phase 2 is what makes OIP sensitive to the workload: a high overlapping
//! factor or long intervals concentrate many tuples in few partitions and
//! the nested loops grow quadratically (Fig. 8 and Fig. 9a), while a huge
//! number of fact groups makes the per-group partitioning overhead dominate
//! (Fig. 9b).
//!
//! OIP targets pure overlap joins; it computes `∩Tp` but supports neither
//! `∪Tp` nor `−Tp` (Table II).

use std::collections::HashMap;

use tp_core::error::{Error, Result};
use tp_core::fact::Fact;
use tp_core::interval::TimePoint;
use tp_core::ops::SetOp;
use tp_core::relation::TpRelation;
use tp_core::tuple::TpTuple;

use crate::common::intersection_output;

/// How OIP handles the fact-equality condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OipMode {
    /// Partition-join each fact group separately (the paper's setup).
    FactGrouped,
    /// Single partition join; fact equality checked per tuple pair.
    EqualityFilter,
}

/// Configuration of the OIP join.
#[derive(Debug, Clone, Copy)]
pub struct OipConfig {
    /// Granule size in time points. `None` picks the average interval
    /// length of the inputs — the regime in which most tuples span one or
    /// two granules and partitions stay small.
    pub granule_size: Option<i64>,
    /// Fact-equality handling.
    pub mode: OipMode,
}

impl Default for OipConfig {
    fn default() -> Self {
        OipConfig {
            granule_size: None,
            mode: OipMode::FactGrouped,
        }
    }
}

/// An OIP partition table: tuples grouped by `(duration class, offset)`.
struct OipIndex {
    /// `(d, o)` → member tuple indices.
    map: HashMap<(i64, i64), Vec<usize>>,
    /// The distinct duration classes present, ascending.
    classes: Vec<i64>,
}

impl OipIndex {
    fn build(tuples: &[&TpTuple], lo: TimePoint, granule: i64) -> Self {
        let mut map: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, t) in tuples.iter().enumerate() {
            let first = (t.interval.start() - lo).div_euclid(granule);
            let last = (t.interval.end() - 1 - lo).div_euclid(granule);
            map.entry((last - first, first)).or_default().push(i);
        }
        let mut classes: Vec<i64> = map.keys().map(|&(d, _)| d).collect();
        classes.sort_unstable();
        classes.dedup();
        OipIndex { map, classes }
    }
}

fn partition_join(
    r_tuples: &[&TpTuple],
    s_tuples: &[&TpTuple],
    check_fact: bool,
    config: &OipConfig,
    out: &mut Vec<TpTuple>,
) {
    if r_tuples.is_empty() || s_tuples.is_empty() {
        return;
    }
    let mut lo = TimePoint::MAX;
    let mut hi = TimePoint::MIN;
    let mut total_len: i128 = 0;
    for t in r_tuples.iter().chain(s_tuples.iter()) {
        lo = lo.min(t.interval.start());
        hi = hi.max(t.interval.end());
        total_len += t.interval.duration() as i128;
    }
    let n = r_tuples.len() + s_tuples.len();
    let granule = config
        .granule_size
        .unwrap_or((total_len / n as i128) as i64)
        .max(1);
    debug_assert!(lo < hi);
    let r_idx = OipIndex::build(r_tuples, lo, granule);
    let s_idx = OipIndex::build(s_tuples, lo, granule);

    // Phase 1: overlapping partitions by offset arithmetic (fast).
    // Phase 2: nested loop over member lists (slow).
    for (&(dr, or), r_members) in &r_idx.map {
        for &ds in &s_idx.classes {
            // s partitions of class ds overlapping granules [or, or+dr]
            // have offsets in [or − ds, or + dr].
            for os in (or - ds)..=(or + dr) {
                let Some(s_members) = s_idx.map.get(&(ds, os)) else {
                    continue;
                };
                for &i in r_members {
                    for &j in s_members {
                        let rt = r_tuples[i];
                        let st = s_tuples[j];
                        if check_fact && rt.fact != st.fact {
                            continue;
                        }
                        if let Some(tuple) = intersection_output(rt, st) {
                            out.push(tuple);
                        }
                    }
                }
            }
        }
    }
}

/// `r ∩Tp s` with the OIP partition join.
pub fn intersect(r: &TpRelation, s: &TpRelation, config: OipConfig) -> TpRelation {
    let mut out = Vec::new();
    match config.mode {
        OipMode::EqualityFilter => {
            let r_refs: Vec<&TpTuple> = r.iter().collect();
            let s_refs: Vec<&TpTuple> = s.iter().collect();
            partition_join(&r_refs, &s_refs, true, &config, &mut out);
        }
        OipMode::FactGrouped => {
            // Split each input by fact, join group-wise, merge the results —
            // the per-group partitioning overhead the paper observes when
            // the number of facts approaches the relation size.
            let mut r_groups: HashMap<&Fact, Vec<&TpTuple>> = HashMap::new();
            for t in r.iter() {
                r_groups.entry(&t.fact).or_default().push(t);
            }
            let mut s_groups: HashMap<&Fact, Vec<&TpTuple>> = HashMap::new();
            for t in s.iter() {
                s_groups.entry(&t.fact).or_default().push(t);
            }
            for (fact, r_refs) in &r_groups {
                if let Some(s_refs) = s_groups.get(fact) {
                    partition_join(r_refs, s_refs, false, &config, &mut out);
                }
            }
        }
    }
    let rel: TpRelation = out.into_iter().collect();
    rel.canonicalized()
}

/// Computes `r op s` with OIP. Only `∩Tp` is supported (Table II).
pub fn set_op(op: SetOp, r: &TpRelation, s: &TpRelation, config: OipConfig) -> Result<TpRelation> {
    match op {
        SetOp::Intersect => Ok(intersect(r, s, config)),
        SetOp::Union => Err(Error::Unsupported {
            approach: "OIP",
            operation: "union",
        }),
        SetOp::Except => Err(Error::Unsupported {
            approach: "OIP",
            operation: "except",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::interval::Interval;
    use tp_core::lineage::{Lineage, TupleId};
    use tp_core::relation::VarTable;
    use tp_core::snapshot::set_op_by_snapshots;

    fn rel(prefix: &str, rows: Vec<(&str, i64, i64)>, vars: &mut VarTable) -> TpRelation {
        TpRelation::base(
            prefix,
            rows.into_iter()
                .map(|(f, s, e)| (Fact::single(f), Interval::at(s, e), 0.5)),
            vars,
        )
        .unwrap()
    }

    #[test]
    fn oip_matches_oracle_both_modes_various_granules() {
        let mut vars = VarTable::new();
        let r = rel(
            "r",
            vec![("milk", 2, 10), ("chips", 4, 7), ("dates", 1, 3)],
            &mut vars,
        );
        let s = rel(
            "s",
            vec![
                ("milk", 1, 4),
                ("milk", 6, 8),
                ("chips", 4, 5),
                ("chips", 7, 9),
            ],
            &mut vars,
        );
        let want = set_op_by_snapshots(SetOp::Intersect, &r, &s).canonicalized();
        for mode in [OipMode::FactGrouped, OipMode::EqualityFilter] {
            for granule_size in [None, Some(1), Some(2), Some(5), Some(100)] {
                let got = intersect(&r, &s, OipConfig { granule_size, mode });
                assert_eq!(
                    got.canonicalized(),
                    want,
                    "mode {mode:?} g={granule_size:?}"
                );
            }
        }
    }

    #[test]
    fn oip_matches_lawa_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut vars = VarTable::new();
        let gen = |rng: &mut StdRng, prefix: &str, vars: &mut VarTable| {
            let mut rows = Vec::new();
            for f in 0..5i64 {
                let mut cursor = 0i64;
                for _ in 0..30 {
                    let start = cursor + rng.random_range(0..4);
                    let end = start + rng.random_range(1..20);
                    cursor = end;
                    rows.push((Fact::single(f), Interval::at(start, end), 0.5));
                }
            }
            TpRelation::base(prefix, rows, vars).unwrap()
        };
        let r = gen(&mut rng, "r", &mut vars);
        let s = gen(&mut rng, "s", &mut vars);
        let want = tp_core::ops::intersect(&r, &s).canonicalized();
        let got = intersect(&r, &s, OipConfig::default()).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn oip_rejects_union_and_except() {
        let r = TpRelation::new();
        assert!(matches!(
            set_op(SetOp::Union, &r, &r, OipConfig::default()),
            Err(Error::Unsupported { .. })
        ));
        assert!(matches!(
            set_op(SetOp::Except, &r, &r, OipConfig::default()),
            Err(Error::Unsupported { .. })
        ));
    }

    #[test]
    fn oip_empty_inputs() {
        let mut vars = VarTable::new();
        let r = rel("r", vec![("x", 1, 5)], &mut vars);
        let empty = TpRelation::new();
        assert!(intersect(&r, &empty, OipConfig::default()).is_empty());
        assert!(intersect(&empty, &r, OipConfig::default()).is_empty());
    }

    #[test]
    fn index_groups_by_duration_class_and_offset() {
        let t1 = TpTuple::new("x", Lineage::var(TupleId(0)), Interval::at(0, 3));
        let t2 = TpTuple::new("x", Lineage::var(TupleId(1)), Interval::at(4, 6));
        let t3 = TpTuple::new("y", Lineage::var(TupleId(2)), Interval::at(0, 30));
        let refs: Vec<&TpTuple> = vec![&t1, &t2, &t3];
        let idx = OipIndex::build(&refs, 0, 10);
        // t1 and t2 fit in granule 0 (class 0, offset 0); t3 spans 0..2
        // (class 2, offset 0).
        assert_eq!(idx.map.len(), 2);
        assert_eq!(idx.map[&(0, 0)].len(), 2);
        assert_eq!(idx.map[&(2, 0)].len(), 1);
        assert_eq!(idx.classes, vec![0, 2]);
    }

    #[test]
    fn negative_time_points_are_handled() {
        let mut vars = VarTable::new();
        let r = rel("r", vec![("x", -10, -2)], &mut vars);
        let s = rel("s", vec![("x", -5, 3)], &mut vars);
        let got = intersect(&r, &s, OipConfig::default());
        assert_eq!(got.len(), 1);
        assert_eq!(got.tuples()[0].interval, Interval::at(-5, -2));
    }
}
