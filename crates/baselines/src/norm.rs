//! NORM — the normalization-based baseline (Dignös et al., paper refs
//! \[2\], \[3\]).
//!
//! The `Normalize` operator `N(r, s)` replicates the tuples of `r`, splitting
//! their intervals at the boundaries of same-fact, overlapping tuples of `s`.
//! In the authors' PostgreSQL-kernel implementation this is realized as an
//! **outer join with inequality conditions** on the interval endpoints, which
//! has quadratic complexity (reference \[31\]); since normalization is not
//! symmetric it runs once per input relation. After both relations are
//! aligned — their fragments are pairwise equal or disjoint — the set
//! operation itself is cheap, but attaching lineage requires an additional
//! grouping/join pass over the fragments.
//!
//! This module reproduces exactly that pipeline on the `tp-relalg`
//! substrate:
//!
//! 1. `N(r, s)` and `N(s, r)` via [`tp_relalg::left_outer_join_pairs`] with
//!    the fact-equality + interval-overlap predicate (the quadratic part),
//! 2. alignment of fragments by `(F, Ts, Te)` grouping,
//! 3. per-group application of the Table I lineage function,
//! 4. a defensive coalescing pass (the reduction rules of \[2\] adapted to the
//!    TP model).

use std::collections::HashMap;

use tp_core::lineage::Lineage;
use tp_core::ops::SetOp;
use tp_core::relation::TpRelation;
use tp_core::tuple::TpTuple;

use crate::common::{encode, fact_eq_pred, frag_key, fragment, overlap_pred, FragKey};

/// `N(r, s)`: splits each tuple of `r` at the interval boundaries of
/// overlapping same-fact tuples of `s`.
///
/// Runs the quadratic outer join the paper attributes to NORM. Every tuple
/// of `r` survives (outer semantics); unmatched tuples pass through intact.
pub fn normalize(r: &TpRelation, s: &TpRelation) -> TpRelation {
    let enc_r = encode(r);
    let enc_s = encode(s);
    let arity = enc_r.arity;
    let pred = fact_eq_pred(arity, enc_r.width()).and(overlap_pred(arity, enc_r.width()));
    let pairs = tp_relalg::left_outer_join_pairs(&enc_r.rel, &enc_s.rel, &pred);

    // Gather split points per left tuple, in join output order.
    let mut split_points: Vec<Vec<i64>> = vec![Vec::new(); r.len()];
    for (i, j) in pairs {
        if let Some(j) = j {
            let s_tuple = &enc_s.tuples[j];
            split_points[i].push(s_tuple.interval.start());
            split_points[i].push(s_tuple.interval.end());
        }
    }

    let mut out = Vec::with_capacity(r.len());
    for (i, tuple) in r.iter().enumerate() {
        let points = &mut split_points[i];
        points.sort_unstable();
        points.dedup();
        out.extend(fragment(tuple, points));
    }
    // Fragments of a duplicate-free relation stay duplicate-free.
    TpRelation::from_tuples_unchecked(out)
}

/// Computes `r op s` with the NORM pipeline. Supports all three operations
/// (Table II row "NORM").
pub fn set_op(op: SetOp, r: &TpRelation, s: &TpRelation) -> TpRelation {
    let nr = normalize(r, s);
    let ns = normalize(s, r);

    // Align fragments by (F, Ts, Te). Duplicate-freeness guarantees at most
    // one fragment per relation per key.
    let mut groups: HashMap<FragKey, (Option<&TpTuple>, Option<&TpTuple>)> = HashMap::new();
    for t in nr.iter() {
        groups.entry(frag_key(t)).or_default().0 = Some(t);
    }
    for t in ns.iter() {
        groups.entry(frag_key(t)).or_default().1 = Some(t);
    }

    let mut out: Vec<TpTuple> = Vec::new();
    for ((fact, ts, te), (fr, fs)) in groups {
        let lineage = match op {
            SetOp::Union => Lineage::or_opt(fr.map(|t| &t.lineage), fs.map(|t| &t.lineage)),
            SetOp::Intersect => match (fr, fs) {
                (Some(fr), Some(fs)) => Some(Lineage::and(&fr.lineage, &fs.lineage)),
                _ => None,
            },
            SetOp::Except => fr.map(|fr| Lineage::and_not(&fr.lineage, fs.map(|t| &t.lineage))),
        };
        if let Some(lineage) = lineage {
            out.push(TpTuple::new(
                fact,
                lineage,
                tp_core::interval::Interval::at(ts, te),
            ));
        }
    }

    // Reduction: merge adjacent fragments with equivalent lineage back into
    // maximal intervals (change preservation).
    let rel: TpRelation = out.into_iter().collect();
    rel.coalesce()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::fact::Fact;
    use tp_core::interval::Interval;
    use tp_core::relation::VarTable;
    use tp_core::snapshot::set_op_by_snapshots;

    fn supermarket_ac() -> (TpRelation, TpRelation) {
        let mut vars = VarTable::new();
        let a = TpRelation::base(
            "a",
            vec![
                (Fact::single("milk"), Interval::at(2, 10), 0.3),
                (Fact::single("chips"), Interval::at(4, 7), 0.8),
                (Fact::single("dates"), Interval::at(1, 3), 0.6),
            ],
            &mut vars,
        )
        .unwrap();
        let c = TpRelation::base(
            "c",
            vec![
                (Fact::single("milk"), Interval::at(1, 4), 0.6),
                (Fact::single("milk"), Interval::at(6, 8), 0.7),
                (Fact::single("chips"), Interval::at(4, 5), 0.7),
                (Fact::single("chips"), Interval::at(7, 9), 0.8),
            ],
            &mut vars,
        )
        .unwrap();
        (a, c)
    }

    #[test]
    fn normalize_splits_at_overlapping_boundaries() {
        let (a, c) = supermarket_ac();
        let n = normalize(&a, &c);
        // milk [2,10) splits at 4 (c1.te), 6 (c2.ts), 8 (c2.te)
        // → [2,4), [4,6), [6,8), [8,10); chips [4,7) splits at 5 → 2 frags;
        // dates [1,3) unsplit.
        assert_eq!(n.len(), 4 + 2 + 1);
        assert!(n.check_duplicate_free().is_ok());
    }

    #[test]
    fn normalize_is_identity_without_overlap() {
        let (a, _) = supermarket_ac();
        let n = normalize(&a, &TpRelation::new());
        assert_eq!(n.canonicalized(), a.canonicalized());
    }

    #[test]
    fn norm_matches_oracle_on_fig3() {
        let (a, c) = supermarket_ac();
        for op in SetOp::ALL {
            let got = set_op(op, &a, &c).canonicalized();
            let want = set_op_by_snapshots(op, &a, &c).canonicalized();
            assert_eq!(got, want, "op {op}");
        }
    }

    #[test]
    fn norm_handles_empty_inputs() {
        let (a, _) = supermarket_ac();
        let empty = TpRelation::new();
        assert_eq!(
            set_op(SetOp::Union, &a, &empty).canonicalized(),
            a.canonicalized()
        );
        assert!(set_op(SetOp::Intersect, &a, &empty).is_empty());
        assert_eq!(
            set_op(SetOp::Except, &a, &empty).canonicalized(),
            a.canonicalized()
        );
        assert!(set_op(SetOp::Except, &empty, &a).is_empty());
    }

    #[test]
    fn norm_output_is_change_preserving() {
        let (a, c) = supermarket_ac();
        for op in SetOp::ALL {
            let out = set_op(op, &a, &c);
            assert!(out.satisfies_change_preservation(), "op {op}");
            assert!(out.check_duplicate_free().is_ok());
        }
    }
}
