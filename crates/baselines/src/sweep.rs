//! The classic sweepline overlap join (Arge et al. \[17\], Piatov et al.
//! \[14\]) — the related-work family §II discusses and rules out for TP set
//! difference and union.
//!
//! A vertical sweepline moves over all interval start/end points; each
//! relation keeps the list of tuples currently intersecting the line. When
//! a tuple starts, it is paired with every active tuple of the other
//! relation. This finds exactly the overlapping pairs:
//!
//! * for `∩Tp` that is sufficient — every output tuple is the overlap of
//!   one pair (plus the fact filter and the `and` lineage);
//! * for `−Tp` and `∪Tp` it is **not**: their results contain subintervals
//!   during which only one relation holds the fact, and those intervals are
//!   not delimited by any pair the sweep produces. The paper's lineage-aware
//!   *window* (a sweeping interval instead of a line) exists precisely to
//!   fix this; [`set_op`] returns `Unsupported` for both, documenting the
//!   gap the paper identifies.
//!
//! Unlike the Timeline Index, the sweep works directly on the tuples (no
//! index construction, no id→tuple lookups), so it is the strongest of the
//! intersection-only baselines on data without endpoint bursts.

use tp_core::error::{Error, Result};
use tp_core::interval::TimePoint;
use tp_core::ops::SetOp;
use tp_core::relation::TpRelation;
use tp_core::tuple::TpTuple;

use crate::common::intersection_output;

/// One sweep event: a tuple of one relation starting or ending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: TimePoint,
    /// Ends sort before starts at equal time (half-open intervals).
    is_start: bool,
    from_left: bool,
    idx: usize,
}

/// `r ∩Tp s` with a sweepline over all endpoints.
pub fn intersect(r: &TpRelation, s: &TpRelation) -> TpRelation {
    let mut events: Vec<Event> = Vec::with_capacity(2 * (r.len() + s.len()));
    for (idx, t) in r.iter().enumerate() {
        events.push(Event {
            at: t.interval.start(),
            is_start: true,
            from_left: true,
            idx,
        });
        events.push(Event {
            at: t.interval.end(),
            is_start: false,
            from_left: true,
            idx,
        });
    }
    for (idx, t) in s.iter().enumerate() {
        events.push(Event {
            at: t.interval.start(),
            is_start: true,
            from_left: false,
            idx,
        });
        events.push(Event {
            at: t.interval.end(),
            is_start: false,
            from_left: false,
            idx,
        });
    }
    events.sort_unstable();

    let mut active_r: Vec<usize> = Vec::new();
    let mut active_s: Vec<usize> = Vec::new();
    let mut out: Vec<TpTuple> = Vec::new();
    for e in events {
        match (e.is_start, e.from_left) {
            (false, true) => active_r.retain(|&x| x != e.idx),
            (false, false) => active_s.retain(|&x| x != e.idx),
            (true, true) => {
                let rt = &r.tuples()[e.idx];
                for &j in &active_s {
                    let st = &s.tuples()[j];
                    if rt.fact == st.fact {
                        out.extend(intersection_output(rt, st));
                    }
                }
                active_r.push(e.idx);
            }
            (true, false) => {
                let st = &s.tuples()[e.idx];
                for &i in &active_r {
                    let rt = &r.tuples()[i];
                    if rt.fact == st.fact {
                        out.extend(intersection_output(rt, st));
                    }
                }
                active_s.push(e.idx);
            }
        }
    }
    let rel: TpRelation = out.into_iter().collect();
    rel.canonicalized()
}

/// Computes `r op s` with the sweepline. Only `∩Tp` is expressible — the
/// limitation that motivates the paper's lineage-aware temporal window.
pub fn set_op(op: SetOp, r: &TpRelation, s: &TpRelation) -> Result<TpRelation> {
    match op {
        SetOp::Intersect => Ok(intersect(r, s)),
        SetOp::Union => Err(Error::Unsupported {
            approach: "sweepline",
            operation: "union",
        }),
        SetOp::Except => Err(Error::Unsupported {
            approach: "sweepline",
            operation: "except",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::fact::Fact;
    use tp_core::interval::Interval;
    use tp_core::relation::VarTable;
    use tp_core::snapshot::set_op_by_snapshots;

    fn rel(prefix: &str, rows: Vec<(&str, i64, i64)>, vars: &mut VarTable) -> TpRelation {
        TpRelation::base(
            prefix,
            rows.into_iter()
                .map(|(f, s, e)| (Fact::single(f), Interval::at(s, e), 0.5)),
            vars,
        )
        .unwrap()
    }

    #[test]
    fn sweep_matches_oracle() {
        let mut vars = VarTable::new();
        let r = rel(
            "r",
            vec![("milk", 2, 10), ("chips", 4, 7), ("dates", 1, 3)],
            &mut vars,
        );
        let s = rel(
            "s",
            vec![
                ("milk", 1, 4),
                ("milk", 6, 8),
                ("chips", 4, 5),
                ("chips", 7, 9),
            ],
            &mut vars,
        );
        let got = intersect(&r, &s).canonicalized();
        let want = set_op_by_snapshots(SetOp::Intersect, &r, &s).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn sweep_matches_lawa_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let _ = StdRng::seed_from_u64(0); // determinism doc: generator below is seeded
        let mut vars = VarTable::new();
        let cfg = tp_workloads_free_generate(&mut vars);
        let (r, s) = cfg;
        let got = intersect(&r, &s).canonicalized();
        let want = tp_core::ops::intersect(&r, &s).canonicalized();
        assert_eq!(got, want);
    }

    /// A small inline generator (the workloads crate would be a cyclic dev
    /// dependency here).
    fn tp_workloads_free_generate(vars: &mut VarTable) -> (TpRelation, TpRelation) {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let mut gen = |prefix: &str, vars: &mut VarTable| {
            let mut rows = Vec::new();
            for f in 0..4i64 {
                let mut cursor = 0i64;
                for _ in 0..50 {
                    let start = cursor + rng.random_range(0..4);
                    let end = start + rng.random_range(1..6);
                    cursor = end;
                    rows.push((Fact::single(f), Interval::at(start, end), 0.5));
                }
            }
            TpRelation::base(prefix, rows, vars).unwrap()
        };
        let r = gen("r", vars);
        let s = gen("s", vars);
        (r, s)
    }

    #[test]
    fn adjacent_intervals_do_not_pair() {
        let mut vars = VarTable::new();
        let r = rel("r", vec![("a", 1, 5)], &mut vars);
        let s = rel("s", vec![("a", 5, 9)], &mut vars);
        assert!(intersect(&r, &s).is_empty());
    }

    #[test]
    fn union_and_except_are_not_expressible() {
        let r = TpRelation::new();
        assert!(matches!(
            set_op(SetOp::Union, &r, &r),
            Err(Error::Unsupported {
                approach: "sweepline",
                ..
            })
        ));
        assert!(matches!(
            set_op(SetOp::Except, &r, &r),
            Err(Error::Unsupported {
                approach: "sweepline",
                ..
            })
        ));
    }

    #[test]
    fn sweep_is_symmetric() {
        let mut vars = VarTable::new();
        let r = rel("r", vec![("a", 1, 6), ("b", 0, 4)], &mut vars);
        let s = rel("s", vec![("a", 3, 9), ("b", 2, 5)], &mut vars);
        let ab = intersect(&r, &s).canonicalized();
        let ba = intersect(&s, &r).canonicalized();
        // Same facts and intervals; lineage operand order differs (and is
        // defined by the left operand), so compare the projections.
        let profile = |rel: &TpRelation| -> Vec<(Fact, Interval)> {
            rel.iter().map(|t| (t.fact.clone(), t.interval)).collect()
        };
        assert_eq!(profile(&ab), profile(&ba));
    }
}
