//! # tp-baselines — the competing approaches of the paper's evaluation
//!
//! Reimplementations of the four baseline approaches against which the paper
//! compares LAWA (§VII, Table II), built from scratch on the [`tp_relalg`]
//! substrate (standing in for the PostgreSQL executor the authors used):
//!
//! | approach | module | `∪Tp` | `−Tp` | `∩Tp` | character |
//! |---|---|---|---|---|---|
//! | NORM | [`norm`] | ✓ | ✓ | ✓ | quadratic normalization via inequality outer joins |
//! | TPDB | [`tpdb`] | ✓ | ✗ | ✓ | Allen-rule grounding joins + deduplication |
//! | OIP  | [`oip`]  | ✗ | ✗ | ✓ | overlap interval partition join |
//! | TI   | [`ti`]   | ✗ | ✗ | ✓ | timeline index merge join + lookups |
//!
//! Every baseline is *semantically* equivalent to LAWA on the operations it
//! supports (asserted against the snapshot oracle in tests); what differs —
//! and what the benchmark harness measures — is the work they do to get
//! there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approach;
pub mod common;
pub mod norm;
pub mod oip;
pub mod sweep;
pub mod ti;
pub mod tpdb;

pub use approach::{support_matrix, Approach};
pub use oip::{OipConfig, OipMode};
