//! Physical query plans: composable operator trees with an executor and an
//! `EXPLAIN`-style printer.
//!
//! The paper's TPDB baseline "translates each rule to an inner join that is
//! submitted to PostgreSQL"; this module is the corresponding submission
//! surface of the mini engine: baselines build a [`Plan`] and call
//! [`Plan::execute`], instead of invoking operators one by one.

use std::fmt;

use crate::aggregate::{group_by, AggFn};
use crate::ops;
use crate::predicate::Predicate;
use crate::relation::Relation;

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// An inline (already materialized) table.
    Values(Relation),
    /// σ.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Row predicate.
        pred: Predicate,
    },
    /// π (bag semantics).
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output column positions.
        cols: Vec<usize>,
    },
    /// Nested-loop theta join (the quadratic inequality-join workhorse).
    NlJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join predicate over the concatenated row.
        pred: Predicate,
    },
    /// Hash equi-join.
    HashJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Left key columns.
        l_cols: Vec<usize>,
        /// Right key columns.
        r_cols: Vec<usize>,
    },
    /// Bag union.
    UnionAll {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// γ: group-by + aggregates ([`group_by`]).
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping key columns.
        keys: Vec<usize>,
        /// Aggregates, one output column each.
        aggs: Vec<AggFn>,
    },
    /// Sort by columns.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort columns, major first.
        cols: Vec<usize>,
    },
}

impl Plan {
    /// Inline table.
    pub fn values(rel: Relation) -> Plan {
        Plan::Values(rel)
    }

    /// σ builder.
    pub fn select(self, pred: Predicate) -> Plan {
        Plan::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// π builder.
    pub fn project(self, cols: Vec<usize>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            cols,
        }
    }

    /// Nested-loop join builder.
    pub fn nl_join(self, right: Plan, pred: Predicate) -> Plan {
        Plan::NlJoin {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// Hash join builder.
    pub fn hash_join(self, right: Plan, l_cols: Vec<usize>, r_cols: Vec<usize>) -> Plan {
        Plan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            l_cols,
            r_cols,
        }
    }

    /// Union-all builder.
    pub fn union_all(self, right: Plan) -> Plan {
        Plan::UnionAll {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Distinct builder.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    /// γ builder.
    pub fn aggregate(self, keys: Vec<usize>, aggs: Vec<AggFn>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            keys,
            aggs,
        }
    }

    /// Sort builder.
    pub fn sort(self, cols: Vec<usize>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            cols,
        }
    }

    /// Executes the plan bottom-up, materializing every intermediate (the
    /// mini engine has no pipelining — adequate for baseline reproduction).
    pub fn execute(&self) -> Relation {
        match self {
            Plan::Values(rel) => rel.clone(),
            Plan::Select { input, pred } => ops::select(&input.execute(), pred),
            Plan::Project { input, cols } => ops::project(&input.execute(), cols),
            Plan::NlJoin { left, right, pred } => {
                ops::nested_loop_join(&left.execute(), &right.execute(), pred)
            }
            Plan::HashJoin {
                left,
                right,
                l_cols,
                r_cols,
            } => ops::hash_join(&left.execute(), &right.execute(), l_cols, r_cols),
            Plan::UnionAll { left, right } => ops::union_all(&left.execute(), &right.execute()),
            Plan::Distinct { input } => ops::distinct(&input.execute()),
            Plan::Aggregate { input, keys, aggs } => group_by(&input.execute(), keys, aggs),
            Plan::Sort { input, cols } => ops::sort_by(&input.execute(), cols),
        }
    }

    fn explain_rec(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Plan::Values(rel) => writeln!(f, "{pad}Values ({} rows)", rel.len()),
            Plan::Select { input, .. } => {
                writeln!(f, "{pad}Select")?;
                input.explain_rec(f, indent + 1)
            }
            Plan::Project { input, cols } => {
                writeln!(f, "{pad}Project {cols:?}")?;
                input.explain_rec(f, indent + 1)
            }
            Plan::NlJoin { left, right, .. } => {
                writeln!(f, "{pad}NestedLoopJoin")?;
                left.explain_rec(f, indent + 1)?;
                right.explain_rec(f, indent + 1)
            }
            Plan::HashJoin {
                left,
                right,
                l_cols,
                r_cols,
            } => {
                writeln!(f, "{pad}HashJoin on {l_cols:?}={r_cols:?}")?;
                left.explain_rec(f, indent + 1)?;
                right.explain_rec(f, indent + 1)
            }
            Plan::UnionAll { left, right } => {
                writeln!(f, "{pad}UnionAll")?;
                left.explain_rec(f, indent + 1)?;
                right.explain_rec(f, indent + 1)
            }
            Plan::Distinct { input } => {
                writeln!(f, "{pad}Distinct")?;
                input.explain_rec(f, indent + 1)
            }
            Plan::Aggregate { input, keys, aggs } => {
                let names: Vec<String> = aggs.iter().map(AggFn::name).collect();
                writeln!(f, "{pad}Aggregate by {keys:?} → [{}]", names.join(", "))?;
                input.explain_rec(f, indent + 1)
            }
            Plan::Sort { input, cols } => {
                writeln!(f, "{pad}Sort by {cols:?}")?;
                input.explain_rec(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.explain_rec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::relation::Schema;
    use tp_core::value::Value;

    fn rel(cols: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        Relation::new(
            Schema::new(cols.iter().copied()),
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::int).collect())
                .collect(),
        )
    }

    #[test]
    fn plan_equals_direct_operator_calls() {
        let l = rel(&["k", "v"], vec![vec![1, 10], vec![2, 20], vec![1, 30]]);
        let r = rel(&["k", "w"], vec![vec![1, 7], vec![3, 9]]);
        let plan = Plan::values(l.clone())
            .nl_join(Plan::values(r.clone()), Predicate::col_eq(0, 2))
            .project(vec![1, 3])
            .sort(vec![0]);
        let direct = ops::sort_by(
            &ops::project(
                &ops::nested_loop_join(&l, &r, &Predicate::col_eq(0, 2)),
                &[1, 3],
            ),
            &[0],
        );
        assert_eq!(plan.execute(), direct);
    }

    #[test]
    fn select_distinct_union_pipeline() {
        let a = rel(&["x"], vec![vec![1], vec![2], vec![2]]);
        let b = rel(&["x"], vec![vec![2], vec![3]]);
        let plan = Plan::values(a)
            .union_all(Plan::values(b))
            .select(Predicate::col_const(CmpOp::Ge, 0, Value::int(2)))
            .distinct();
        let out = plan.execute();
        assert_eq!(out.rows.len(), 2); // {2, 3}
    }

    #[test]
    fn hash_join_node() {
        let l = rel(&["k", "v"], vec![vec![1, 10], vec![2, 20]]);
        let r = rel(&["k", "w"], vec![vec![2, 7]]);
        let out = Plan::values(l)
            .hash_join(Plan::values(r), vec![0], vec![0])
            .execute();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][3], Value::int(7));
    }

    #[test]
    fn explain_renders_tree() {
        let plan = Plan::values(rel(&["x"], vec![vec![1]]))
            .nl_join(Plan::values(rel(&["y"], vec![vec![2]])), Predicate::True)
            .distinct();
        let text = plan.to_string();
        assert!(text.contains("Distinct"));
        assert!(text.contains("NestedLoopJoin"));
        assert!(text.contains("Values (1 rows)"));
        // Indentation reflects depth.
        assert!(text.contains("  NestedLoopJoin"));
        assert!(text.contains("    Values"));
    }
}
