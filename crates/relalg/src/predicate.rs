//! Scalar expressions and predicates over rows.
//!
//! A [`Predicate`] is evaluated against one flat row. For joins, that row is
//! the concatenation `left ++ right`, so a predicate comparing a left column
//! `i` with a right column `j` is written `Expr::Col(i)` vs
//! `Expr::Col(left_arity + j)` — the offset arithmetic every tuple-at-a-time
//! executor performs.

use tp_core::value::Value;

use crate::relation::Row;

/// A scalar expression: a column reference or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column at the given position of the (possibly concatenated) row.
    Col(usize),
    /// A literal value.
    Const(Value),
}

impl Expr {
    fn eval<'a>(&'a self, row: &'a [Value]) -> &'a Value {
        match self {
            Expr::Col(i) => &row[*i],
            Expr::Const(v) => v,
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply(&self, l: &Value, r: &Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }
}

/// A Boolean predicate over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (cross product when used as a join predicate).
    True,
    /// Binary comparison of two expressions.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate over a row.
    pub fn eval(&self, row: &[Value]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp(op, l, r) => op.apply(l.eval(row), r.eval(row)),
            Predicate::And(a, b) => a.eval(row) && b.eval(row),
            Predicate::Or(a, b) => a.eval(row) || b.eval(row),
            Predicate::Not(a) => !a.eval(row),
        }
    }

    /// Evaluates a join predicate over a pair of rows without materializing
    /// the concatenation (the executor's hot path).
    pub fn eval_pair(&self, left: &Row, right: &Row) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp(op, l, r) => {
                let resolve = |e: &Expr| -> Value {
                    match e {
                        Expr::Col(i) => {
                            if *i < left.len() {
                                left[*i].clone()
                            } else {
                                right[*i - left.len()].clone()
                            }
                        }
                        Expr::Const(v) => v.clone(),
                    }
                };
                op.apply(&resolve(l), &resolve(r))
            }
            Predicate::And(a, b) => a.eval_pair(left, right) && b.eval_pair(left, right),
            Predicate::Or(a, b) => a.eval_pair(left, right) || b.eval_pair(left, right),
            Predicate::Not(a) => !a.eval_pair(left, right),
        }
    }

    /// `a AND b` builder.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `a OR b` builder.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT a` builder.
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// `col_l = col_r` builder.
    pub fn col_eq(l: usize, r: usize) -> Predicate {
        Predicate::Cmp(CmpOp::Eq, Expr::Col(l), Expr::Col(r))
    }

    /// `col op col` builder.
    pub fn col_cmp(op: CmpOp, l: usize, r: usize) -> Predicate {
        Predicate::Cmp(op, Expr::Col(l), Expr::Col(r))
    }

    /// `col op const` builder.
    pub fn col_const(op: CmpOp, col: usize, v: Value) -> Predicate {
        Predicate::Cmp(op, Expr::Col(col), Expr::Const(v))
    }

    /// The interval-overlap condition `l.ts < r.te AND r.ts < l.te`, the
    /// inequality pair at the heart of NORM's and TPDB's joins.
    pub fn overlap(l_ts: usize, l_te: usize, r_ts: usize, r_te: usize) -> Predicate {
        Predicate::col_cmp(CmpOp::Lt, l_ts, r_te).and(Predicate::col_cmp(CmpOp::Lt, r_ts, l_te))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::int(v)).collect()
    }

    #[test]
    fn cmp_ops() {
        let r = row(&[1, 2]);
        assert!(Predicate::col_cmp(CmpOp::Lt, 0, 1).eval(&r));
        assert!(Predicate::col_cmp(CmpOp::Le, 0, 1).eval(&r));
        assert!(!Predicate::col_cmp(CmpOp::Gt, 0, 1).eval(&r));
        assert!(Predicate::col_cmp(CmpOp::Ne, 0, 1).eval(&r));
        assert!(!Predicate::col_eq(0, 1).eval(&r));
        assert!(Predicate::col_const(CmpOp::Eq, 0, Value::int(1)).eval(&r));
    }

    #[test]
    fn boolean_connectives() {
        let r = row(&[1, 2]);
        let lt = Predicate::col_cmp(CmpOp::Lt, 0, 1);
        let gt = Predicate::col_cmp(CmpOp::Gt, 0, 1);
        assert!(lt.clone().and(gt.clone().negate()).eval(&r));
        assert!(lt.clone().or(gt.clone()).eval(&r));
        assert!(!lt.and(gt).eval(&r));
        assert!(Predicate::True.eval(&r));
    }

    #[test]
    fn eval_pair_matches_concatenated_eval() {
        let l = row(&[1, 5]);
        let r = row(&[3, 8]);
        let concat: Row = l.iter().cloned().chain(r.iter().cloned()).collect();
        let p = Predicate::overlap(0, 1, 2, 3);
        assert_eq!(p.eval(&concat), p.eval_pair(&l, &r));
        assert!(p.eval_pair(&l, &r)); // [1,5) overlaps [3,8)
        let r2 = row(&[5, 8]);
        assert!(!p.eval_pair(&l, &r2)); // adjacent, no overlap
    }

    #[test]
    fn overlap_predicate_truth_table() {
        let p = Predicate::overlap(0, 1, 2, 3);
        let check =
            |a: (i64, i64), b: (i64, i64)| p.eval_pair(&row(&[a.0, a.1]), &row(&[b.0, b.1]));
        assert!(check((1, 4), (3, 6)));
        assert!(check((3, 6), (1, 4)));
        assert!(check((1, 10), (4, 5)));
        assert!(!check((1, 2), (2, 3)));
        assert!(!check((5, 6), (1, 2)));
    }
}
