//! Grouping and aggregation — the remaining conventional operators a
//! baseline pipeline occasionally needs (e.g. collecting split points per
//! tuple, or dataset statistics formulated relationally).

use std::collections::HashMap;

use tp_core::value::{OrderedF64, Value};

use crate::relation::{Relation, Row, Schema};

/// An aggregate function over one column (or none, for `Count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Number of rows in the group.
    Count,
    /// Sum of an integer or float column.
    Sum(usize),
    /// Minimum of a column.
    Min(usize),
    /// Maximum of a column.
    Max(usize),
}

impl AggFn {
    /// The output column name of the aggregate (`count`, `sum_<col>`, ...),
    /// shared by [`group_by`] and the incremental aggregate operator so
    /// both produce identical schemas.
    pub fn name(&self) -> String {
        match self {
            AggFn::Count => "count".into(),
            AggFn::Sum(c) => format!("sum_{c}"),
            AggFn::Min(c) => format!("min_{c}"),
            AggFn::Max(c) => format!("max_{c}"),
        }
    }

    /// Computes the aggregate over one group's member rows. Public so the
    /// streaming pipeline's dirty-key recompute runs the *same* fold as
    /// batch [`group_by`] — value-identical output by construction.
    pub fn finish(&self, rows: &[&Row]) -> Value {
        match self {
            AggFn::Count => Value::int(rows.len() as i64),
            AggFn::Sum(c) => {
                // Numeric sum: integers stay integers, floats promote.
                let mut int_sum: i64 = 0;
                let mut float_sum: f64 = 0.0;
                let mut saw_float = false;
                for r in rows {
                    match &r[*c] {
                        Value::Int(v) => int_sum += v,
                        Value::Float(OrderedF64(v)) => {
                            saw_float = true;
                            float_sum += v;
                        }
                        other => panic!("sum over non-numeric value {other}"),
                    }
                }
                if saw_float {
                    Value::float(float_sum + int_sum as f64)
                } else {
                    Value::int(int_sum)
                }
            }
            AggFn::Min(c) => rows
                .iter()
                .map(|r| r[*c].clone())
                .min()
                .expect("groups are non-empty"),
            AggFn::Max(c) => rows
                .iter()
                .map(|r| r[*c].clone())
                .max()
                .expect("groups are non-empty"),
        }
    }
}

/// γ: groups `rel` by the `keys` columns and computes the aggregates.
/// Output schema: key columns (original names) followed by one column per
/// aggregate. Output rows are sorted by key for determinism.
pub fn group_by(rel: &Relation, keys: &[usize], aggs: &[AggFn]) -> Relation {
    let mut groups: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
    for row in &rel.rows {
        let key: Vec<Value> = keys.iter().map(|&k| row[k].clone()).collect();
        groups.entry(key).or_default().push(row);
    }
    let mut keyed: Vec<(Vec<Value>, Vec<&Row>)> = groups.into_iter().collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));

    let mut columns: Vec<String> = keys
        .iter()
        .map(|&k| rel.schema.columns()[k].clone())
        .collect();
    columns.extend(aggs.iter().map(|a| a.name()));

    let rows: Vec<Row> = keyed
        .into_iter()
        .map(|(mut key, members)| {
            key.extend(aggs.iter().map(|a| a.finish(&members)));
            key
        })
        .collect();
    Relation::new(Schema::new(columns), rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        Relation::new(
            Schema::new(["fact", "len"]),
            vec![
                vec![Value::str("a"), Value::int(3)],
                vec![Value::str("b"), Value::int(5)],
                vec![Value::str("a"), Value::int(7)],
                vec![Value::str("a"), Value::int(1)],
            ],
        )
    }

    #[test]
    fn count_per_group() {
        let out = group_by(&rel(), &[0], &[AggFn::Count]);
        assert_eq!(out.schema.columns(), &["fact", "count"]);
        assert_eq!(
            out.rows,
            vec![
                vec![Value::str("a"), Value::int(3)],
                vec![Value::str("b"), Value::int(1)],
            ]
        );
    }

    #[test]
    fn sum_min_max() {
        let out = group_by(&rel(), &[0], &[AggFn::Sum(1), AggFn::Min(1), AggFn::Max(1)]);
        assert_eq!(out.rows[0][1], Value::int(11));
        assert_eq!(out.rows[0][2], Value::int(1));
        assert_eq!(out.rows[0][3], Value::int(7));
    }

    #[test]
    fn sum_promotes_to_float() {
        let r = Relation::new(
            Schema::new(["k", "v"]),
            vec![
                vec![Value::int(1), Value::int(2)],
                vec![Value::int(1), Value::float(0.5)],
            ],
        );
        let out = group_by(&r, &[0], &[AggFn::Sum(1)]);
        assert_eq!(out.rows[0][1], Value::float(2.5));
    }

    #[test]
    fn global_aggregate_with_no_keys() {
        let out = group_by(&rel(), &[], &[AggFn::Count, AggFn::Max(1)]);
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0], vec![Value::int(4), Value::int(7)]);
    }

    #[test]
    fn empty_input_has_no_groups() {
        let empty = Relation::empty(Schema::new(["k", "v"]));
        assert!(group_by(&empty, &[0], &[AggFn::Count]).is_empty());
    }
}
