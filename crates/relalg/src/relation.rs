//! Schemas, rows and relations of the mini engine.

use std::fmt;

use tp_core::value::Value;

/// A row: one flat record of attribute values.
pub type Row = Vec<Value>;

/// An ordered list of named columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Creates a schema from column names.
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> Self {
        Schema {
            columns: columns.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Schema of the concatenation `self ++ other`, prefixing duplicated
    /// names with `l.`/`r.` the way an executor disambiguates join outputs.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = Vec::with_capacity(self.arity() + other.arity());
        for c in &self.columns {
            if other.columns.contains(c) {
                columns.push(format!("l.{c}"));
            } else {
                columns.push(c.clone());
            }
        }
        for c in &other.columns {
            if self.columns.contains(c) {
                columns.push(format!("r.{c}"));
            } else {
                columns.push(c.clone());
            }
        }
        Schema { columns }
    }

    /// Projection of the schema onto the given column positions.
    pub fn project(&self, cols: &[usize]) -> Schema {
        Schema {
            columns: cols.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }
}

/// A relation: a schema plus a bag of rows (the engine is bag-semantics,
/// like SQL; `distinct` turns a bag into a set).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// The relation's schema.
    pub schema: Schema,
    /// The rows. Every row has exactly `schema.arity()` values.
    pub rows: Vec<Row>,
}

impl Relation {
    /// Creates a relation, checking that each row matches the schema arity.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        debug_assert!(
            rows.iter().all(|r| r.len() == schema.arity()),
            "row arity must match schema"
        );
        Relation { schema, rows }
    }

    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema.columns().join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::new(["fact", "ts", "te"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("ts"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn schema_concat_disambiguates() {
        let l = Schema::new(["fact", "ts"]);
        let r = Schema::new(["fact", "te"]);
        let c = l.concat(&r);
        assert_eq!(c.columns(), &["l.fact", "ts", "r.fact", "te"]);
    }

    #[test]
    fn schema_project() {
        let s = Schema::new(["a", "b", "c"]);
        assert_eq!(s.project(&[2, 0]).columns(), &["c", "a"]);
    }

    #[test]
    fn relation_display() {
        let r = Relation::new(
            Schema::new(["x", "y"]),
            vec![vec![Value::int(1), Value::str("a")]],
        );
        let s = r.to_string();
        assert!(s.contains("x | y"));
        assert!(s.contains("1 | 'a'"));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}
