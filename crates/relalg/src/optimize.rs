//! Plan optimization: rule-based pushdown plus a rate-aware cost model.
//!
//! Two layers live here:
//!
//! **Pushdown rules** ([`optimize`], applied bottom-up until fixpoint):
//!
//! 1. `Select(Select(x, p1), p2)` → `Select(x, p1 ∧ p2)` — filter fusion;
//! 2. `Select(NlJoin(l, r, pj), ps)` → `NlJoin(l, r, pj ∧ ps)` — a filter
//!    over a join output evaluates on the same concatenated row layout, so
//!    it merges into the join predicate and is checked *during* pair
//!    enumeration instead of on a materialized intermediate;
//! 3. `Select(UnionAll(l, r), p)` → `UnionAll(Select(l, p), Select(r, p))` —
//!    both branches share the schema.
//!
//! **Rate-aware re-optimization** ([`reoptimize`]): given a
//! [`RateProfile`] of *observed* per-source standing rows and delta rates
//! (the standing pipeline's EWMA statistics), flatten every maximal join
//! chain, decompose the join predicates into cross-leaf equalities and
//! residuals, and run a dynamic program over all parenthesizations that
//! **preserve the left-to-right leaf order** — so the output column order
//! (and therefore the plan's schema and the source preorder numbering) is
//! invariant by construction, no compensating projections needed. Each
//! combine picks hash vs. nested-loop from the constraints that land
//! there: cross equalities become hash keys, everything else a theta
//! residual. The cost model charges *incremental maintenance*, not batch
//! execution: a delta on one side pays the opposite side's probe cost
//! (per-key state for hash, the whole side for nested-loop) plus the
//! expected output deltas — the quantity a standing pipeline actually
//! spends per advance.
//!
//! Both layers preserve semantics exactly (asserted by randomized tests).

use crate::plan::Plan;
use crate::predicate::{CmpOp, Expr, Predicate};

/// Optimizes a plan by exhaustively applying the pushdown rules.
pub fn optimize(plan: Plan) -> Plan {
    // Bottom-up: optimize children first, then rewrite this node until no
    // rule fires.
    let node = match plan {
        Plan::Values(rel) => Plan::Values(rel),
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(optimize(*input)),
            pred,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(optimize(*input)),
            cols,
        },
        Plan::NlJoin { left, right, pred } => Plan::NlJoin {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
            pred,
        },
        Plan::HashJoin {
            left,
            right,
            l_cols,
            r_cols,
        } => Plan::HashJoin {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
            l_cols,
            r_cols,
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(optimize(*input)),
        },
        Plan::Aggregate { input, keys, aggs } => Plan::Aggregate {
            input: Box::new(optimize(*input)),
            keys,
            aggs,
        },
        Plan::Sort { input, cols } => Plan::Sort {
            input: Box::new(optimize(*input)),
            cols,
        },
    };
    rewrite(node)
}

fn rewrite(plan: Plan) -> Plan {
    match plan {
        Plan::Select { input, pred } => match *input {
            // Rule 1: filter fusion.
            Plan::Select {
                input: inner,
                pred: p1,
            } => rewrite(Plan::Select {
                input: inner,
                pred: p1.and(pred),
            }),
            // Rule 2: merge into the join predicate.
            Plan::NlJoin {
                left,
                right,
                pred: pj,
            } => Plan::NlJoin {
                left,
                right,
                pred: pj.and(pred),
            },
            // Rule 3: push through union.
            Plan::UnionAll { left, right } => Plan::UnionAll {
                left: Box::new(rewrite(Plan::Select {
                    input: left,
                    pred: pred.clone(),
                })),
                right: Box::new(rewrite(Plan::Select { input: right, pred })),
            },
            other => Plan::Select {
                input: Box::new(other),
                pred,
            },
        },
        other => other,
    }
}

/// Observed statistics of one pipeline source (preorder `Values`-leaf
/// numbering, the same [`crate::incremental::lower`] assigns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceStats {
    /// Standing rows the source currently holds.
    pub rows: f64,
    /// Deltas per advance (EWMA over recent advances).
    pub rate: f64,
}

impl Default for SourceStats {
    fn default() -> Self {
        SourceStats {
            rows: 100.0,
            rate: 1.0,
        }
    }
}

/// Observed per-source statistics feeding [`reoptimize`] — the bridge from
/// the standing pipeline's EWMA counters back into the planner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RateProfile {
    /// Stats per source, in preorder numbering; missing entries fall back
    /// to [`SourceStats::default`].
    pub sources: Vec<SourceStats>,
}

impl RateProfile {
    fn stats(&self, source: usize) -> SourceStats {
        self.sources.get(source).copied().unwrap_or_default()
    }
}

/// Re-plans every maximal join chain of `plan` against the observed
/// per-source statistics: join *order* by an order-preserving dynamic
/// program over parenthesizations, hash-vs-nested-loop per combine from
/// the constraints that apply there. Runs [`optimize`] first so filters
/// are already merged into join predicates. Deterministic for a given
/// profile; semantics (and output column order) are preserved exactly.
pub fn reoptimize(plan: &Plan, profile: &RateProfile) -> Plan {
    let plan = optimize(plan.clone());
    let mut next_src = 0usize;
    rec_reopt(plan, profile, &mut next_src)
}

fn rec_reopt(plan: Plan, profile: &RateProfile, next_src: &mut usize) -> Plan {
    match plan {
        Plan::NlJoin { .. } | Plan::HashJoin { .. } => {
            let mut chain = Chain::default();
            flatten_join_chain(plan, profile, next_src, &mut chain);
            chain.build()
        }
        Plan::Values(rel) => {
            *next_src += 1;
            Plan::Values(rel)
        }
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(rec_reopt(*input, profile, next_src)),
            pred,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(rec_reopt(*input, profile, next_src)),
            cols,
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(rec_reopt(*left, profile, next_src)),
            right: Box::new(rec_reopt(*right, profile, next_src)),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(rec_reopt(*input, profile, next_src)),
        },
        Plan::Aggregate { input, keys, aggs } => Plan::Aggregate {
            input: Box::new(rec_reopt(*input, profile, next_src)),
            keys,
            aggs,
        },
        Plan::Sort { input, cols } => Plan::Sort {
            input: Box::new(rec_reopt(*input, profile, next_src)),
            cols,
        },
    }
}

/// Output arity of a plan, without executing it.
fn plan_arity(plan: &Plan) -> usize {
    match plan {
        Plan::Values(rel) => rel.schema.arity(),
        Plan::Select { input, .. } | Plan::Distinct { input } | Plan::Sort { input, .. } => {
            plan_arity(input)
        }
        Plan::Project { cols, .. } => cols.len(),
        Plan::NlJoin { left, right, .. } | Plan::HashJoin { left, right, .. } => {
            plan_arity(left) + plan_arity(right)
        }
        Plan::UnionAll { left, .. } => plan_arity(left),
        Plan::Aggregate { keys, aggs, .. } => keys.len() + aggs.len(),
    }
}

/// Cardinality/rate estimate of a non-join chain leaf. Constants are crude
/// (filters halve, distinct/aggregate shrink); only relative ordering
/// matters to the DP, and `Values` leaves carry the *observed* numbers.
fn estimate(plan: &Plan, profile: &RateProfile, next_src: &mut usize) -> (f64, f64) {
    match plan {
        Plan::Values(_) => {
            let s = profile.stats(*next_src);
            *next_src += 1;
            (s.rows.max(1.0), s.rate.max(0.01))
        }
        Plan::Select { input, .. } => {
            let (rows, rate) = estimate(input, profile, next_src);
            ((rows * 0.5).max(1.0), (rate * 0.5).max(0.01))
        }
        Plan::Project { input, .. } | Plan::Sort { input, .. } => {
            estimate(input, profile, next_src)
        }
        Plan::Distinct { input } => {
            let (rows, rate) = estimate(input, profile, next_src);
            ((rows * 0.7).max(1.0), rate)
        }
        Plan::Aggregate { input, .. } => {
            let (rows, rate) = estimate(input, profile, next_src);
            ((rows * 0.3).max(1.0), rate)
        }
        Plan::UnionAll { left, right } => {
            let (lr, lt) = estimate(left, profile, next_src);
            let (rr, rt) = estimate(right, profile, next_src);
            (lr + rr, lt + rt)
        }
        Plan::NlJoin { left, right, pred } => {
            let (lr, lt) = estimate(left, profile, next_src);
            let (rr, rt) = estimate(right, profile, next_src);
            let sel = pred_selectivity(pred, lr, rr);
            join_estimate(lr, lt, rr, rt, sel)
        }
        Plan::HashJoin { left, right, .. } => {
            let (lr, lt) = estimate(left, profile, next_src);
            let (rr, rt) = estimate(right, profile, next_src);
            let sel = 1.0 / lr.max(rr).max(1.0);
            join_estimate(lr, lt, rr, rt, sel)
        }
    }
}

/// `(rows, rate)` of a join output: `card = N_l·N_r·sel`, and each side's
/// delta produces `card / N_side` output deltas in expectation.
fn join_estimate(lr: f64, lt: f64, rr: f64, rt: f64, sel: f64) -> (f64, f64) {
    let card = (lr * rr * sel).max(1.0);
    let rate = (lt * card / lr.max(1.0) + rt * card / rr.max(1.0)).max(0.01);
    (card, rate)
}

/// Per-atom selectivity: an equality pair keeps `1/max(N_l, N_r)` of the
/// cross product, any other comparison half of it.
fn pred_selectivity(pred: &Predicate, lr: f64, rr: f64) -> f64 {
    match pred {
        Predicate::True => 1.0,
        Predicate::Cmp(CmpOp::Eq, Expr::Col(_), Expr::Col(_)) => 1.0 / lr.max(rr).max(1.0),
        Predicate::Cmp(..) => 0.5,
        Predicate::And(a, b) => pred_selectivity(a, lr, rr) * pred_selectivity(b, lr, rr),
        Predicate::Or(_, _) | Predicate::Not(_) => 0.9,
    }
}

/// Splits a conjunction into its atoms (non-`And` subtrees).
fn split_conj(pred: Predicate, out: &mut Vec<Predicate>) {
    match pred {
        Predicate::And(a, b) => {
            split_conj(*a, out);
            split_conj(*b, out);
        }
        Predicate::True => {}
        atom => out.push(atom),
    }
}

/// Column positions a predicate references.
fn pred_cols(pred: &Predicate, out: &mut Vec<usize>) {
    match pred {
        Predicate::True => {}
        Predicate::Cmp(_, l, r) => {
            for e in [l, r] {
                if let Expr::Col(c) = e {
                    out.push(*c);
                }
            }
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            pred_cols(a, out);
            pred_cols(b, out);
        }
        Predicate::Not(a) => pred_cols(a, out),
    }
}

/// Rewrites every column reference by `f`.
fn map_cols(pred: Predicate, f: &impl Fn(usize) -> usize) -> Predicate {
    let map_expr = |e: Expr| match e {
        Expr::Col(c) => Expr::Col(f(c)),
        Expr::Const(v) => Expr::Const(v),
    };
    match pred {
        Predicate::True => Predicate::True,
        Predicate::Cmp(op, l, r) => Predicate::Cmp(op, map_expr(l), map_expr(r)),
        Predicate::And(a, b) => {
            Predicate::And(Box::new(map_cols(*a, f)), Box::new(map_cols(*b, f)))
        }
        Predicate::Or(a, b) => Predicate::Or(Box::new(map_cols(*a, f)), Box::new(map_cols(*b, f))),
        Predicate::Not(a) => Predicate::Not(Box::new(map_cols(*a, f))),
    }
}

fn conj(atoms: Vec<Predicate>) -> Predicate {
    let mut it = atoms.into_iter();
    match it.next() {
        None => Predicate::True,
        Some(first) => it.fold(first, |acc, a| acc.and(a)),
    }
}

/// A flattened maximal join chain: leaves in left-to-right order with their
/// estimates, and the joins' constraints re-addressed against the *global*
/// column space (the concatenation of all leaf outputs in order).
#[derive(Default)]
struct Chain {
    /// Re-optimized leaf subplans, left to right.
    leaves: Vec<Plan>,
    /// `(rows, rate)` estimate per leaf.
    est: Vec<(f64, f64)>,
    /// Output arity per leaf.
    arity: Vec<usize>,
    /// Cross-leaf equality constraints as global column pairs.
    eqs: Vec<(usize, usize)>,
    /// Non-equality constraints: `(min_col, max_col, predicate)` with
    /// global column addressing.
    others: Vec<(usize, usize, Predicate)>,
    /// Column-free residuals (constant predicates), applied at the root.
    top: Vec<Predicate>,
}

/// Flattens a join tree into `chain`, recursing through nested joins and
/// re-optimizing non-join subtrees as opaque leaves. Constraint columns
/// come out addressed against the chain-global concatenated row.
fn flatten_join_chain(plan: Plan, profile: &RateProfile, next_src: &mut usize, chain: &mut Chain) {
    match plan {
        Plan::NlJoin { left, right, pred } => {
            let base = chain.total_arity();
            flatten_join_chain(*left, profile, next_src, chain);
            let left_arity = chain.total_arity() - base;
            flatten_join_chain(*right, profile, next_src, chain);
            // The join predicate addresses `left ++ right`; within this
            // chain those columns sit contiguously starting at `base`.
            let mut atoms = Vec::new();
            split_conj(pred, &mut atoms);
            for atom in atoms {
                chain.add_constraint(map_cols(atom, &|c| c + base), base + left_arity);
            }
        }
        Plan::HashJoin {
            left,
            right,
            l_cols,
            r_cols,
        } => {
            let base = chain.total_arity();
            flatten_join_chain(*left, profile, next_src, chain);
            let left_arity = chain.total_arity() - base;
            flatten_join_chain(*right, profile, next_src, chain);
            for (&l, &r) in l_cols.iter().zip(&r_cols) {
                chain.eqs.push((base + l, base + left_arity + r));
            }
        }
        leaf => {
            let at = *next_src;
            let arity = plan_arity(&leaf);
            let optimized = rec_reopt(leaf, profile, next_src);
            let mut est_src = at;
            let est = estimate(&optimized, profile, &mut est_src);
            chain.leaves.push(optimized);
            chain.est.push(est);
            chain.arity.push(arity);
        }
    }
}

impl Chain {
    fn total_arity(&self) -> usize {
        self.arity.iter().sum()
    }

    /// Global column offset of each leaf, plus the total as a sentinel.
    fn bases(&self) -> Vec<usize> {
        let mut bases = Vec::with_capacity(self.leaves.len() + 1);
        let mut acc = 0;
        for &a in &self.arity {
            bases.push(acc);
            acc += a;
        }
        bases.push(acc);
        bases
    }

    /// Files one join-predicate atom (already globally addressed):
    /// cross-side column equalities become hash-key candidates, anything
    /// else a theta residual, constants go to the top.
    fn add_constraint(&mut self, atom: Predicate, cut: usize) {
        if let Predicate::Cmp(CmpOp::Eq, Expr::Col(a), Expr::Col(b)) = &atom {
            if (*a < cut) != (*b < cut) {
                self.eqs.push((*a, *b));
                return;
            }
        }
        let mut cols = Vec::new();
        pred_cols(&atom, &mut cols);
        match (cols.iter().min(), cols.iter().max()) {
            (Some(&lo), Some(&hi)) => self.others.push((lo, hi, atom)),
            _ => self.top.push(atom),
        }
    }

    /// Rebuilds the chain as the cheapest order-preserving join tree.
    fn build(mut self) -> Plan {
        let bases = self.bases();
        let n = self.leaves.len();
        // Constraints confined to a single leaf become a select on it.
        let leaf_of = |c: usize| bases.iter().position(|&b| b > c).unwrap() - 1;
        let mut eqs = Vec::new();
        for (a, b) in std::mem::take(&mut self.eqs) {
            let (la, lb) = (leaf_of(a), leaf_of(b));
            if la == lb {
                let base = bases[la];
                self.leaves[la] = self.leaves[la]
                    .clone()
                    .select(Predicate::col_eq(a - base, b - base));
                self.est[la].0 = (self.est[la].0 * 0.5).max(1.0);
            } else {
                eqs.push((a.min(b), a.max(b)));
            }
        }
        let mut others = Vec::new();
        for (lo, hi, pred) in std::mem::take(&mut self.others) {
            let l = leaf_of(lo);
            if l == leaf_of(hi) {
                let base = bases[l];
                self.leaves[l] = self.leaves[l].clone().select(map_cols(pred, &|c| c - base));
                self.est[l].0 = (self.est[l].0 * 0.5).max(1.0);
            } else {
                others.push((lo, hi, pred));
            }
        }
        // DP over contiguous spans: best[i][j] = cheapest maintenance-cost
        // tree over leaves i..=j, leaf order preserved.
        #[derive(Clone)]
        struct Span {
            plan: Plan,
            rows: f64,
            rate: f64,
            cost: f64,
        }
        let mut best: Vec<Vec<Option<Span>>> = vec![vec![None; n]; n];
        for (i, (leaf, &(rows, rate))) in self.leaves.iter().zip(&self.est).enumerate() {
            best[i][i] = Some(Span {
                plan: leaf.clone(),
                rows,
                rate,
                cost: 0.0,
            });
        }
        for len in 2..=n {
            for i in 0..=n - len {
                let j = i + len - 1;
                for k in i..j {
                    let cut = bases[k + 1];
                    let (lo, hi) = (bases[i], bases[j + 1]);
                    let left = best[i][k].clone().expect("filled by shorter spans");
                    let right = best[k + 1][j].clone().expect("filled by shorter spans");
                    // Constraints whose lowest covering combine is exactly
                    // this one: they reference columns on both sides.
                    let keys: Vec<(usize, usize)> = eqs
                        .iter()
                        .copied()
                        .filter(|&(a, b)| a >= lo && b < hi && a < cut && b >= cut)
                        .collect();
                    let residual: Vec<Predicate> = others
                        .iter()
                        .filter(|&&(a, b, _)| a >= lo && b < hi && a < cut && b >= cut)
                        .map(|(_, _, p)| p.clone())
                        .collect();
                    let mut sel = keys
                        .iter()
                        .map(|_| 1.0 / left.rows.max(right.rows).max(1.0))
                        .product::<f64>();
                    sel *= 0.5f64.powi(residual.len() as i32);
                    let card = (left.rows * right.rows * sel).max(1.0);
                    let out_l = card / left.rows.max(1.0);
                    let out_r = card / right.rows.max(1.0);
                    // Maintenance per advance: a delta probes the opposite
                    // side (per-key state for hash, all of it for NL) and
                    // emits its share of the output.
                    let probe = if keys.is_empty() {
                        left.rate * right.rows + right.rate * left.rows
                    } else {
                        left.rate + right.rate
                    };
                    let maint = probe + left.rate * out_l + right.rate * out_r;
                    let cost = left.cost + right.cost + maint;
                    if best[i][j].as_ref().is_some_and(|b| b.cost <= cost) {
                        continue;
                    }
                    let residual_pred = conj(
                        residual
                            .into_iter()
                            .map(|p| map_cols(p, &|c| c - lo))
                            .collect(),
                    );
                    let plan = if keys.is_empty() {
                        left.plan.clone().nl_join(right.plan.clone(), residual_pred)
                    } else {
                        let l_cols = keys.iter().map(|&(a, _)| a - lo).collect();
                        let r_cols = keys.iter().map(|&(_, b)| b - cut).collect();
                        let joined = Plan::HashJoin {
                            left: Box::new(left.plan.clone()),
                            right: Box::new(right.plan.clone()),
                            l_cols,
                            r_cols,
                        };
                        match residual_pred {
                            Predicate::True => joined,
                            p => joined.select(p),
                        }
                    };
                    best[i][j] = Some(Span {
                        plan,
                        rows: card,
                        rate: (left.rate * out_l + right.rate * out_r).max(0.01),
                        cost,
                    });
                }
            }
        }
        let root = best[0][n - 1].take().expect("non-empty chain").plan;
        match conj(self.top) {
            Predicate::True => root,
            p => root.select(p),
        }
    }
}

/// Counts the nodes of a plan (used to show the optimizer shrinks trees).
pub fn plan_size(plan: &Plan) -> usize {
    match plan {
        Plan::Values(_) => 1,
        Plan::Select { input, .. }
        | Plan::Project { input, .. }
        | Plan::Distinct { input }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. } => 1 + plan_size(input),
        Plan::NlJoin { left, right, .. }
        | Plan::HashJoin { left, right, .. }
        | Plan::UnionAll { left, right } => 1 + plan_size(left) + plan_size(right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::relation::{Relation, Schema};
    use tp_core::value::Value;

    fn rel(cols: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        Relation::new(
            Schema::new(cols.iter().copied()),
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::int).collect())
                .collect(),
        )
    }

    fn canon(r: Relation) -> Vec<Vec<Value>> {
        let mut rows = r.rows;
        rows.sort();
        rows
    }

    #[test]
    fn select_over_join_merges_into_predicate() {
        let l = rel(&["a"], vec![vec![1], vec![2], vec![3]]);
        let r = rel(&["b"], vec![vec![2], vec![3], vec![4]]);
        let plan = Plan::values(l)
            .nl_join(Plan::values(r), Predicate::True)
            .select(Predicate::col_eq(0, 1));
        let optimized = optimize(plan.clone());
        // The Select node is gone...
        assert!(plan_size(&optimized) < plan_size(&plan));
        assert!(matches!(optimized, Plan::NlJoin { .. }));
        // ...and the result is unchanged.
        assert_eq!(canon(optimized.execute()), canon(plan.execute()));
    }

    #[test]
    fn stacked_selects_fuse() {
        let x = rel(&["v"], vec![vec![1], vec![5], vec![9]]);
        let plan = Plan::values(x)
            .select(Predicate::col_const(CmpOp::Gt, 0, Value::int(2)))
            .select(Predicate::col_const(CmpOp::Lt, 0, Value::int(7)));
        let optimized = optimize(plan.clone());
        assert_eq!(plan_size(&optimized), 2); // Values + one Select
        assert_eq!(canon(optimized.execute()), canon(plan.execute()));
        assert_eq!(optimized.execute().len(), 1); // just {5}
    }

    #[test]
    fn select_pushes_through_union() {
        let a = rel(&["v"], vec![vec![1], vec![4]]);
        let b = rel(&["v"], vec![vec![6], vec![2]]);
        let plan = Plan::values(a)
            .union_all(Plan::values(b))
            .select(Predicate::col_const(CmpOp::Ge, 0, Value::int(4)));
        let optimized = optimize(plan.clone());
        assert!(matches!(optimized, Plan::UnionAll { .. }));
        assert_eq!(canon(optimized.execute()), canon(plan.execute()));
    }

    #[test]
    fn optimizer_is_semantics_preserving_on_random_plans() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..30 {
            let n = rng.random_range(1..20usize);
            let mk = |rng: &mut StdRng, n: usize| {
                rel(
                    &["x", "y"],
                    (0..n)
                        .map(|_| vec![rng.random_range(0..5i64), rng.random_range(0..5i64)])
                        .collect(),
                )
            };
            let a = mk(&mut rng, n);
            let b = mk(&mut rng, n);
            let plan = Plan::values(a)
                .nl_join(Plan::values(b), Predicate::col_cmp(CmpOp::Le, 0, 2))
                .select(Predicate::col_eq(1, 3))
                .select(Predicate::col_const(CmpOp::Lt, 0, Value::int(4)));
            let optimized = optimize(plan.clone());
            assert_eq!(canon(optimized.execute()), canon(plan.execute()));
        }
    }

    #[test]
    fn non_matching_nodes_are_left_alone() {
        let x = rel(&["v"], vec![vec![1]]);
        let plan = Plan::values(x).distinct().sort(vec![0]);
        let optimized = optimize(plan.clone());
        assert_eq!(plan_size(&optimized), plan_size(&plan));
        assert_eq!(optimized.execute(), plan.execute());
    }

    fn profile(stats: &[(f64, f64)]) -> RateProfile {
        RateProfile {
            sources: stats
                .iter()
                .map(|&(rows, rate)| SourceStats { rows, rate })
                .collect(),
        }
    }

    #[test]
    fn reoptimize_turns_keyed_nl_join_into_hash_join() {
        let l = rel(&["a", "x"], vec![vec![1, 10], vec![2, 20]]);
        let r = rel(&["b", "y"], vec![vec![2, 5], vec![3, 6]]);
        let plan = Plan::values(l).nl_join(
            Plan::values(r),
            Predicate::col_eq(0, 2).and(Predicate::col_cmp(CmpOp::Lt, 1, 3)),
        );
        let re = reoptimize(&plan, &RateProfile::default());
        // The equality became a hash key; the inequality a residual select.
        fn has_hash(p: &Plan) -> bool {
            match p {
                Plan::HashJoin { .. } => true,
                Plan::Select { input, .. } => has_hash(input),
                _ => false,
            }
        }
        assert!(has_hash(&re), "expected hash join, got {re:?}");
        assert_eq!(canon(re.execute()), canon(plan.execute()));
    }

    #[test]
    fn reoptimize_reorders_by_observed_rates_preserving_columns() {
        // Three-leaf chain a ⋈ b ⋈ c with equalities a.0=b.0 and b.0=c.0.
        // With a quiet, tiny `c` and a hot `a`, the cheap plan joins b⋈c
        // first; with a hot `c`, it joins a⋈b first. Either way the output
        // column order must stay a++b++c.
        let mk = |n: i64| {
            rel(
                &["k", "v"],
                (0..n).map(|i| vec![i % 3, i]).collect::<Vec<_>>(),
            )
        };
        let plan = Plan::values(mk(9))
            .hash_join(Plan::values(mk(7)), vec![0], vec![0])
            .hash_join(Plan::values(mk(5)), vec![2], vec![0]);
        let left_heavy = reoptimize(
            &plan,
            &profile(&[(10000.0, 500.0), (100.0, 1.0), (10.0, 0.1)]),
        );
        let right_heavy = reoptimize(
            &plan,
            &profile(&[(10.0, 0.1), (100.0, 1.0), (10000.0, 500.0)]),
        );
        assert_ne!(
            left_heavy, right_heavy,
            "rate shift did not change the join order"
        );
        for re in [&left_heavy, &right_heavy] {
            assert_eq!(canon(re.execute()), canon(plan.execute()));
        }
    }

    #[test]
    fn reoptimize_is_semantics_preserving_on_random_plans() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for round in 0..40 {
            let mk = |rng: &mut StdRng, n: usize| {
                rel(
                    &["x", "y"],
                    (0..n)
                        .map(|_| vec![rng.random_range(0..4i64), rng.random_range(0..6i64)])
                        .collect(),
                )
            };
            let n = rng.random_range(1..12usize);
            let a = mk(&mut rng, n);
            let b = mk(&mut rng, n);
            let c = mk(&mut rng, n + 1);
            let joined = Plan::values(a)
                .nl_join(
                    Plan::values(b),
                    Predicate::col_eq(0, 2).and(Predicate::col_cmp(CmpOp::Le, 1, 3)),
                )
                .hash_join(Plan::values(c), vec![2], vec![0]);
            let plan = if round % 2 == 0 {
                joined.select(Predicate::col_const(CmpOp::Lt, 1, Value::int(5)))
            } else {
                joined.aggregate(vec![0], vec![crate::aggregate::AggFn::Count])
            };
            let prof = profile(&[
                (
                    rng.random_range(1..2000) as f64,
                    rng.random_range(0..100) as f64,
                ),
                (
                    rng.random_range(1..2000) as f64,
                    rng.random_range(0..100) as f64,
                ),
                (
                    rng.random_range(1..2000) as f64,
                    rng.random_range(0..100) as f64,
                ),
            ]);
            let re = reoptimize(&plan, &prof);
            assert_eq!(
                canon(re.execute()),
                canon(plan.execute()),
                "round {round}: reoptimize changed semantics\nplan: {plan:?}\nre: {re:?}"
            );
        }
    }

    #[test]
    fn reoptimize_is_deterministic_and_idempotent_per_profile() {
        let l = rel(&["a"], vec![vec![1], vec![2]]);
        let r = rel(&["b"], vec![vec![2]]);
        let plan = Plan::values(l).nl_join(Plan::values(r), Predicate::col_eq(0, 1));
        let prof = profile(&[(50.0, 2.0), (5.0, 90.0)]);
        let once = reoptimize(&plan, &prof);
        assert_eq!(once, reoptimize(&plan, &prof));
        assert_eq!(once, reoptimize(&once, &prof), "not a fixpoint");
    }
}
