//! A small rule-based plan optimizer: predicate pushdown and fusion.
//!
//! Rules (applied bottom-up until fixpoint):
//!
//! 1. `Select(Select(x, p1), p2)` → `Select(x, p1 ∧ p2)` — filter fusion;
//! 2. `Select(NlJoin(l, r, pj), ps)` → `NlJoin(l, r, pj ∧ ps)` — a filter
//!    over a join output evaluates on the same concatenated row layout, so
//!    it merges into the join predicate and is checked *during* pair
//!    enumeration instead of on a materialized intermediate;
//! 3. `Select(UnionAll(l, r), p)` → `UnionAll(Select(l, p), Select(r, p))` —
//!    both branches share the schema.
//!
//! Semantics are preserved exactly (asserted by randomized tests); the win
//! is avoided materialization, which matters for the quadratic join outputs
//! the baselines produce.

use crate::plan::Plan;

/// Optimizes a plan by exhaustively applying the pushdown rules.
pub fn optimize(plan: Plan) -> Plan {
    // Bottom-up: optimize children first, then rewrite this node until no
    // rule fires.
    let node = match plan {
        Plan::Values(rel) => Plan::Values(rel),
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(optimize(*input)),
            pred,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(optimize(*input)),
            cols,
        },
        Plan::NlJoin { left, right, pred } => Plan::NlJoin {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
            pred,
        },
        Plan::HashJoin {
            left,
            right,
            l_cols,
            r_cols,
        } => Plan::HashJoin {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
            l_cols,
            r_cols,
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(optimize(*input)),
        },
        Plan::Aggregate { input, keys, aggs } => Plan::Aggregate {
            input: Box::new(optimize(*input)),
            keys,
            aggs,
        },
        Plan::Sort { input, cols } => Plan::Sort {
            input: Box::new(optimize(*input)),
            cols,
        },
    };
    rewrite(node)
}

fn rewrite(plan: Plan) -> Plan {
    match plan {
        Plan::Select { input, pred } => match *input {
            // Rule 1: filter fusion.
            Plan::Select {
                input: inner,
                pred: p1,
            } => rewrite(Plan::Select {
                input: inner,
                pred: p1.and(pred),
            }),
            // Rule 2: merge into the join predicate.
            Plan::NlJoin {
                left,
                right,
                pred: pj,
            } => Plan::NlJoin {
                left,
                right,
                pred: pj.and(pred),
            },
            // Rule 3: push through union.
            Plan::UnionAll { left, right } => Plan::UnionAll {
                left: Box::new(rewrite(Plan::Select {
                    input: left,
                    pred: pred.clone(),
                })),
                right: Box::new(rewrite(Plan::Select { input: right, pred })),
            },
            other => Plan::Select {
                input: Box::new(other),
                pred,
            },
        },
        other => other,
    }
}

/// Counts the nodes of a plan (used to show the optimizer shrinks trees).
pub fn plan_size(plan: &Plan) -> usize {
    match plan {
        Plan::Values(_) => 1,
        Plan::Select { input, .. }
        | Plan::Project { input, .. }
        | Plan::Distinct { input }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. } => 1 + plan_size(input),
        Plan::NlJoin { left, right, .. }
        | Plan::HashJoin { left, right, .. }
        | Plan::UnionAll { left, right } => 1 + plan_size(left) + plan_size(right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::relation::{Relation, Schema};
    use tp_core::value::Value;

    fn rel(cols: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        Relation::new(
            Schema::new(cols.iter().copied()),
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::int).collect())
                .collect(),
        )
    }

    fn canon(r: Relation) -> Vec<Vec<Value>> {
        let mut rows = r.rows;
        rows.sort();
        rows
    }

    #[test]
    fn select_over_join_merges_into_predicate() {
        let l = rel(&["a"], vec![vec![1], vec![2], vec![3]]);
        let r = rel(&["b"], vec![vec![2], vec![3], vec![4]]);
        let plan = Plan::values(l)
            .nl_join(Plan::values(r), Predicate::True)
            .select(Predicate::col_eq(0, 1));
        let optimized = optimize(plan.clone());
        // The Select node is gone...
        assert!(plan_size(&optimized) < plan_size(&plan));
        assert!(matches!(optimized, Plan::NlJoin { .. }));
        // ...and the result is unchanged.
        assert_eq!(canon(optimized.execute()), canon(plan.execute()));
    }

    #[test]
    fn stacked_selects_fuse() {
        let x = rel(&["v"], vec![vec![1], vec![5], vec![9]]);
        let plan = Plan::values(x)
            .select(Predicate::col_const(CmpOp::Gt, 0, Value::int(2)))
            .select(Predicate::col_const(CmpOp::Lt, 0, Value::int(7)));
        let optimized = optimize(plan.clone());
        assert_eq!(plan_size(&optimized), 2); // Values + one Select
        assert_eq!(canon(optimized.execute()), canon(plan.execute()));
        assert_eq!(optimized.execute().len(), 1); // just {5}
    }

    #[test]
    fn select_pushes_through_union() {
        let a = rel(&["v"], vec![vec![1], vec![4]]);
        let b = rel(&["v"], vec![vec![6], vec![2]]);
        let plan = Plan::values(a)
            .union_all(Plan::values(b))
            .select(Predicate::col_const(CmpOp::Ge, 0, Value::int(4)));
        let optimized = optimize(plan.clone());
        assert!(matches!(optimized, Plan::UnionAll { .. }));
        assert_eq!(canon(optimized.execute()), canon(plan.execute()));
    }

    #[test]
    fn optimizer_is_semantics_preserving_on_random_plans() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..30 {
            let n = rng.random_range(1..20usize);
            let mk = |rng: &mut StdRng, n: usize| {
                rel(
                    &["x", "y"],
                    (0..n)
                        .map(|_| vec![rng.random_range(0..5i64), rng.random_range(0..5i64)])
                        .collect(),
                )
            };
            let a = mk(&mut rng, n);
            let b = mk(&mut rng, n);
            let plan = Plan::values(a)
                .nl_join(Plan::values(b), Predicate::col_cmp(CmpOp::Le, 0, 2))
                .select(Predicate::col_eq(1, 3))
                .select(Predicate::col_const(CmpOp::Lt, 0, Value::int(4)));
            let optimized = optimize(plan.clone());
            assert_eq!(canon(optimized.execute()), canon(plan.execute()));
        }
    }

    #[test]
    fn non_matching_nodes_are_left_alone() {
        let x = rel(&["v"], vec![vec![1]]);
        let plan = Plan::values(x).distinct().sort(vec![0]);
        let optimized = optimize(plan.clone());
        assert_eq!(plan_size(&optimized), plan_size(&plan));
        assert_eq!(optimized.execute(), plan.execute());
    }
}
