//! The physical operators of the mini engine.

use std::collections::HashMap;

use tp_core::value::Value;

use crate::predicate::Predicate;
use crate::relation::Relation;

/// σ: keeps the rows satisfying the predicate.
pub fn select(rel: &Relation, pred: &Predicate) -> Relation {
    Relation {
        schema: rel.schema.clone(),
        rows: rel.rows.iter().filter(|r| pred.eval(r)).cloned().collect(),
    }
}

/// π: projects each row onto the given column positions (bag semantics —
/// duplicates are kept, like SQL without DISTINCT).
pub fn project(rel: &Relation, cols: &[usize]) -> Relation {
    Relation {
        schema: rel.schema.project(cols),
        rows: rel
            .rows
            .iter()
            .map(|r| cols.iter().map(|&i| r[i].clone()).collect())
            .collect(),
    }
}

/// Nested-loop theta join: O(|l| · |r|) pair enumerations.
///
/// This is deliberately the naive algorithm — it is what the paper's
/// complexity analysis of NORM/TPDB assumes for joins with inequality
/// predicates (reference \[31\]: inequality joins are quadratic without
/// specialized indexes).
pub fn nested_loop_join(l: &Relation, r: &Relation, pred: &Predicate) -> Relation {
    let mut rows = Vec::new();
    for lr in &l.rows {
        for rr in &r.rows {
            if pred.eval_pair(lr, rr) {
                let mut row = Vec::with_capacity(lr.len() + rr.len());
                row.extend(lr.iter().cloned());
                row.extend(rr.iter().cloned());
                rows.push(row);
            }
        }
    }
    Relation {
        schema: l.schema.concat(&r.schema),
        rows,
    }
}

/// Nested-loop join producing `(left index, right index)` pairs instead of
/// materialized rows — used when the caller keeps side structures (e.g. the
/// TPDB baseline's lineage store) keyed by row position.
pub fn nested_loop_join_pairs(l: &Relation, r: &Relation, pred: &Predicate) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, lr) in l.rows.iter().enumerate() {
        for (j, rr) in r.rows.iter().enumerate() {
            if pred.eval_pair(lr, rr) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Left-outer nested-loop join in pair form: every left row appears at least
/// once; unmatched rows pair with `None`.
pub fn left_outer_join_pairs(
    l: &Relation,
    r: &Relation,
    pred: &Predicate,
) -> Vec<(usize, Option<usize>)> {
    let mut out = Vec::new();
    for (i, lr) in l.rows.iter().enumerate() {
        let mut matched = false;
        for (j, rr) in r.rows.iter().enumerate() {
            if pred.eval_pair(lr, rr) {
                out.push((i, Some(j)));
                matched = true;
            }
        }
        if !matched {
            out.push((i, None));
        }
    }
    out
}

/// Hash equi-join on `l_cols` = `r_cols` (column-position lists of equal
/// length). Builds on the smaller input.
pub fn hash_join(l: &Relation, r: &Relation, l_cols: &[usize], r_cols: &[usize]) -> Relation {
    assert_eq!(l_cols.len(), r_cols.len(), "join key arity mismatch");
    let schema = l.schema.concat(&r.schema);
    // Build on r, probe with l (output order: left-major, deterministic).
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (j, rr) in r.rows.iter().enumerate() {
        let key: Vec<Value> = r_cols.iter().map(|&c| rr[c].clone()).collect();
        table.entry(key).or_default().push(j);
    }
    let mut rows = Vec::new();
    for lr in &l.rows {
        let key: Vec<Value> = l_cols.iter().map(|&c| lr[c].clone()).collect();
        if let Some(matches) = table.get(&key) {
            for &j in matches {
                let mut row = Vec::with_capacity(lr.len() + r.rows[j].len());
                row.extend(lr.iter().cloned());
                row.extend(r.rows[j].iter().cloned());
                rows.push(row);
            }
        }
    }
    Relation { schema, rows }
}

/// Sort-merge equi-join on a single column pair.
pub fn sort_merge_join(l: &Relation, r: &Relation, l_col: usize, r_col: usize) -> Relation {
    let schema = l.schema.concat(&r.schema);
    let mut li: Vec<usize> = (0..l.rows.len()).collect();
    let mut ri: Vec<usize> = (0..r.rows.len()).collect();
    li.sort_by(|&a, &b| l.rows[a][l_col].cmp(&l.rows[b][l_col]));
    ri.sort_by(|&a, &b| r.rows[a][r_col].cmp(&r.rows[b][r_col]));
    let mut rows = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < li.len() && j < ri.len() {
        let lv = &l.rows[li[i]][l_col];
        let rv = &r.rows[ri[j]][r_col];
        match lv.cmp(rv) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the run of equal keys on both sides, emit the cross
                // product of the runs.
                let mut i_end = i;
                while i_end < li.len() && &l.rows[li[i_end]][l_col] == lv {
                    i_end += 1;
                }
                let mut j_end = j;
                while j_end < ri.len() && &r.rows[ri[j_end]][r_col] == rv {
                    j_end += 1;
                }
                for &a in &li[i..i_end] {
                    for &b in &ri[j..j_end] {
                        let mut row = Vec::with_capacity(l.schema.arity() + r.schema.arity());
                        row.extend(l.rows[a].iter().cloned());
                        row.extend(r.rows[b].iter().cloned());
                        rows.push(row);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Relation { schema, rows }
}

/// Bag union (schemas must match).
pub fn union_all(l: &Relation, r: &Relation) -> Relation {
    assert_eq!(
        l.schema.arity(),
        r.schema.arity(),
        "union requires equal arity"
    );
    let mut rows = l.rows.clone();
    rows.extend(r.rows.iter().cloned());
    Relation {
        schema: l.schema.clone(),
        rows,
    }
}

/// Duplicate elimination by sorting (SQL `DISTINCT`).
pub fn distinct(rel: &Relation) -> Relation {
    let mut rows = rel.rows.clone();
    rows.sort();
    rows.dedup();
    Relation {
        schema: rel.schema.clone(),
        rows,
    }
}

/// Sorts the rows by the given column positions, in order.
pub fn sort_by(rel: &Relation, cols: &[usize]) -> Relation {
    let mut rows = rel.rows.clone();
    rows.sort_by(|a, b| {
        for &c in cols {
            match a[c].cmp(&b[c]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
    Relation {
        schema: rel.schema.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::relation::Schema;

    fn rel(cols: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        Relation::new(
            Schema::new(cols.iter().copied()),
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::int).collect())
                .collect(),
        )
    }

    #[test]
    fn select_filters() {
        let r = rel(&["x"], vec![vec![1], vec![5], vec![9]]);
        let out = select(&r, &Predicate::col_const(CmpOp::Gt, 0, Value::int(3)));
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn project_reorders_columns() {
        let r = rel(&["a", "b"], vec![vec![1, 2]]);
        let out = project(&r, &[1, 0]);
        assert_eq!(out.schema.columns(), &["b", "a"]);
        assert_eq!(out.rows[0], vec![Value::int(2), Value::int(1)]);
    }

    #[test]
    fn nested_loop_overlap_join() {
        // Two interval tables; join on overlap.
        let l = rel(&["ts", "te"], vec![vec![1, 4], vec![6, 9]]);
        let r = rel(&["ts", "te"], vec![vec![3, 7], vec![9, 12]]);
        let out = nested_loop_join(&l, &r, &Predicate::overlap(0, 1, 2, 3));
        // [1,4)x[3,7) and [6,9)x[3,7) overlap; [9,12) matches nothing.
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.schema.arity(), 4);
    }

    #[test]
    fn join_pairs_and_outer_pairs() {
        let l = rel(&["ts", "te"], vec![vec![1, 4], vec![20, 22]]);
        let r = rel(&["ts", "te"], vec![vec![3, 7]]);
        let pred = Predicate::overlap(0, 1, 2, 3);
        assert_eq!(nested_loop_join_pairs(&l, &r, &pred), vec![(0, 0)]);
        assert_eq!(
            left_outer_join_pairs(&l, &r, &pred),
            vec![(0, Some(0)), (1, None)]
        );
    }

    #[test]
    fn hash_join_matches_nested_loop_on_equality() {
        let l = rel(&["k", "v"], vec![vec![1, 10], vec![2, 20], vec![1, 11]]);
        let r = rel(&["k", "w"], vec![vec![1, 100], vec![3, 300]]);
        let hj = hash_join(&l, &r, &[0], &[0]);
        let nl = nested_loop_join(&l, &r, &Predicate::col_eq(0, 2));
        let canon = |rel: &Relation| {
            let mut rows = rel.rows.clone();
            rows.sort();
            rows
        };
        assert_eq!(canon(&hj), canon(&nl));
        assert_eq!(hj.rows.len(), 2);
    }

    #[test]
    fn sort_merge_join_matches_hash_join() {
        let l = rel(&["k", "v"], vec![vec![2, 1], vec![1, 2], vec![2, 3]]);
        let r = rel(&["k", "w"], vec![vec![2, 9], vec![2, 8], vec![1, 7]]);
        let a = sort_merge_join(&l, &r, 0, 0);
        let b = hash_join(&l, &r, &[0], &[0]);
        let canon = |rel: &Relation| {
            let mut rows = rel.rows.clone();
            rows.sort();
            rows
        };
        assert_eq!(canon(&a), canon(&b));
        assert_eq!(a.rows.len(), 5); // 2x2 for k=2, 1x1 for k=1
    }

    #[test]
    fn union_all_and_distinct() {
        let l = rel(&["x"], vec![vec![1], vec![2]]);
        let r = rel(&["x"], vec![vec![2], vec![3]]);
        let u = union_all(&l, &r);
        assert_eq!(u.rows.len(), 4);
        let d = distinct(&u);
        assert_eq!(d.rows.len(), 3);
    }

    #[test]
    fn sort_by_multiple_columns() {
        let r = rel(&["a", "b"], vec![vec![2, 1], vec![1, 9], vec![2, 0]]);
        let out = sort_by(&r, &[0, 1]);
        let firsts: Vec<i64> = out.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let seconds: Vec<i64> = out.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(firsts, vec![1, 2, 2]);
        assert_eq!(seconds, vec![9, 0, 1]);
    }

    #[test]
    fn empty_inputs() {
        let e = Relation::empty(Schema::new(["ts", "te"]));
        let r = rel(&["ts", "te"], vec![vec![1, 4]]);
        assert!(nested_loop_join(&e, &r, &Predicate::True).is_empty());
        assert!(nested_loop_join(&r, &e, &Predicate::True).is_empty());
        assert_eq!(
            left_outer_join_pairs(&r, &e, &Predicate::True),
            vec![(0, None)]
        );
        assert!(hash_join(&e, &r, &[0], &[0]).is_empty());
        assert!(sort_merge_join(&e, &r, 0, 0).is_empty());
    }

    #[test]
    fn cross_product_via_true_predicate() {
        let l = rel(&["a"], vec![vec![1], vec![2]]);
        let r = rel(&["b"], vec![vec![3], vec![4], vec![5]]);
        assert_eq!(nested_loop_join(&l, &r, &Predicate::True).rows.len(), 6);
    }
}
