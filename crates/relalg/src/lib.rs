//! # tp-relalg — a minimal in-memory relational algebra engine
//!
//! The paper evaluates its relational baselines (NORM, TPDB) inside
//! PostgreSQL. This crate is the corresponding substrate for our
//! reproduction: a deliberately small row-at-a-time executor with the
//! operators those baselines need — scans, selections, projections,
//! **nested-loop theta joins with inequality predicates** (the quadratic
//! workhorse the paper's complexity arguments hinge on), hash equi-joins,
//! sort-merge equi-joins, outer-join pair enumeration, sorting, distinct and
//! union-all.
//!
//! Rows are flat `Vec<Value>` records; joins operate on the concatenation of
//! the two input rows, so join predicates address columns by offset exactly
//! like a real executor does after schema concatenation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod incremental;
pub mod ops;
pub mod optimize;
pub mod plan;
pub mod predicate;
pub mod relation;

pub use aggregate::{group_by, AggFn};
pub use incremental::{bind_sources, lower, LowerError, Lowered, LoweredNode, LoweredOp};
pub use ops::{
    distinct, hash_join, left_outer_join_pairs, nested_loop_join, nested_loop_join_pairs, project,
    select, sort_by, sort_merge_join, union_all,
};
pub use optimize::{optimize, plan_size, reoptimize, RateProfile, SourceStats};
pub use plan::Plan;
pub use predicate::{CmpOp, Expr, Predicate};
pub use relation::{Relation, Row, Schema};
