//! Lowering a batch [`Plan`] into a topologically ordered operator DAG —
//! the compile step of the streaming pipeline (`tp-stream::pipeline`).
//!
//! The batch executor materializes every intermediate; a standing query
//! cannot. [`lower`] flattens a plan tree into [`Lowered`]: a vector of
//! [`LoweredNode`]s in **topological order** (every node's inputs precede
//! it), with each [`Plan::Values`] leaf replaced by a [`LoweredOp::Source`]
//! placeholder numbered in left-to-right (preorder) encounter order. The
//! runtime feeds those sources from live delta streams; the leaf's inline
//! rows are ignored, only its schema is kept (it fixes the source arity).
//!
//! [`bind_sources`] is the inverse hook for differential testing: it
//! substitutes concrete relations back into the `Values` leaves (same
//! preorder numbering), so the *same* plan object can run batch over the
//! stream's closed region and be compared against the standing pipeline's
//! materialized output.
//!
//! `Sort` does not lower: a standing operator maintains an unordered
//! multiset, and ordering is a presentation concern — callers sort the
//! materialized snapshot instead. [`lower`] rejects it explicitly.

use std::fmt;

use crate::aggregate::AggFn;
use crate::plan::Plan;
use crate::predicate::Predicate;
use crate::relation::{Relation, Schema};

/// Why a plan does not lower to a standing pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The plan contains a `Sort` node — ordering is a presentation
    /// concern; sort the materialized snapshot instead.
    Sort,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Sort => write!(
                f,
                "Sort does not lower to a standing operator; \
                 sort the materialized snapshot instead"
            ),
        }
    }
}

impl std::error::Error for LowerError {}

/// One standing operator kind, carrying exactly the parameters its batch
/// twin uses — the incremental semantics are defined relative to those.
#[derive(Debug, Clone, PartialEq)]
pub enum LoweredOp {
    /// The `i`-th `Values` leaf (preorder), fed from a live delta stream.
    Source(usize),
    /// σ with the batch predicate.
    Select(Predicate),
    /// π onto the given columns (bag semantics).
    Project(Vec<usize>),
    /// Nested-loop theta join; the predicate addresses the concatenated
    /// `left ++ right` row.
    NlJoin(Predicate),
    /// Hash equi-join on the key columns.
    HashJoin {
        /// Left key columns.
        l_cols: Vec<usize>,
        /// Right key columns.
        r_cols: Vec<usize>,
    },
    /// Bag union of two equal-arity inputs.
    UnionAll,
    /// Duplicate elimination (multiset support counting).
    Distinct,
    /// γ with dirty-key recompute through [`AggFn::finish`].
    Aggregate {
        /// Grouping key columns.
        keys: Vec<usize>,
        /// Aggregates, one output column each.
        aggs: Vec<AggFn>,
    },
}

impl LoweredOp {
    /// Stable short name of the operator kind — the metric label and span
    /// name of the runtime's per-operator instrumentation.
    pub fn name(&self) -> &'static str {
        match self {
            LoweredOp::Source(_) => "source",
            LoweredOp::Select(_) => "select",
            LoweredOp::Project(_) => "project",
            LoweredOp::NlJoin(_) => "nl_join",
            LoweredOp::HashJoin { .. } => "hash_join",
            LoweredOp::UnionAll => "union_all",
            LoweredOp::Distinct => "distinct",
            LoweredOp::Aggregate { .. } => "aggregate",
        }
    }
}

/// One node of the lowered DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredNode {
    /// The operator.
    pub op: LoweredOp,
    /// Indices of the upstream nodes, in port order (joins and union:
    /// `[left, right]`). Always smaller than this node's own index.
    pub inputs: Vec<usize>,
    /// The operator's output schema.
    pub schema: Schema,
}

/// A lowered plan: operators in topological order (the last node is the
/// root) plus the schemas the sources were declared with.
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered {
    /// The operators; every node's `inputs` point at earlier entries.
    pub nodes: Vec<LoweredNode>,
    /// Schema of each source, in preorder numbering.
    pub source_schemas: Vec<Schema>,
}

impl Lowered {
    /// Index of the root node (the plan's output operator).
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Number of sources the runtime must feed.
    pub fn source_count(&self) -> usize {
        self.source_schemas.len()
    }

    /// The root's output schema.
    pub fn root_schema(&self) -> &Schema {
        &self.nodes[self.root()].schema
    }
}

/// Lowers a plan into the topo-ordered operator DAG. See the module docs
/// for the `Values`-leaf convention and the `Sort` restriction.
pub fn lower(plan: &Plan) -> Result<Lowered, LowerError> {
    let mut out = Lowered {
        nodes: Vec::new(),
        source_schemas: Vec::new(),
    };
    rec(plan, &mut out)?;
    Ok(out)
}

fn rec(plan: &Plan, out: &mut Lowered) -> Result<usize, LowerError> {
    let (op, inputs, schema) = match plan {
        Plan::Values(rel) => {
            let idx = out.source_schemas.len();
            out.source_schemas.push(rel.schema.clone());
            (LoweredOp::Source(idx), Vec::new(), rel.schema.clone())
        }
        Plan::Select { input, pred } => {
            let i = rec(input, out)?;
            let schema = out.nodes[i].schema.clone();
            (LoweredOp::Select(pred.clone()), vec![i], schema)
        }
        Plan::Project { input, cols } => {
            let i = rec(input, out)?;
            let schema = out.nodes[i].schema.project(cols);
            (LoweredOp::Project(cols.clone()), vec![i], schema)
        }
        Plan::NlJoin { left, right, pred } => {
            let l = rec(left, out)?;
            let r = rec(right, out)?;
            let schema = out.nodes[l].schema.concat(&out.nodes[r].schema);
            (LoweredOp::NlJoin(pred.clone()), vec![l, r], schema)
        }
        Plan::HashJoin {
            left,
            right,
            l_cols,
            r_cols,
        } => {
            let l = rec(left, out)?;
            let r = rec(right, out)?;
            let schema = out.nodes[l].schema.concat(&out.nodes[r].schema);
            (
                LoweredOp::HashJoin {
                    l_cols: l_cols.clone(),
                    r_cols: r_cols.clone(),
                },
                vec![l, r],
                schema,
            )
        }
        Plan::UnionAll { left, right } => {
            let l = rec(left, out)?;
            let r = rec(right, out)?;
            let schema = out.nodes[l].schema.clone();
            (LoweredOp::UnionAll, vec![l, r], schema)
        }
        Plan::Distinct { input } => {
            let i = rec(input, out)?;
            let schema = out.nodes[i].schema.clone();
            (LoweredOp::Distinct, vec![i], schema)
        }
        Plan::Aggregate { input, keys, aggs } => {
            let i = rec(input, out)?;
            let in_schema = &out.nodes[i].schema;
            let mut columns: Vec<String> = keys
                .iter()
                .map(|&k| in_schema.columns()[k].clone())
                .collect();
            columns.extend(aggs.iter().map(AggFn::name));
            (
                LoweredOp::Aggregate {
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                },
                vec![i],
                Schema::new(columns),
            )
        }
        Plan::Sort { .. } => return Err(LowerError::Sort),
    };
    out.nodes.push(LoweredNode { op, inputs, schema });
    Ok(out.nodes.len() - 1)
}

/// Substitutes concrete relations into the plan's `Values` leaves, in the
/// same preorder numbering [`lower`] assigns sources — the differential-
/// oracle hook: run the substituted plan batch, compare with the pipeline.
///
/// Panics if `tables` does not match the number of leaves, or a table's
/// arity differs from its leaf's declared schema.
pub fn bind_sources(plan: &Plan, tables: &[Relation]) -> Plan {
    fn rec(plan: &Plan, tables: &[Relation], next: &mut usize) -> Plan {
        match plan {
            Plan::Values(rel) => {
                let i = *next;
                *next += 1;
                assert!(
                    i < tables.len(),
                    "bind_sources: plan has more Values leaves than tables"
                );
                assert_eq!(
                    tables[i].schema.arity(),
                    rel.schema.arity(),
                    "bind_sources: table {i} arity differs from the leaf schema"
                );
                Plan::Values(tables[i].clone())
            }
            Plan::Select { input, pred } => Plan::Select {
                input: Box::new(rec(input, tables, next)),
                pred: pred.clone(),
            },
            Plan::Project { input, cols } => Plan::Project {
                input: Box::new(rec(input, tables, next)),
                cols: cols.clone(),
            },
            Plan::NlJoin { left, right, pred } => Plan::NlJoin {
                left: Box::new(rec(left, tables, next)),
                right: Box::new(rec(right, tables, next)),
                pred: pred.clone(),
            },
            Plan::HashJoin {
                left,
                right,
                l_cols,
                r_cols,
            } => Plan::HashJoin {
                left: Box::new(rec(left, tables, next)),
                right: Box::new(rec(right, tables, next)),
                l_cols: l_cols.clone(),
                r_cols: r_cols.clone(),
            },
            Plan::UnionAll { left, right } => Plan::UnionAll {
                left: Box::new(rec(left, tables, next)),
                right: Box::new(rec(right, tables, next)),
            },
            Plan::Distinct { input } => Plan::Distinct {
                input: Box::new(rec(input, tables, next)),
            },
            Plan::Aggregate { input, keys, aggs } => Plan::Aggregate {
                input: Box::new(rec(input, tables, next)),
                keys: keys.clone(),
                aggs: aggs.clone(),
            },
            Plan::Sort { input, cols } => Plan::Sort {
                input: Box::new(rec(input, tables, next)),
                cols: cols.clone(),
            },
        }
    }
    let mut next = 0usize;
    let out = rec(plan, tables, &mut next);
    assert_eq!(
        next,
        tables.len(),
        "bind_sources: plan has fewer Values leaves than tables"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use tp_core::value::Value;

    fn rel(cols: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        Relation::new(
            Schema::new(cols.iter().copied()),
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::int).collect())
                .collect(),
        )
    }

    fn placeholder(cols: &[&str]) -> Relation {
        Relation::empty(Schema::new(cols.iter().copied()))
    }

    #[test]
    fn lowering_is_topo_ordered_and_numbers_sources_preorder() {
        let plan = Plan::values(placeholder(&["k", "ts", "te"]))
            .hash_join(
                Plan::values(placeholder(&["k", "ts", "te"])),
                vec![0],
                vec![0],
            )
            .select(Predicate::col_const(CmpOp::Ge, 1, Value::int(0)))
            .aggregate(vec![0], vec![AggFn::Count]);
        let lowered = lower(&plan).unwrap();
        assert_eq!(lowered.source_count(), 2);
        assert_eq!(lowered.nodes.len(), 5);
        for (i, node) in lowered.nodes.iter().enumerate() {
            assert!(node.inputs.iter().all(|&j| j < i), "inputs precede node");
        }
        assert_eq!(lowered.nodes[0].op, LoweredOp::Source(0));
        assert_eq!(lowered.nodes[1].op, LoweredOp::Source(1));
        assert_eq!(lowered.root(), 4);
        assert_eq!(lowered.root_schema().columns(), &["l.k", "count"]);
    }

    #[test]
    fn join_schema_concats_and_aggregate_names_follow_batch() {
        let plan = Plan::values(placeholder(&["k", "v"]))
            .nl_join(Plan::values(placeholder(&["k", "w"])), Predicate::True)
            .aggregate(vec![1], vec![AggFn::Sum(3), AggFn::Max(3)]);
        let lowered = lower(&plan).unwrap();
        let join = &lowered.nodes[2];
        assert_eq!(join.schema.columns(), &["l.k", "v", "r.k", "w"]);
        assert_eq!(lowered.root_schema().columns(), &["v", "sum_3", "max_3"]);
    }

    #[test]
    fn sort_is_rejected() {
        let plan = Plan::values(placeholder(&["x"])).sort(vec![0]);
        assert_eq!(lower(&plan), Err(LowerError::Sort));
        assert!(LowerError::Sort.to_string().contains("Sort"));
    }

    #[test]
    fn bind_sources_substitutes_in_preorder_and_executes() {
        let plan = Plan::values(placeholder(&["k", "v"]))
            .hash_join(Plan::values(placeholder(&["k", "w"])), vec![0], vec![0])
            .project(vec![1, 3]);
        let l = rel(&["k", "v"], vec![vec![1, 10], vec![2, 20]]);
        let r = rel(&["k", "w"], vec![vec![2, 7]]);
        let bound = bind_sources(&plan, &[l, r]);
        let out = bound.execute();
        assert_eq!(out.rows, vec![vec![Value::int(20), Value::int(7)]]);
    }

    #[test]
    #[should_panic(expected = "more Values leaves")]
    fn bind_sources_panics_on_missing_tables() {
        let plan = Plan::values(placeholder(&["x"])).union_all(Plan::values(placeholder(&["x"])));
        bind_sources(&plan, &[rel(&["x"], vec![])]);
    }
}
