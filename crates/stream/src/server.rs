//! The multi-tenant stream server: N independent continuous-LAWA tenants,
//! each with **fully bounded memory**, behind one façade.
//!
//! The north star scenario — millions of users, one stream each — needs
//! per-stream isolation on both memory axes:
//!
//! * **lineage**: every tenant's engine runs in reclaim mode, i.e. inside
//!   its own private [`LineageArena`] ([`LineageArena::enter`] per engine
//!   call). One tenant's seal/retire schedule can never invalidate — or
//!   even observe — another tenant's handles; `arena_stats` are strictly
//!   per tenant.
//! * **variables**: every tenant owns a sliding [`VarTable`] registry
//!   wired into its engine's [`ReclaimConfig::vars`]. Variables are
//!   registered at push time ([`StreamServer::push_row`]) and retire with
//!   the arena segment of the same advance window, so the registry is
//!   proportional to the live window, not to history.
//!
//! [`StreamServer::advance_all`] drives a watermark wave across all
//! tenants, sharding the live advances over a pool of scoped worker
//! threads (each tenant's advance is single-threaded and independent, so
//! the shard runs lock-free). Results are deterministic: a tenant's delta
//! log is byte-identical whether it is advanced alone or in a wave next to
//! thousands of others — the soak tests assert exactly that.

use std::sync::Arc;

use tp_core::arena::ArenaStats;
use tp_core::error::Result as CoreResult;
use tp_core::fact::Fact;
use tp_core::interval::{Interval, TimePoint};
use tp_core::lineage::Lineage;
use tp_core::ops::SetOp;
use tp_core::relation::VarTable;
use tp_core::tuple::TpTuple;

use crate::delta::StreamSink;
use crate::engine::{
    AdvanceStats, BufferKind, EngineConfig, IngestOutcome, ParallelConfig, ReclaimConfig, Side,
    StreamEngine, StreamError, WatermarkPolicy,
};
use crate::obs::ObsConfig;
use crate::pipeline::PipelineError;
use tp_obs::{Gauge, Histogram, MetricsRegistry};

/// Identifier of one tenant stream within a [`StreamServer`]. Dense per
/// server, assigned by [`StreamServer::add_tenant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub usize);

/// Construction parameters of a [`StreamServer`]. Only the two reclaim
/// scalars are configurable (not a whole [`ReclaimConfig`]): the server
/// always wires each tenant's *own* private arena and var registry in, so
/// a shared `vars` table is unrepresentable by construction.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Operations maintained for every tenant (they share one sweep per
    /// advance either way).
    pub ops: Vec<SetOp>,
    /// Per-tenant retirement grace window ([`ReclaimConfig::keep_epochs`]).
    pub keep_epochs: usize,
    /// Dedup stripes of each tenant's private arena
    /// ([`ReclaimConfig::shards`]).
    pub shards: usize,
    /// Total worker budget of one watermark wave. The two-level scheduler
    /// splits it between **tenant shards** (how many tenants advance
    /// concurrently) and **intra-tenant regions** (how many workers one
    /// tenant's advance shards its timeline over): every tenant gets one
    /// region worker, and the budget left over after the tenant shards is
    /// handed out proportionally to buffered load — so a single hot
    /// tenant soaks up the spare budget instead of stalling the wave on
    /// one core. 1 = fully serial.
    pub workers: usize,
    /// Per-advance floor for intra-tenant region parallelism
    /// ([`ParallelConfig::min_tuples`]): a tenant's advance only fans out
    /// when it releases at least this many tuple pieces.
    pub region_min_tuples: usize,
    /// Ingest-buffer implementation of every tenant engine
    /// ([`EngineConfig::buffer`]). With the default gapped index, the wave
    /// scheduler additionally reads each tenant's *releasable* load for
    /// the upcoming watermark straight off the index
    /// ([`StreamEngine::buffered_load`]) instead of the total buffered
    /// count.
    pub buffer: BufferKind,
    /// Observability template applied to every tenant engine: `enabled`
    /// and `registry` carry over per tenant; the `tenant` label is always
    /// overwritten with the tenant's name, so each tenant's metrics and
    /// spans stay attributable within the shared registry.
    pub obs: ObsConfig,
    /// Pipeline re-optimization cadence applied to every tenant engine
    /// ([`EngineConfig::reopt_every`]). `None` (the default) freezes each
    /// tenant's compiled plans.
    pub reopt_every: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let reclaim = ReclaimConfig::default();
        let parallel = ParallelConfig::default();
        ServerConfig {
            ops: SetOp::ALL.to_vec(),
            keep_epochs: reclaim.keep_epochs,
            shards: reclaim.shards,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            region_min_tuples: parallel.min_tuples,
            buffer: BufferKind::default(),
            obs: ObsConfig::default(),
            reopt_every: None,
        }
    }
}

/// One tenant: engine (private arena), sliding var registry, sink, and
/// running totals.
struct Tenant<S> {
    name: String,
    engine: StreamEngine,
    vars: Arc<VarTable>,
    sink: S,
    last: AdvanceStats,
    pushed: u64,
    /// Rows [`StreamServer::push_row`] rejected as late before
    /// registration (the engine's own `late_dropped` only sees rows that
    /// reached it).
    late_rejected: u64,
    /// Wave-latency histogram (`tp_wave_advance_ns{tenant=…}`); `None`
    /// when observability is off.
    wave_ns: Option<Arc<Histogram>>,
    /// Region-worker budget decisions of the two-level scheduler
    /// (`tp_region_workers{tenant=…}`).
    workers_gauge: Option<Arc<Gauge>>,
}

impl<S: StreamSink> Tenant<S> {
    fn advance(&mut self, to: TimePoint) -> Result<AdvanceStats, StreamError> {
        let t0 = self.wave_ns.as_ref().map(|_| crate::obs::now_ns());
        let stats = self.engine.advance(to, &mut self.sink)?;
        if let (Some(h), Some(t0)) = (&self.wave_ns, t0) {
            h.record(crate::obs::now_ns() - t0);
        }
        self.last = stats;
        Ok(stats)
    }
}

/// A multiplexer of N independent bounded-memory [`StreamEngine`]s; see
/// the module docs. `S` is the per-tenant sink type.
pub struct StreamServer<S> {
    cfg: ServerConfig,
    tenants: Vec<Tenant<S>>,
}

impl<S: StreamSink + Send> StreamServer<S> {
    /// Creates an empty server.
    pub fn new(cfg: ServerConfig) -> Self {
        StreamServer {
            cfg,
            tenants: Vec::new(),
        }
    }

    /// Adds a tenant with the given sink. The tenant gets a fresh private
    /// arena and a fresh sliding var registry wired into its engine.
    pub fn add_tenant(&mut self, name: impl Into<String>, sink: S) -> TenantId {
        self.add_tenant_with(name, |_| sink)
    }

    /// Adds a tenant whose sink is built against the tenant's var registry
    /// — for monitors that valuate deltas the moment they arrive (inside
    /// the engine's arena scope, per the reclaim consumption contract).
    pub fn add_tenant_with(
        &mut self,
        name: impl Into<String>,
        make_sink: impl FnOnce(&Arc<VarTable>) -> S,
    ) -> TenantId {
        let name = name.into();
        let (cfg, vars) = self.tenant_engine_config(&name);
        let engine = StreamEngine::new(cfg);
        self.push_tenant(name, engine, vars, make_sink)
    }

    /// Adds a tenant with a **standing pipeline** compiled from `plan` and
    /// fed from the tenant's `taps[i]` delta streams
    /// ([`StreamEngine::with_plan`]): the tenant continuously maintains
    /// the plan's materialized view next to its delta sink, under the same
    /// bounded-memory regime as every other tenant. Read it back through
    /// [`StreamServer::engine`] → [`StreamEngine::pipeline`].
    pub fn add_tenant_with_plan(
        &mut self,
        name: impl Into<String>,
        plan: &tp_relalg::Plan,
        taps: &[SetOp],
        make_sink: impl FnOnce(&Arc<VarTable>) -> S,
    ) -> Result<TenantId, PipelineError> {
        let name = name.into();
        let (cfg, vars) = self.tenant_engine_config(&name);
        let engine = StreamEngine::with_plan(cfg, plan, taps)?;
        Ok(self.push_tenant(name, engine, vars, make_sink))
    }

    /// Adds a tenant with **several standing plans** compiled into one
    /// shared pipeline ([`StreamEngine::with_plans`]): structurally
    /// identical sub-DAGs with the same tap bindings run once and fan out,
    /// so a tenant's K alert rules over the same join pay for its operator
    /// state a single time. `taps[p]` feeds plan `p`'s sources.
    pub fn add_tenant_with_plans(
        &mut self,
        name: impl Into<String>,
        plans: &[tp_relalg::Plan],
        taps: &[Vec<SetOp>],
        make_sink: impl FnOnce(&Arc<VarTable>) -> S,
    ) -> Result<TenantId, PipelineError> {
        let name = name.into();
        let (cfg, vars) = self.tenant_engine_config(&name);
        let engine = StreamEngine::with_plans(cfg, plans, taps)?;
        Ok(self.push_tenant(name, engine, vars, make_sink))
    }

    /// The per-tenant engine configuration: fresh private arena + sliding
    /// var registry, manual watermarks, one region worker until the wave
    /// scheduler hands out the spare budget (`schedule_region_workers`).
    fn tenant_engine_config(&self, name: &str) -> (EngineConfig, Arc<VarTable>) {
        let vars = Arc::new(VarTable::new());
        let obs = ObsConfig {
            tenant: Some(name.to_string()),
            ..self.cfg.obs.clone()
        };
        let cfg = EngineConfig {
            ops: self.cfg.ops.clone(),
            policy: WatermarkPolicy::Manual,
            verify_batch: false,
            reclaim: Some(ReclaimConfig {
                keep_epochs: self.cfg.keep_epochs,
                shards: self.cfg.shards,
                vars: Some(Arc::clone(&vars)),
                interior: true,
            }),
            parallel: Some(ParallelConfig {
                workers: 1,
                min_tuples: self.cfg.region_min_tuples,
                cuts: None,
            }),
            buffer: self.cfg.buffer,
            obs,
            reopt_every: self.cfg.reopt_every,
        };
        (cfg, vars)
    }

    fn push_tenant(
        &mut self,
        name: String,
        engine: StreamEngine,
        vars: Arc<VarTable>,
        make_sink: impl FnOnce(&Arc<VarTable>) -> S,
    ) -> TenantId {
        let (wave_ns, workers_gauge) = if self.cfg.obs.enabled {
            let reg: &MetricsRegistry = match &self.cfg.obs.registry {
                Some(r) => r,
                None => tp_obs::global(),
            };
            let labels = [("tenant", name.as_str())];
            (
                Some(reg.histogram("tp_wave_advance_ns", &labels)),
                Some(reg.gauge("tp_region_workers", &labels)),
            )
        } else {
            (None, None)
        };
        let sink = make_sink(&vars);
        self.tenants.push(Tenant {
            name,
            engine,
            vars,
            sink,
            last: AdvanceStats::default(),
            pushed: 0,
            late_rejected: 0,
            wave_ns,
            workers_gauge,
        });
        TenantId(self.tenants.len() - 1)
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The tenant's name.
    pub fn tenant_name(&self, t: TenantId) -> &str {
        &self.tenants[t.0].name
    }

    /// Ingests one base row for a tenant: registers a fresh variable with
    /// probability `p` in the tenant's sliding registry, builds the atomic
    /// lineage *inside the tenant's arena*, and pushes the tuple. This is
    /// the registration discipline [`ReclaimConfig::vars`] requires —
    /// variable and tuple enter the same advance window, so they retire
    /// together.
    pub fn push_row(
        &mut self,
        t: TenantId,
        side: Side,
        fact: impl Into<Fact>,
        interval: Interval,
        p: f64,
    ) -> CoreResult<IngestOutcome> {
        let tenant = &mut self.tenants[t.0];
        // Reject late rows BEFORE registering: a row the engine would
        // drop must not burn a registry slot (an orphaned variable in the
        // open cohort) or inflate the pushed gauge. Same predicate the
        // engine applies; counted per tenant in `late_rejected`.
        if interval.start() < tenant.engine.watermark() {
            tenant.late_rejected += 1;
            return Ok(IngestOutcome::Late);
        }
        // Labels are display-only (rendering falls back to `t{id}`
        // anyway), so a static side tag avoids a per-row format! on the
        // hot ingest path.
        let label = match side {
            Side::Left => "r",
            Side::Right => "s",
        };
        let id = tenant.vars.register_shared(label, p)?;
        // Build and push inside the tenant's arena: the engine's
        // translation then dedup-hits the freshly interned Var node
        // instead of round-tripping through the global arena.
        let scope = tenant.engine.enter_arena();
        let tuple = TpTuple::new(fact, Lineage::var(id), interval);
        let outcome = tenant.engine.push(side, tuple);
        drop(scope);
        tenant.pushed += 1;
        Ok(outcome)
    }

    /// Advances one tenant's watermark (see [`StreamEngine::advance`]).
    pub fn advance(&mut self, t: TenantId, to: TimePoint) -> Result<AdvanceStats, StreamError> {
        self.tenants[t.0].advance(to)
    }

    /// Runs `f` once per tenant, sharding the tenants over the worker
    /// pool ([`ServerConfig::workers`]); results come back in tenant
    /// order. Tenants are fully independent (private arena, private
    /// registry, private sink), so the shard runs lock-free; a single
    /// worker (or tenant) runs inline without spawning.
    fn for_each_tenant<R: Send>(&mut self, f: impl Fn(&mut Tenant<S>) -> R + Sync) -> Vec<R> {
        let workers = self.cfg.workers.clamp(1, self.tenants.len().max(1));
        if workers <= 1 {
            return self.tenants.iter_mut().map(&f).collect();
        }
        let chunk = self.tenants.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .tenants
                .chunks_mut(chunk)
                .map(|shard| {
                    let f = &f;
                    scope.spawn(move || shard.iter_mut().map(f).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("tenant worker panicked"))
                .collect()
        })
    }

    /// The two-level scheduler: splits the wave's worker budget between
    /// tenant shards and intra-tenant regions. Every tenant keeps one
    /// region worker; the budget left after the tenant shards
    /// (`workers − min(workers, tenants)`) is distributed proportionally
    /// to each tenant's buffered load, so a hot tenant's advance shards
    /// its own timeline instead of pinning the whole wave to one core.
    ///
    /// The load gauge is watermark-aware when the wave target is known and
    /// the tenant runs the gapped ingestion index: `buffered_load(to)`
    /// estimates the tuples the advance will actually *release* with one
    /// O(log n) index probe per side, so a tenant sitting on a mountain of
    /// far-future arrivals no longer soaks up budget it cannot use this
    /// wave. Legacy-buffer tenants (and `finish_all`, which has no single
    /// target) fall back to the total buffered count.
    ///
    /// Deterministic: the assignment never changes results (region
    /// parallelism is byte-identical by construction), only wall time.
    /// The budget is a soft cap — a tenant shard and its region workers
    /// overlap briefly, so momentary thread count can exceed it.
    fn schedule_region_workers(&mut self, to: Option<TimePoint>) {
        let budget = self.cfg.workers.max(1);
        let outer = budget.min(self.tenants.len().max(1));
        let spare = budget - outer;
        let loads: Vec<usize> = self
            .tenants
            .iter()
            .map(|t| match to {
                Some(w) => t.engine.buffered_load(w),
                None => t.engine.buffered().iter().sum(),
            })
            .collect();
        let total: usize = loads.iter().sum::<usize>().max(1);
        for (tenant, load) in self.tenants.iter_mut().zip(loads) {
            let w = 1 + spare * load / total;
            tenant.engine.set_region_workers(w);
            if let Some(g) = &tenant.workers_gauge {
                g.set(w as i64);
            }
        }
    }

    /// Advances every tenant's watermark to `to`, sharding the live
    /// advances across the worker pool ([`ServerConfig::workers`]) with
    /// the two-level budget split ([`ServerConfig::workers`] docs).
    /// Returns per-tenant results in tenant order; each tenant's outcome
    /// is identical to a serial [`StreamServer::advance`] call.
    pub fn advance_all(&mut self, to: TimePoint) -> Vec<Result<AdvanceStats, StreamError>> {
        self.schedule_region_workers(Some(to));
        self.for_each_tenant(|t| t.advance(to))
    }

    /// Flushes every tenant ([`StreamEngine::finish`]), sharded and
    /// budget-split like [`StreamServer::advance_all`].
    pub fn finish_all(&mut self) -> Vec<Result<AdvanceStats, StreamError>> {
        self.schedule_region_workers(None);
        self.for_each_tenant(|t| {
            let stats = t.engine.finish(&mut t.sink)?;
            t.last = stats;
            Ok(stats)
        })
    }

    /// The tenant's private-arena statistics — isolated by construction:
    /// no other tenant's retirement can move these numbers.
    pub fn arena_stats(&self, t: TenantId) -> ArenaStats {
        self.tenants[t.0]
            .engine
            .arena_stats()
            .expect("server tenants always run in reclaim mode")
    }

    /// The stats of the tenant's most recent advance.
    pub fn last_stats(&self, t: TenantId) -> AdvanceStats {
        self.tenants[t.0].last
    }

    /// The tenant's sliding var registry.
    pub fn vars(&self, t: TenantId) -> &Arc<VarTable> {
        &self.tenants[t.0].vars
    }

    /// The tenant's sink.
    pub fn sink(&self, t: TenantId) -> &S {
        &self.tenants[t.0].sink
    }

    /// The tenant's sink, mutably.
    pub fn sink_mut(&mut self, t: TenantId) -> &mut S {
        &mut self.tenants[t.0].sink
    }

    /// The tenant's engine (read access for gauges: watermark, buffered,
    /// late counts, reclamation totals).
    pub fn engine(&self, t: TenantId) -> &StreamEngine {
        &self.tenants[t.0].engine
    }

    /// Rows accepted for the tenant via [`StreamServer::push_row`] (late
    /// rejects are excluded — see [`StreamServer::late_rejected`]).
    pub fn pushed(&self, t: TenantId) -> u64 {
        self.tenants[t.0].pushed
    }

    /// Rows [`StreamServer::push_row`] rejected as late before touching
    /// the tenant's registry or engine.
    pub fn late_rejected(&self, t: TenantId) -> u64 {
        self.tenants[t.0].late_rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{CollectingSink, MaterializingSink};
    use tp_core::ops;
    use tp_core::relation::TpRelation;

    /// Tiny two-tenant smoke: rows differ per tenant, results match batch
    /// per tenant, and stats stay separate.
    #[test]
    fn server_isolates_tenants_and_matches_batch() {
        let mut server: StreamServer<MaterializingSink> =
            StreamServer::new(ServerConfig::default());
        let a = server.add_tenant("alpha", MaterializingSink::new());
        let b = server.add_tenant("beta", MaterializingSink::new());
        assert_eq!(server.tenant_count(), 2);
        assert_eq!(server.tenant_name(a), "alpha");

        // Control tables mirror the push_row registration order.
        let mut rows: [Vec<(Side, Fact, Interval, f64)>; 2] = [Vec::new(), Vec::new()];
        for e in 0..20i64 {
            for (ti, tid) in [(0usize, a), (1usize, b)] {
                let off = ti as i64 + 1;
                let row = (
                    Side::Left,
                    Fact::single("x"),
                    Interval::at(10 * e, 10 * e + 4 + off),
                    0.3 + 0.1 * off as f64,
                );
                server
                    .push_row(tid, row.0, row.1.clone(), row.2, row.3)
                    .unwrap();
                rows[ti].push(row);
                let row = (
                    Side::Right,
                    Fact::single("x"),
                    Interval::at(10 * e + 2, 10 * e + 7),
                    0.5,
                );
                server
                    .push_row(tid, row.0, row.1.clone(), row.2, row.3)
                    .unwrap();
                rows[ti].push(row);
            }
            let results = server.advance_all(10 * e + 8);
            assert!(results.iter().all(|r| r.is_ok()));
        }
        server.finish_all();

        for (ti, tid) in [(0usize, a), (1usize, b)] {
            // Per-tenant batch oracle in the global arena.
            let mut vars = tp_core::relation::VarTable::new();
            let mut left = Vec::new();
            let mut right = Vec::new();
            for (side, fact, iv, p) in &rows[ti] {
                let id = vars.register("v", *p).unwrap();
                let t = TpTuple::new(fact.clone(), Lineage::var(id), *iv);
                match side {
                    Side::Left => left.push(t),
                    Side::Right => right.push(t),
                }
            }
            let r = TpRelation::try_new(left).unwrap();
            let s = TpRelation::try_new(right).unwrap();
            let streamed = server.sink(tid).replay();
            for op in SetOp::ALL {
                assert_eq!(
                    streamed.relation(op).canonicalized(),
                    ops::apply(op, &r, &s).canonicalized(),
                    "tenant {ti}, {op}"
                );
            }
            // Bounded on both axes: something retired, and the live var
            // count is far below the total pushed.
            let (segs, _) = server.engine(tid).reclaimed();
            assert!(segs > 0, "tenant {ti} never retired a segment");
            assert!(server.engine(tid).reclaimed_vars() > 0);
            assert!(server.vars(tid).live_vars() < server.pushed(tid) as usize);
        }
        // Arena identities differ: the stats really are per tenant.
        assert!(!Arc::ptr_eq(server.vars(a), server.vars(b)));
    }

    #[test]
    fn late_rows_are_rejected_before_registration() {
        // A row behind the watermark must not consume a registry slot or
        // count as pushed — only the late gauge moves.
        let mut server: StreamServer<CollectingSink> = StreamServer::new(ServerConfig::default());
        let t = server.add_tenant("t", CollectingSink::new());
        server
            .push_row(t, Side::Left, Fact::single("x"), Interval::at(0, 5), 0.5)
            .unwrap();
        server.advance(t, 10).unwrap();
        let vars_before = server.vars(t).len();
        let outcome = server
            .push_row(t, Side::Left, Fact::single("x"), Interval::at(3, 8), 0.5)
            .unwrap();
        assert_eq!(outcome, IngestOutcome::Late);
        assert_eq!(server.vars(t).len(), vars_before, "registry slot burned");
        assert_eq!(server.pushed(t), 1);
        assert_eq!(server.late_rejected(t), 1);
        // Rows at the watermark are still accepted.
        assert_eq!(
            server
                .push_row(t, Side::Left, Fact::single("x"), Interval::at(10, 12), 0.5)
                .unwrap(),
            IngestOutcome::Accepted
        );
    }

    #[test]
    fn hot_tenant_gets_the_spare_region_budget_and_stays_byte_identical() {
        // One hot tenant (many rows per wave) next to two cold ones. The
        // two-level scheduler must hand the spare worker budget to the hot
        // tenant — and the resulting delta log must equal a fully serial
        // run byte for byte.
        let run = |workers: usize| {
            let mut server: StreamServer<MaterializingSink> = StreamServer::new(ServerConfig {
                workers,
                region_min_tuples: 16,
                ..Default::default()
            });
            let hot = server.add_tenant("hot", MaterializingSink::new());
            let cold: Vec<TenantId> = (0..2)
                .map(|i| server.add_tenant(format!("cold{i}"), MaterializingSink::new()))
                .collect();
            for e in 0..10i64 {
                for k in 0..60i64 {
                    // Same-fact rows (k and k+8, …) stay disjoint: span 7
                    // inside stride-8 slots — duplicate-free by shape.
                    server
                        .push_row(
                            hot,
                            Side::Left,
                            Fact::single(k % 8),
                            Interval::at(100 * e + k, 100 * e + k + 7),
                            0.4,
                        )
                        .unwrap();
                }
                for &tid in &cold {
                    server
                        .push_row(
                            tid,
                            Side::Left,
                            Fact::single("x"),
                            Interval::at(100 * e, 100 * e + 5),
                            0.5,
                        )
                        .unwrap();
                }
                for result in server.advance_all(100 * e + 90) {
                    result.unwrap();
                }
            }
            // Captured before finish_all: the final flush releases nothing
            // (zero load), so it resets the wave's budget split and
            // returns watermark-only stats.
            let hot_regions = server.last_stats(hot).regions_used;
            let hot_workers = server.engine(hot).region_workers();
            server.finish_all();
            let logs: Vec<Vec<crate::delta::MaterializedDelta>> = [hot]
                .iter()
                .chain(&cold)
                .map(|&tid| server.sink(tid).deltas.clone())
                .collect();
            // The scheduler handed the hot tenant more than one worker
            // when the budget allows (3 tenants, budget 6 → 3 spare, all
            // to the ~95%-load tenant).
            (hot_regions, hot_workers, logs)
        };
        let (_, serial_workers, serial_logs) = run(1);
        assert_eq!(serial_workers, 1);
        let (hot_regions, hot_workers, wave_logs) = run(6);
        assert!(
            hot_workers > 1,
            "scheduler never gave the hot tenant spare budget"
        );
        assert!(
            hot_regions > 1,
            "hot tenant's advance never sharded by region"
        );
        assert_eq!(wave_logs, serial_logs, "delta logs diverged");
    }

    #[test]
    fn advance_all_matches_serial_advance() {
        // The same three-tenant workload through advance_all (sharded) and
        // through per-tenant serial advances must produce identical stats
        // and sinks.
        let run = |parallel: bool| -> Vec<(AdvanceStats, usize)> {
            let mut server: StreamServer<CollectingSink> = StreamServer::new(ServerConfig {
                workers: if parallel { 3 } else { 1 },
                ..Default::default()
            });
            let ids: Vec<TenantId> = (0..3)
                .map(|i| server.add_tenant(format!("t{i}"), CollectingSink::new()))
                .collect();
            for e in 0..12i64 {
                for (k, &tid) in ids.iter().enumerate() {
                    server
                        .push_row(
                            tid,
                            Side::Left,
                            Fact::single(k as i64),
                            Interval::at(8 * e, 8 * e + 5),
                            0.4,
                        )
                        .unwrap();
                }
                if parallel {
                    server.advance_all(8 * e + 6);
                } else {
                    for &tid in &ids {
                        server.advance(tid, 8 * e + 6).unwrap();
                    }
                }
            }
            ids.iter()
                .map(|&tid| (server.last_stats(tid), server.sink(tid).len(SetOp::Union)))
                .collect()
        };
        assert_eq!(run(true), run(false));
    }
}
