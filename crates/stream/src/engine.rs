//! The continuous LAWA engine: out-of-order ingestion, bounded-lateness
//! watermarks, and incremental delta emission for the three TP set
//! operations.
//!
//! ## Model
//!
//! Facts arrive as [`TpTuple`]s per input side, in any order. A
//! **watermark** `w` is the promise that no tuple with `Ts < w` will arrive
//! anymore (tuples violating the promise are counted and dropped, never
//! silently mis-merged). Because a tuple can only influence LAWA windows
//! from its start point onward, the result restricted to `(-∞, w)` is
//! *final* the moment the watermark reaches `w` — this is the streaming
//! reading of the paper's window-advancement invariant: `winTe` of Alg. 1
//! only ever depends on tuples of the current fact that are already known
//! below the watermark.
//!
//! ## One sweep per advance
//!
//! [`StreamEngine::advance`] finalizes the region `[prev_w, w)`:
//!
//! 1. tuples with `Ts < w` are released from the ingest buffers;
//! 2. tuples crossing `w` are split by
//!    [`tp_core::window::split_at_watermark`] — the prefix joins this
//!    sweep, the residual (same lineage handle) re-enters the next one;
//! 3. one [`Lawa`] sweep runs over the released prefix, and each window is
//!    fed through the λ-filter/λ-function of **all three** operations
//!    (Alg. 2–4) at once — three result streams for the price of one sweep;
//! 4. output tuples adjacent to the previous advance's final tuple of the
//!    same fact with the *identical* lineage handle (an O(1) compare, the
//!    arena's gift) are emitted as [`Delta::Extend`], everything else as
//!    [`Delta::Insert`].
//!
//! With [`EngineConfig::verify_batch`] the engine additionally re-runs
//! batch LAWA over the entire closed region after every advance and asserts
//! tuple-for-tuple equality — the cross-check used by the test-suite
//! (quadratic; keep it off in production).
//!
//! ## Equivalence contract
//!
//! For inputs in the model's standard regime — duplicate-free relations
//! whose tuples carry distinct base variables or change-preserving derived
//! lineage (every relation produced by `TpRelation::base` or by a LAWA
//! operator qualifies) — the concatenation of deltas, applied by
//! [`CollectingSink`](crate::delta::CollectingSink), is **identical** to
//! the batch operator output: same tuples, same intervals, same interned
//! lineage handles, hence same marginals. Property tests assert this for
//! every arrival permutation within the lateness bound and every watermark
//! schedule (`tests/stream_props.rs` at the workspace root).

use tp_core::arena::FastMap;
use tp_core::fact::Fact;
use tp_core::interval::TimePoint;
use tp_core::lineage::Lineage;
use tp_core::ops::{self, SetOp};
use tp_core::relation::TpRelation;
use tp_core::tuple::TpTuple;
use tp_core::window::{split_at_watermark, Lawa};

use crate::delta::{op_index, CollectingSink, Delta, StreamSink};

/// Which input relation a tuple belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left input (`r` in `r op s`).
    Left,
    /// The right input (`s` in `r op s`).
    Right,
}

impl Side {
    /// Both sides, in `[left, right]` order.
    pub const BOTH: [Side; 2] = [Side::Left, Side::Right];

    #[inline]
    pub(crate) fn idx(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

/// What happened to a pushed tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Buffered; it will be processed once the watermark passes its start.
    Accepted,
    /// Its start lies below the current watermark: the bounded-lateness
    /// promise was already spent. Dropped and counted (see
    /// [`StreamEngine::late_dropped`]).
    Late,
}

/// How the watermark moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatermarkPolicy {
    /// Only explicit [`StreamEngine::advance`] calls move the watermark.
    Manual,
    /// The watermark trails the highest start time seen by `lateness`
    /// time points; [`StreamEngine::poll`] advances to that bound. A tuple
    /// may arrive out of order by up to `lateness` without being dropped.
    BoundedLateness(i64),
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The operations to maintain (deltas are emitted per op). Defaults to
    /// all three — they share the single sweep either way.
    pub ops: Vec<SetOp>,
    /// Watermark regime; see [`WatermarkPolicy`].
    pub policy: WatermarkPolicy,
    /// Re-run batch LAWA over the whole closed region after every advance
    /// and assert equality (quadratic — tests only).
    pub verify_batch: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            ops: SetOp::ALL.to_vec(),
            policy: WatermarkPolicy::Manual,
            verify_batch: false,
        }
    }
}

/// Errors of the streaming API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// `advance(to)` with `to` at or below the current watermark.
    NonMonotonicWatermark {
        /// The current watermark.
        current: TimePoint,
        /// The rejected target.
        requested: TimePoint,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::NonMonotonicWatermark { current, requested } => write!(
                f,
                "watermark must advance strictly: current {current}, requested {requested}"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Counters of one watermark advance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceStats {
    /// The watermark after the advance.
    pub watermark: TimePoint,
    /// LAWA windows swept in this advance.
    pub windows: usize,
    /// `Insert` deltas emitted (all ops).
    pub inserts: u64,
    /// `Extend` deltas emitted (all ops).
    pub extends: u64,
    /// Tuples released from the ingest buffers `[left, right]`.
    pub released: [usize; 2],
    /// Residual tuples carried into the next advance `[left, right]`.
    pub carried: [usize; 2],
}

/// The open right edge of the latest output tuple of one fact (per op).
struct Tail {
    end: TimePoint,
    lineage: Lineage,
}

/// The continuous engine. See the module docs for the model.
pub struct StreamEngine {
    cfg: EngineConfig,
    watermark: TimePoint,
    /// Highest tuple start seen, for [`WatermarkPolicy::BoundedLateness`].
    event_high: TimePoint,
    /// Out-of-order ingest buffers, unsorted.
    pending: [Vec<TpTuple>; 2],
    /// Residuals of tuples split at the previous watermark (start ==
    /// watermark, original lineage).
    carry: [Vec<TpTuple>; 2],
    late: [u64; 2],
    /// Per op: the extendable right edge per fact.
    tails: [FastMap<Fact, Tail>; 3],
    /// Prune the tail maps (drop entries provably dead under the
    /// watermark) when their combined size crosses this mark — amortized
    /// O(1) per emitted tuple, bounding memory by *live* facts instead of
    /// all facts ever seen.
    tails_prune_at: usize,
    /// Accepted originals, kept only under `verify_batch`.
    accepted: [Vec<TpTuple>; 2],
    /// A real [`CollectingSink`] shadowing every delta under
    /// `verify_batch`, so the cross-check validates the exact apply
    /// semantics consumers see (one implementation, not a mirror copy).
    verify_mirror: Option<CollectingSink>,
}

impl Default for StreamEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl StreamEngine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        let verify_mirror = cfg.verify_batch.then(CollectingSink::new);
        StreamEngine {
            cfg,
            watermark: TimePoint::MIN,
            event_high: TimePoint::MIN,
            pending: [Vec::new(), Vec::new()],
            carry: [Vec::new(), Vec::new()],
            late: [0, 0],
            tails: Default::default(),
            tails_prune_at: 1024,
            accepted: [Vec::new(), Vec::new()],
            verify_mirror,
        }
    }

    /// The current watermark (`TimePoint::MIN` before the first advance).
    pub fn watermark(&self) -> TimePoint {
        self.watermark
    }

    /// Late-dropped tuple counts `[left, right]`.
    pub fn late_dropped(&self) -> [u64; 2] {
        self.late
    }

    /// Tuples buffered but not yet released `[left, right]` (pending plus
    /// carried residuals).
    pub fn buffered(&self) -> [usize; 2] {
        [
            self.pending[0].len() + self.carry[0].len(),
            self.pending[1].len() + self.carry[1].len(),
        ]
    }

    /// Ingests one tuple. Order of pushes is arbitrary; only the bounded-
    /// lateness promise matters (`tuple.interval.start() >= watermark`).
    pub fn push(&mut self, side: Side, tuple: TpTuple) -> IngestOutcome {
        if tuple.interval.start() < self.watermark {
            self.late[side.idx()] += 1;
            return IngestOutcome::Late;
        }
        self.event_high = self.event_high.max(tuple.interval.start());
        if self.cfg.verify_batch {
            self.accepted[side.idx()].push(tuple.clone());
        }
        self.pending[side.idx()].push(tuple);
        IngestOutcome::Accepted
    }

    /// Under [`WatermarkPolicy::BoundedLateness`], advances the watermark
    /// to `highest start seen − lateness` if that is ahead of the current
    /// watermark; under [`WatermarkPolicy::Manual`] this is a no-op.
    /// Returns the advance stats when the watermark moved.
    pub fn poll(&mut self, sink: &mut impl StreamSink) -> Option<AdvanceStats> {
        let WatermarkPolicy::BoundedLateness(lateness) = self.cfg.policy else {
            return None;
        };
        if self.event_high == TimePoint::MIN {
            return None; // nothing ingested yet
        }
        let target = self.event_high.saturating_sub(lateness.max(0));
        if target > self.watermark {
            Some(self.advance(target, sink).expect("target checked monotone"))
        } else {
            None
        }
    }

    /// Finalizes the region `[watermark, to)` and emits its deltas.
    pub fn advance(
        &mut self,
        to: TimePoint,
        sink: &mut impl StreamSink,
    ) -> Result<AdvanceStats, StreamError> {
        if to <= self.watermark {
            return Err(StreamError::NonMonotonicWatermark {
                current: self.watermark,
                requested: to,
            });
        }
        let mut stats = AdvanceStats {
            watermark: to,
            ..Default::default()
        };

        // Release: carried residuals + pending tuples starting below `to`,
        // split at the new watermark (prefix sweeps now, residual waits).
        let mut ready: [Vec<TpTuple>; 2] = [Vec::new(), Vec::new()];
        for (side, ready_slot) in ready.iter_mut().enumerate() {
            let mut released: Vec<TpTuple> = std::mem::take(&mut self.carry[side]);
            let pending = std::mem::take(&mut self.pending[side]);
            let mut keep = Vec::with_capacity(pending.len());
            for t in pending {
                if t.interval.start() < to {
                    released.push(t);
                } else {
                    keep.push(t);
                }
            }
            self.pending[side] = keep;
            stats.released[side] = released.len();
            let (mut closed, residual) = split_at_watermark(released, to);
            stats.carried[side] = residual.len();
            self.carry[side] = residual;
            closed.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
            *ready_slot = closed;
        }

        // One sweep, all ops (indexed loop: `emit` needs `&mut self`).
        let [ready_r, ready_s] = &ready;
        for w in Lawa::new(ready_r, ready_s) {
            stats.windows += 1;
            for oi in 0..self.cfg.ops.len() {
                let op = self.cfg.ops[oi];
                let lineage = match op {
                    SetOp::Union => Lineage::or_opt(w.lambda_r.as_ref(), w.lambda_s.as_ref()),
                    SetOp::Intersect => match (&w.lambda_r, &w.lambda_s) {
                        (Some(lr), Some(ls)) => Some(Lineage::and(lr, ls)),
                        _ => None,
                    },
                    SetOp::Except => w
                        .lambda_r
                        .as_ref()
                        .map(|lr| Lineage::and_not(lr, w.lambda_s.as_ref())),
                };
                if let Some(lineage) = lineage {
                    let t = TpTuple::new(w.fact.clone(), lineage, w.interval);
                    self.emit(op, t, sink, &mut stats);
                }
            }
        }

        self.watermark = to;
        // A tail can only be matched by a future output starting exactly
        // at its end, and every future output lies at or above the
        // watermark: entries ending below it are dead. Prune with
        // doubling amortization so the maps track *live* facts, not every
        // fact ever emitted.
        let total: usize = self.tails.iter().map(|m| m.len()).sum();
        if total > self.tails_prune_at {
            for m in &mut self.tails {
                m.retain(|_, tail| tail.end >= to);
            }
            let live: usize = self.tails.iter().map(|m| m.len()).sum();
            self.tails_prune_at = (2 * live).max(1024);
        }
        sink.on_watermark(to);
        if self.cfg.verify_batch {
            self.verify_closed_region();
        }
        Ok(stats)
    }

    /// Releases everything still buffered by advancing the watermark past
    /// the last buffered end point. No-op (zero stats) when nothing is
    /// buffered.
    pub fn finish(&mut self, sink: &mut impl StreamSink) -> Result<AdvanceStats, StreamError> {
        let hi = self
            .pending
            .iter()
            .chain(self.carry.iter())
            .flatten()
            .map(|t| t.interval.end())
            .max();
        match hi {
            Some(hi) if hi > self.watermark => self.advance(hi, sink),
            _ => Ok(AdvanceStats {
                watermark: self.watermark,
                ..Default::default()
            }),
        }
    }

    /// Emits one output tuple as an `Extend` (when it continues the fact's
    /// previous output tuple with the identical lineage handle — the
    /// artificial watermark cut) or as an `Insert`.
    fn emit(
        &mut self,
        op: SetOp,
        t: TpTuple,
        sink: &mut impl StreamSink,
        stats: &mut AdvanceStats,
    ) {
        let idx = op_index(op);
        let delta = match self.tails[idx].get_mut(&t.fact) {
            Some(tail) if tail.end == t.interval.start() && tail.lineage == t.lineage => {
                let from = tail.end;
                tail.end = t.interval.end();
                stats.extends += 1;
                Delta::Extend {
                    fact: t.fact.clone(),
                    lineage: t.lineage,
                    from,
                    to: t.interval.end(),
                }
            }
            _ => {
                self.tails[idx].insert(
                    t.fact.clone(),
                    Tail {
                        end: t.interval.end(),
                        lineage: t.lineage,
                    },
                );
                stats.inserts += 1;
                Delta::Insert(t)
            }
        };
        if let Some(mirror) = self.verify_mirror.as_mut() {
            mirror.on_delta(op, &delta);
        }
        sink.on_delta(op, &delta);
    }

    /// Batch cross-check: for every maintained op, batch LAWA over all
    /// accepted tuples clipped to the closed region `(-∞, watermark)` must
    /// equal the merged emitted output. Panics on divergence (engine bug).
    fn verify_closed_region(&self) {
        let clip = |side: usize| -> TpRelation {
            let (closed, _) =
                split_at_watermark(self.accepted[side].iter().cloned(), self.watermark);
            TpRelation::try_new(closed).expect("clipped accepted inputs stay duplicate-free")
        };
        let r = clip(0);
        let s = clip(1);
        let mirror = self
            .verify_mirror
            .as_ref()
            .expect("verify_closed_region only runs under verify_batch");
        for &op in &self.cfg.ops {
            let batch = ops::apply(op, &r, &s).canonicalized();
            let streamed = mirror.relation(op).canonicalized();
            assert_eq!(
                streamed, batch,
                "stream/batch divergence for {op} at watermark {}",
                self.watermark
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{CollectingSink, CountingSink};
    use tp_core::interval::Interval;
    use tp_core::relation::VarTable;

    /// The paper's Example 3 relations (c, a restricted to 'milk').
    fn example3(vars: &mut VarTable) -> (TpRelation, TpRelation) {
        let c = TpRelation::base(
            "c",
            vec![
                (Fact::single("milk"), Interval::at(1, 4), 0.6),
                (Fact::single("milk"), Interval::at(6, 8), 0.7),
            ],
            vars,
        )
        .unwrap();
        let a = TpRelation::base(
            "a",
            vec![(Fact::single("milk"), Interval::at(2, 10), 0.3)],
            vars,
        )
        .unwrap();
        (c, a)
    }

    fn engine_verifying() -> StreamEngine {
        StreamEngine::new(EngineConfig {
            verify_batch: true,
            ..Default::default()
        })
    }

    #[test]
    fn in_order_stream_matches_batch_for_all_ops() {
        let mut vars = VarTable::new();
        let (c, a) = example3(&mut vars);
        let mut engine = engine_verifying();
        let mut sink = CollectingSink::new();
        for t in c.iter() {
            assert_eq!(engine.push(Side::Left, t.clone()), IngestOutcome::Accepted);
        }
        for t in a.iter() {
            assert_eq!(engine.push(Side::Right, t.clone()), IngestOutcome::Accepted);
        }
        // Watermark schedule slicing through the middle of tuples.
        for w in [3, 5, 7] {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        for op in SetOp::ALL {
            assert_eq!(
                sink.relation(op).canonicalized(),
                ops::apply(op, &c, &a).canonicalized(),
                "{op}"
            );
        }
    }

    #[test]
    fn out_of_order_arrival_within_lateness_matches_batch() {
        let mut vars = VarTable::new();
        let (c, a) = example3(&mut vars);
        let mut engine = engine_verifying();
        let mut sink = CollectingSink::new();
        // Reverse arrival order; watermark only advances afterwards.
        for t in c.iter().rev() {
            engine.push(Side::Left, t.clone());
        }
        engine.advance(2, &mut sink).unwrap();
        for t in a.iter() {
            engine.push(Side::Right, t.clone());
        }
        engine.finish(&mut sink).unwrap();
        for op in SetOp::ALL {
            assert_eq!(
                sink.relation(op).canonicalized(),
                ops::apply(op, &c, &a).canonicalized(),
                "{op}"
            );
        }
    }

    #[test]
    fn artificial_cuts_are_emitted_as_extends() {
        // One long tuple swept by many watermarks: 1 insert, k-1 extends.
        let mut vars = VarTable::new();
        let id = vars.register("r1", 0.5).unwrap();
        let t = TpTuple::new("f", Lineage::var(id), Interval::at(0, 100));
        let mut engine = StreamEngine::default();
        let mut sink = CountingSink::new();
        engine.push(Side::Left, t);
        for w in (10..=90).step_by(10) {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        assert_eq!(sink.inserts(SetOp::Union), 1);
        assert_eq!(sink.extends(SetOp::Union), 9);
        assert_eq!(sink.inserts(SetOp::Except), 1);
        assert_eq!(sink.inserts(SetOp::Intersect), 0);
    }

    #[test]
    fn late_tuples_are_dropped_and_counted() {
        let mut vars = VarTable::new();
        let id = vars.register("r1", 0.5).unwrap();
        let mut engine = StreamEngine::default();
        let mut sink = CountingSink::new();
        engine.advance(10, &mut sink).unwrap();
        let late = TpTuple::new("f", Lineage::var(id), Interval::at(5, 8));
        assert_eq!(engine.push(Side::Left, late), IngestOutcome::Late);
        assert_eq!(engine.late_dropped(), [1, 0]);
        let ok = TpTuple::new("f", Lineage::var(id), Interval::at(10, 12));
        assert_eq!(engine.push(Side::Left, ok), IngestOutcome::Accepted);
    }

    #[test]
    fn non_monotonic_watermark_rejected() {
        let mut engine = StreamEngine::default();
        let mut sink = crate::delta::NullSink;
        engine.advance(5, &mut sink).unwrap();
        assert!(matches!(
            engine.advance(5, &mut sink),
            Err(StreamError::NonMonotonicWatermark { .. })
        ));
        assert!(engine.advance(6, &mut sink).is_ok());
    }

    #[test]
    fn bounded_lateness_policy_advances_on_poll() {
        let mut vars = VarTable::new();
        let mut engine = StreamEngine::new(EngineConfig {
            policy: WatermarkPolicy::BoundedLateness(3),
            ..Default::default()
        });
        let mut sink = CountingSink::new();
        let mk = |vars: &mut VarTable, s, e| {
            let id = vars.register("x", 0.5).unwrap();
            TpTuple::new("f", Lineage::var(id), Interval::at(s, e))
        };
        assert!(engine.poll(&mut sink).is_none()); // nothing ingested yet
        engine.push(Side::Left, mk(&mut vars, 0, 2));
        // The watermark trails the highest start by the lateness bound.
        let stats = engine.poll(&mut sink).expect("watermark moved");
        assert_eq!(stats.watermark, -3);
        engine.push(Side::Left, mk(&mut vars, 10, 12));
        let stats = engine.poll(&mut sink).expect("watermark moved");
        assert_eq!(stats.watermark, 7);
        assert_eq!(engine.watermark(), 7);
        // A tuple older than the bound is now late.
        assert_eq!(
            engine.push(Side::Left, mk(&mut vars, 4, 6)),
            IngestOutcome::Late
        );
        // Within the bound: accepted.
        assert_eq!(
            engine.push(Side::Left, mk(&mut vars, 8, 9)),
            IngestOutcome::Accepted
        );
    }

    #[test]
    fn advance_stats_account_for_release_and_carry() {
        let mut vars = VarTable::new();
        let (c, a) = example3(&mut vars);
        let mut engine = StreamEngine::default();
        let mut sink = CountingSink::new();
        for t in c.iter() {
            engine.push(Side::Left, t.clone());
        }
        for t in a.iter() {
            engine.push(Side::Right, t.clone());
        }
        let stats = engine.advance(3, &mut sink).unwrap();
        // Left: [1,4) released (crosses 3, carried), [6,8) stays pending.
        assert_eq!(stats.released, [1, 1]);
        assert_eq!(stats.carried, [1, 1]);
        assert_eq!(engine.buffered(), [2, 1]);
        assert!(stats.windows > 0);
    }
}
