//! The continuous LAWA engine: out-of-order ingestion, bounded-lateness
//! watermarks, and incremental delta emission for the three TP set
//! operations.
//!
//! ## Model
//!
//! Facts arrive as [`TpTuple`]s per input side, in any order. A
//! **watermark** `w` is the promise that no tuple with `Ts < w` will arrive
//! anymore (tuples violating the promise are counted and dropped, never
//! silently mis-merged). Because a tuple can only influence LAWA windows
//! from its start point onward, the result restricted to `(-∞, w)` is
//! *final* the moment the watermark reaches `w` — this is the streaming
//! reading of the paper's window-advancement invariant: `winTe` of Alg. 1
//! only ever depends on tuples of the current fact that are already known
//! below the watermark.
//!
//! ## One sweep per advance
//!
//! [`StreamEngine::advance`] finalizes the region `[prev_w, w)`:
//!
//! 1. tuples with `Ts < w` are released from the ingest buffers;
//! 2. tuples crossing `w` are split by
//!    [`tp_core::window::split_at_watermark`] — the prefix joins this
//!    sweep, the residual (same lineage handle) re-enters the next one;
//! 3. one [`Lawa`] sweep runs over the released prefix, and each window is
//!    fed through the λ-filter/λ-function of **all three** operations
//!    (Alg. 2–4) at once — three result streams for the price of one sweep;
//! 4. output tuples adjacent to the previous advance's final tuple of the
//!    same fact with the *identical* lineage handle (an O(1) compare, the
//!    arena's gift) are emitted as [`Delta::Extend`], everything else as
//!    [`Delta::Insert`].
//!
//! With [`EngineConfig::parallel`] a single advance's sweep is **sharded
//! over worker threads by timeline region**: the closed span is cut at
//! tuple-count-balanced positions ([`tp_core::window::RegionPlan`]), each
//! worker sorts + sweeps its region and interns the per-op window lineages,
//! and the coordinating thread stitches the streams back — byte-identical
//! to the sequential sweep by construction (the artificial cuts re-join on
//! an O(1) λ-handle compare, the same argument as step 2's watermark
//! split). Steps 1, 4 and all seal/retire bookkeeping stay on the
//! coordinating thread.
//!
//! With [`EngineConfig::verify_batch`] the engine additionally re-runs
//! batch LAWA over the entire closed region after every advance and asserts
//! tuple-for-tuple equality — the cross-check used by the test-suite
//! (quadratic; keep it off in production).
//!
//! ## Equivalence contract
//!
//! For inputs in the model's standard regime — duplicate-free relations
//! whose tuples carry distinct base variables or change-preserving derived
//! lineage (every relation produced by `TpRelation::base` or by a LAWA
//! operator qualifies) — the concatenation of deltas, applied by
//! [`CollectingSink`](crate::delta::CollectingSink), is **identical** to
//! the batch operator output: same tuples, same intervals, same interned
//! lineage handles, hence same marginals. Property tests assert this for
//! every arrival permutation within the lateness bound and every watermark
//! schedule (`tests/stream_props.rs` at the workspace root).

use std::collections::VecDeque;
use std::sync::Arc;

use tp_core::arena::{ArenaScope, ArenaStats, FastMap, LineageArena, SegmentId, MAX_SHARDS};
use tp_core::fact::Fact;
use tp_core::interval::TimePoint;
use tp_core::lineage::Lineage;
use tp_core::ops::{self, SetOp};
use tp_core::relation::{TpRelation, VarEpoch, VarTable};
use tp_core::tuple::TpTuple;
use tp_core::window::{split_at_watermark, Lawa, LineageAwareWindow, RegionPlan};

use crate::delta::{op_index, CollectingSink, Delta, StreamSink};
use crate::gapped::{merge_by_sort_key, GappedBuffer, IndexEpochStats};
use crate::obs::{
    EngineObs, ObsConfig, StageCursor, STAGE_DRAIN, STAGE_FINALIZE, STAGE_PLAN, STAGE_SEAL_RETIRE,
    STAGE_SWEEP, STAGE_VERIFY,
};
use crate::pipeline::{Pipeline, PipelineError};

/// Which input relation a tuple belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left input (`r` in `r op s`).
    Left,
    /// The right input (`s` in `r op s`).
    Right,
}

impl Side {
    /// Both sides, in `[left, right]` order.
    pub const BOTH: [Side; 2] = [Side::Left, Side::Right];

    #[inline]
    pub(crate) fn idx(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

/// What happened to a pushed tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Buffered; it will be processed once the watermark passes its start.
    Accepted,
    /// Its start lies below the current watermark: the bounded-lateness
    /// promise was already spent. Dropped and counted (see
    /// [`StreamEngine::late_dropped`]).
    Late,
}

/// How the watermark moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatermarkPolicy {
    /// Only explicit [`StreamEngine::advance`] calls move the watermark.
    Manual,
    /// The watermark trails the highest start time seen by `lateness`
    /// time points; [`StreamEngine::poll`] advances to that bound. A tuple
    /// may arrive out of order by up to `lateness` without being dropped.
    BoundedLateness(i64),
}

/// Which ingest-buffer implementation backs [`StreamEngine::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BufferKind {
    /// The gapped learned timestamp index ([`GappedBuffer`]): out-of-order
    /// pushes land near their model-predicted slot in O(1) amortized, and
    /// every advance drains an already-sorted closed prefix — the
    /// per-advance comparison sort disappears from both the sequential and
    /// the region-parallel sweep path, and the region planner reads exact
    /// balanced cuts off the index. The default.
    #[default]
    Sorted,
    /// The unsorted `Vec` with a per-advance comparison sort — kept for
    /// differential testing against [`BufferKind::Sorted`] and for stream
    /// shapes where a sort still wins (see `docs/streaming.md`,
    /// "when the legacy buffer wins").
    Legacy,
}

/// Bounded-memory operation: the engine hosts its lineage in a **private
/// reclaimable arena**, seals one segment per watermark advance, and
/// retires every sealed segment that falls below the live frontier (the
/// smallest segment reachable from any buffered tuple — carried residuals
/// and pending arrivals). A sliding-window stream then runs indefinitely
/// with arena storage proportional to the *live* window, not to history.
///
/// Contract for consumers: deltas reference lineage in the engine's arena;
/// valuate or materialize them when they arrive (inside `on_delta`, which
/// runs within the engine's arena scope) or within `keep_epochs` further
/// advances — after that their segments may retire and fresh traversals
/// panic ("use-after-retire"). [`StreamSink::on_retire`] tells consumers
/// when to drop their own per-segment memo entries.
#[derive(Debug, Clone)]
pub struct ReclaimConfig {
    /// A sealed segment is retired only after this many further advances
    /// — the grace window for consumers that materialize deltas slightly
    /// late (0 = retire as soon as the live frontier passes).
    pub keep_epochs: usize,
    /// Dedup stripes of the private arena (a single-threaded stream needs
    /// few).
    pub shards: usize,
    /// Sliding var registry retired in lockstep with the arena: each
    /// advance seals the table's open var cohort next to the arena segment
    /// it mirrors ([`VarTable::seal_vars`] /
    /// [`VarTable::bind_cohort_segment`]), and when that segment retires —
    /// after the same `keep_epochs` grace window — the cohort's
    /// probabilities, labels and marginal-cache rows are released together
    /// ([`VarTable::release_vars_before`]). Lookups of released variables
    /// return `Error::ReleasedVariable`, never a wrong value.
    ///
    /// Contract: a variable must be registered in the same advance window
    /// as the tuple carrying it is pushed (the `StreamServer::push_row`
    /// discipline) — registering everything up front would tie all
    /// variables to the first cohort and release them while their tuples
    /// are still in flight. `None` keeps the table append-only.
    pub vars: Option<Arc<VarTable>>,
    /// Interior-segment reclamation (default: on). Every aged-out sealed
    /// segment that no live ref can reach retires, **wherever it sits in
    /// the seal order** — a few immortal facts pin only their own
    /// segments, not every later one. `false` restores the prefix-ordered
    /// schedule (retirement stops at the first kept segment), the
    /// baseline the `raw_speed` bench compares residency against.
    /// Liveness is judged the same way in both modes, and retirement
    /// never affects emitted deltas — only resident memory.
    pub interior: bool,
}

impl Default for ReclaimConfig {
    fn default() -> Self {
        ReclaimConfig {
            keep_epochs: 2,
            shards: MAX_SHARDS,
            vars: None,
            interior: true,
        }
    }
}

/// Region-parallel advance: one watermark advance is sharded over scoped
/// worker threads by **timeline region** ([`tp_core::window::RegionPlan`]).
/// The planner cuts the closed span at tuple-count-balanced positions, each
/// worker sorts + sweeps its region and computes the per-op window lineages
/// (interning into the propagated current arena — the engine's private
/// arena in reclaim mode), and the coordinating thread stitches the
/// per-region streams back into the sequential window stream before the
/// delta-emission stage. The emitted deltas are **byte-identical** to the
/// sequential advance for any plan — the stitch re-joins exactly the
/// artificial cuts (identical λ handles on both sides, an O(1) compare),
/// which is the [`tp_core::window::split_at_watermark`] argument applied at
/// every cut. Seal/retire and var-cohort bookkeeping stay on the
/// coordinating thread, so the reclaim contract is untouched.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker budget for one advance: the planner cuts the closed span
    /// into at most this many balanced regions, one scoped thread each
    /// (1 = sequential). The `StreamServer` scheduler rescales this per
    /// wave ([`StreamEngine::set_region_workers`]).
    pub workers: usize,
    /// Advances releasing fewer tuple pieces than this run sequentially:
    /// region fan-out has fixed costs (partition, spawn, stitch) that only
    /// pay off on fat advances.
    pub min_tuples: usize,
    /// Pinned cut positions overriding balanced planning (differential
    /// tests and diagnostics). Any positions are legal — duplicates
    /// collapse, out-of-span cuts yield empty regions. `None` (the
    /// default) plans per advance.
    pub cuts: Option<Vec<TimePoint>>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            min_tuples: 512,
            cuts: None,
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The operations to maintain (deltas are emitted per op). Defaults to
    /// all three — they share the single sweep either way.
    pub ops: Vec<SetOp>,
    /// Watermark regime; see [`WatermarkPolicy`].
    pub policy: WatermarkPolicy,
    /// Re-run batch LAWA over the whole closed region after every advance
    /// and assert equality (quadratic — tests only; keeping every accepted
    /// tuple alive also suspends reclamation).
    pub verify_batch: bool,
    /// Bounded-memory mode; see [`ReclaimConfig`]. `None` (the default)
    /// interns into the thread's current arena and never reclaims.
    pub reclaim: Option<ReclaimConfig>,
    /// Region-parallel advance; see [`ParallelConfig`]. `None` (the
    /// default) sweeps every advance sequentially.
    pub parallel: Option<ParallelConfig>,
    /// Ingest-buffer implementation; see [`BufferKind`]. Defaults to the
    /// gapped learned index ([`BufferKind::Sorted`]).
    pub buffer: BufferKind,
    /// Observability: stage spans + metrics per advance; see
    /// [`ObsConfig`]. On by default — recording never changes results
    /// (instrumented and uninstrumented runs emit byte-identical delta
    /// logs) and the `observability` bench gates the overhead.
    pub obs: ObsConfig,
    /// Attached-pipeline re-optimization cadence: every `n` advances the
    /// engine asks the pipeline to re-plan against its observed delta
    /// rates and hot-swap the lowered DAG ([`Pipeline::reoptimize`]).
    /// `None` (the default) freezes the compiled plan. Swaps happen at
    /// the watermark boundary, after the propagation pass, and are gated
    /// on the rebuilt views matching the standing ones — delta logs and
    /// materialized views are unchanged by construction.
    pub reopt_every: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            ops: SetOp::ALL.to_vec(),
            policy: WatermarkPolicy::Manual,
            verify_batch: false,
            reclaim: None,
            parallel: None,
            buffer: BufferKind::default(),
            obs: ObsConfig::default(),
            reopt_every: None,
        }
    }
}

/// Errors of the streaming API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// `advance(to)` with `to` at or below the current watermark.
    NonMonotonicWatermark {
        /// The current watermark.
        current: TimePoint,
        /// The rejected target.
        requested: TimePoint,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::NonMonotonicWatermark { current, requested } => write!(
                f,
                "watermark must advance strictly: current {current}, requested {requested}"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Counters of one watermark advance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceStats {
    /// The watermark after the advance.
    pub watermark: TimePoint,
    /// LAWA windows swept in this advance.
    pub windows: usize,
    /// `Insert` deltas emitted (all ops).
    pub inserts: u64,
    /// `Extend` deltas emitted (all ops).
    pub extends: u64,
    /// Tuples released from the ingest buffers `[left, right]`.
    pub released: [usize; 2],
    /// Residual tuples carried into the next advance `[left, right]`.
    pub carried: [usize; 2],
    /// Arena segments retired by this advance (reclaim mode only) —
    /// prefix **and** interior retires.
    pub retired_segments: u64,
    /// Of those, segments retired out of prefix order (a lower segment
    /// was still resident — the interior-reclamation holes).
    pub interior_retired_segments: u64,
    /// Interned nodes whose storage those retirements released.
    pub retired_nodes: u64,
    /// Variables released from the attached sliding var registry
    /// ([`ReclaimConfig::vars`]) by this advance.
    pub released_vars: u64,
    /// Timeline regions the sweep stage used: 1 = the sequential sweep
    /// (every [`StreamEngine::advance`] runs the sweep stage, even over
    /// zero released tuples), > 1 = sharded over workers. 0 only on
    /// [`StreamEngine::finish`] no-op results, which never reach the
    /// sweep.
    pub regions_used: usize,
    /// Tuple pieces handed to the fattest region (equals
    /// [`AdvanceStats::region_tuples`] for a sequential sweep).
    pub region_max_tuples: usize,
    /// Tuple pieces across all regions — the closed pieces of the advance,
    /// including the extra clippings the plan's cuts introduced.
    pub region_tuples: usize,
    /// Pairwise-reduction rounds the stitch of a sharded sweep ran
    /// (`⌈log₂ regions⌉`; 0 for a sequential sweep).
    pub stitch_depth: usize,
    /// Gap occupancy of the ingestion index at the start of the advance,
    /// in permille of allocated slots (0 with [`BufferKind::Legacy`] or
    /// empty buffers). Healthy steady state sits between the post-rebuild
    /// floor (500‰ at `GAP_FACTOR` 2) and the rebuild ceiling (875‰).
    pub gap_occupancy_permille: u32,
    /// Ingestion-index rebuilds (layout re-spacing + model retrain) since
    /// the previous advance.
    pub index_retrains: u64,
    /// Inserts whose model-predicted ε-window missed, falling back to a
    /// full binary search, since the previous advance.
    pub index_model_misses: u64,
    /// 99th-percentile slot-shift distance of inserts since the previous
    /// advance (0 = virtually all inserts landed in a free gap without
    /// displacing neighbors).
    pub shift_distance_p99: u32,
    /// Live nodes of the engine's **private** arena after this advance
    /// (reclaim mode only; 0 when the engine shares the thread's current
    /// arena, whose totals would depend on unrelated work).
    pub arena_live_nodes: u64,
    /// Resident chunk-storage bytes of the private arena after this
    /// advance ([`LineageArena::resident_chunk_bytes`]; reclaim mode only,
    /// 0 otherwise).
    pub arena_resident_bytes: u64,
    /// Deltas the attached standing pipeline's operators processed in
    /// this advance's propagation pass (0 without
    /// [`StreamEngine::with_plan`]).
    pub pipeline_deltas: u64,
}

impl AdvanceStats {
    /// Region balance of the sweep: max over mean tuple pieces per region
    /// (1.0 = perfectly balanced; higher = one hot region dominated; 0.0
    /// when nothing was swept). The gauge the skewed-stream workloads
    /// stress.
    pub fn region_balance(&self) -> f64 {
        if self.regions_used == 0 || self.region_tuples == 0 {
            return 0.0;
        }
        let mean = self.region_tuples as f64 / self.regions_used as f64;
        self.region_max_tuples as f64 / mean
    }
}

/// One side's ingest buffer — the [`BufferKind`] dispatch point. The
/// size gap between the variants is fine: exactly two instances exist
/// per engine.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
enum IngestBuffer {
    Legacy(Vec<TpTuple>),
    Sorted(GappedBuffer),
}

impl IngestBuffer {
    fn new(kind: BufferKind) -> Self {
        match kind {
            BufferKind::Legacy => IngestBuffer::Legacy(Vec::new()),
            BufferKind::Sorted => IngestBuffer::Sorted(GappedBuffer::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            IngestBuffer::Legacy(v) => v.len(),
            IngestBuffer::Sorted(b) => b.len(),
        }
    }

    fn push(&mut self, tuple: TpTuple) {
        match self {
            IngestBuffer::Legacy(v) => v.push(tuple),
            IngestBuffer::Sorted(b) => b.push(tuple),
        }
    }

    /// Visits every buffered tuple (arbitrary order) — the reclaim
    /// frontier probe.
    fn for_each(&self, mut f: impl FnMut(&TpTuple)) {
        match self {
            IngestBuffer::Legacy(v) => v.iter().for_each(f),
            IngestBuffer::Sorted(b) => b.iter().for_each(&mut f),
        }
    }

    /// The highest interval end among buffered tuples — the
    /// [`StreamEngine::finish`] target.
    fn max_interval_end(&self) -> Option<TimePoint> {
        match self {
            IngestBuffer::Legacy(v) => v.iter().map(|t| t.interval.end()).max(),
            IngestBuffer::Sorted(b) => b.max_interval_end(),
        }
    }
}

/// The open right edge of the latest output tuple of one fact (per op).
struct Tail {
    end: TimePoint,
    lineage: Lineage,
}

/// The continuous engine. See the module docs for the model.
pub struct StreamEngine {
    cfg: EngineConfig,
    watermark: TimePoint,
    /// Highest tuple start seen, for [`WatermarkPolicy::BoundedLateness`].
    event_high: TimePoint,
    /// Out-of-order ingest buffers; see [`BufferKind`].
    pending: [IngestBuffer; 2],
    /// Residuals of tuples split at the previous watermark (start ==
    /// watermark, original lineage).
    carry: [Vec<TpTuple>; 2],
    late: [u64; 2],
    /// Per op: the extendable right edge per fact.
    tails: [FastMap<Fact, Tail>; 3],
    /// Prune the tail maps (drop entries provably dead under the
    /// watermark) when their combined size crosses this mark — amortized
    /// O(1) per emitted tuple, bounding memory by *live* facts instead of
    /// all facts ever seen.
    tails_prune_at: usize,
    /// Accepted originals, kept only under `verify_batch`.
    accepted: [Vec<TpTuple>; 2],
    /// A real [`CollectingSink`] shadowing every delta under
    /// `verify_batch`, so the cross-check validates the exact apply
    /// semantics consumers see (one implementation, not a mirror copy).
    verify_mirror: Option<CollectingSink>,
    /// The private reclaimable arena (reclaim mode only); every engine
    /// method enters it for the duration of the call.
    arena: Option<Arc<LineageArena>>,
    /// Sealed-but-unretired segments, oldest first, with the advance
    /// counter at seal time (for the `keep_epochs` grace window) and the
    /// var cohort sealed alongside, if a registry is attached.
    sealed: VecDeque<SealedSegment>,
    /// Watermark advances executed (drives the grace window).
    advance_count: u64,
    /// Total segments retired over the engine's lifetime.
    reclaimed_segments: u64,
    /// Total nodes whose storage retirement released.
    reclaimed_nodes: u64,
    /// Total variables released from the attached registry.
    reclaimed_vars: u64,
    /// Cached observability handles ([`ObsConfig`]); `None` = disabled,
    /// and every recording site is skipped (including the clock reads).
    obs: Option<Arc<EngineObs>>,
    /// The standing incremental pipeline ([`StreamEngine::with_plan`]),
    /// fed from the delta streams and advanced once per watermark.
    pipeline: Option<Pipeline>,
}

/// One sealed-but-unretired arena segment of a reclaiming engine.
struct SealedSegment {
    seg: SegmentId,
    /// Advance counter at seal time (drives the `keep_epochs` grace).
    sealed_at: u64,
    /// The var cohort sealed in the same advance, if a registry is
    /// attached; released when this segment retires.
    var_epoch: Option<VarEpoch>,
}

impl Default for StreamEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl StreamEngine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        let verify_mirror = cfg.verify_batch.then(CollectingSink::new);
        let arena = cfg
            .reclaim
            .as_ref()
            .map(|rc| LineageArena::shared(rc.shards));
        let pending = [IngestBuffer::new(cfg.buffer), IngestBuffer::new(cfg.buffer)];
        let obs = EngineObs::from_config(&cfg.obs);
        StreamEngine {
            cfg,
            watermark: TimePoint::MIN,
            event_high: TimePoint::MIN,
            pending,
            carry: [Vec::new(), Vec::new()],
            late: [0, 0],
            tails: Default::default(),
            tails_prune_at: 1024,
            accepted: [Vec::new(), Vec::new()],
            verify_mirror,
            arena,
            sealed: VecDeque::new(),
            advance_count: 0,
            reclaimed_segments: 0,
            reclaimed_nodes: 0,
            reclaimed_vars: 0,
            obs,
            pipeline: None,
        }
    }

    /// Creates an engine with a standing incremental pipeline attached:
    /// `plan` is compiled ([`Pipeline::compile`]) and its `i`-th source is
    /// fed from the engine's `taps[i]` delta stream. The pipeline shares
    /// the engine's watermark clock (one propagation pass per advance) and
    /// its arena discipline (operator state stores owned lineage trees, so
    /// reclamation never invalidates it); read the standing view through
    /// [`StreamEngine::pipeline`].
    pub fn with_plan(
        cfg: EngineConfig,
        plan: &tp_relalg::Plan,
        taps: &[SetOp],
    ) -> Result<Self, PipelineError> {
        for &tap in taps {
            if !cfg.ops.contains(&tap) {
                return Err(PipelineError::TapNotMaintained(tap));
            }
        }
        let mut pipeline = Pipeline::compile(plan, taps)?;
        pipeline.init_obs(&cfg.obs);
        let mut engine = Self::new(cfg);
        engine.pipeline = Some(pipeline);
        Ok(engine)
    }

    /// Multi-plan variant of [`StreamEngine::with_plan`]: compiles all
    /// `plans` into one shared pipeline ([`Pipeline::compile_shared`]) —
    /// structurally identical sub-DAGs with the same tap bindings run as
    /// one physical operator fanned out to every consumer, so K alert
    /// rules over the same join pay its state and maintenance once.
    /// `taps[p]` feeds plan `p`'s sources; read plan `p`'s standing view
    /// through [`Pipeline::materialized_view`].
    pub fn with_plans(
        cfg: EngineConfig,
        plans: &[tp_relalg::Plan],
        taps: &[Vec<SetOp>],
    ) -> Result<Self, PipelineError> {
        for plan_taps in taps {
            for &tap in plan_taps {
                if !cfg.ops.contains(&tap) {
                    return Err(PipelineError::TapNotMaintained(tap));
                }
            }
        }
        let mut pipeline = Pipeline::compile_shared(plans, taps)?;
        pipeline.init_obs(&cfg.obs);
        let mut engine = Self::new(cfg);
        engine.pipeline = Some(pipeline);
        Ok(engine)
    }

    /// The attached standing pipeline, if any.
    pub fn pipeline(&self) -> Option<&Pipeline> {
        self.pipeline.as_ref()
    }

    /// Mutable access to the attached standing pipeline, if any.
    pub fn pipeline_mut(&mut self) -> Option<&mut Pipeline> {
        self.pipeline.as_mut()
    }

    /// The current watermark (`TimePoint::MIN` before the first advance).
    pub fn watermark(&self) -> TimePoint {
        self.watermark
    }

    /// The engine's private arena (reclaim mode only). Consumers that want
    /// to traverse collected deltas *after* the driving call returned must
    /// re-enter it ([`StreamEngine::enter_arena`]).
    pub fn reclaim_arena(&self) -> Option<&Arc<LineageArena>> {
        self.arena.as_ref()
    }

    /// Enters the engine's private arena on this thread (no-op `None`
    /// without reclaim mode).
    pub fn enter_arena(&self) -> Option<ArenaScope> {
        self.arena.as_ref().map(LineageArena::enter)
    }

    /// Statistics of the private arena (reclaim mode only): live/retired
    /// nodes and segments, resident bytes — the bounded-memory gauge.
    pub fn arena_stats(&self) -> Option<ArenaStats> {
        self.arena.as_ref().map(|a| a.stats())
    }

    /// Lifetime totals of reclamation: `(segments, nodes)` retired.
    pub fn reclaimed(&self) -> (u64, u64) {
        (self.reclaimed_segments, self.reclaimed_nodes)
    }

    /// Total variables released from the attached sliding var registry
    /// ([`ReclaimConfig::vars`]) over the engine's lifetime.
    pub fn reclaimed_vars(&self) -> u64 {
        self.reclaimed_vars
    }

    /// The attached sliding var registry, if any.
    pub fn var_registry(&self) -> Option<&Arc<VarTable>> {
        self.cfg.reclaim.as_ref().and_then(|rc| rc.vars.as_ref())
    }

    /// Late-dropped tuple counts `[left, right]`.
    pub fn late_dropped(&self) -> [u64; 2] {
        self.late
    }

    /// Tuples buffered but not yet released `[left, right]` (pending plus
    /// carried residuals).
    pub fn buffered(&self) -> [usize; 2] {
        [
            self.pending[0].len() + self.carry[0].len(),
            self.pending[1].len() + self.carry[1].len(),
        ]
    }

    /// Estimated tuples an `advance(to)` would release, both sides
    /// combined — the load gauge the `StreamServer`'s two-level scheduler
    /// reads per tenant before a watermark wave. With the gapped index
    /// ([`BufferKind::Sorted`]) this is `rank_below(to)` — an O(log n)
    /// occupancy-scaled boundary estimate of tuples starting below `to`,
    /// deterministic but approximate (gap slack); with the legacy buffer it
    /// falls back to the total buffered count. Scheduling only — never
    /// affects results.
    pub fn buffered_load(&self, to: TimePoint) -> usize {
        (0..2)
            .map(|side| {
                self.carry[side].len()
                    + match &self.pending[side] {
                        IngestBuffer::Legacy(v) => v.len(),
                        IngestBuffer::Sorted(b) => b.rank_below(to),
                    }
            })
            .sum()
    }

    /// Ingestion-index posture `(gap_occupancy_permille, lifetime
    /// retrains)` across both sides — `(0, 0)` with
    /// [`BufferKind::Legacy`]. The repl's `\index` gauge.
    pub fn index_stats(&self) -> (u32, u64) {
        let (mut len, mut slots, mut retrains) = (0usize, 0usize, 0u64);
        for side in 0..2 {
            if let IngestBuffer::Sorted(b) = &self.pending[side] {
                len += b.len();
                slots += b.slot_count();
                retrains += b.retrains_total();
            }
        }
        let occ = (len * 1000).checked_div(slots).unwrap_or(0) as u32;
        (occ, retrains)
    }

    /// Ingests one tuple. Order of pushes is arbitrary; only the bounded-
    /// lateness promise matters (`tuple.interval.start() >= watermark`).
    ///
    /// In reclaim mode the tuple's lineage is translated into the engine's
    /// private arena (refs are arena-relative): the formula is read in the
    /// caller's arena and re-interned inside — O(|λ|), which is O(1) for
    /// the atomic lineage of base tuples.
    pub fn push(&mut self, side: Side, tuple: TpTuple) -> IngestOutcome {
        if tuple.interval.start() < self.watermark {
            self.late[side.idx()] += 1;
            if let Some(obs) = &self.obs {
                obs.record_late();
            }
            return IngestOutcome::Late;
        }
        let tuple = match &self.arena {
            Some(arena) => {
                let tree = tuple.lineage.to_tree(); // caller's arena
                let _scope = LineageArena::enter(arena);
                TpTuple::new(tuple.fact, Lineage::from_tree(&tree), tuple.interval)
            }
            None => tuple,
        };
        self.event_high = self.event_high.max(tuple.interval.start());
        if self.cfg.verify_batch {
            self.accepted[side.idx()].push(tuple.clone());
        }
        self.pending[side.idx()].push(tuple);
        IngestOutcome::Accepted
    }

    /// Under [`WatermarkPolicy::BoundedLateness`], advances the watermark
    /// to `highest start seen − lateness` if that is ahead of the current
    /// watermark; under [`WatermarkPolicy::Manual`] this is a no-op.
    /// Returns the advance stats when the watermark moved.
    pub fn poll(&mut self, sink: &mut impl StreamSink) -> Option<AdvanceStats> {
        let WatermarkPolicy::BoundedLateness(lateness) = self.cfg.policy else {
            return None;
        };
        if self.event_high == TimePoint::MIN {
            return None; // nothing ingested yet
        }
        let target = self.event_high.saturating_sub(lateness.max(0));
        if target > self.watermark {
            Some(self.advance(target, sink).expect("target checked monotone"))
        } else {
            None
        }
    }

    /// Finalizes the region `[watermark, to)` and emits its deltas.
    pub fn advance(
        &mut self,
        to: TimePoint,
        sink: &mut impl StreamSink,
    ) -> Result<AdvanceStats, StreamError> {
        if to <= self.watermark {
            return Err(StreamError::NonMonotonicWatermark {
                current: self.watermark,
                requested: to,
            });
        }
        // Reclaim mode: the whole advance — sweep, λ-functions, delta
        // emission, the sink's callbacks, the batch cross-check — runs
        // inside the engine's private arena scope.
        let _scope = self.arena.as_ref().map(LineageArena::enter);
        // Clone the obs handle out of `self` so the stage cursor can live
        // across the `&mut self` calls below (Arc clone, no allocation).
        let obs = self.obs.clone();
        let mut stages = StageCursor::start(obs.as_deref());
        let mut stats = AdvanceStats {
            watermark: to,
            ..Default::default()
        };

        // Release: carried residuals + pending tuples starting below `to`,
        // split at the new watermark (prefix sweeps now, residual waits).
        //
        // Legacy buffer: the closed pieces stay unsorted here — the
        // sequential path sorts once below, the region-parallel path sorts
        // per region inside workers.
        //
        // Gapped index: `drain_below` yields the closed prefix already in
        // timestamp order; a hash regroup puts it in `(F, Ts)` order
        // without comparison-sorting the bulk, and the carry — itself kept
        // `(F, Ts)`-sorted across advances — merges in linearly. `ready`
        // is then fully sorted and *stays sorted through region
        // partitioning* ([`RegionPlan::partition`] preserves order), so
        // neither sweep path sorts at all. The drain also hands back the
        // ts-ordered start points, which the planner turns into exact
        // balanced cuts (no sampling pass).
        let prev_w = self.watermark;
        let mut ready: [Vec<TpTuple>; 2] = [Vec::new(), Vec::new()];
        // Ts-sorted start points of the closed pieces (index mode only),
        // for exact region planning.
        let mut cut_starts: Option<[Vec<TimePoint>; 2]> = None;
        match self.cfg.buffer {
            BufferKind::Legacy => {
                for (side, ready_slot) in ready.iter_mut().enumerate() {
                    let mut released: Vec<TpTuple> = std::mem::take(&mut self.carry[side]);
                    let IngestBuffer::Legacy(pending) = &mut self.pending[side] else {
                        unreachable!("legacy engines hold legacy buffers");
                    };
                    let pending = std::mem::take(pending);
                    let mut keep = Vec::with_capacity(pending.len());
                    for t in pending {
                        if t.interval.start() < to {
                            released.push(t);
                        } else {
                            keep.push(t);
                        }
                    }
                    self.pending[side] = IngestBuffer::Legacy(keep);
                    stats.released[side] = released.len();
                    let (closed, residual) = split_at_watermark(released, to);
                    stats.carried[side] = residual.len();
                    self.carry[side] = residual;
                    *ready_slot = closed;
                }
            }
            BufferKind::Sorted => {
                // Index gauges, measured before the drain perturbs layout.
                let (occ, _) = self.index_stats();
                stats.gap_occupancy_permille = occ;
                let mut epoch = IndexEpochStats::default();
                let mut starts: [Vec<TimePoint>; 2] = [Vec::new(), Vec::new()];
                for (side, ready_slot) in ready.iter_mut().enumerate() {
                    let IngestBuffer::Sorted(buf) = &mut self.pending[side] else {
                        unreachable!("index engines hold gapped buffers");
                    };
                    let drained = buf.drain_below(to);
                    epoch.absorb(&buf.take_epoch_stats());
                    // Carried residuals all start exactly at the previous
                    // watermark (they are split residuals of drained
                    // pieces), so they precede every drained start.
                    let carry_prev = std::mem::take(&mut self.carry[side]);
                    stats.released[side] = carry_prev.len() + drained.tuples.len();
                    starts[side] = Vec::with_capacity(carry_prev.len() + drained.starts.len());
                    starts[side].extend(std::iter::repeat_n(prev_w, carry_prev.len()));
                    starts[side].extend_from_slice(&drained.starts);
                    let (carry_closed, carry_res) = split_at_watermark(carry_prev, to);
                    let (drain_closed, drain_res) = split_at_watermark(drained.tuples, to);
                    stats.carried[side] = carry_res.len() + drain_res.len();
                    // Both residual lists are `(F, Ts)`-sorted (order-
                    // preserving split of sorted inputs); the merge keeps
                    // the carry invariant for the next advance.
                    self.carry[side] = merge_by_sort_key(carry_res, drain_res);
                    *ready_slot = merge_by_sort_key(carry_closed, drain_closed);
                }
                stats.index_retrains = epoch.retrains;
                stats.index_model_misses = epoch.model_misses;
                stats.shift_distance_p99 = epoch.shift_p99();
                cut_starts = Some(starts);
            }
        }
        let presorted = self.cfg.buffer == BufferKind::Sorted;
        stages.stage(STAGE_DRAIN, (stats.released[0] + stats.released[1]) as u64);

        // One sweep, all ops. The sweep is either sequential or sharded
        // over worker threads by timeline region (`ParallelConfig`); both
        // feed the same window stream — stitched back to byte-identity in
        // the parallel case — through the same per-op emit stage below
        // (indexed loops: `emit` needs `&mut self`).
        let plan = self.region_plan(&ready, cut_starts.as_ref());
        stages.stage(
            STAGE_PLAN,
            plan.as_ref().map(|p| p.regions() as u64).unwrap_or(1),
        );
        match plan {
            None => {
                if !presorted {
                    for side in ready.iter_mut() {
                        side.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
                    }
                }
                debug_assert!(ready
                    .iter()
                    .all(|side| side.windows(2).all(|w| w[0].sort_key() <= w[1].sort_key())));
                stats.regions_used = 1;
                stats.region_tuples = ready[0].len() + ready[1].len();
                stats.region_max_tuples = stats.region_tuples;
                let [ready_r, ready_s] = &ready;
                for w in Lawa::new(ready_r, ready_s) {
                    stats.windows += 1;
                    for oi in 0..self.cfg.ops.len() {
                        let op = self.cfg.ops[oi];
                        if let Some(lineage) = op_lineage(op, &w) {
                            let t = TpTuple::new(w.fact.clone(), lineage, w.interval);
                            self.emit(op, t, sink, &mut stats);
                        }
                    }
                }
            }
            Some(plan) => {
                let workers = self.region_workers();
                let swept = sweep_regions(
                    &ready,
                    &plan,
                    &self.cfg.ops,
                    workers,
                    presorted,
                    &mut stats,
                    obs.as_deref(),
                );
                let emit_t0 = obs.as_ref().map(|_| crate::obs::now_ns());
                for (w, lineages) in swept {
                    stats.windows += 1;
                    let slots = lineages.into_iter().take(self.cfg.ops.len());
                    for (oi, lineage) in slots.enumerate() {
                        if let Some(lineage) = lineage {
                            let op = self.cfg.ops[oi];
                            let t = TpTuple::new(w.fact.clone(), lineage, w.interval);
                            self.emit(op, t, sink, &mut stats);
                        }
                    }
                }
                if let (Some(o), Some(t0)) = (obs.as_deref(), emit_t0) {
                    o.sub_span(
                        "emit",
                        t0,
                        crate::obs::now_ns() - t0,
                        stats.inserts + stats.extends,
                    );
                }
            }
        }
        stages.stage(STAGE_SWEEP, stats.region_tuples as u64);

        self.watermark = to;
        // A tail can only be matched by a future output starting exactly
        // at its end, and every future output lies at or above the
        // watermark: entries ending below it are dead. Prune with
        // doubling amortization so the maps track *live* facts, not every
        // fact ever emitted.
        let total: usize = self.tails.iter().map(|m| m.len()).sum();
        if total > self.tails_prune_at {
            for m in &mut self.tails {
                m.retain(|_, tail| tail.end >= to);
            }
            let live: usize = self.tails.iter().map(|m| m.len()).sum();
            self.tails_prune_at = (2 * live).max(1024);
        }
        // One propagation pass of the standing pipeline, still inside the
        // arena scope and before the sink observes the watermark, so a
        // sink callback reads the already-consistent materialized view.
        if let Some(p) = self.pipeline.as_mut() {
            stats.pipeline_deltas = p.on_advance(obs.as_deref());
            // Rate-aware re-optimization at the watermark boundary: every
            // inbox is drained, so the swap replays only standing state.
            if let Some(every) = self.cfg.reopt_every {
                if every > 0 && p.advances() % every == 0 {
                    p.reoptimize();
                }
            }
        }
        sink.on_watermark(to);
        self.advance_count += 1;
        stages.stage(STAGE_FINALIZE, stats.windows as u64);
        if self.cfg.reclaim.is_some() {
            self.reclaim_dead_segments(sink, &mut stats);
        }
        stages.stage(STAGE_SEAL_RETIRE, stats.retired_segments);
        if self.cfg.verify_batch {
            self.verify_closed_region();
        }
        stages.stage(STAGE_VERIFY, 0);
        // Arena gauges of the advance — private arena only: the thread's
        // shared arena moves with unrelated work, which would make these
        // numbers (and `AdvanceStats` equality) nondeterministic.
        if let Some(arena) = &self.arena {
            stats.arena_live_nodes = arena.live_nodes();
            stats.arena_resident_bytes = arena.resident_chunk_bytes() as u64;
        }
        stages.finish(&stats);
        Ok(stats)
    }

    /// Seals the segment of the just-finalized advance and retires every
    /// aged-out sealed segment that no live ref can reach. A held lineage
    /// keeps every segment in `[min_segment, segment]` resident (its
    /// reachable set is contained in that range — the arena invariant);
    /// the live refs are the pending arrivals, carried residuals and
    /// (under `verify_batch`) the accepted history. With
    /// [`ReclaimConfig::interior`] (the default) dead segments retire
    /// **wherever they sit** in the seal order — a long-lived fact pins
    /// its own segments only, not every later one; `interior: false`
    /// restores the prefix-ordered schedule (retirement stops at the
    /// first kept segment). Tail entries are deliberately *not* part of
    /// the frontier: they are only ever ref-compared, never dereferenced,
    /// and a tail whose segment died cannot be continued anyway (its
    /// residual would have kept the segment alive).
    fn reclaim_dead_segments(&mut self, sink: &mut impl StreamSink, stats: &mut AdvanceStats) {
        let rc = self.cfg.reclaim.clone().expect("reclaim mode");
        let arena = Arc::clone(self.arena.as_ref().expect("reclaim implies arena"));
        // Seal the arena segment and the var cohort of this advance side
        // by side: the cohort holds exactly the variables registered since
        // the previous seal, whose Var nodes were interned into `seg` at
        // push time (the registration contract of `ReclaimConfig::vars`).
        let sealed_seg = arena.seal();
        let var_epoch = rc.vars.as_ref().and_then(|vars| {
            let epoch = vars.seal_vars();
            if let (Some(ep), Some(seg)) = (epoch, sealed_seg) {
                vars.bind_cohort_segment(ep, seg);
            }
            epoch
        });
        if let Some(seg) = sealed_seg {
            self.sealed.push_back(SealedSegment {
                seg,
                sealed_at: self.advance_count,
                var_epoch,
            });
        }
        // Live coverage: the union of `[min_segment, segment]` ranges over
        // every ref the engine still holds, merged into disjoint
        // intervals so the per-segment probe is a binary search.
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        {
            let mut probe = |l: &Lineage| {
                let r = l.node_ref();
                ranges.push((arena.min_segment(r).0, r.segment().0));
            };
            for side in 0..2 {
                self.pending[side].for_each(|t| probe(&t.lineage));
                for t in &self.carry[side] {
                    probe(&t.lineage);
                }
                for t in &self.accepted[side] {
                    probe(&t.lineage);
                }
            }
        }
        ranges.sort_unstable();
        let mut live: Vec<(u32, u32)> = Vec::new();
        for (lo, hi) in ranges {
            match live.last_mut() {
                Some((_, last_hi)) if lo <= last_hi.saturating_add(1) => {
                    *last_hi = (*last_hi).max(hi);
                }
                _ => live.push((lo, hi)),
            }
        }
        let covered = |seg: SegmentId| -> bool {
            let idx = live.partition_point(|&(lo, _)| lo <= seg.0);
            idx > 0 && live[idx - 1].1 >= seg.0
        };
        let mut kept: VecDeque<SealedSegment> = VecDeque::with_capacity(self.sealed.len());
        for entry in std::mem::take(&mut self.sealed) {
            let aged_out =
                self.advance_count.saturating_sub(entry.sealed_at) >= rc.keep_epochs as u64;
            // Prefix mode: nothing retires past the first kept segment.
            let keep = (!rc.interior && !kept.is_empty()) || !aged_out || covered(entry.seg);
            if keep {
                kept.push_back(entry);
                continue;
            }
            match arena.retire(entry.seg) {
                Ok(freed) => {
                    self.reclaimed_segments += 1;
                    self.reclaimed_nodes += freed.nodes;
                    stats.retired_segments += 1;
                    stats.retired_nodes += freed.nodes;
                    if freed.interior {
                        stats.interior_retired_segments += 1;
                    }
                    // The cohort's vars are dead with the segment (nothing
                    // live reaches their Var nodes): release them right
                    // here, cohort-granular, so an interior retire drops
                    // its registry slice immediately instead of waiting
                    // for every older cohort's segment to retire too.
                    if let Some(epoch) = entry.var_epoch {
                        if let Some(vars) = rc.vars.as_ref() {
                            let released = vars.release_cohort(epoch);
                            self.reclaimed_vars += released.vars;
                            stats.released_vars += released.vars;
                        }
                    }
                    sink.on_retire(entry.seg);
                }
                // Pinned by a consumer-held view: back off, retry on the
                // next advance.
                Err(_) => kept.push_back(entry),
            }
        }
        self.sealed = kept;
    }

    /// Decides whether this advance's sweep is sharded by timeline region:
    /// `None` is the sequential sweep. Pinned cuts always shard (the
    /// differential-test hook); balanced planning requires a worker budget
    /// above one and at least `min_tuples` closed pieces. With the gapped
    /// index, `starts` holds the ts-sorted start points the drain handed
    /// back and the cuts are **exact** tuple-count quantiles
    /// ([`RegionPlan::balanced_from_index`]); the legacy buffer keeps the
    /// 2048-sample approximation.
    fn region_plan(
        &self,
        ready: &[Vec<TpTuple>; 2],
        starts: Option<&[Vec<TimePoint>; 2]>,
    ) -> Option<RegionPlan> {
        let pc = self.cfg.parallel.as_ref()?;
        // The per-window lineage array is fixed-size (SetOp has three
        // members); exotic op lists fall back to the sequential sweep.
        if self.cfg.ops.len() > OP_SLOTS {
            return None;
        }
        if let Some(cuts) = &pc.cuts {
            return Some(RegionPlan::from_cuts(cuts.clone()));
        }
        let total = ready[0].len() + ready[1].len();
        if pc.workers <= 1 || total < pc.min_tuples.max(2) {
            return None;
        }
        let plan = match starts {
            Some(st) => RegionPlan::balanced_from_index(&st[0], &st[1], pc.workers),
            None => RegionPlan::balanced(&ready[0], &ready[1], pc.workers),
        };
        (plan.regions() > 1).then_some(plan)
    }

    /// Rescales the region-parallel worker budget for subsequent advances
    /// (no-op without [`EngineConfig::parallel`]). The `StreamServer`'s
    /// two-level scheduler calls this before every watermark wave.
    pub fn set_region_workers(&mut self, workers: usize) {
        if let Some(pc) = self.cfg.parallel.as_mut() {
            pc.workers = workers.max(1);
        }
    }

    /// The current region-parallel worker budget (1 without
    /// [`EngineConfig::parallel`]).
    pub fn region_workers(&self) -> usize {
        self.cfg.parallel.as_ref().map(|pc| pc.workers).unwrap_or(1)
    }

    /// Releases everything still buffered by advancing the watermark past
    /// the last buffered end point. No-op (zero stats) when nothing is
    /// buffered.
    ///
    /// Routes through [`StreamEngine::advance`] — the same (possibly
    /// region-parallel) path as every mid-stream advance, so the final
    /// flush shards over workers too and there is exactly one sweep
    /// implementation to maintain.
    pub fn finish(&mut self, sink: &mut impl StreamSink) -> Result<AdvanceStats, StreamError> {
        let hi = self
            .pending
            .iter()
            .filter_map(IngestBuffer::max_interval_end)
            .chain(self.carry.iter().flatten().map(|t| t.interval.end()))
            .max();
        match hi {
            Some(hi) if hi > self.watermark => self.advance(hi, sink),
            _ => {
                // No-op finish: nothing to sweep, but the posture gauges
                // (index occupancy, carried residue, arena residency) are
                // still live state — report them instead of zeros.
                let mut stats = AdvanceStats {
                    watermark: self.watermark,
                    gap_occupancy_permille: self.index_stats().0,
                    ..Default::default()
                };
                for side in 0..2 {
                    stats.carried[side] = self.carry[side].len();
                }
                if let Some(arena) = &self.arena {
                    stats.arena_live_nodes = arena.live_nodes();
                    stats.arena_resident_bytes = arena.resident_chunk_bytes() as u64;
                }
                Ok(stats)
            }
        }
    }

    /// Emits one output tuple as an `Extend` (when it continues the fact's
    /// previous output tuple with the identical lineage handle — the
    /// artificial watermark cut) or as an `Insert`.
    fn emit(
        &mut self,
        op: SetOp,
        t: TpTuple,
        sink: &mut impl StreamSink,
        stats: &mut AdvanceStats,
    ) {
        let idx = op_index(op);
        let delta = match self.tails[idx].get_mut(&t.fact) {
            Some(tail) if tail.end == t.interval.start() && tail.lineage == t.lineage => {
                let from = tail.end;
                tail.end = t.interval.end();
                stats.extends += 1;
                Delta::Extend {
                    fact: t.fact.clone(),
                    lineage: t.lineage,
                    from,
                    to: t.interval.end(),
                }
            }
            _ => {
                self.tails[idx].insert(
                    t.fact.clone(),
                    Tail {
                        end: t.interval.end(),
                        lineage: t.lineage,
                    },
                );
                stats.inserts += 1;
                Delta::Insert(t)
            }
        };
        if let Some(mirror) = self.verify_mirror.as_mut() {
            mirror.on_delta(op, &delta);
        }
        if let Some(p) = self.pipeline.as_mut() {
            p.offer(op, &delta);
        }
        sink.on_delta(op, &delta);
    }

    /// Batch cross-check: for every maintained op, batch LAWA over all
    /// accepted tuples clipped to the closed region `(-∞, watermark)` must
    /// equal the merged emitted output. Panics on divergence (engine bug).
    fn verify_closed_region(&self) {
        let clip = |side: usize| -> TpRelation {
            let (closed, _) =
                split_at_watermark(self.accepted[side].iter().cloned(), self.watermark);
            TpRelation::try_new(closed).expect("clipped accepted inputs stay duplicate-free")
        };
        let r = clip(0);
        let s = clip(1);
        let mirror = self
            .verify_mirror
            .as_ref()
            .expect("verify_closed_region only runs under verify_batch");
        for &op in &self.cfg.ops {
            let batch = ops::apply(op, &r, &s).canonicalized();
            let streamed = mirror.relation(op).canonicalized();
            assert_eq!(
                streamed, batch,
                "stream/batch divergence for {op} at watermark {}",
                self.watermark
            );
        }
    }
}

/// Capacity of the per-window op-lineage array ([`SetOp`] has three
/// members).
const OP_SLOTS: usize = 3;

/// Per-window op lineages, aligned with `EngineConfig::ops`.
type OpLineages = [Option<Lineage>; OP_SLOTS];
/// One region's annotated window stream, as produced by a sub-sweep and
/// consumed by the pairwise stitch reduction.
type RegionStream = Vec<(LineageAwareWindow, OpLineages)>;

/// The λ-filter/λ-function of Algorithms 2–4 for one window — shared by
/// the sequential sweep loop and the region workers, so there is exactly
/// one implementation of the per-op semantics.
fn op_lineage(op: SetOp, w: &LineageAwareWindow) -> Option<Lineage> {
    match op {
        SetOp::Union => Lineage::or_opt(w.lambda_r.as_ref(), w.lambda_s.as_ref()),
        SetOp::Intersect => match (&w.lambda_r, &w.lambda_s) {
            (Some(lr), Some(ls)) => Some(Lineage::and(lr, ls)),
            _ => None,
        },
        SetOp::Except => w
            .lambda_r
            .as_ref()
            .map(|lr| Lineage::and_not(lr, w.lambda_s.as_ref())),
    }
}

/// Fans the per-region LAWA sub-sweeps over at most `workers` scoped
/// threads (contiguous region blocks, so a pinned plan with more regions
/// than budget — the differential-test hook — never over-spawns): each
/// worker sweeps its regions' pieces and computes the per-op window
/// lineages — interning into the propagated current arena, which is the
/// engine's private arena in reclaim mode (the append path is lock-free,
/// so workers never contend on node storage). With `presorted` (the gapped
/// ingestion index: `ready` is `(F, Ts)`-sorted, and
/// [`RegionPlan::partition`] preserves that order within each region) the
/// per-worker sorts are skipped entirely — the serial fraction PR 5 left
/// inside each worker disappears. The stitched stream equals the
/// sequential sweep's byte for byte; the stitch runs as a pairwise tree
/// reduction over [`tp_core::window::stitch_pair`] (the same primitive
/// [`tp_core::window::stitch_annotated`] is built from), so merge work no
/// longer serializes at high worker counts.
fn sweep_regions(
    ready: &[Vec<TpTuple>; 2],
    plan: &RegionPlan,
    ops: &[SetOp],
    workers: usize,
    presorted: bool,
    stats: &mut AdvanceStats,
    obs: Option<&EngineObs>,
) -> Vec<(LineageAwareWindow, OpLineages)> {
    let r_regions = plan.partition(&ready[0]);
    let s_regions = plan.partition(&ready[1]);
    stats.regions_used = plan.regions();
    stats.region_max_tuples = 0;
    stats.region_tuples = 0;
    for (r_i, s_i) in r_regions.iter().zip(&s_regions) {
        let pieces = r_i.len() + s_i.len();
        stats.region_max_tuples = stats.region_max_tuples.max(pieces);
        stats.region_tuples += pieces;
    }
    // Chunk the regions into one contiguous block per worker thread.
    let threads = workers.clamp(1, plan.regions());
    let per_thread = plan.regions().div_ceil(threads);
    let mut blocks: Vec<Vec<(Vec<TpTuple>, Vec<TpTuple>)>> = Vec::with_capacity(threads);
    let mut paired = r_regions.into_iter().zip(s_regions);
    loop {
        let block: Vec<_> = paired.by_ref().take(per_thread).collect();
        if block.is_empty() {
            break;
        }
        blocks.push(block);
    }
    // Workers do not inherit the caller's thread-local arena scope:
    // propagate it so every op lineage lands in the engine's arena.
    let arena = LineageArena::current_shared();
    let span_ctx = obs.map(|o| o.ctx);
    let per_region: Vec<Vec<(LineageAwareWindow, OpLineages)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| {
                let arena = arena.clone();
                scope.spawn(move || {
                    let _scope = arena.as_ref().map(LineageArena::enter);
                    let worker_t0 = span_ctx.map(|_| crate::obs::now_ns());
                    let pieces: u64 = block.iter().map(|(r, s)| (r.len() + s.len()) as u64).sum();
                    let out = block
                        .into_iter()
                        .map(|(mut r_i, mut s_i)| {
                            if !presorted {
                                r_i.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
                                s_i.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
                            }
                            Lawa::new(&r_i, &s_i)
                                .map(|w| {
                                    let mut lineages: OpLineages = [None; OP_SLOTS];
                                    for (oi, &op) in ops.iter().enumerate() {
                                        lineages[oi] = op_lineage(op, &w);
                                    }
                                    (w, lineages)
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>();
                    if let (Some(ctx), Some(t0)) = (span_ctx, worker_t0) {
                        let dur = crate::obs::now_ns() - t0;
                        crate::obs::record_sub_span("region", t0, dur, ctx, pieces);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("region worker panicked"))
            .collect()
    });
    // Pairwise tree reduction replaces the coordinator's serial k-way
    // merge: each round halves the stream count and merges its pairs
    // concurrently, so ⌈log₂ k⌉ rounds remain where a k-stream merge
    // serialized. `stitch_pair` only compares lineage *handles* (O(1),
    // no dereference), so the reduction threads skip the arena scope.
    let mut layer = per_region;
    let mut depth = 0usize;
    if layer.len() == 1 {
        // Single-region plans (a pinned cut set) still get the coalesce
        // pass the merge applies within one stream.
        let round_t0 = span_ctx.map(|_| crate::obs::now_ns());
        let only = tp_core::window::stitch_pair(layer.pop().expect("len checked"), Vec::new());
        if let (Some(ctx), Some(t0)) = (span_ctx, round_t0) {
            let dur = crate::obs::now_ns() - t0;
            crate::obs::record_sub_span("stitch_reduce", t0, dur, ctx, only.len() as u64);
        }
        layer = vec![only];
    }
    while layer.len() > 1 {
        depth += 1;
        let round_t0 = span_ctx.map(|_| crate::obs::now_ns());
        let mut pairs: Vec<(RegionStream, Option<RegionStream>)> =
            Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        let reduce = |(a, b): (RegionStream, Option<RegionStream>)| match b {
            Some(b) => tp_core::window::stitch_pair(a, b),
            None => a,
        };
        layer = if pairs.len() > 1 && workers > 1 {
            let threads = workers.clamp(1, pairs.len());
            let per_thread = pairs.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let mut chunks = Vec::with_capacity(threads);
                let mut it = pairs.into_iter();
                loop {
                    let chunk: Vec<_> = it.by_ref().take(per_thread).collect();
                    if chunk.is_empty() {
                        break;
                    }
                    chunks.push(
                        scope.spawn(move || chunk.into_iter().map(reduce).collect::<Vec<_>>()),
                    );
                }
                chunks
                    .into_iter()
                    .flat_map(|h| h.join().expect("stitch worker panicked"))
                    .collect()
            })
        } else {
            pairs.into_iter().map(reduce).collect()
        };
        if let (Some(ctx), Some(t0)) = (span_ctx, round_t0) {
            let dur = crate::obs::now_ns() - t0;
            let merged: u64 = layer.iter().map(|l| l.len() as u64).sum();
            crate::obs::record_sub_span("stitch_reduce", t0, dur, ctx, merged);
        }
    }
    stats.stitch_depth = depth;
    layer.pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{CollectingSink, CountingSink};
    use tp_core::interval::Interval;
    use tp_core::relation::VarTable;

    /// The paper's Example 3 relations (c, a restricted to 'milk').
    fn example3(vars: &mut VarTable) -> (TpRelation, TpRelation) {
        let c = TpRelation::base(
            "c",
            vec![
                (Fact::single("milk"), Interval::at(1, 4), 0.6),
                (Fact::single("milk"), Interval::at(6, 8), 0.7),
            ],
            vars,
        )
        .unwrap();
        let a = TpRelation::base(
            "a",
            vec![(Fact::single("milk"), Interval::at(2, 10), 0.3)],
            vars,
        )
        .unwrap();
        (c, a)
    }

    fn engine_verifying() -> StreamEngine {
        StreamEngine::new(EngineConfig {
            verify_batch: true,
            ..Default::default()
        })
    }

    #[test]
    fn in_order_stream_matches_batch_for_all_ops() {
        let mut vars = VarTable::new();
        let (c, a) = example3(&mut vars);
        let mut engine = engine_verifying();
        let mut sink = CollectingSink::new();
        for t in c.iter() {
            assert_eq!(engine.push(Side::Left, t.clone()), IngestOutcome::Accepted);
        }
        for t in a.iter() {
            assert_eq!(engine.push(Side::Right, t.clone()), IngestOutcome::Accepted);
        }
        // Watermark schedule slicing through the middle of tuples.
        for w in [3, 5, 7] {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        for op in SetOp::ALL {
            assert_eq!(
                sink.relation(op).canonicalized(),
                ops::apply(op, &c, &a).canonicalized(),
                "{op}"
            );
        }
    }

    #[test]
    fn out_of_order_arrival_within_lateness_matches_batch() {
        let mut vars = VarTable::new();
        let (c, a) = example3(&mut vars);
        let mut engine = engine_verifying();
        let mut sink = CollectingSink::new();
        // Reverse arrival order; watermark only advances afterwards.
        for t in c.iter().rev() {
            engine.push(Side::Left, t.clone());
        }
        engine.advance(2, &mut sink).unwrap();
        for t in a.iter() {
            engine.push(Side::Right, t.clone());
        }
        engine.finish(&mut sink).unwrap();
        for op in SetOp::ALL {
            assert_eq!(
                sink.relation(op).canonicalized(),
                ops::apply(op, &c, &a).canonicalized(),
                "{op}"
            );
        }
    }

    #[test]
    fn artificial_cuts_are_emitted_as_extends() {
        // One long tuple swept by many watermarks: 1 insert, k-1 extends.
        let mut vars = VarTable::new();
        let id = vars.register("r1", 0.5).unwrap();
        let t = TpTuple::new("f", Lineage::var(id), Interval::at(0, 100));
        let mut engine = StreamEngine::default();
        let mut sink = CountingSink::new();
        engine.push(Side::Left, t);
        for w in (10..=90).step_by(10) {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        assert_eq!(sink.inserts(SetOp::Union), 1);
        assert_eq!(sink.extends(SetOp::Union), 9);
        assert_eq!(sink.inserts(SetOp::Except), 1);
        assert_eq!(sink.inserts(SetOp::Intersect), 0);
    }

    #[test]
    fn late_tuples_are_dropped_and_counted() {
        let mut vars = VarTable::new();
        let id = vars.register("r1", 0.5).unwrap();
        let mut engine = StreamEngine::default();
        let mut sink = CountingSink::new();
        engine.advance(10, &mut sink).unwrap();
        let late = TpTuple::new("f", Lineage::var(id), Interval::at(5, 8));
        assert_eq!(engine.push(Side::Left, late), IngestOutcome::Late);
        assert_eq!(engine.late_dropped(), [1, 0]);
        let ok = TpTuple::new("f", Lineage::var(id), Interval::at(10, 12));
        assert_eq!(engine.push(Side::Left, ok), IngestOutcome::Accepted);
    }

    #[test]
    fn non_monotonic_watermark_rejected() {
        let mut engine = StreamEngine::default();
        let mut sink = crate::delta::NullSink;
        engine.advance(5, &mut sink).unwrap();
        assert!(matches!(
            engine.advance(5, &mut sink),
            Err(StreamError::NonMonotonicWatermark { .. })
        ));
        assert!(engine.advance(6, &mut sink).is_ok());
    }

    #[test]
    fn bounded_lateness_policy_advances_on_poll() {
        let mut vars = VarTable::new();
        let mut engine = StreamEngine::new(EngineConfig {
            policy: WatermarkPolicy::BoundedLateness(3),
            ..Default::default()
        });
        let mut sink = CountingSink::new();
        let mk = |vars: &mut VarTable, s, e| {
            let id = vars.register("x", 0.5).unwrap();
            TpTuple::new("f", Lineage::var(id), Interval::at(s, e))
        };
        assert!(engine.poll(&mut sink).is_none()); // nothing ingested yet
        engine.push(Side::Left, mk(&mut vars, 0, 2));
        // The watermark trails the highest start by the lateness bound.
        let stats = engine.poll(&mut sink).expect("watermark moved");
        assert_eq!(stats.watermark, -3);
        engine.push(Side::Left, mk(&mut vars, 10, 12));
        let stats = engine.poll(&mut sink).expect("watermark moved");
        assert_eq!(stats.watermark, 7);
        assert_eq!(engine.watermark(), 7);
        // A tuple older than the bound is now late.
        assert_eq!(
            engine.push(Side::Left, mk(&mut vars, 4, 6)),
            IngestOutcome::Late
        );
        // Within the bound: accepted.
        assert_eq!(
            engine.push(Side::Left, mk(&mut vars, 8, 9)),
            IngestOutcome::Accepted
        );
    }

    /// A sliding-window workload: per epoch `e`, `per_epoch` short tuples
    /// per side on a rotating fact population. Nothing outlives its epoch
    /// by more than one stride — the shape a bounded-memory stream serves.
    fn sliding_tuples(
        vars: &mut VarTable,
        epochs: i64,
        per_epoch: i64,
        stride: i64,
    ) -> Vec<(Side, TpTuple)> {
        let mut out = Vec::new();
        for e in 0..epochs {
            for k in 0..per_epoch {
                let base = e * stride + (k * stride / per_epoch);
                for (side, off) in [(Side::Left, 0), (Side::Right, 2)] {
                    let id = vars.register(format!("s{e}_{k}_{off}"), 0.5).unwrap();
                    out.push((
                        side,
                        TpTuple::new(
                            Fact::single(k),
                            Lineage::var(id),
                            Interval::at(base + off, base + off + stride / 2 + 1),
                        ),
                    ));
                }
            }
        }
        out
    }

    #[test]
    fn reclaiming_engine_plateaus_and_matches_batch() {
        let mut vars = VarTable::new();
        let events = sliding_tuples(&mut vars, 60, 8, 16);
        let mut engine = StreamEngine::new(EngineConfig {
            reclaim: Some(ReclaimConfig {
                keep_epochs: 2,
                ..Default::default()
            }),
            ..Default::default()
        });
        // Materialize every delta as a tree immediately (the reclaim-mode
        // consumption contract), so results survive retirement and can be
        // re-interned into the global arena for the batch comparison.
        let mut sink = crate::delta::MaterializingSink::new();
        let mut live_samples = Vec::new();
        let mut w = 0i64;
        for (side, t) in &events {
            engine.push(*side, t.clone());
            let hi = t.interval.start();
            if hi - 24 > w {
                w = hi - 24;
                engine.advance(w, &mut sink).unwrap();
                live_samples.push(engine.arena_stats().unwrap().nodes);
            }
        }
        engine.finish(&mut sink).unwrap();
        assert_eq!(engine.late_dropped(), [0, 0]);
        let (seg_retired, nodes_retired) = engine.reclaimed();
        assert!(seg_retired > 10, "retired only {seg_retired} segments");
        assert!(nodes_retired > 0);
        assert_eq!(sink.retired_segments, seg_retired);
        // Plateau: once warm, live nodes must stop growing with history.
        let warm = &live_samples[live_samples.len() / 2..];
        let peak_warm = *warm.iter().max().unwrap();
        let peak_early = *live_samples[..6.min(live_samples.len())]
            .iter()
            .max()
            .unwrap();
        assert!(
            peak_warm <= 2 * peak_early.max(1),
            "no plateau: early {peak_early}, warm {peak_warm} (samples {live_samples:?})"
        );
        // Equivalence: rebuild the streamed result in the global arena and
        // compare with batch over the same inputs.
        let streamed = sink.replay();
        let collect = |side: Side| -> TpRelation {
            events
                .iter()
                .filter(|(s, _)| *s == side)
                .map(|(_, t)| t.clone())
                .collect()
        };
        let (r, s) = (collect(Side::Left), collect(Side::Right));
        for op in SetOp::ALL {
            assert_eq!(
                streamed.relation(op).canonicalized(),
                ops::apply(op, &r, &s).canonicalized(),
                "{op}"
            );
        }
        // Marginals of the streamed results valuate identically.
        for t in streamed.relation(SetOp::Union).iter() {
            let p = tp_core::prob::marginal(&t.lineage, &vars).unwrap();
            assert!(p > 0.0 && p <= 1.0);
        }
    }

    #[test]
    fn reclaiming_engine_retires_var_cohorts_with_their_segments() {
        // Vars registered at push time (the ReclaimConfig::vars contract)
        // must be released once their segment retires — and only then: a
        // var whose tuple is still buffered stays resolvable.
        let vars = Arc::new(VarTable::new());
        let mut engine = StreamEngine::new(EngineConfig {
            reclaim: Some(ReclaimConfig {
                keep_epochs: 1,
                vars: Some(Arc::clone(&vars)),
                ..Default::default()
            }),
            ..Default::default()
        });
        let mut sink = crate::delta::MaterializingSink::new();
        let mut ids = Vec::new();
        let stride = 10i64;
        for e in 0..30i64 {
            let id = vars
                .register_shared(format!("e{e}"), 0.25 + 0.5 * ((e % 7) as f64) / 7.0)
                .unwrap();
            ids.push(id);
            // Build the lineage inside the engine's arena and keep the
            // scope across the push, so `push` re-interns (dedup hit)
            // instead of translating from the global arena.
            let scope = engine.enter_arena();
            let t = TpTuple::new(
                "f",
                Lineage::var(id),
                tp_core::interval::Interval::at(e * stride, e * stride + 4),
            );
            engine.push(Side::Left, t);
            drop(scope);
            engine.advance(e * stride + 5, &mut sink).unwrap();
        }
        let released = engine.reclaimed_vars();
        assert!(released > 0, "no vars retired over 30 advances");
        assert_eq!(vars.released_vars(), released);
        assert!(
            vars.live_vars() <= 8,
            "var table did not slide: {} live",
            vars.live_vars()
        );
        // Released ids error; live ids still resolve.
        assert!(matches!(
            vars.prob(ids[0]),
            Err(tp_core::error::Error::ReleasedVariable(_))
        ));
        assert!(vars.prob(*ids.last().unwrap()).is_ok());
        // The engine's registry accessor sees the same table.
        assert!(Arc::ptr_eq(engine.var_registry().unwrap(), &vars));
    }

    #[test]
    fn reclaim_translates_foreign_lineage_on_push() {
        // Tuples built in the global arena must be re-interned into the
        // engine's private arena, and deltas valuated in-scope.
        let mut vars = VarTable::new();
        let (c, a) = example3(&mut vars);
        let mut engine = StreamEngine::new(EngineConfig {
            reclaim: Some(ReclaimConfig::default()),
            ..Default::default()
        });
        struct ProbeSink<'a> {
            vars: &'a VarTable,
            probed: usize,
        }
        impl StreamSink for ProbeSink<'_> {
            fn on_delta(&mut self, _op: SetOp, delta: &Delta) {
                if let Delta::Insert(t) = delta {
                    // Runs inside the engine's arena scope.
                    let p = tp_core::prob::marginal(&t.lineage, self.vars).unwrap();
                    assert!(p > 0.0 && p <= 1.0);
                    self.probed += 1;
                }
            }
        }
        let mut sink = ProbeSink {
            vars: &vars,
            probed: 0,
        };
        for t in c.iter() {
            engine.push(Side::Left, t.clone());
        }
        for t in a.iter() {
            engine.push(Side::Right, t.clone());
        }
        engine.finish(&mut sink).unwrap();
        assert!(sink.probed > 0);
        let stats = engine.arena_stats().unwrap();
        assert!(stats.nodes > 0, "lineage was not translated into the arena");
    }

    /// Replays `events` through an engine with the given parallel config,
    /// returning the materialized delta log (advance every `every` points).
    fn replay_with(
        parallel: Option<ParallelConfig>,
        events: &[(Side, TpTuple)],
        every: i64,
    ) -> crate::delta::MaterializingSink {
        let mut engine = StreamEngine::new(EngineConfig {
            parallel,
            ..Default::default()
        });
        let mut sink = crate::delta::MaterializingSink::new();
        let mut w = i64::MIN;
        for (side, t) in events {
            engine.push(*side, t.clone());
            let target = t.interval.start() - 1;
            if target > w && target % every == 0 {
                w = target;
                engine.advance(w, &mut sink).unwrap();
            }
        }
        engine.finish(&mut sink).unwrap();
        sink
    }

    fn parallel_cfg(workers: usize) -> ParallelConfig {
        ParallelConfig {
            workers,
            min_tuples: 0,
            cuts: None,
        }
    }

    #[test]
    fn region_parallel_advance_is_byte_identical_to_sequential() {
        let mut vars = VarTable::new();
        let mut events = Vec::new();
        for e in 0..40i64 {
            for f in 0..4i64 {
                for (side, off) in [(Side::Left, 0), (Side::Right, 3)] {
                    let id = vars.register(format!("v{e}_{f}_{off}"), 0.5).unwrap();
                    events.push((
                        side,
                        TpTuple::new(
                            Fact::single(f),
                            Lineage::var(id),
                            Interval::at(10 * e + off, 10 * e + off + 8),
                        ),
                    ));
                }
            }
        }
        let sequential = replay_with(None, &events, 30);
        for workers in [2, 3, 8] {
            let parallel = replay_with(Some(parallel_cfg(workers)), &events, 30);
            assert_eq!(
                parallel.deltas, sequential.deltas,
                "{workers} workers: delta log diverged"
            );
        }
        // Pinned cuts — including duplicates and out-of-span positions —
        // are equally byte-identical.
        for cuts in [vec![], vec![55, 55, 200], vec![-5, 17, 17, 1_000_000]] {
            let pinned = replay_with(
                Some(ParallelConfig {
                    workers: 4,
                    min_tuples: 0,
                    cuts: Some(cuts.clone()),
                }),
                &events,
                30,
            );
            assert_eq!(pinned.deltas, sequential.deltas, "cuts {cuts:?}");
        }
    }

    #[test]
    fn parallel_advance_reports_region_gauges() {
        let mut vars = VarTable::new();
        let mut engine = StreamEngine::new(EngineConfig {
            parallel: Some(parallel_cfg(4)),
            ..Default::default()
        });
        let mut sink = CountingSink::new();
        for k in 0..64i64 {
            let id = vars.register("v", 0.5).unwrap();
            engine.push(
                Side::Left,
                TpTuple::new(
                    Fact::single(k % 8),
                    Lineage::var(id),
                    Interval::at(k, k + 1),
                ),
            );
        }
        let stats = engine.advance(100, &mut sink).unwrap();
        assert!(stats.regions_used > 1, "fat advance stayed sequential");
        assert!(stats.regions_used <= 4);
        assert_eq!(stats.region_tuples, 64);
        assert!(stats.region_max_tuples >= 64 / stats.regions_used);
        assert!(stats.region_balance() >= 1.0);
        // A sequential engine reports one region covering everything.
        let mut seq = StreamEngine::default();
        let id = vars.register("v", 0.5).unwrap();
        seq.push(
            Side::Left,
            TpTuple::new("f", Lineage::var(id), Interval::at(0, 5)),
        );
        let stats = seq.advance(10, &mut sink).unwrap();
        assert_eq!(stats.regions_used, 1);
        assert_eq!(stats.region_tuples, 1);
        assert!((stats.region_balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_advances_stay_sequential_under_min_tuples() {
        let mut vars = VarTable::new();
        let id = vars.register("v", 0.5).unwrap();
        let mut engine = StreamEngine::new(EngineConfig {
            parallel: Some(ParallelConfig {
                workers: 8,
                min_tuples: 1_000,
                cuts: None,
            }),
            ..Default::default()
        });
        let mut sink = CountingSink::new();
        engine.push(
            Side::Left,
            TpTuple::new("f", Lineage::var(id), Interval::at(0, 5)),
        );
        let stats = engine.advance(10, &mut sink).unwrap();
        assert_eq!(stats.regions_used, 1, "tiny advance must not fan out");
        assert_eq!(engine.region_workers(), 8);
        engine.set_region_workers(2);
        assert_eq!(engine.region_workers(), 2);
    }

    #[test]
    fn reclaiming_parallel_engine_matches_sequential_reclaim() {
        // Region workers intern op lineage into the engine's PRIVATE arena
        // (the propagated scope); the delta log and the reclamation
        // schedule must match the sequential reclaiming engine.
        let run = |parallel: Option<ParallelConfig>| {
            let mut vars = VarTable::new();
            let events = sliding_tuples(&mut vars, 30, 8, 16);
            let mut engine = StreamEngine::new(EngineConfig {
                reclaim: Some(ReclaimConfig {
                    keep_epochs: 2,
                    ..Default::default()
                }),
                parallel,
                ..Default::default()
            });
            let mut sink = crate::delta::MaterializingSink::new();
            let mut w = 0i64;
            for (side, t) in &events {
                engine.push(*side, t.clone());
                let hi = t.interval.start();
                if hi - 24 > w {
                    w = hi - 24;
                    engine.advance(w, &mut sink).unwrap();
                }
            }
            engine.finish(&mut sink).unwrap();
            (sink.deltas, engine.reclaimed())
        };
        let (seq_deltas, seq_reclaimed) = run(None);
        let (par_deltas, par_reclaimed) = run(Some(parallel_cfg(3)));
        assert_eq!(par_deltas, seq_deltas);
        assert_eq!(par_reclaimed, seq_reclaimed);
        assert!(seq_reclaimed.0 > 0, "nothing retired — test is vacuous");
    }

    #[test]
    fn advance_stats_account_for_release_and_carry() {
        let mut vars = VarTable::new();
        let (c, a) = example3(&mut vars);
        let mut engine = StreamEngine::default();
        let mut sink = CountingSink::new();
        for t in c.iter() {
            engine.push(Side::Left, t.clone());
        }
        for t in a.iter() {
            engine.push(Side::Right, t.clone());
        }
        let stats = engine.advance(3, &mut sink).unwrap();
        // Left: [1,4) released (crosses 3, carried), [6,8) stays pending.
        assert_eq!(stats.released, [1, 1]);
        assert_eq!(stats.carried, [1, 1]);
        assert_eq!(engine.buffered(), [2, 1]);
        assert!(stats.windows > 0);
    }
}
