//! Result deltas and the [`StreamSink`] consumer interface.
//!
//! The engine never re-emits a finalized output tuple. Each watermark
//! advance produces a sequence of deltas per set operation:
//!
//! * [`Delta::Insert`] — a brand-new output tuple;
//! * [`Delta::Extend`] — the most recent output tuple of the fact grows to
//!   the right, because the window continued unchanged across the previous
//!   watermark cut (same valid tuples, hence — by hash-consing — the
//!   *identical* lineage handle).
//!
//! A sink that applies both kinds verbatim reconstructs exactly the batch
//! LAWA output; [`CollectingSink`] does that, [`CountingSink`] just counts
//! (for benchmarks and monitoring).

use tp_core::arena::{FastMap, SegmentId};
use tp_core::fact::Fact;
use tp_core::interval::{Interval, TimePoint};
use tp_core::lineage::{Lineage, LineageTree};
use tp_core::ops::SetOp;
use tp_core::relation::TpRelation;
use tp_core::tuple::TpTuple;

/// One incremental change to the result of a set operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// A new output tuple, final as of the current watermark (it may still
    /// be extended later, never retracted or shrunk).
    Insert(TpTuple),
    /// The most recent output tuple of `fact` — whose interval currently
    /// ends at `from` and whose lineage is `lineage` — now ends at `to`.
    Extend {
        /// The fact whose latest output tuple grows.
        fact: Fact,
        /// The (unchanged) lineage of that tuple, for consumers that index
        /// deltas by lineage instead of by fact.
        lineage: Lineage,
        /// The previous exclusive end of the tuple's interval.
        from: TimePoint,
        /// The new exclusive end.
        to: TimePoint,
    },
}

impl Delta {
    /// The fact the delta applies to.
    pub fn fact(&self) -> &Fact {
        match self {
            Delta::Insert(t) => &t.fact,
            Delta::Extend { fact, .. } => fact,
        }
    }
}

/// Consumer of the engine's incremental results.
pub trait StreamSink {
    /// Called once per delta, in output order per watermark advance.
    fn on_delta(&mut self, op: SetOp, delta: &Delta);

    /// Called after all deltas of a watermark advance have been delivered.
    fn on_watermark(&mut self, _w: TimePoint) {}

    /// Called when a reclaiming engine retires an arena segment (bounded-
    /// memory mode): lineage handles keyed into `seg` are dead — consumers
    /// holding their own memo tables (a `VarTable` valuation cache, a
    /// long-lived `Bdd`) should release that segment's entries here
    /// (`VarTable::release_marginals_for_segment`, `Bdd::release_segment`
    /// — both O(1)). Default: no-op.
    fn on_retire(&mut self, _seg: SegmentId) {}
}

/// Index of an operation in per-op arrays (`SetOp::ALL` order).
pub(crate) fn op_index(op: SetOp) -> usize {
    match op {
        SetOp::Union => 0,
        SetOp::Intersect => 1,
        SetOp::Except => 2,
    }
}

/// A sink that materializes the full result relation per operation by
/// applying every delta. After the stream is closed, [`CollectingSink::relation`]
/// equals the batch operation on the same inputs.
#[derive(Debug, Default)]
pub struct CollectingSink {
    tuples: [Vec<TpTuple>; 3],
    /// Per op: index of the latest output tuple per fact (the only tuple an
    /// `Extend` may target).
    last: [FastMap<Fact, usize>; 3],
}

impl CollectingSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The materialized result of `op`, sorted by `(F, Ts)`.
    pub fn relation(&self, op: SetOp) -> TpRelation {
        TpRelation::try_new(self.tuples[op_index(op)].clone())
            .expect("streamed output must be duplicate-free")
    }

    /// Number of materialized tuples for `op`.
    pub fn len(&self, op: SetOp) -> usize {
        self.tuples[op_index(op)].len()
    }

    /// Whether nothing was materialized for `op`.
    pub fn is_empty(&self, op: SetOp) -> bool {
        self.tuples[op_index(op)].is_empty()
    }
}

impl StreamSink for CollectingSink {
    fn on_delta(&mut self, op: SetOp, delta: &Delta) {
        let idx = op_index(op);
        match delta {
            Delta::Insert(t) => {
                self.tuples[idx].push(t.clone());
                self.last[idx].insert(t.fact.clone(), self.tuples[idx].len() - 1);
            }
            Delta::Extend {
                fact,
                lineage,
                from,
                to,
            } => {
                // A sink attached mid-stream may receive an Extend for a
                // tuple it never saw inserted: materialize the extension
                // piece as a fresh tuple instead (its view of the result
                // then covers exactly the deltas it observed).
                match self.last[idx].get(fact) {
                    Some(&at) => {
                        let t = &mut self.tuples[idx][at];
                        debug_assert_eq!(t.interval.end(), *from, "Extend boundary mismatch");
                        debug_assert_eq!(t.lineage, *lineage, "Extend lineage mismatch");
                        t.interval = Interval::at(t.interval.start(), *to);
                    }
                    None => {
                        let t = TpTuple::new(fact.clone(), *lineage, Interval::at(*from, *to));
                        self.tuples[idx].push(t);
                        self.last[idx].insert(fact.clone(), self.tuples[idx].len() - 1);
                    }
                }
            }
        }
    }
}

/// A sink that only counts deltas — the cheapest way to drive the engine in
/// benchmarks, and a template for monitoring integrations.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    inserts: [u64; 3],
    extends: [u64; 3],
    /// Watermark advances observed.
    pub watermarks: u64,
}

impl CountingSink {
    /// Creates a zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts seen for `op`.
    pub fn inserts(&self, op: SetOp) -> u64 {
        self.inserts[op_index(op)]
    }

    /// Extends seen for `op`.
    pub fn extends(&self, op: SetOp) -> u64 {
        self.extends[op_index(op)]
    }

    /// Total deltas across all operations.
    pub fn total(&self) -> u64 {
        self.inserts.iter().sum::<u64>() + self.extends.iter().sum::<u64>()
    }
}

impl StreamSink for CountingSink {
    fn on_delta(&mut self, op: SetOp, delta: &Delta) {
        let idx = op_index(op);
        match delta {
            Delta::Insert(_) => self.inserts[idx] += 1,
            Delta::Extend { .. } => self.extends[idx] += 1,
        }
    }

    fn on_watermark(&mut self, _w: TimePoint) {
        self.watermarks += 1;
    }
}

/// A sink that discards everything (engine overhead measurements).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl StreamSink for NullSink {
    fn on_delta(&mut self, _op: SetOp, _delta: &Delta) {}
}

/// One delta with its lineage materialized as an owned
/// [`LineageTree`] — the reclaim-mode record: it stays valid after the
/// engine retires the arena segments the original handle lived in.
/// `PartialEq` compares the full record (op, fact, tree, interval, kind),
/// so two delta logs are equal iff the streams behaved identically — the
/// byte-identity check of the multi-tenant soak tests.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedDelta {
    /// The operation the delta belongs to.
    pub op: SetOp,
    /// The fact.
    pub fact: Fact,
    /// The lineage, expanded to an arena-independent tree.
    pub lineage: LineageTree,
    /// Interval start (`Insert`) or previous end (`Extend`).
    pub from: TimePoint,
    /// Interval end.
    pub to: TimePoint,
    /// `true` for `Insert`, `false` for `Extend`.
    pub insert: bool,
}

/// The sink for **reclaiming** engines ([`tp_core::arena`] segment
/// retirement): every delta's lineage is expanded to an owned tree the
/// moment it arrives — inside the engine's arena scope, per the
/// consumption contract — so the record outlives any retirement.
/// [`MaterializingSink::replay`] re-interns the trees into the *current*
/// arena (identical formulas ⇒ identical handles there), which is how the
/// equivalence tests compare a bounded-memory stream against batch LAWA.
#[derive(Debug, Default)]
pub struct MaterializingSink {
    /// Every delta, in arrival order.
    pub deltas: Vec<MaterializedDelta>,
    /// Segments the engine retired while this sink listened.
    pub retired_segments: u64,
}

impl MaterializingSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-applies every materialized delta with lineage re-interned into
    /// the thread's current arena.
    pub fn replay(&self) -> CollectingSink {
        let mut sink = CollectingSink::new();
        for d in &self.deltas {
            let lineage = Lineage::from_tree(&d.lineage);
            let delta = if d.insert {
                Delta::Insert(TpTuple::new(
                    d.fact.clone(),
                    lineage,
                    Interval::at(d.from, d.to),
                ))
            } else {
                Delta::Extend {
                    fact: d.fact.clone(),
                    lineage,
                    from: d.from,
                    to: d.to,
                }
            };
            sink.on_delta(d.op, &delta);
        }
        sink
    }

    /// The materialized result of `op`, re-interned into the current
    /// arena and sorted by `(F, Ts)`.
    pub fn relation(&self, op: SetOp) -> TpRelation {
        self.replay().relation(op)
    }
}

impl StreamSink for MaterializingSink {
    fn on_delta(&mut self, op: SetOp, delta: &Delta) {
        let d = match delta {
            Delta::Insert(t) => MaterializedDelta {
                op,
                fact: t.fact.clone(),
                lineage: t.lineage.to_tree(),
                from: t.interval.start(),
                to: t.interval.end(),
                insert: true,
            },
            Delta::Extend {
                fact,
                lineage,
                from,
                to,
            } => MaterializedDelta {
                op,
                fact: fact.clone(),
                lineage: lineage.to_tree(),
                from: *from,
                to: *to,
                insert: false,
            },
        };
        self.deltas.push(d);
    }

    fn on_retire(&mut self, _seg: SegmentId) {
        self.retired_segments += 1;
    }
}

/// One sink-side valuated insert: the probability of an output tuple the
/// moment its `Insert` delta's advance closed, stored as plain values so
/// the record outlives arena retirement.
#[derive(Debug, Clone, PartialEq)]
pub struct ValuatedDelta {
    /// The operation the insert belongs to.
    pub op: SetOp,
    /// The fact.
    pub fact: Fact,
    /// The inserted tuple's interval (as of the insert; later `Extend`s
    /// grow the tuple without changing its lineage, hence without
    /// changing this probability).
    pub interval: Interval,
    /// Exact marginal probability of the tuple's lineage.
    pub p: f64,
}

/// A decorator that valuates every `Insert` delta **in one batched pass
/// per watermark advance** through [`crate::obs::valuate_batch`] — the
/// columnar kernel — instead of paying the cold per-root walk inside
/// `on_delta` the way naive monitoring sinks do. Inserts are buffered as
/// they arrive and valuated in `on_watermark`, which the engine calls
/// inside the same arena scope *before* seal/retire, so the buffered
/// handles are still live even in reclaim mode.
///
/// All callbacks forward to the wrapped sink (a [`CollectingSink`], a
/// [`MaterializingSink`], an alerting monitor, ...), so the decorator
/// composes with any consumer. On segment retirement it also evicts the
/// registry's memoized marginals for that segment
/// ([`tp_core::relation::VarTable::release_marginals_for_segment`]) — the
/// valuation cache it populates is its responsibility to trim.
///
/// `V` is anything that borrows the registry: `&VarTable` for
/// caller-owned monitors, `Arc<VarTable>` for server-owned per-tenant
/// sinks whose registry is shared with the engine.
pub struct ValuatingSink<V, S> {
    inner: S,
    vars: V,
    /// Ops to valuate (`SetOp::ALL` order); others pass through untouched.
    ops: [bool; 3],
    /// Inserts buffered since the last watermark.
    pending: Vec<(SetOp, TpTuple)>,
    valuated: Vec<ValuatedDelta>,
}

impl<V: std::borrow::Borrow<tp_core::relation::VarTable>, S: StreamSink> ValuatingSink<V, S> {
    /// Wraps `inner`, valuating inserts of every op against `vars`.
    pub fn new(inner: S, vars: V) -> Self {
        ValuatingSink {
            inner,
            vars,
            ops: [true; 3],
            pending: Vec::new(),
            valuated: Vec::new(),
        }
    }

    /// Restricts valuation to `ops` (e.g. only `Except` for alert rules);
    /// other ops' deltas still forward to the inner sink.
    pub fn with_ops(mut self, ops: &[SetOp]) -> Self {
        self.ops = [false; 3];
        for &op in ops {
            self.ops[op_index(op)] = true;
        }
        self
    }

    /// Valuated inserts accumulated so far (advance granularity).
    pub fn valuated(&self) -> &[ValuatedDelta] {
        &self.valuated
    }

    /// Takes the accumulated valuated inserts, leaving the buffer empty.
    pub fn drain_valuated(&mut self) -> Vec<ValuatedDelta> {
        std::mem::take(&mut self.valuated)
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped sink, mutably.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<V: std::borrow::Borrow<tp_core::relation::VarTable>, S: StreamSink> StreamSink
    for ValuatingSink<V, S>
{
    fn on_delta(&mut self, op: SetOp, delta: &Delta) {
        if self.ops[op_index(op)] {
            if let Delta::Insert(t) = delta {
                self.pending.push((op, t.clone()));
            }
        }
        self.inner.on_delta(op, delta);
    }

    fn on_watermark(&mut self, w: TimePoint) {
        if !self.pending.is_empty() {
            let lineages: Vec<Lineage> = self.pending.iter().map(|(_, t)| t.lineage).collect();
            let ps = crate::obs::valuate_batch(&lineages, self.vars.borrow())
                .expect("sink-side valuation: inserted tuples' variables are registered");
            for ((op, t), p) in self.pending.drain(..).zip(ps) {
                self.valuated.push(ValuatedDelta {
                    op,
                    fact: t.fact,
                    interval: t.interval,
                    p,
                });
            }
        }
        self.inner.on_watermark(w);
    }

    fn on_retire(&mut self, seg: SegmentId) {
        self.vars.borrow().release_marginals_for_segment(seg);
        self.inner.on_retire(seg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::lineage::TupleId;

    fn v(i: u64) -> Lineage {
        Lineage::var(TupleId(i))
    }

    #[test]
    fn collecting_sink_applies_insert_and_extend() {
        let mut sink = CollectingSink::new();
        let t = TpTuple::new("milk", v(1), Interval::at(1, 4));
        sink.on_delta(SetOp::Union, &Delta::Insert(t.clone()));
        sink.on_delta(
            SetOp::Union,
            &Delta::Extend {
                fact: t.fact.clone(),
                lineage: t.lineage,
                from: 4,
                to: 9,
            },
        );
        let rel = sink.relation(SetOp::Union);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].interval, Interval::at(1, 9));
        assert!(sink.is_empty(SetOp::Intersect));
    }

    #[test]
    fn extend_targets_latest_tuple_of_the_fact() {
        let mut sink = CollectingSink::new();
        let a = TpTuple::new("f", v(1), Interval::at(1, 3));
        let b = TpTuple::new("f", v(2), Interval::at(5, 7));
        sink.on_delta(SetOp::Union, &Delta::Insert(a));
        sink.on_delta(SetOp::Union, &Delta::Insert(b.clone()));
        sink.on_delta(
            SetOp::Union,
            &Delta::Extend {
                fact: b.fact.clone(),
                lineage: b.lineage,
                from: 7,
                to: 8,
            },
        );
        let rel = sink.relation(SetOp::Union);
        assert_eq!(rel.tuples()[0].interval, Interval::at(1, 3));
        assert_eq!(rel.tuples()[1].interval, Interval::at(5, 8));
    }

    #[test]
    fn extend_without_prior_insert_materializes_the_piece() {
        // A sink attached mid-stream sees only the continuation.
        let mut sink = CollectingSink::new();
        sink.on_delta(
            SetOp::Union,
            &Delta::Extend {
                fact: Fact::single("f"),
                lineage: v(9),
                from: 4,
                to: 7,
            },
        );
        let rel = sink.relation(SetOp::Union);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].interval, Interval::at(4, 7));
        // And a further Extend continues that piece.
        sink.on_delta(
            SetOp::Union,
            &Delta::Extend {
                fact: Fact::single("f"),
                lineage: v(9),
                from: 7,
                to: 9,
            },
        );
        assert_eq!(
            sink.relation(SetOp::Union).tuples()[0].interval,
            Interval::at(4, 9)
        );
    }

    #[test]
    fn valuating_sink_batches_and_matches_per_root_path() {
        use crate::engine::{EngineConfig, Side, StreamEngine};
        use tp_core::relation::VarTable;

        let mut vars = VarTable::new();
        let ids: Vec<_> = (0..40i64)
            .map(|k| {
                vars.register(format!("v{k}"), 0.1 + 0.02 * (k % 40) as f64)
                    .unwrap()
            })
            .collect();
        let mut engine = StreamEngine::new(EngineConfig::default());
        let mut sink = ValuatingSink::new(CollectingSink::new(), &vars);
        for k in 0..40i64 {
            let side = if k % 2 == 0 { Side::Left } else { Side::Right };
            let t = TpTuple::new(
                Fact::single(k % 5),
                Lineage::var(ids[k as usize]),
                Interval::at(k, k + 6),
            );
            engine.push(side, t);
        }
        for w in [10, 21, 33] {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        // Every output tuple got exactly one valuated insert (its later
        // Extends keep the lineage handle, hence the probability), and the
        // batched value matches the per-root memoized path to 1e-12.
        let recs = sink.valuated().to_vec();
        let inner = sink.into_inner();
        let mut matched = 0usize;
        for op in SetOp::ALL {
            for t in inner.relation(op).iter() {
                let rec = recs
                    .iter()
                    .find(|r| {
                        r.op == op && r.fact == t.fact && r.interval.start() == t.interval.start()
                    })
                    .expect("every output tuple was valuated at insert time");
                let expect = tp_core::prob::marginal(&t.lineage, &vars).unwrap();
                assert!(
                    (rec.p - expect).abs() <= 1e-12,
                    "{op}: batched {} vs per-root {expect}",
                    rec.p
                );
                matched += 1;
            }
        }
        assert!(matched > 10, "vacuous: only {matched} valuated tuples");
    }

    #[test]
    fn valuating_sink_op_filter_and_drain() {
        use crate::engine::{Side, StreamEngine};
        use tp_core::relation::VarTable;

        let mut vars = VarTable::new();
        let id = vars.register("only", 0.4).unwrap();
        let mut engine = StreamEngine::default();
        let mut sink = ValuatingSink::new(CountingSink::new(), &vars).with_ops(&[SetOp::Except]);
        engine.push(
            Side::Left,
            TpTuple::new("f", Lineage::var(id), Interval::at(0, 5)),
        );
        engine.finish(&mut sink).unwrap();
        // Left-only input inserts into Union and Except; only Except is
        // valuated, everything still reaches the inner sink.
        assert_eq!(sink.valuated().len(), 1);
        assert_eq!(sink.valuated()[0].op, SetOp::Except);
        assert!((sink.valuated()[0].p - 0.4).abs() <= 1e-12);
        assert_eq!(sink.inner().inserts(SetOp::Union), 1);
        let drained = sink.drain_valuated();
        assert_eq!(drained.len(), 1);
        assert!(sink.valuated().is_empty());
    }

    #[test]
    fn counting_sink_counts_per_op() {
        let mut sink = CountingSink::new();
        let t = TpTuple::new("x", v(3), Interval::at(0, 2));
        sink.on_delta(SetOp::Union, &Delta::Insert(t.clone()));
        sink.on_delta(SetOp::Except, &Delta::Insert(t.clone()));
        sink.on_delta(
            SetOp::Except,
            &Delta::Extend {
                fact: t.fact.clone(),
                lineage: t.lineage,
                from: 2,
                to: 3,
            },
        );
        sink.on_watermark(5);
        assert_eq!(sink.inserts(SetOp::Union), 1);
        assert_eq!(sink.inserts(SetOp::Except), 1);
        assert_eq!(sink.extends(SetOp::Except), 1);
        assert_eq!(sink.total(), 3);
        assert_eq!(sink.watermarks, 1);
    }
}
