//! Standing incremental pipelines: a compiled [`tp_relalg::Plan`] running
//! continuously over the engine's delta streams.
//!
//! [`Pipeline::compile`] lowers a batch plan through
//! [`tp_relalg::incremental::lower`] into a topo-ordered DAG of standing
//! operators, then the engine drives it: every output delta of a tapped
//! set operation feeds a [`LoweredOp::Source`], and one propagation pass
//! per watermark advance pushes the resulting `Ins`/`Del` changes through
//! the DAG — select/project filter and rewrite rows, joins keep per-side
//! hash state and emit the conjunction of the matching tuples' lineages,
//! distinct and aggregate maintain support-counted groups with dirty-key
//! recompute through the *batch* [`tp_relalg::AggFn::finish`] fold — one
//! republish per dirty group per advance, nothing when the batch left a
//! group's output unchanged. The root's
//! multiset is the standing materialized view; [`Pipeline::materialized`]
//! snapshots it as a canonically sorted [`Relation`] that is row-identical
//! to running the batch plan over the closed region (the differential
//! contract `tests/streaming_plans.rs` proves for arbitrary arrival
//! permutations and watermark schedules).
//!
//! ## Clock, arena, reclamation
//!
//! The whole DAG shares the engine's clock: sources buffer deltas as the
//! sweep emits them, and the engine runs exactly one propagation pass per
//! advance (inside its arena scope), so every operator observes the same
//! watermark frontier. Operator state stores each tuple's lineage as an
//! owned [`LineageTree`] — expanded at the source, inside the arena scope,
//! exactly like [`crate::MaterializingSink`] records deltas — so standing
//! state never holds arena references and segment retirement in reclaim
//! mode can never invalidate it. Derived lineage (join conjunctions,
//! distinct/aggregate disjunction folds) is built over those owned trees.
//!
//! ## Source encoding
//!
//! A source row is the tuple's fact attributes followed by the interval
//! bounds: `fact.values() ++ [Int(ts), Int(te)]` ([`encode_row`]). An
//! `Insert` delta inserts the encoded row; an `Extend` — which by the
//! delta contract grows the *latest* output tuple of the fact and keeps
//! its lineage handle — is a `Del` of the previous encoding plus an `Ins`
//! of the grown one, mirroring how [`crate::CollectingSink`] applies it
//! (including the attach-mid-stream case where the `Extend` piece
//! materializes as a fresh row). For workloads whose facts grow
//! contiguously, this keeps one standing row per fact and operator state
//! **plateaus** no matter how long the stream runs.

use std::fmt;
use std::sync::Arc;

use tp_core::arena::FastMap;
use tp_core::fact::Fact;
use tp_core::interval::Interval;
use tp_core::lineage::LineageTree;
use tp_core::ops::SetOp;
use tp_core::relation::TpRelation;
use tp_core::value::Value;
use tp_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use tp_relalg::incremental::{lower, LowerError, LoweredOp};
use tp_relalg::plan::Plan;
use tp_relalg::relation::{Relation, Row, Schema};

use crate::delta::Delta;
use crate::obs::{global, now_ns, EngineObs, ObsConfig};

/// Why a plan cannot be attached to an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The plan does not lower (see [`LowerError`]).
    Lower(LowerError),
    /// `taps.len()` differs from the plan's `Values`-leaf count.
    TapCount {
        /// Sources the lowered plan declares.
        sources: usize,
        /// Taps the caller supplied.
        taps: usize,
    },
    /// A tapped operation is not maintained by the engine config.
    TapNotMaintained(SetOp),
    /// A source schema has fewer than three columns (at least one fact
    /// attribute plus the `ts`/`te` interval bounds).
    SourceArity {
        /// The offending source (preorder index).
        source: usize,
        /// Its declared arity.
        arity: usize,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Lower(e) => write!(f, "plan does not lower: {e}"),
            PipelineError::TapCount { sources, taps } => write!(
                f,
                "plan declares {sources} sources but {taps} taps were supplied"
            ),
            PipelineError::TapNotMaintained(op) => {
                write!(f, "tapped operation {op} is not maintained by the engine")
            }
            PipelineError::SourceArity { source, arity } => write!(
                f,
                "source {source} declares arity {arity}; need fact attributes plus ts, te"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<LowerError> for PipelineError {
    fn from(e: LowerError) -> Self {
        PipelineError::Lower(e)
    }
}

/// One standing tuple instance: a flat row plus its (owned) lineage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeTuple {
    /// The encoded row.
    pub row: Row,
    /// Lineage of the instance, arena-independent.
    pub lineage: LineageTree,
}

/// An internal change notification between operators.
#[derive(Debug, Clone)]
enum PipeDelta {
    Ins(PipeTuple),
    Del(PipeTuple),
}

impl PipeDelta {
    fn tuple(&self) -> &PipeTuple {
        match self {
            PipeDelta::Ins(t) | PipeDelta::Del(t) => t,
        }
    }
}

/// Encodes a TP tuple as a pipeline source row:
/// `fact.values() ++ [Int(ts), Int(te)]`.
pub fn encode_row(fact: &Fact, interval: Interval) -> Row {
    let mut row: Row = fact.values().to_vec();
    row.push(Value::int(interval.start()));
    row.push(Value::int(interval.end()));
    row
}

/// Encodes a materialized TP relation with the given source schema — the
/// batch side of the differential oracle: feed the closed-region output of
/// a [`crate::CollectingSink`] through this and
/// [`tp_relalg::incremental::bind_sources`], execute, and compare with
/// [`Pipeline::materialized`].
///
/// Panics if a tuple's fact arity plus the two interval columns does not
/// match the schema.
pub fn encode_relation(rel: &TpRelation, schema: &Schema) -> Relation {
    let rows: Vec<Row> = rel
        .iter()
        .map(|t| {
            assert_eq!(
                t.fact.arity() + 2,
                schema.arity(),
                "tuple fact arity does not match the source schema"
            );
            encode_row(&t.fact, t.interval)
        })
        .collect();
    Relation::new(schema.clone(), rows)
}

/// Per-operator standing state.
enum OpState {
    /// Source, select, project, union-all: no standing rows.
    Stateless,
    /// Nested-loop join: both sides' full instance lists.
    NlJoin([Vec<PipeTuple>; 2]),
    /// Hash join: per-side instances bucketed by join key.
    HashJoin([FastMap<Vec<Value>, Vec<PipeTuple>>; 2]),
    /// Distinct: instance lineages per distinct row (support counting).
    Distinct(FastMap<Row, Vec<LineageTree>>),
    /// Aggregate: member instances per group key, in arrival order.
    Aggregate(FastMap<Vec<Value>, Vec<PipeTuple>>),
}

impl OpState {
    fn for_op(op: &LoweredOp) -> OpState {
        match op {
            LoweredOp::NlJoin(_) => OpState::NlJoin([Vec::new(), Vec::new()]),
            LoweredOp::HashJoin { .. } => {
                OpState::HashJoin([FastMap::default(), FastMap::default()])
            }
            LoweredOp::Distinct => OpState::Distinct(FastMap::default()),
            LoweredOp::Aggregate { .. } => OpState::Aggregate(FastMap::default()),
            _ => OpState::Stateless,
        }
    }

    /// Standing instances held by this operator.
    fn rows(&self) -> usize {
        match self {
            OpState::Stateless => 0,
            OpState::NlJoin(sides) => sides.iter().map(Vec::len).sum(),
            OpState::HashJoin(sides) => sides
                .iter()
                .map(|m| m.values().map(Vec::len).sum::<usize>())
                .sum(),
            OpState::Distinct(m) => m.values().map(Vec::len).sum(),
            OpState::Aggregate(m) => m.values().map(Vec::len).sum(),
        }
    }
}

/// Left-associative ∨-fold of instance lineages, in stored order — the
/// deterministic lineage of a support-counted output row.
fn or_fold(trees: &[LineageTree]) -> LineageTree {
    let mut it = trees.iter();
    let first = it.next().expect("folds run over non-empty groups").clone();
    it.fold(first, |acc, t| {
        LineageTree::Or(Box::new(acc), Box::new(t.clone()))
    })
}

fn joined(l: &PipeTuple, r: &PipeTuple) -> PipeTuple {
    let mut row = l.row.clone();
    row.extend(r.row.iter().cloned());
    PipeTuple {
        row,
        lineage: LineageTree::And(Box::new(l.lineage.clone()), Box::new(r.lineage.clone())),
    }
}

/// One DAG node: the operator, its standing state, and the deltas buffered
/// for the next propagation pass.
struct Node {
    op: LoweredOp,
    state: OpState,
    inbox: Vec<(usize, PipeDelta)>,
    /// Deltas this operator emitted over its lifetime.
    emitted: u64,
}

impl Node {
    /// Applies one upstream delta, appending this operator's own deltas.
    fn apply(&mut self, port: usize, delta: PipeDelta, out: &mut Vec<PipeDelta>) {
        match (&self.op, &mut self.state) {
            (LoweredOp::Source(_), _) | (LoweredOp::UnionAll, _) => out.push(delta),
            (LoweredOp::Select(pred), _) => {
                if pred.eval(&delta.tuple().row) {
                    out.push(delta);
                }
            }
            (LoweredOp::Project(cols), _) => {
                let map = |t: PipeTuple| PipeTuple {
                    row: cols.iter().map(|&c| t.row[c].clone()).collect(),
                    lineage: t.lineage,
                };
                out.push(match delta {
                    PipeDelta::Ins(t) => PipeDelta::Ins(map(t)),
                    PipeDelta::Del(t) => PipeDelta::Del(map(t)),
                });
            }
            (LoweredOp::NlJoin(pred), OpState::NlJoin(sides)) => {
                let pair = |own: &PipeTuple, other: &PipeTuple| {
                    if port == 0 {
                        joined(own, other)
                    } else {
                        joined(other, own)
                    }
                };
                let hit = |own: &PipeTuple, other: &PipeTuple| {
                    if port == 0 {
                        pred.eval_pair(&own.row, &other.row)
                    } else {
                        pred.eval_pair(&other.row, &own.row)
                    }
                };
                match delta {
                    PipeDelta::Ins(t) => {
                        for o in &sides[1 - port] {
                            if hit(&t, o) {
                                out.push(PipeDelta::Ins(pair(&t, o)));
                            }
                        }
                        sides[port].push(t);
                    }
                    PipeDelta::Del(t) => {
                        let at = sides[port]
                            .iter()
                            .position(|x| *x == t)
                            .expect("Del retracts a standing join instance");
                        sides[port].remove(at);
                        for o in &sides[1 - port] {
                            if hit(&t, o) {
                                out.push(PipeDelta::Del(pair(&t, o)));
                            }
                        }
                    }
                }
            }
            (LoweredOp::HashJoin { l_cols, r_cols }, OpState::HashJoin(sides)) => {
                let own_cols = if port == 0 { l_cols } else { r_cols };
                let key: Vec<Value> = own_cols
                    .iter()
                    .map(|&c| delta.tuple().row[c].clone())
                    .collect();
                let (head, tail) = sides.split_at_mut(1);
                let (own, other) = if port == 0 {
                    (&mut head[0], &tail[0])
                } else {
                    (&mut tail[0], &head[0])
                };
                let pair = |own_t: &PipeTuple, other_t: &PipeTuple| {
                    if port == 0 {
                        joined(own_t, other_t)
                    } else {
                        joined(other_t, own_t)
                    }
                };
                match delta {
                    PipeDelta::Ins(t) => {
                        if let Some(matches) = other.get(&key) {
                            for o in matches {
                                out.push(PipeDelta::Ins(pair(&t, o)));
                            }
                        }
                        own.entry(key).or_default().push(t);
                    }
                    PipeDelta::Del(t) => {
                        let bucket = own
                            .get_mut(&key)
                            .expect("Del retracts a standing join instance");
                        let at = bucket
                            .iter()
                            .position(|x| *x == t)
                            .expect("Del retracts a standing join instance");
                        bucket.remove(at);
                        if bucket.is_empty() {
                            own.remove(&key);
                        }
                        if let Some(matches) = other.get(&key) {
                            for o in matches {
                                out.push(PipeDelta::Del(pair(&t, o)));
                            }
                        }
                    }
                }
            }
            (LoweredOp::Distinct, _) | (LoweredOp::Aggregate { .. }, _) => {
                unreachable!("grouped operators drain through apply_grouped")
            }
            _ => unreachable!("operator state matches its op kind by construction"),
        }
    }

    /// Applies one advance's worth of deltas to a support-counted operator
    /// (distinct, aggregate) with **dirty-key recompute**: member lists are
    /// updated first, then every dirty group is republished exactly once —
    /// one `Del` of its pre-batch output, one `Ins` of its post-batch
    /// output. A group hit by many deltas in one advance (the
    /// retract-and-regrow traffic of `Extend`-dominated streams) pays one
    /// lineage refold instead of one per delta, and groups whose output is
    /// net-unchanged emit nothing.
    fn apply_grouped(&mut self, inbox: Vec<(usize, PipeDelta)>, out: &mut Vec<PipeDelta>) {
        match (&self.op, &mut self.state) {
            (LoweredOp::Distinct, OpState::Distinct(groups)) => {
                // Phase 1: update supports, snapshotting each row's
                // pre-batch output the first time it is touched.
                let mut dirty: Vec<Row> = Vec::new();
                let mut old: FastMap<Row, Option<LineageTree>> = FastMap::default();
                for (_port, delta) in inbox {
                    match delta {
                        PipeDelta::Ins(t) => {
                            let instances = groups.entry(t.row.clone()).or_default();
                            old.entry(t.row.clone()).or_insert_with(|| {
                                dirty.push(t.row.clone());
                                (!instances.is_empty()).then(|| or_fold(instances))
                            });
                            instances.push(t.lineage);
                        }
                        PipeDelta::Del(t) => {
                            let instances = groups
                                .get_mut(&t.row)
                                .expect("Del retracts a standing distinct instance");
                            old.entry(t.row.clone()).or_insert_with(|| {
                                dirty.push(t.row.clone());
                                Some(or_fold(instances))
                            });
                            let at = instances
                                .iter()
                                .position(|x| *x == t.lineage)
                                .expect("Del retracts a standing distinct instance");
                            instances.remove(at);
                            if instances.is_empty() {
                                groups.remove(&t.row);
                            }
                        }
                    }
                }
                // Phase 2: republish changed rows, in first-touch order.
                for row in dirty {
                    let old_fold = old.remove(&row).expect("snapshotted in phase 1");
                    let new_fold = groups.get(&row).map(|instances| or_fold(instances));
                    push_republish(
                        out,
                        old_fold.map(|lineage| PipeTuple {
                            row: row.clone(),
                            lineage,
                        }),
                        new_fold.map(|lineage| PipeTuple { row, lineage }),
                    );
                }
            }
            (LoweredOp::Aggregate { keys, aggs }, OpState::Aggregate(groups)) => {
                let output = |key: &[Value], members: &[PipeTuple]| {
                    let rows: Vec<&Row> = members.iter().map(|m| &m.row).collect();
                    let mut row: Row = key.to_vec();
                    row.extend(aggs.iter().map(|a| a.finish(&rows)));
                    let mut it = members.iter();
                    let first = it
                        .next()
                        .expect("folds run over non-empty groups")
                        .lineage
                        .clone();
                    let lineage = it.fold(first, |acc, m| {
                        LineageTree::Or(Box::new(acc), Box::new(m.lineage.clone()))
                    });
                    PipeTuple { row, lineage }
                };
                let mut dirty: Vec<Vec<Value>> = Vec::new();
                let mut old: FastMap<Vec<Value>, Option<PipeTuple>> = FastMap::default();
                for (_port, delta) in inbox {
                    let key: Vec<Value> =
                        keys.iter().map(|&k| delta.tuple().row[k].clone()).collect();
                    match delta {
                        PipeDelta::Ins(t) => {
                            let members = groups.entry(key.clone()).or_default();
                            old.entry(key.clone()).or_insert_with(|| {
                                dirty.push(key.clone());
                                (!members.is_empty()).then(|| output(&key, members))
                            });
                            members.push(t);
                        }
                        PipeDelta::Del(t) => {
                            let members = groups
                                .get_mut(&key)
                                .expect("Del retracts a standing group member");
                            old.entry(key.clone()).or_insert_with(|| {
                                dirty.push(key.clone());
                                Some(output(&key, members))
                            });
                            let at = members
                                .iter()
                                .position(|x| *x == t)
                                .expect("Del retracts a standing group member");
                            members.remove(at);
                            if members.is_empty() {
                                groups.remove(&key);
                            }
                        }
                    }
                }
                for key in dirty {
                    let old_out = old.remove(&key).expect("snapshotted in phase 1");
                    let new_out = groups.get(&key).map(|members| output(&key, members));
                    push_republish(out, old_out, new_out);
                }
            }
            _ => unreachable!("apply_grouped only drains distinct/aggregate"),
        }
    }
}

/// Emits the republication deltas of one dirty group: retract the
/// pre-batch output, insert the post-batch one, and emit nothing when the
/// batch left the output unchanged (row-compare first, so the deep lineage
/// comparison only runs when the rows already agree).
fn push_republish(out: &mut Vec<PipeDelta>, old: Option<PipeTuple>, new: Option<PipeTuple>) {
    match (old, new) {
        (None, Some(new)) => out.push(PipeDelta::Ins(new)),
        (Some(old), None) => out.push(PipeDelta::Del(old)),
        (Some(old), Some(new)) => {
            if old != new {
                out.push(PipeDelta::Del(old));
                out.push(PipeDelta::Ins(new));
            }
        }
        (None, None) => {}
    }
}

/// Metric handles of an instrumented pipeline (`tp_pipeline_*`).
struct PipelineObs {
    advance_ns: Arc<Histogram>,
    state_rows: Arc<Gauge>,
    /// Per node, labeled with the operator kind.
    node_deltas: Vec<Arc<Counter>>,
}

/// A compiled standing pipeline. Create with [`Pipeline::compile`], attach
/// via [`crate::StreamEngine::with_plan`] (or per tenant through
/// [`crate::StreamServer::add_tenant_with_plan`]); the engine feeds and
/// advances it, callers read [`Pipeline::materialized`].
pub struct Pipeline {
    nodes: Vec<Node>,
    /// Producer → `[(consumer, port)]` edges.
    consumers: Vec<Vec<(usize, usize)>>,
    /// Engine op feeding each source.
    taps: Vec<SetOp>,
    /// Source index → node index.
    source_nodes: Vec<usize>,
    /// Declared fact arity per source (schema arity minus ts/te).
    fact_arity: Vec<usize>,
    /// Per source: the latest standing encoding per fact (the row an
    /// `Extend` delta retracts and regrows).
    last_run: Vec<FastMap<Fact, PipeTuple>>,
    root_schema: Schema,
    /// The standing materialized view: instance lineages per row.
    root_rows: FastMap<Row, Vec<LineageTree>>,
    /// Total root instances (multiplicity sum).
    root_len: usize,
    advances: u64,
    deltas_total: u64,
    obs: Option<PipelineObs>,
}

impl Pipeline {
    /// Compiles a plan into a standing pipeline whose `i`-th source is fed
    /// from the engine's `taps[i]` delta stream.
    pub fn compile(plan: &Plan, taps: &[SetOp]) -> Result<Pipeline, PipelineError> {
        let lowered = lower(plan)?;
        if lowered.source_count() != taps.len() {
            return Err(PipelineError::TapCount {
                sources: lowered.source_count(),
                taps: taps.len(),
            });
        }
        for (i, schema) in lowered.source_schemas.iter().enumerate() {
            if schema.arity() < 3 {
                return Err(PipelineError::SourceArity {
                    source: i,
                    arity: schema.arity(),
                });
            }
        }
        let root_schema = lowered.root_schema().clone();
        let mut consumers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); lowered.nodes.len()];
        let mut source_nodes = vec![usize::MAX; lowered.source_count()];
        let mut nodes = Vec::with_capacity(lowered.nodes.len());
        for (i, n) in lowered.nodes.iter().enumerate() {
            for (port, &input) in n.inputs.iter().enumerate() {
                consumers[input].push((i, port));
            }
            if let LoweredOp::Source(s) = n.op {
                source_nodes[s] = i;
            }
            nodes.push(Node {
                state: OpState::for_op(&n.op),
                op: n.op.clone(),
                inbox: Vec::new(),
                emitted: 0,
            });
        }
        let fact_arity = lowered
            .source_schemas
            .iter()
            .map(|s| s.arity() - 2)
            .collect();
        Ok(Pipeline {
            nodes,
            consumers,
            taps: taps.to_vec(),
            last_run: vec![FastMap::default(); source_nodes.len()],
            source_nodes,
            fact_arity,
            root_schema,
            root_rows: FastMap::default(),
            root_len: 0,
            advances: 0,
            deltas_total: 0,
            obs: None,
        })
    }

    /// Resolves the `tp_pipeline_*` metric handles (no-op when disabled).
    pub(crate) fn init_obs(&mut self, cfg: &ObsConfig) {
        if !cfg.enabled {
            return;
        }
        let reg: &MetricsRegistry = match &cfg.registry {
            Some(r) => r,
            None => global(),
        };
        let tenant = cfg.tenant.as_deref();
        let base: Vec<(&str, &str)> = match tenant {
            Some(t) => vec![("tenant", t)],
            None => Vec::new(),
        };
        let node_deltas = self
            .nodes
            .iter()
            .map(|n| {
                let mut labels = base.clone();
                labels.push(("op", n.op.name()));
                reg.counter("tp_pipeline_deltas_total", &labels)
            })
            .collect();
        self.obs = Some(PipelineObs {
            advance_ns: reg.histogram("tp_pipeline_advance_ns", &base),
            state_rows: reg.gauge("tp_pipeline_state_rows", &base),
            node_deltas,
        });
    }

    /// Buffers one engine delta into every source tapping `op`. Called by
    /// the engine inside its arena scope (the lineage expansion below
    /// dereferences the handle).
    pub(crate) fn offer(&mut self, op: SetOp, delta: &Delta) {
        for s in 0..self.taps.len() {
            if self.taps[s] != op {
                continue;
            }
            let node = self.source_nodes[s];
            match delta {
                Delta::Insert(t) => {
                    assert_eq!(
                        t.fact.arity(),
                        self.fact_arity[s],
                        "stream fact arity does not match source {s}'s schema"
                    );
                    let pt = PipeTuple {
                        row: encode_row(&t.fact, t.interval),
                        lineage: t.lineage.to_tree(),
                    };
                    self.last_run[s].insert(t.fact.clone(), pt.clone());
                    self.nodes[node].inbox.push((0, PipeDelta::Ins(pt)));
                }
                Delta::Extend {
                    fact,
                    lineage,
                    from,
                    to,
                } => match self.last_run[s].get_mut(fact) {
                    Some(prev) => {
                        // The contract: an Extend grows the fact's latest
                        // output tuple and keeps its lineage handle, so
                        // the standing encoding is retracted and regrown
                        // with the identical lineage tree.
                        let mut grown = prev.clone();
                        let te = grown.row.len() - 1;
                        debug_assert_eq!(grown.row[te], Value::int(*from), "Extend boundary");
                        grown.row[te] = Value::int(*to);
                        let old = std::mem::replace(prev, grown.clone());
                        self.nodes[node].inbox.push((0, PipeDelta::Del(old)));
                        self.nodes[node].inbox.push((0, PipeDelta::Ins(grown)));
                    }
                    None => {
                        // Attached mid-stream: materialize the extension
                        // piece as a fresh row (CollectingSink's rule).
                        assert_eq!(
                            fact.arity(),
                            self.fact_arity[s],
                            "stream fact arity does not match source {s}'s schema"
                        );
                        let pt = PipeTuple {
                            row: encode_row(fact, Interval::at(*from, *to)),
                            lineage: lineage.to_tree(),
                        };
                        self.last_run[s].insert(fact.clone(), pt.clone());
                        self.nodes[node].inbox.push((0, PipeDelta::Ins(pt)));
                    }
                },
            }
        }
    }

    /// One propagation pass: drains every inbox in topological order,
    /// applies the root's deltas to the materialized view, and records the
    /// per-operator sub-spans and `tp_pipeline_*` metrics. Returns the
    /// number of deltas operators processed. Called by the engine once per
    /// watermark advance, after the sweep emitted its deltas.
    pub(crate) fn on_advance(&mut self, engine_obs: Option<&EngineObs>) -> u64 {
        let instrumented = self.obs.is_some() || engine_obs.is_some();
        let t0 = if instrumented { now_ns() } else { 0 };
        let mut processed = 0u64;
        let root = self.nodes.len() - 1;
        for i in 0..self.nodes.len() {
            let inbox = std::mem::take(&mut self.nodes[i].inbox);
            if inbox.is_empty() {
                continue;
            }
            let node_t0 = if instrumented { now_ns() } else { 0 };
            let mut out = Vec::new();
            processed += inbox.len() as u64;
            if matches!(
                self.nodes[i].op,
                LoweredOp::Distinct | LoweredOp::Aggregate { .. }
            ) {
                self.nodes[i].apply_grouped(inbox, &mut out);
            } else {
                for (port, delta) in inbox {
                    self.nodes[i].apply(port, delta, &mut out);
                }
            }
            self.nodes[i].emitted += out.len() as u64;
            if instrumented {
                let dur = now_ns() - node_t0;
                if let Some(obs) = engine_obs {
                    obs.sub_span(self.nodes[i].op.name(), node_t0, dur, out.len() as u64);
                }
                if let Some(p) = &self.obs {
                    p.node_deltas[i].add(out.len() as u64);
                }
            }
            if i == root {
                for delta in out {
                    self.apply_root(delta);
                }
            } else if let [(consumer, port)] = self.consumers[i][..] {
                // Sole consumer: hand the deltas over without cloning.
                for delta in out {
                    self.nodes[consumer].inbox.push((port, delta));
                }
            } else {
                for &(consumer, port) in &self.consumers[i] {
                    for delta in &out {
                        self.nodes[consumer].inbox.push((port, delta.clone()));
                    }
                }
            }
        }
        self.advances += 1;
        self.deltas_total += processed;
        if let Some(p) = &self.obs {
            p.advance_ns.record(now_ns() - t0);
            p.state_rows.set(self.state_rows() as i64);
        }
        processed
    }

    fn apply_root(&mut self, delta: PipeDelta) {
        match delta {
            PipeDelta::Ins(t) => {
                self.root_rows.entry(t.row).or_default().push(t.lineage);
                self.root_len += 1;
            }
            PipeDelta::Del(t) => {
                let instances = self
                    .root_rows
                    .get_mut(&t.row)
                    .expect("Del retracts a standing output row");
                let at = instances
                    .iter()
                    .position(|x| *x == t.lineage)
                    .expect("Del retracts a standing output row");
                instances.remove(at);
                self.root_len -= 1;
                if instances.is_empty() {
                    self.root_rows.remove(&t.row);
                }
            }
        }
    }

    /// Snapshot of the standing materialized view as a canonically sorted
    /// relation (bag semantics: a row appears once per instance).
    pub fn materialized(&self) -> Relation {
        let mut rows: Vec<Row> = Vec::with_capacity(self.root_len);
        for (row, instances) in &self.root_rows {
            for _ in 0..instances.len() {
                rows.push(row.clone());
            }
        }
        rows.sort();
        Relation::new(self.root_schema.clone(), rows)
    }

    /// The distinct output rows with their ∨-folded lineage, sorted by
    /// row — the hook alert rules valuate (re-intern the tree inside an
    /// arena scope, then [`crate::obs::valuate_batch`]).
    pub fn materialized_lineage(&self) -> Vec<(Row, LineageTree)> {
        let mut out: Vec<(Row, LineageTree)> = self
            .root_rows
            .iter()
            .map(|(row, instances)| (row.clone(), or_fold(instances)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The root's output schema.
    pub fn schema(&self) -> &Schema {
        &self.root_schema
    }

    /// The engine ops feeding the sources, in source order.
    pub fn taps(&self) -> &[SetOp] {
        &self.taps
    }

    /// Standing instances across all operators (source run maps, join
    /// sides, distinct/aggregate groups, the materialized root) — the
    /// bounded-state gauge: under contiguous-growth workloads it plateaus.
    pub fn state_rows(&self) -> usize {
        let ops: usize = self.nodes.iter().map(|n| n.state.rows()).sum();
        let runs: usize = self.last_run.iter().map(FastMap::len).sum();
        ops + runs + self.root_len
    }

    /// Propagation passes executed (one per engine advance).
    pub fn advances(&self) -> u64 {
        self.advances
    }

    /// Total deltas operators processed over the pipeline's lifetime.
    pub fn deltas_total(&self) -> u64 {
        self.deltas_total
    }

    /// Per-operator `(name, emitted)` delta counts, in topological order.
    pub fn operator_deltas(&self) -> Vec<(&'static str, u64)> {
        self.nodes
            .iter()
            .map(|n| (n.op.name(), n.emitted))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::CollectingSink;
    use crate::engine::{EngineConfig, Side, StreamEngine};
    use tp_core::lineage::{Lineage, TupleId};
    use tp_core::tuple::TpTuple;
    use tp_relalg::aggregate::AggFn;
    use tp_relalg::incremental::bind_sources;
    use tp_relalg::predicate::{CmpOp, Predicate};

    fn placeholder(cols: &[&str]) -> Relation {
        Relation::empty(Schema::new(cols.iter().copied()))
    }

    /// join(Except, Intersect on fact key) → aggregate count per key.
    fn alert_plan() -> Plan {
        Plan::values(placeholder(&["k", "ts", "te"]))
            .hash_join(
                Plan::values(placeholder(&["k", "ts", "te"])),
                vec![0],
                vec![0],
            )
            .aggregate(vec![0], vec![AggFn::Count, AggFn::Max(2)])
    }

    /// Duplicate-free two-sided workload: per step one tuple per side of
    /// the same fact, right shifted by one — every op has output (Except
    /// the left-only sliver, Intersect the overlap).
    fn push_workload(engine: &mut StreamEngine, n: i64) {
        for k in 0..n {
            let fact = Fact::single(k % 4);
            engine.push(
                Side::Left,
                TpTuple::new(
                    fact.clone(),
                    Lineage::var(TupleId(2 * k as u64)),
                    Interval::at(2 * k, 2 * k + 3),
                ),
            );
            engine.push(
                Side::Right,
                TpTuple::new(
                    fact,
                    Lineage::var(TupleId(2 * k as u64 + 1)),
                    Interval::at(2 * k + 1, 2 * k + 4),
                ),
            );
        }
    }

    fn batch_rows(plan: &Plan, sink: &CollectingSink, taps: &[SetOp], schema: &Schema) -> Vec<Row> {
        let tables: Vec<Relation> = taps
            .iter()
            .map(|&op| encode_relation(&sink.relation(op), schema))
            .collect();
        let mut rows = bind_sources(plan, &tables).execute().rows;
        rows.sort();
        rows
    }

    #[test]
    fn compiled_pipeline_matches_batch_execute() {
        let plan = alert_plan();
        let taps = [SetOp::Except, SetOp::Intersect];
        let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        push_workload(&mut engine, 40);
        for w in [9, 17, 30] {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        let schema = Schema::new(["k", "ts", "te"]);
        let expect = batch_rows(&plan, &sink, &taps, &schema);
        let got = engine.pipeline().unwrap().materialized();
        assert!(!expect.is_empty(), "vacuous: batch output is empty");
        assert_eq!(got.rows, expect);
        assert_eq!(got.schema.columns(), &["l.k", "count", "max_2"]);
    }

    #[test]
    fn select_project_distinct_union_pipeline_matches_batch() {
        let leaf = || Plan::values(placeholder(&["k", "ts", "te"]));
        let plan = leaf()
            .select(Predicate::col_const(CmpOp::Ge, 1, Value::int(4)))
            .union_all(leaf().project(vec![0, 1, 2]))
            .project(vec![0])
            .distinct();
        let taps = [SetOp::Union, SetOp::Except];
        let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        push_workload(&mut engine, 30);
        for w in [7, 15, 22] {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        let schema = Schema::new(["k", "ts", "te"]);
        let expect = batch_rows(&plan, &sink, &taps, &schema);
        let got = engine.pipeline().unwrap().materialized();
        assert!(!expect.is_empty());
        assert_eq!(got.rows, expect);
    }

    #[test]
    fn nl_join_theta_pipeline_matches_batch() {
        let leaf = || Plan::values(placeholder(&["k", "ts", "te"]));
        // Interval-overlap theta join: the paper's inequality-join shape.
        let plan = leaf().nl_join(leaf(), Predicate::overlap(1, 2, 4, 5));
        let taps = [SetOp::Except, SetOp::Intersect];
        let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        push_workload(&mut engine, 24);
        for w in [11, 19] {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        let schema = Schema::new(["k", "ts", "te"]);
        let expect = batch_rows(&plan, &sink, &taps, &schema);
        let got = engine.pipeline().unwrap().materialized();
        assert_eq!(got.rows, expect);
    }

    #[test]
    fn join_lineage_is_conjunction_of_matching_instances() {
        let leaf = || Plan::values(placeholder(&["k", "ts", "te"]));
        let plan = leaf().hash_join(leaf(), vec![0], vec![0]);
        let taps = [SetOp::Except, SetOp::Intersect];
        let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        // One left-only tuple and one both-sides fact: Except carries the
        // left-only output, Intersect the conjunction output.
        engine.push(
            Side::Left,
            TpTuple::new("a", Lineage::var(TupleId(1)), Interval::at(0, 10)),
        );
        engine.push(
            Side::Left,
            TpTuple::new("b", Lineage::var(TupleId(2)), Interval::at(0, 10)),
        );
        engine.push(
            Side::Right,
            TpTuple::new("b", Lineage::var(TupleId(3)), Interval::at(0, 10)),
        );
        engine.finish(&mut sink).unwrap();
        let out = engine.pipeline().unwrap().materialized_lineage();
        // 'a' is Except-only (no Intersect partner): no join output for it;
        // 'b' appears on both taps and joins.
        assert_eq!(out.len(), 1);
        let (row, lineage) = &out[0];
        assert_eq!(row[0], Value::str("b"));
        assert!(
            matches!(lineage, LineageTree::And(_, _)),
            "join output lineage must be a conjunction, got {lineage:?}"
        );
    }

    #[test]
    fn extends_keep_state_bounded_and_match_batch() {
        // Immortal facts cut by the watermark: every advance re-emits each
        // fact's output as an Extend (same lineage handle across the
        // split), so each operator only retracts-and-regrows its standing
        // rows — state_rows plateaus while the watermark runs on.
        let plan = alert_plan();
        let taps = [SetOp::Union, SetOp::Intersect];
        let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        for f in 0..4i64 {
            for (side, off) in [(Side::Left, 0), (Side::Right, 1)] {
                let t = TpTuple::new(
                    Fact::single(f),
                    Lineage::var(TupleId((f * 2 + off) as u64)),
                    Interval::at(0, 300),
                );
                engine.push(side, t);
            }
        }
        let mut state = Vec::new();
        for epoch in 0..30i64 {
            engine.advance((epoch + 1) * 10, &mut sink).unwrap();
            state.push(engine.pipeline().unwrap().state_rows());
        }
        engine.finish(&mut sink).unwrap();
        let schema = Schema::new(["k", "ts", "te"]);
        let expect = batch_rows(&plan, &sink, &taps, &schema);
        let got = engine.pipeline().unwrap().materialized();
        assert_eq!(got.rows, expect);
        // Plateau: the second half of the run adds no standing state.
        let mid = state[state.len() / 2];
        let end = *state.last().unwrap();
        assert_eq!(mid, end, "state kept growing: {state:?}");
        assert!(end > 0);
    }

    #[test]
    fn compile_rejects_bad_taps_and_sort() {
        let plan = alert_plan();
        assert!(matches!(
            Pipeline::compile(&plan, &[SetOp::Union]),
            Err(PipelineError::TapCount {
                sources: 2,
                taps: 1
            })
        ));
        let sorted = Plan::values(placeholder(&["k", "ts", "te"])).sort(vec![0]);
        assert!(matches!(
            Pipeline::compile(&sorted, &[SetOp::Union]),
            Err(PipelineError::Lower(LowerError::Sort))
        ));
        let thin = Plan::values(placeholder(&["ts", "te"]));
        assert!(matches!(
            Pipeline::compile(&thin, &[SetOp::Union]),
            Err(PipelineError::SourceArity {
                source: 0,
                arity: 2
            })
        ));
        // A tap outside the engine's maintained ops is rejected at attach.
        let cfg = EngineConfig {
            ops: vec![SetOp::Union],
            ..Default::default()
        };
        let leaf = Plan::values(placeholder(&["k", "ts", "te"]));
        assert!(matches!(
            StreamEngine::with_plan(cfg, &leaf, &[SetOp::Except]),
            Err(PipelineError::TapNotMaintained(SetOp::Except))
        ));
    }
}
