//! Standing incremental pipelines: a compiled [`tp_relalg::Plan`] running
//! continuously over the engine's delta streams.
//!
//! [`Pipeline::compile`] lowers a batch plan through
//! [`tp_relalg::incremental::lower`] into a topo-ordered DAG of standing
//! operators, then the engine drives it: every output delta of a tapped
//! set operation feeds a [`LoweredOp::Source`], and one propagation pass
//! per watermark advance pushes the resulting `Ins`/`Del` changes through
//! the DAG — select/project filter and rewrite rows, joins keep per-side
//! hash state and emit the conjunction of the matching tuples' lineages,
//! distinct and aggregate maintain support-counted groups with dirty-key
//! recompute through the *batch* [`tp_relalg::AggFn::finish`] fold — one
//! republish per dirty group per advance, nothing when the batch left a
//! group's output unchanged. The root's
//! multiset is the standing materialized view; [`Pipeline::materialized`]
//! snapshots it as a canonically sorted [`Relation`] that is row-identical
//! to running the batch plan over the closed region (the differential
//! contract `tests/streaming_plans.rs` proves for arbitrary arrival
//! permutations and watermark schedules).
//!
//! ## Clock, arena, reclamation
//!
//! The whole DAG shares the engine's clock: sources buffer deltas as the
//! sweep emits them, and the engine runs exactly one propagation pass per
//! advance (inside its arena scope), so every operator observes the same
//! watermark frontier. Operator state stores each tuple's lineage as an
//! owned [`LineageTree`] — expanded at the source, inside the arena scope,
//! exactly like [`crate::MaterializingSink`] records deltas — so standing
//! state never holds arena references and segment retirement in reclaim
//! mode can never invalidate it. Derived lineage (join conjunctions,
//! distinct/aggregate disjunction folds) is built over those owned trees.
//!
//! ## Source encoding
//!
//! A source row is the tuple's fact attributes followed by the interval
//! bounds: `fact.values() ++ [Int(ts), Int(te)]` ([`encode_row`]). An
//! `Insert` delta inserts the encoded row; an `Extend` — which by the
//! delta contract grows the *latest* output tuple of the fact and keeps
//! its lineage handle — is a `Del` of the previous encoding plus an `Ins`
//! of the grown one, mirroring how [`crate::CollectingSink`] applies it
//! (including the attach-mid-stream case where the `Extend` piece
//! materializes as a fresh row). For workloads whose facts grow
//! contiguously, this keeps one standing row per fact and operator state
//! **plateaus** no matter how long the stream runs.

use std::fmt;
use std::sync::Arc;

use tp_core::arena::FastMap;
use tp_core::fact::Fact;
use tp_core::interval::Interval;
use tp_core::lineage::LineageTree;
use tp_core::ops::SetOp;
use tp_core::relation::TpRelation;
use tp_core::value::Value;
use tp_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use tp_relalg::incremental::{lower, LowerError, LoweredOp};
use tp_relalg::optimize::{RateProfile, SourceStats};
use tp_relalg::plan::Plan;
use tp_relalg::relation::{Relation, Row, Schema};

use crate::delta::Delta;
use crate::obs::{global, now_ns, EngineObs, ObsConfig};

/// Why a plan cannot be attached to an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The plan does not lower (see [`LowerError`]).
    Lower(LowerError),
    /// `taps.len()` differs from the plan's `Values`-leaf count.
    TapCount {
        /// Sources the lowered plan declares.
        sources: usize,
        /// Taps the caller supplied.
        taps: usize,
    },
    /// A tapped operation is not maintained by the engine config.
    TapNotMaintained(SetOp),
    /// A source schema has fewer than three columns (at least one fact
    /// attribute plus the `ts`/`te` interval bounds).
    SourceArity {
        /// The offending source (preorder index).
        source: usize,
        /// Its declared arity.
        arity: usize,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Lower(e) => write!(f, "plan does not lower: {e}"),
            PipelineError::TapCount { sources, taps } => write!(
                f,
                "plan declares {sources} sources but {taps} taps were supplied"
            ),
            PipelineError::TapNotMaintained(op) => {
                write!(f, "tapped operation {op} is not maintained by the engine")
            }
            PipelineError::SourceArity { source, arity } => write!(
                f,
                "source {source} declares arity {arity}; need fact attributes plus ts, te"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<LowerError> for PipelineError {
    fn from(e: LowerError) -> Self {
        PipelineError::Lower(e)
    }
}

/// One standing tuple instance: a flat row plus its (owned) lineage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeTuple {
    /// The encoded row.
    pub row: Row,
    /// Lineage of the instance, arena-independent.
    pub lineage: LineageTree,
}

/// An internal change notification between operators.
#[derive(Debug, Clone)]
enum PipeDelta {
    Ins(PipeTuple),
    Del(PipeTuple),
}

impl PipeDelta {
    fn tuple(&self) -> &PipeTuple {
        match self {
            PipeDelta::Ins(t) | PipeDelta::Del(t) => t,
        }
    }
}

/// Encodes a TP tuple as a pipeline source row:
/// `fact.values() ++ [Int(ts), Int(te)]`.
pub fn encode_row(fact: &Fact, interval: Interval) -> Row {
    let mut row: Row = fact.values().to_vec();
    row.push(Value::int(interval.start()));
    row.push(Value::int(interval.end()));
    row
}

/// Encodes a materialized TP relation with the given source schema — the
/// batch side of the differential oracle: feed the closed-region output of
/// a [`crate::CollectingSink`] through this and
/// [`tp_relalg::incremental::bind_sources`], execute, and compare with
/// [`Pipeline::materialized`].
///
/// Panics if a tuple's fact arity plus the two interval columns does not
/// match the schema.
pub fn encode_relation(rel: &TpRelation, schema: &Schema) -> Relation {
    let rows: Vec<Row> = rel
        .iter()
        .map(|t| {
            assert_eq!(
                t.fact.arity() + 2,
                schema.arity(),
                "tuple fact arity does not match the source schema"
            );
            encode_row(&t.fact, t.interval)
        })
        .collect();
    Relation::new(schema.clone(), rows)
}

/// Per-operator standing state.
enum OpState {
    /// Source, select, project, union-all: no standing rows.
    Stateless,
    /// Nested-loop join: both sides' full instance lists.
    NlJoin([Vec<PipeTuple>; 2]),
    /// Hash join: per-side instances bucketed by join key.
    HashJoin([FastMap<Vec<Value>, Vec<PipeTuple>>; 2]),
    /// Distinct: instance lineages per distinct row (support counting).
    Distinct(FastMap<Row, Vec<LineageTree>>),
    /// Aggregate: member instances per group key, in arrival order.
    Aggregate(FastMap<Vec<Value>, Vec<PipeTuple>>),
}

impl OpState {
    fn for_op(op: &LoweredOp) -> OpState {
        match op {
            LoweredOp::NlJoin(_) => OpState::NlJoin([Vec::new(), Vec::new()]),
            LoweredOp::HashJoin { .. } => {
                OpState::HashJoin([FastMap::default(), FastMap::default()])
            }
            LoweredOp::Distinct => OpState::Distinct(FastMap::default()),
            LoweredOp::Aggregate { .. } => OpState::Aggregate(FastMap::default()),
            _ => OpState::Stateless,
        }
    }

    /// Standing instances held by this operator.
    fn rows(&self) -> usize {
        match self {
            OpState::Stateless => 0,
            OpState::NlJoin(sides) => sides.iter().map(Vec::len).sum(),
            OpState::HashJoin(sides) => sides
                .iter()
                .map(|m| m.values().map(Vec::len).sum::<usize>())
                .sum(),
            OpState::Distinct(m) => m.values().map(Vec::len).sum(),
            OpState::Aggregate(m) => m.values().map(Vec::len).sum(),
        }
    }
}

/// Left-associative ∨-fold of instance lineages, in stored order — the
/// deterministic lineage of a support-counted output row.
fn or_fold(trees: &[LineageTree]) -> LineageTree {
    let mut it = trees.iter();
    let first = it.next().expect("folds run over non-empty groups").clone();
    it.fold(first, |acc, t| {
        LineageTree::Or(Box::new(acc), Box::new(t.clone()))
    })
}

fn joined(l: &PipeTuple, r: &PipeTuple) -> PipeTuple {
    let mut row = l.row.clone();
    row.extend(r.row.iter().cloned());
    PipeTuple {
        row,
        lineage: LineageTree::And(Box::new(l.lineage.clone()), Box::new(r.lineage.clone())),
    }
}

/// One DAG node: the operator, its standing state, and the deltas buffered
/// for the next propagation pass.
struct Node {
    op: LoweredOp,
    state: OpState,
    inbox: Vec<(usize, PipeDelta)>,
    /// Deltas this operator emitted over its lifetime.
    emitted: u64,
    /// EWMA of deltas emitted per advance (the observed delta rate).
    rate: f64,
    /// Number of attached plans whose DAG contains this operator (>1 ⇒ the
    /// operator and its state are shared).
    shared_by: u32,
}

impl Node {
    /// Applies one upstream delta, appending this operator's own deltas.
    fn apply(&mut self, port: usize, delta: PipeDelta, out: &mut Vec<PipeDelta>) {
        match (&self.op, &mut self.state) {
            (LoweredOp::Source(_), _) | (LoweredOp::UnionAll, _) => out.push(delta),
            (LoweredOp::Select(pred), _) => {
                if pred.eval(&delta.tuple().row) {
                    out.push(delta);
                }
            }
            (LoweredOp::Project(cols), _) => {
                let map = |t: PipeTuple| PipeTuple {
                    row: cols.iter().map(|&c| t.row[c].clone()).collect(),
                    lineage: t.lineage,
                };
                out.push(match delta {
                    PipeDelta::Ins(t) => PipeDelta::Ins(map(t)),
                    PipeDelta::Del(t) => PipeDelta::Del(map(t)),
                });
            }
            (LoweredOp::NlJoin(pred), OpState::NlJoin(sides)) => {
                let pair = |own: &PipeTuple, other: &PipeTuple| {
                    if port == 0 {
                        joined(own, other)
                    } else {
                        joined(other, own)
                    }
                };
                let hit = |own: &PipeTuple, other: &PipeTuple| {
                    if port == 0 {
                        pred.eval_pair(&own.row, &other.row)
                    } else {
                        pred.eval_pair(&other.row, &own.row)
                    }
                };
                match delta {
                    PipeDelta::Ins(t) => {
                        for o in &sides[1 - port] {
                            if hit(&t, o) {
                                out.push(PipeDelta::Ins(pair(&t, o)));
                            }
                        }
                        sides[port].push(t);
                    }
                    PipeDelta::Del(t) => {
                        let at = sides[port]
                            .iter()
                            .position(|x| *x == t)
                            .expect("Del retracts a standing join instance");
                        sides[port].remove(at);
                        for o in &sides[1 - port] {
                            if hit(&t, o) {
                                out.push(PipeDelta::Del(pair(&t, o)));
                            }
                        }
                    }
                }
            }
            (LoweredOp::HashJoin { l_cols, r_cols }, OpState::HashJoin(sides)) => {
                let own_cols = if port == 0 { l_cols } else { r_cols };
                let key: Vec<Value> = own_cols
                    .iter()
                    .map(|&c| delta.tuple().row[c].clone())
                    .collect();
                let (head, tail) = sides.split_at_mut(1);
                let (own, other) = if port == 0 {
                    (&mut head[0], &tail[0])
                } else {
                    (&mut tail[0], &head[0])
                };
                let pair = |own_t: &PipeTuple, other_t: &PipeTuple| {
                    if port == 0 {
                        joined(own_t, other_t)
                    } else {
                        joined(other_t, own_t)
                    }
                };
                match delta {
                    PipeDelta::Ins(t) => {
                        if let Some(matches) = other.get(&key) {
                            for o in matches {
                                out.push(PipeDelta::Ins(pair(&t, o)));
                            }
                        }
                        own.entry(key).or_default().push(t);
                    }
                    PipeDelta::Del(t) => {
                        let bucket = own
                            .get_mut(&key)
                            .expect("Del retracts a standing join instance");
                        let at = bucket
                            .iter()
                            .position(|x| *x == t)
                            .expect("Del retracts a standing join instance");
                        bucket.remove(at);
                        if bucket.is_empty() {
                            own.remove(&key);
                        }
                        if let Some(matches) = other.get(&key) {
                            for o in matches {
                                out.push(PipeDelta::Del(pair(&t, o)));
                            }
                        }
                    }
                }
            }
            (LoweredOp::Distinct, _) | (LoweredOp::Aggregate { .. }, _) => {
                unreachable!("grouped operators drain through apply_grouped")
            }
            _ => unreachable!("operator state matches its op kind by construction"),
        }
    }

    /// Applies one advance's worth of deltas to a support-counted operator
    /// (distinct, aggregate) with **dirty-key recompute**: member lists are
    /// updated first, then every dirty group is republished exactly once —
    /// one `Del` of its pre-batch output, one `Ins` of its post-batch
    /// output. A group hit by many deltas in one advance (the
    /// retract-and-regrow traffic of `Extend`-dominated streams) pays one
    /// lineage refold instead of one per delta, and groups whose output is
    /// net-unchanged emit nothing.
    fn apply_grouped(&mut self, inbox: Vec<(usize, PipeDelta)>, out: &mut Vec<PipeDelta>) {
        match (&self.op, &mut self.state) {
            (LoweredOp::Distinct, OpState::Distinct(groups)) => {
                // Phase 1: update supports, snapshotting each row's
                // pre-batch output the first time it is touched.
                let mut dirty: Vec<Row> = Vec::new();
                let mut old: FastMap<Row, Option<LineageTree>> = FastMap::default();
                for (_port, delta) in inbox {
                    match delta {
                        PipeDelta::Ins(t) => {
                            let instances = groups.entry(t.row.clone()).or_default();
                            old.entry(t.row.clone()).or_insert_with(|| {
                                dirty.push(t.row.clone());
                                (!instances.is_empty()).then(|| or_fold(instances))
                            });
                            instances.push(t.lineage);
                        }
                        PipeDelta::Del(t) => {
                            let instances = groups
                                .get_mut(&t.row)
                                .expect("Del retracts a standing distinct instance");
                            old.entry(t.row.clone()).or_insert_with(|| {
                                dirty.push(t.row.clone());
                                Some(or_fold(instances))
                            });
                            let at = instances
                                .iter()
                                .position(|x| *x == t.lineage)
                                .expect("Del retracts a standing distinct instance");
                            instances.remove(at);
                            if instances.is_empty() {
                                groups.remove(&t.row);
                            }
                        }
                    }
                }
                // Phase 2: republish changed rows, in first-touch order.
                for row in dirty {
                    let old_fold = old.remove(&row).expect("snapshotted in phase 1");
                    let new_fold = groups.get(&row).map(|instances| or_fold(instances));
                    push_republish(
                        out,
                        old_fold.map(|lineage| PipeTuple {
                            row: row.clone(),
                            lineage,
                        }),
                        new_fold.map(|lineage| PipeTuple { row, lineage }),
                    );
                }
            }
            (LoweredOp::Aggregate { keys, aggs }, OpState::Aggregate(groups)) => {
                let output = |key: &[Value], members: &[PipeTuple]| {
                    let rows: Vec<&Row> = members.iter().map(|m| &m.row).collect();
                    let mut row: Row = key.to_vec();
                    row.extend(aggs.iter().map(|a| a.finish(&rows)));
                    let mut it = members.iter();
                    let first = it
                        .next()
                        .expect("folds run over non-empty groups")
                        .lineage
                        .clone();
                    let lineage = it.fold(first, |acc, m| {
                        LineageTree::Or(Box::new(acc), Box::new(m.lineage.clone()))
                    });
                    PipeTuple { row, lineage }
                };
                let mut dirty: Vec<Vec<Value>> = Vec::new();
                let mut old: FastMap<Vec<Value>, Option<PipeTuple>> = FastMap::default();
                for (_port, delta) in inbox {
                    let key: Vec<Value> =
                        keys.iter().map(|&k| delta.tuple().row[k].clone()).collect();
                    match delta {
                        PipeDelta::Ins(t) => {
                            let members = groups.entry(key.clone()).or_default();
                            old.entry(key.clone()).or_insert_with(|| {
                                dirty.push(key.clone());
                                (!members.is_empty()).then(|| output(&key, members))
                            });
                            members.push(t);
                        }
                        PipeDelta::Del(t) => {
                            let members = groups
                                .get_mut(&key)
                                .expect("Del retracts a standing group member");
                            old.entry(key.clone()).or_insert_with(|| {
                                dirty.push(key.clone());
                                Some(output(&key, members))
                            });
                            let at = members
                                .iter()
                                .position(|x| *x == t)
                                .expect("Del retracts a standing group member");
                            members.remove(at);
                            if members.is_empty() {
                                groups.remove(&key);
                            }
                        }
                    }
                }
                for key in dirty {
                    let old_out = old.remove(&key).expect("snapshotted in phase 1");
                    let new_out = groups.get(&key).map(|members| output(&key, members));
                    push_republish(out, old_out, new_out);
                }
            }
            _ => unreachable!("apply_grouped only drains distinct/aggregate"),
        }
    }
}

/// Emits the republication deltas of one dirty group: retract the
/// pre-batch output, insert the post-batch one, and emit nothing when the
/// batch left the output unchanged (row-compare first, so the deep lineage
/// comparison only runs when the rows already agree).
fn push_republish(out: &mut Vec<PipeDelta>, old: Option<PipeTuple>, new: Option<PipeTuple>) {
    match (old, new) {
        (None, Some(new)) => out.push(PipeDelta::Ins(new)),
        (Some(old), None) => out.push(PipeDelta::Del(old)),
        (Some(old), Some(new)) => {
            if old != new {
                out.push(PipeDelta::Del(old));
                out.push(PipeDelta::Ins(new));
            }
        }
        (None, None) => {}
    }
}

/// Metric handles of an instrumented pipeline (`tp_pipeline_*`).
struct PipelineObs {
    advance_ns: Arc<Histogram>,
    state_rows: Arc<Gauge>,
    /// Per node, labeled with the operator kind.
    node_deltas: Vec<Arc<Counter>>,
}

/// The standing materialized view of one attached plan: instance lineages
/// per output row, plus the plan's root schema.
struct RootView {
    schema: Schema,
    rows: FastMap<Row, Vec<LineageTree>>,
    /// Total instances (multiplicity sum).
    len: usize,
}

/// EWMA smoothing factor for the per-node and per-source delta rates.
const RATE_ALPHA: f64 = 0.25;

/// A compiled standing pipeline. Create with [`Pipeline::compile`] (one
/// plan) or [`Pipeline::compile_shared`] (several plans over one physical
/// DAG), attach via [`crate::StreamEngine::with_plan`] /
/// [`crate::StreamEngine::with_plans`] (or per tenant through
/// [`crate::StreamServer::add_tenant_with_plan`]); the engine feeds and
/// advances it, callers read [`Pipeline::materialized`].
pub struct Pipeline {
    nodes: Vec<Node>,
    /// Producer → `[(consumer, port)]` edges.
    consumers: Vec<Vec<(usize, usize)>>,
    /// Node → views fed by its output (non-empty for plan roots only).
    node_views: Vec<Vec<usize>>,
    /// Engine op feeding each physical source.
    taps: Vec<SetOp>,
    /// Physical source index → node index.
    source_nodes: Vec<usize>,
    /// Declared fact arity per physical source (schema arity minus ts/te).
    fact_arity: Vec<usize>,
    /// Per physical source: the latest standing encoding per fact (the row
    /// an `Extend` delta retracts and regrows).
    last_run: Vec<FastMap<Fact, PipeTuple>>,
    /// Per physical source: the full standing input multiset (a fact can
    /// hold several disjoint-interval rows; `last_run` keeps only the
    /// latest). This is the replay source [`Pipeline::reoptimize`] rebuilds
    /// a swapped DAG's operator state from.
    standing: Vec<FastMap<Row, Vec<LineageTree>>>,
    /// Per physical source: deltas buffered since the last advance.
    source_offered: Vec<u64>,
    /// Per physical source: EWMA deltas per advance.
    source_rates: Vec<f64>,
    /// The plans as originally attached — the re-optimizer's baseline.
    plans: Vec<Plan>,
    /// The currently compiled plans (diverge from `plans` after a swap).
    current: Vec<Plan>,
    /// Per-plan tap bindings, preorder source numbering.
    plan_taps: Vec<Vec<SetOp>>,
    /// Per plan: preorder source index → physical source index.
    plan_sources: Vec<Vec<usize>>,
    /// Per plan: its root node.
    roots: Vec<usize>,
    /// Per plan: its standing materialized view.
    views: Vec<RootView>,
    /// Operators referenced by more than one plan.
    shared_nodes: usize,
    advances: u64,
    deltas_total: u64,
    /// Plan swaps executed by [`Pipeline::reoptimize`].
    reopts: u64,
    obs_cfg: Option<ObsConfig>,
    obs: Option<PipelineObs>,
}

impl Pipeline {
    /// Compiles a plan into a standing pipeline whose `i`-th source is fed
    /// from the engine's `taps[i]` delta stream.
    pub fn compile(plan: &Plan, taps: &[SetOp]) -> Result<Pipeline, PipelineError> {
        Self::compile_shared(std::slice::from_ref(plan), &[taps.to_vec()])
    }

    /// Compiles several plans into **one** physical pipeline, hash-consing
    /// structurally identical lowered sub-DAGs: two plans whose subtrees
    /// lower to the same operators over the same tap bindings run them
    /// once, fanned out to every downstream consumer — K alert rules over
    /// the same join pay its state and maintenance a single time (the
    /// sub-additive `tp_pipeline_state_rows` claim the `adaptive_pipeline`
    /// bench gates). Each plan keeps its own materialized view; read them
    /// through [`Pipeline::materialized_view`].
    ///
    /// `taps[p][i]` names the engine delta stream feeding plan `p`'s
    /// `i`-th source (preorder). Panics if `plans` is empty or the outer
    /// lengths differ; per-plan validation errors mirror
    /// [`Pipeline::compile`].
    pub fn compile_shared(plans: &[Plan], taps: &[Vec<SetOp>]) -> Result<Pipeline, PipelineError> {
        assert!(!plans.is_empty(), "compile_shared needs at least one plan");
        assert_eq!(
            plans.len(),
            taps.len(),
            "one tap binding list per plan required"
        );
        let mut p = Pipeline {
            nodes: Vec::new(),
            consumers: Vec::new(),
            node_views: Vec::new(),
            taps: Vec::new(),
            source_nodes: Vec::new(),
            fact_arity: Vec::new(),
            last_run: Vec::new(),
            standing: Vec::new(),
            source_offered: Vec::new(),
            source_rates: Vec::new(),
            plans: plans.to_vec(),
            current: plans.to_vec(),
            plan_taps: taps.to_vec(),
            plan_sources: Vec::new(),
            roots: Vec::new(),
            views: Vec::new(),
            shared_nodes: 0,
            advances: 0,
            deltas_total: 0,
            reopts: 0,
            obs_cfg: None,
            obs: None,
        };
        // Structural interning: a node's identity is its operator plus the
        // identities of its inputs; a source's identity is its tap binding
        // plus arity. Identical sub-DAGs across (or within) plans therefore
        // collapse onto one physical operator.
        let mut interned: FastMap<String, usize> = FastMap::default();
        let mut node_plan_count: Vec<u32> = Vec::new();
        for (pi, plan) in plans.iter().enumerate() {
            let lowered = lower(plan)?;
            if lowered.source_count() != taps[pi].len() {
                return Err(PipelineError::TapCount {
                    sources: lowered.source_count(),
                    taps: taps[pi].len(),
                });
            }
            for (i, schema) in lowered.source_schemas.iter().enumerate() {
                if schema.arity() < 3 {
                    return Err(PipelineError::SourceArity {
                        source: i,
                        arity: schema.arity(),
                    });
                }
            }
            let mut global = vec![usize::MAX; lowered.nodes.len()];
            let mut sources = vec![usize::MAX; lowered.source_count()];
            for (i, n) in lowered.nodes.iter().enumerate() {
                let inputs: Vec<usize> = n.inputs.iter().map(|&j| global[j]).collect();
                let key = match n.op {
                    LoweredOp::Source(s) => {
                        format!("source|{:?}|{}", taps[pi][s], n.schema.arity())
                    }
                    ref op => format!("{op:?}|{inputs:?}"),
                };
                let g = match interned.get(&key) {
                    Some(&g) => g,
                    None => {
                        let g = p.nodes.len();
                        let op = match n.op {
                            LoweredOp::Source(s) => {
                                let phys = p.taps.len();
                                p.taps.push(taps[pi][s]);
                                p.fact_arity.push(n.schema.arity() - 2);
                                p.last_run.push(FastMap::default());
                                p.standing.push(FastMap::default());
                                p.source_offered.push(0);
                                p.source_rates.push(0.0);
                                p.source_nodes.push(g);
                                LoweredOp::Source(phys)
                            }
                            ref op => op.clone(),
                        };
                        p.nodes.push(Node {
                            state: OpState::for_op(&op),
                            op,
                            inbox: Vec::new(),
                            emitted: 0,
                            rate: 0.0,
                            shared_by: 0,
                        });
                        p.consumers.push(Vec::new());
                        node_plan_count.push(0);
                        for (port, &input) in inputs.iter().enumerate() {
                            p.consumers[input].push((g, port));
                        }
                        interned.insert(key, g);
                        g
                    }
                };
                global[i] = g;
                if let LoweredOp::Source(s) = n.op {
                    if let LoweredOp::Source(phys) = p.nodes[g].op {
                        sources[s] = phys;
                    }
                }
            }
            // Count each node once per plan that references it.
            let mut seen = vec![false; p.nodes.len()];
            for &g in &global {
                if !seen[g] {
                    seen[g] = true;
                    node_plan_count[g] += 1;
                }
            }
            p.roots.push(global[lowered.nodes.len() - 1]);
            p.plan_sources.push(sources);
            p.views.push(RootView {
                schema: lowered.root_schema().clone(),
                rows: FastMap::default(),
                len: 0,
            });
        }
        for (g, node) in p.nodes.iter_mut().enumerate() {
            node.shared_by = node_plan_count[g];
        }
        p.shared_nodes = node_plan_count.iter().filter(|&&c| c > 1).count();
        p.node_views = vec![Vec::new(); p.nodes.len()];
        for (v, &root) in p.roots.iter().enumerate() {
            p.node_views[root].push(v);
        }
        Ok(p)
    }

    /// Resolves the `tp_pipeline_*` metric handles (no-op when disabled).
    pub(crate) fn init_obs(&mut self, cfg: &ObsConfig) {
        if !cfg.enabled {
            return;
        }
        self.obs_cfg = Some(cfg.clone());
        let reg: &MetricsRegistry = match &cfg.registry {
            Some(r) => r,
            None => global(),
        };
        let tenant = cfg.tenant.as_deref();
        let base: Vec<(&str, &str)> = match tenant {
            Some(t) => vec![("tenant", t)],
            None => Vec::new(),
        };
        let node_deltas = self
            .nodes
            .iter()
            .map(|n| {
                let mut labels = base.clone();
                labels.push(("op", n.op.name()));
                reg.counter("tp_pipeline_deltas_total", &labels)
            })
            .collect();
        self.obs = Some(PipelineObs {
            advance_ns: reg.histogram("tp_pipeline_advance_ns", &base),
            state_rows: reg.gauge("tp_pipeline_state_rows", &base),
            node_deltas,
        });
    }

    /// Buffers one engine delta into every source tapping `op`. Called by
    /// the engine inside its arena scope (the lineage expansion below
    /// dereferences the handle).
    pub(crate) fn offer(&mut self, op: SetOp, delta: &Delta) {
        for s in 0..self.taps.len() {
            if self.taps[s] != op {
                continue;
            }
            let node = self.source_nodes[s];
            self.source_offered[s] += 1;
            match delta {
                Delta::Insert(t) => {
                    assert_eq!(
                        t.fact.arity(),
                        self.fact_arity[s],
                        "stream fact arity does not match source {s}'s schema"
                    );
                    let pt = PipeTuple {
                        row: encode_row(&t.fact, t.interval),
                        lineage: t.lineage.to_tree(),
                    };
                    self.last_run[s].insert(t.fact.clone(), pt.clone());
                    self.standing[s]
                        .entry(pt.row.clone())
                        .or_default()
                        .push(pt.lineage.clone());
                    self.nodes[node].inbox.push((0, PipeDelta::Ins(pt)));
                }
                Delta::Extend {
                    fact,
                    lineage,
                    from,
                    to,
                } => match self.last_run[s].get_mut(fact) {
                    Some(prev) => {
                        // The contract: an Extend grows the fact's latest
                        // output tuple and keeps its lineage handle, so
                        // the standing encoding is retracted and regrown
                        // with the identical lineage tree.
                        let mut grown = prev.clone();
                        let te = grown.row.len() - 1;
                        debug_assert_eq!(grown.row[te], Value::int(*from), "Extend boundary");
                        grown.row[te] = Value::int(*to);
                        let old = std::mem::replace(prev, grown.clone());
                        if let Some(instances) = self.standing[s].get_mut(&old.row) {
                            if let Some(at) = instances.iter().position(|x| *x == old.lineage) {
                                instances.remove(at);
                            }
                            if instances.is_empty() {
                                self.standing[s].remove(&old.row);
                            }
                        }
                        self.standing[s]
                            .entry(grown.row.clone())
                            .or_default()
                            .push(grown.lineage.clone());
                        self.nodes[node].inbox.push((0, PipeDelta::Del(old)));
                        self.nodes[node].inbox.push((0, PipeDelta::Ins(grown)));
                    }
                    None => {
                        // Attached mid-stream: materialize the extension
                        // piece as a fresh row (CollectingSink's rule).
                        assert_eq!(
                            fact.arity(),
                            self.fact_arity[s],
                            "stream fact arity does not match source {s}'s schema"
                        );
                        let pt = PipeTuple {
                            row: encode_row(fact, Interval::at(*from, *to)),
                            lineage: lineage.to_tree(),
                        };
                        self.last_run[s].insert(fact.clone(), pt.clone());
                        self.standing[s]
                            .entry(pt.row.clone())
                            .or_default()
                            .push(pt.lineage.clone());
                        self.nodes[node].inbox.push((0, PipeDelta::Ins(pt)));
                    }
                },
            }
        }
    }

    /// One propagation pass: drains every inbox in topological order,
    /// applies each root's deltas to its materialized view, updates the
    /// EWMA delta rates, and records the per-operator sub-spans and
    /// `tp_pipeline_*` metrics. Returns the number of deltas operators
    /// processed. Called by the engine once per watermark advance, after
    /// the sweep emitted its deltas.
    pub(crate) fn on_advance(&mut self, engine_obs: Option<&EngineObs>) -> u64 {
        let instrumented = self.obs.is_some() || engine_obs.is_some();
        let t0 = if instrumented { now_ns() } else { 0 };
        let processed = self.propagate(engine_obs, true);
        for s in 0..self.source_offered.len() {
            let offered = std::mem::take(&mut self.source_offered[s]) as f64;
            self.source_rates[s] += RATE_ALPHA * (offered - self.source_rates[s]);
        }
        self.advances += 1;
        self.deltas_total += processed;
        if let Some(p) = &self.obs {
            p.advance_ns.record(now_ns() - t0);
            p.state_rows.set(self.state_rows() as i64);
        }
        processed
    }

    /// Drains every inbox in topological order, routing each node's output
    /// to the views it feeds and to its downstream consumers. `live` passes
    /// update rate EWMAs and instrumentation; the swap-rebuild replay runs
    /// with `live = false` so reconstruction neither skews the observed
    /// rates nor records spans.
    fn propagate(&mut self, engine_obs: Option<&EngineObs>, live: bool) -> u64 {
        let instrumented = live && (self.obs.is_some() || engine_obs.is_some());
        let mut processed = 0u64;
        for i in 0..self.nodes.len() {
            let inbox = std::mem::take(&mut self.nodes[i].inbox);
            let mut out = Vec::new();
            if !inbox.is_empty() {
                let node_t0 = if instrumented { now_ns() } else { 0 };
                processed += inbox.len() as u64;
                if matches!(
                    self.nodes[i].op,
                    LoweredOp::Distinct | LoweredOp::Aggregate { .. }
                ) {
                    self.nodes[i].apply_grouped(inbox, &mut out);
                } else {
                    for (port, delta) in inbox {
                        self.nodes[i].apply(port, delta, &mut out);
                    }
                }
                self.nodes[i].emitted += out.len() as u64;
                if instrumented {
                    let dur = now_ns() - node_t0;
                    if let Some(obs) = engine_obs {
                        obs.sub_span(self.nodes[i].op.name(), node_t0, dur, out.len() as u64);
                    }
                    if let Some(p) = &self.obs {
                        p.node_deltas[i].add(out.len() as u64);
                    }
                }
            }
            if live {
                let rate = &mut self.nodes[i].rate;
                *rate += RATE_ALPHA * (out.len() as f64 - *rate);
            }
            if out.is_empty() {
                continue;
            }
            // A node can be a plan root and an interior operator at once
            // (one plan's output is another's subexpression): feed every
            // view first, then forward downstream.
            for vi in 0..self.node_views[i].len() {
                let v = self.node_views[i][vi];
                for delta in &out {
                    self.apply_view(v, delta.clone());
                }
            }
            if let ([(consumer, port)], true) =
                (&self.consumers[i][..], self.node_views[i].is_empty())
            {
                // Sole consumer, no view: hand the deltas over without
                // cloning.
                let (consumer, port) = (*consumer, *port);
                for delta in out {
                    self.nodes[consumer].inbox.push((port, delta));
                }
            } else {
                for &(consumer, port) in &self.consumers[i] {
                    for delta in &out {
                        self.nodes[consumer].inbox.push((port, delta.clone()));
                    }
                }
            }
        }
        processed
    }

    fn apply_view(&mut self, v: usize, delta: PipeDelta) {
        let view = &mut self.views[v];
        match delta {
            PipeDelta::Ins(t) => {
                view.rows.entry(t.row).or_default().push(t.lineage);
                view.len += 1;
            }
            PipeDelta::Del(t) => {
                let instances = view
                    .rows
                    .get_mut(&t.row)
                    .expect("Del retracts a standing output row");
                let at = instances
                    .iter()
                    .position(|x| *x == t.lineage)
                    .expect("Del retracts a standing output row");
                instances.remove(at);
                view.len -= 1;
                if instances.is_empty() {
                    view.rows.remove(&t.row);
                }
            }
        }
    }

    /// Snapshot of the first plan's standing materialized view as a
    /// canonically sorted relation (bag semantics: a row appears once per
    /// instance). For multi-plan pipelines see
    /// [`Pipeline::materialized_view`].
    pub fn materialized(&self) -> Relation {
        self.materialized_view(0)
    }

    /// Snapshot of plan `p`'s standing materialized view, canonically
    /// sorted.
    pub fn materialized_view(&self, p: usize) -> Relation {
        let view = &self.views[p];
        let mut rows: Vec<Row> = Vec::with_capacity(view.len);
        for (row, instances) in &view.rows {
            for _ in 0..instances.len() {
                rows.push(row.clone());
            }
        }
        rows.sort();
        Relation::new(view.schema.clone(), rows)
    }

    /// The first plan's distinct output rows with their ∨-folded lineage,
    /// sorted by row — the hook alert rules valuate (re-intern the tree
    /// inside an arena scope, then [`crate::obs::valuate_batch`]).
    pub fn materialized_lineage(&self) -> Vec<(Row, LineageTree)> {
        self.materialized_lineage_view(0)
    }

    /// Plan `p`'s distinct output rows with their ∨-folded lineage, sorted
    /// by row (see [`Pipeline::materialized_lineage`]).
    pub fn materialized_lineage_view(&self, p: usize) -> Vec<(Row, LineageTree)> {
        let mut out: Vec<(Row, LineageTree)> = self.views[p]
            .rows
            .iter()
            .map(|(row, instances)| (row.clone(), or_fold(instances)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The first plan's output schema (see [`Pipeline::view_schema`]).
    pub fn schema(&self) -> &Schema {
        &self.views[0].schema
    }

    /// Plan `p`'s output schema.
    pub fn view_schema(&self, p: usize) -> &Schema {
        &self.views[p].schema
    }

    /// Number of plans this pipeline maintains.
    pub fn plan_count(&self) -> usize {
        self.views.len()
    }

    /// Physical operators referenced by more than one attached plan.
    pub fn shared_operators(&self) -> usize {
        self.shared_nodes
    }

    /// The engine ops feeding the physical sources, in source order.
    pub fn taps(&self) -> &[SetOp] {
        &self.taps
    }

    /// Standing instances across all operators (source run maps, join
    /// sides, distinct/aggregate groups, the materialized views) — the
    /// bounded-state gauge: under contiguous-growth workloads it plateaus,
    /// and under shared compilation it grows sub-additively in the number
    /// of plans.
    pub fn state_rows(&self) -> usize {
        let ops: usize = self.nodes.iter().map(|n| n.state.rows()).sum();
        let runs: usize = self.last_run.iter().map(FastMap::len).sum();
        let views: usize = self.views.iter().map(|v| v.len).sum();
        ops + runs + views
    }

    /// Propagation passes executed (one per engine advance).
    pub fn advances(&self) -> u64 {
        self.advances
    }

    /// Total deltas operators processed over the pipeline's lifetime.
    pub fn deltas_total(&self) -> u64 {
        self.deltas_total
    }

    /// Plan swaps [`Pipeline::reoptimize`] has executed.
    pub fn reopts(&self) -> u64 {
        self.reopts
    }

    /// Per-operator `(name, emitted)` delta counts, in topological order.
    pub fn operator_deltas(&self) -> Vec<(&'static str, u64)> {
        self.nodes
            .iter()
            .map(|n| (n.op.name(), n.emitted))
            .collect()
    }

    /// Per-operator `(name, state_rows, ewma_rate, shared_by)` statistics,
    /// in topological order — the observability surface behind the repl's
    /// `\plan` command and the re-optimizer's inputs.
    pub fn operator_stats(&self) -> Vec<(&'static str, usize, f64, u32)> {
        self.nodes
            .iter()
            .map(|n| (n.op.name(), n.state.rows(), n.rate, n.shared_by))
            .collect()
    }

    /// Observed per-source statistics of plan `p`, in that plan's preorder
    /// source numbering — the [`RateProfile`] the re-optimizer plans
    /// against.
    pub fn rate_profile(&self, p: usize) -> RateProfile {
        RateProfile {
            sources: self.plan_sources[p]
                .iter()
                .map(|&s| SourceStats {
                    rows: self.last_run[s].len() as f64,
                    rate: self.source_rates[s],
                })
                .collect(),
        }
    }

    /// Re-plans every attached plan against the observed delta rates and
    /// state sizes ([`tp_relalg::reoptimize`]) and — when the cost model
    /// picks a different physical plan — **hot-swaps** the lowered DAG:
    /// a fresh DAG is compiled, its operator state rebuilt by replaying
    /// every source's standing rows, and the rebuilt views are checked
    /// row-identical against the standing ones before the swap commits
    /// (on mismatch the old DAG stays and `false` is returned). Call at a
    /// watermark boundary (the engine does, after the propagation pass),
    /// when no deltas are buffered.
    ///
    /// Returns `true` iff a swap was executed. The engine's own delta log
    /// is untouched by construction — the pipeline only consumes engine
    /// deltas — and the differential suite additionally proves the
    /// materialized views byte-identical across swaps.
    pub fn reoptimize(&mut self) -> bool {
        let new_plans: Vec<Plan> = (0..self.plans.len())
            .map(|p| tp_relalg::reoptimize(&self.plans[p], &self.rate_profile(p)))
            .collect();
        if new_plans == self.current {
            return false;
        }
        let Ok(mut next) = Pipeline::compile_shared(&new_plans, &self.plan_taps) else {
            debug_assert!(false, "re-optimized plan failed to compile");
            return false;
        };
        // Rebuild operator state: replay each physical source's standing
        // rows as inserts through the new DAG, in deterministic row order.
        // Physical sources are keyed by (tap, arity) on both sides.
        for s_new in 0..next.taps.len() {
            let Some(s_old) = (0..self.taps.len()).find(|&s| {
                self.taps[s] == next.taps[s_new] && self.fact_arity[s] == next.fact_arity[s_new]
            }) else {
                debug_assert!(false, "swap changed the source set");
                return false;
            };
            let node = next.source_nodes[s_new];
            let mut rows: Vec<&Row> = self.standing[s_old].keys().collect();
            rows.sort();
            for row in rows {
                for lineage in &self.standing[s_old][row] {
                    let pt = PipeTuple {
                        row: row.clone(),
                        lineage: lineage.clone(),
                    };
                    next.nodes[node].inbox.push((0, PipeDelta::Ins(pt)));
                }
            }
            next.last_run[s_new] = self.last_run[s_old].clone();
            next.standing[s_new] = self.standing[s_old].clone();
            next.source_rates[s_new] = self.source_rates[s_old];
            next.source_offered[s_new] = self.source_offered[s_old];
        }
        next.propagate(None, false);
        // Differential gate: the rebuilt views must match the standing
        // ones row-for-row (lineage *shapes* may differ after join
        // reassociation; rows and their multiplicities may not).
        for (v, view) in next.views.iter().enumerate() {
            if view_row_multiset(view) != view_row_multiset(&self.views[v]) {
                debug_assert!(false, "rebuilt view {v} diverged from the standing view");
                return false;
            }
        }
        next.plans = std::mem::take(&mut self.plans);
        next.current = new_plans;
        next.advances = self.advances;
        next.deltas_total = self.deltas_total;
        next.reopts = self.reopts + 1;
        if let Some(cfg) = self.obs_cfg.take() {
            next.init_obs(&cfg);
        }
        *self = next;
        true
    }

    /// Human-readable dump of the lowered DAG: per operator its inputs,
    /// live state rows, observed EWMA delta rate, and sharing annotation —
    /// the repl's `\plan` surface.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plans: {}   operators: {} ({} shared)   advances: {}   re-optimizations: {}",
            self.plan_count(),
            self.nodes.len(),
            self.shared_nodes,
            self.advances,
            self.reopts,
        );
        for (i, node) in self.nodes.iter().enumerate() {
            let detail = match &node.op {
                LoweredOp::Source(s) => format!("tap={:?}", self.taps[*s]),
                LoweredOp::Select(p) => format!("pred={p:?}"),
                LoweredOp::Project(cols) => format!("cols={cols:?}"),
                LoweredOp::NlJoin(p) => format!("pred={p:?}"),
                LoweredOp::HashJoin { l_cols, r_cols } => {
                    format!("keys={l_cols:?}={r_cols:?}")
                }
                LoweredOp::UnionAll => String::new(),
                LoweredOp::Distinct => String::new(),
                LoweredOp::Aggregate { keys, aggs } => {
                    format!("keys={keys:?} aggs={}", aggs.len())
                }
            };
            let inputs: Vec<usize> = self
                .consumers
                .iter()
                .enumerate()
                .flat_map(|(j, cs)| cs.iter().filter(|(c, _)| *c == i).map(move |_| j))
                .collect();
            let _ = write!(
                out,
                "[{i:>2}] {:<9} {:<28} rows={:<6} rate={:<8.2} in={inputs:?}",
                node.op.name(),
                detail,
                node.state.rows(),
                node.rate,
            );
            if node.shared_by > 1 {
                let _ = write!(out, " shared(x{})", node.shared_by);
            }
            for &v in &self.node_views[i] {
                let _ = write!(out, " -> view #{v} [{:?}]", self.views[v].schema);
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Sorted `(row, multiplicity)` fingerprint of a view — the swap gate's
/// comparison key.
fn view_row_multiset(view: &RootView) -> Vec<(Row, usize)> {
    let mut rows: Vec<(Row, usize)> = view
        .rows
        .iter()
        .map(|(row, instances)| (row.clone(), instances.len()))
        .collect();
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::CollectingSink;
    use crate::engine::{EngineConfig, Side, StreamEngine};
    use tp_core::lineage::{Lineage, TupleId};
    use tp_core::tuple::TpTuple;
    use tp_relalg::aggregate::AggFn;
    use tp_relalg::incremental::bind_sources;
    use tp_relalg::predicate::{CmpOp, Predicate};

    fn placeholder(cols: &[&str]) -> Relation {
        Relation::empty(Schema::new(cols.iter().copied()))
    }

    /// join(Except, Intersect on fact key) → aggregate count per key.
    fn alert_plan() -> Plan {
        Plan::values(placeholder(&["k", "ts", "te"]))
            .hash_join(
                Plan::values(placeholder(&["k", "ts", "te"])),
                vec![0],
                vec![0],
            )
            .aggregate(vec![0], vec![AggFn::Count, AggFn::Max(2)])
    }

    /// Duplicate-free two-sided workload: per step one tuple per side of
    /// the same fact, right shifted by one — every op has output (Except
    /// the left-only sliver, Intersect the overlap).
    fn push_workload(engine: &mut StreamEngine, n: i64) {
        for k in 0..n {
            let fact = Fact::single(k % 4);
            engine.push(
                Side::Left,
                TpTuple::new(
                    fact.clone(),
                    Lineage::var(TupleId(2 * k as u64)),
                    Interval::at(2 * k, 2 * k + 3),
                ),
            );
            engine.push(
                Side::Right,
                TpTuple::new(
                    fact,
                    Lineage::var(TupleId(2 * k as u64 + 1)),
                    Interval::at(2 * k + 1, 2 * k + 4),
                ),
            );
        }
    }

    fn batch_rows(plan: &Plan, sink: &CollectingSink, taps: &[SetOp], schema: &Schema) -> Vec<Row> {
        let tables: Vec<Relation> = taps
            .iter()
            .map(|&op| encode_relation(&sink.relation(op), schema))
            .collect();
        let mut rows = bind_sources(plan, &tables).execute().rows;
        rows.sort();
        rows
    }

    #[test]
    fn compiled_pipeline_matches_batch_execute() {
        let plan = alert_plan();
        let taps = [SetOp::Except, SetOp::Intersect];
        let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        push_workload(&mut engine, 40);
        for w in [9, 17, 30] {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        let schema = Schema::new(["k", "ts", "te"]);
        let expect = batch_rows(&plan, &sink, &taps, &schema);
        let got = engine.pipeline().unwrap().materialized();
        assert!(!expect.is_empty(), "vacuous: batch output is empty");
        assert_eq!(got.rows, expect);
        assert_eq!(got.schema.columns(), &["l.k", "count", "max_2"]);
    }

    #[test]
    fn select_project_distinct_union_pipeline_matches_batch() {
        let leaf = || Plan::values(placeholder(&["k", "ts", "te"]));
        let plan = leaf()
            .select(Predicate::col_const(CmpOp::Ge, 1, Value::int(4)))
            .union_all(leaf().project(vec![0, 1, 2]))
            .project(vec![0])
            .distinct();
        let taps = [SetOp::Union, SetOp::Except];
        let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        push_workload(&mut engine, 30);
        for w in [7, 15, 22] {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        let schema = Schema::new(["k", "ts", "te"]);
        let expect = batch_rows(&plan, &sink, &taps, &schema);
        let got = engine.pipeline().unwrap().materialized();
        assert!(!expect.is_empty());
        assert_eq!(got.rows, expect);
    }

    #[test]
    fn nl_join_theta_pipeline_matches_batch() {
        let leaf = || Plan::values(placeholder(&["k", "ts", "te"]));
        // Interval-overlap theta join: the paper's inequality-join shape.
        let plan = leaf().nl_join(leaf(), Predicate::overlap(1, 2, 4, 5));
        let taps = [SetOp::Except, SetOp::Intersect];
        let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        push_workload(&mut engine, 24);
        for w in [11, 19] {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        let schema = Schema::new(["k", "ts", "te"]);
        let expect = batch_rows(&plan, &sink, &taps, &schema);
        let got = engine.pipeline().unwrap().materialized();
        assert_eq!(got.rows, expect);
    }

    #[test]
    fn join_lineage_is_conjunction_of_matching_instances() {
        let leaf = || Plan::values(placeholder(&["k", "ts", "te"]));
        let plan = leaf().hash_join(leaf(), vec![0], vec![0]);
        let taps = [SetOp::Except, SetOp::Intersect];
        let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        // One left-only tuple and one both-sides fact: Except carries the
        // left-only output, Intersect the conjunction output.
        engine.push(
            Side::Left,
            TpTuple::new("a", Lineage::var(TupleId(1)), Interval::at(0, 10)),
        );
        engine.push(
            Side::Left,
            TpTuple::new("b", Lineage::var(TupleId(2)), Interval::at(0, 10)),
        );
        engine.push(
            Side::Right,
            TpTuple::new("b", Lineage::var(TupleId(3)), Interval::at(0, 10)),
        );
        engine.finish(&mut sink).unwrap();
        let out = engine.pipeline().unwrap().materialized_lineage();
        // 'a' is Except-only (no Intersect partner): no join output for it;
        // 'b' appears on both taps and joins.
        assert_eq!(out.len(), 1);
        let (row, lineage) = &out[0];
        assert_eq!(row[0], Value::str("b"));
        assert!(
            matches!(lineage, LineageTree::And(_, _)),
            "join output lineage must be a conjunction, got {lineage:?}"
        );
    }

    #[test]
    fn extends_keep_state_bounded_and_match_batch() {
        // Immortal facts cut by the watermark: every advance re-emits each
        // fact's output as an Extend (same lineage handle across the
        // split), so each operator only retracts-and-regrows its standing
        // rows — state_rows plateaus while the watermark runs on.
        let plan = alert_plan();
        let taps = [SetOp::Union, SetOp::Intersect];
        let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        for f in 0..4i64 {
            for (side, off) in [(Side::Left, 0), (Side::Right, 1)] {
                let t = TpTuple::new(
                    Fact::single(f),
                    Lineage::var(TupleId((f * 2 + off) as u64)),
                    Interval::at(0, 300),
                );
                engine.push(side, t);
            }
        }
        let mut state = Vec::new();
        for epoch in 0..30i64 {
            engine.advance((epoch + 1) * 10, &mut sink).unwrap();
            state.push(engine.pipeline().unwrap().state_rows());
        }
        engine.finish(&mut sink).unwrap();
        let schema = Schema::new(["k", "ts", "te"]);
        let expect = batch_rows(&plan, &sink, &taps, &schema);
        let got = engine.pipeline().unwrap().materialized();
        assert_eq!(got.rows, expect);
        // Plateau: the second half of the run adds no standing state.
        let mid = state[state.len() / 2];
        let end = *state.last().unwrap();
        assert_eq!(mid, end, "state kept growing: {state:?}");
        assert!(end > 0);
    }

    #[test]
    fn compile_rejects_bad_taps_and_sort() {
        let plan = alert_plan();
        assert!(matches!(
            Pipeline::compile(&plan, &[SetOp::Union]),
            Err(PipelineError::TapCount {
                sources: 2,
                taps: 1
            })
        ));
        let sorted = Plan::values(placeholder(&["k", "ts", "te"])).sort(vec![0]);
        assert!(matches!(
            Pipeline::compile(&sorted, &[SetOp::Union]),
            Err(PipelineError::Lower(LowerError::Sort))
        ));
        let thin = Plan::values(placeholder(&["ts", "te"]));
        assert!(matches!(
            Pipeline::compile(&thin, &[SetOp::Union]),
            Err(PipelineError::SourceArity {
                source: 0,
                arity: 2
            })
        ));
        // A tap outside the engine's maintained ops is rejected at attach.
        let cfg = EngineConfig {
            ops: vec![SetOp::Union],
            ..Default::default()
        };
        let leaf = Plan::values(placeholder(&["k", "ts", "te"]));
        assert!(matches!(
            StreamEngine::with_plan(cfg, &leaf, &[SetOp::Except]),
            Err(PipelineError::TapNotMaintained(SetOp::Except))
        ));
    }

    #[test]
    fn compile_shared_merges_identical_subdags() {
        // Two plans over the identical hash join; only the tops differ.
        let join = || {
            Plan::values(placeholder(&["k", "ts", "te"])).hash_join(
                Plan::values(placeholder(&["k", "ts", "te"])),
                vec![0],
                vec![0],
            )
        };
        let a = join().aggregate(vec![0], vec![AggFn::Count]);
        let b = join().distinct();
        let taps = vec![
            vec![SetOp::Except, SetOp::Intersect],
            vec![SetOp::Except, SetOp::Intersect],
        ];
        let shared = Pipeline::compile_shared(&[a.clone(), b.clone()], &taps).unwrap();
        // Two sources + one join shared; aggregate and distinct private.
        assert_eq!(shared.plan_count(), 2);
        assert_eq!(shared.shared_operators(), 3);
        assert_eq!(shared.nodes.len(), 5);
        // Different tap bindings must NOT merge.
        let other_taps = vec![
            vec![SetOp::Except, SetOp::Intersect],
            vec![SetOp::Union, SetOp::Intersect],
        ];
        let split = Pipeline::compile_shared(&[a, b], &other_taps).unwrap();
        assert_eq!(split.shared_operators(), 1); // only the Intersect source
        assert_eq!(split.nodes.len(), 7);
    }

    #[test]
    fn shared_pipeline_matches_per_plan_views_and_is_subadditive() {
        let join = || {
            Plan::values(placeholder(&["k", "ts", "te"])).hash_join(
                Plan::values(placeholder(&["k", "ts", "te"])),
                vec![0],
                vec![0],
            )
        };
        let plans = [
            join().aggregate(vec![0], vec![AggFn::Count, AggFn::Max(2)]),
            join().project(vec![0]).distinct(),
        ];
        let taps = vec![
            vec![SetOp::Except, SetOp::Intersect],
            vec![SetOp::Except, SetOp::Intersect],
        ];
        let mut shared = StreamEngine::with_plans(EngineConfig::default(), &plans, &taps).unwrap();
        let mut solo: Vec<StreamEngine> = plans
            .iter()
            .map(|p| StreamEngine::with_plan(EngineConfig::default(), p, &taps[0]).unwrap())
            .collect();
        let mut sink = CollectingSink::new();
        push_workload(&mut shared, 40);
        for e in &mut solo {
            push_workload(e, 40);
        }
        for w in [9, 17, 30] {
            shared.advance(w, &mut sink).unwrap();
            for e in &mut solo {
                e.advance(w, &mut CollectingSink::new()).unwrap();
            }
        }
        shared.finish(&mut sink).unwrap();
        for e in &mut solo {
            e.finish(&mut CollectingSink::new()).unwrap();
        }
        let sp = shared.pipeline().unwrap();
        let schema = Schema::new(["k", "ts", "te"]);
        for (i, e) in solo.iter().enumerate() {
            let expect = batch_rows(&plans[i], &sink, &taps[i], &schema);
            assert!(!expect.is_empty());
            assert_eq!(sp.materialized_view(i).rows, expect);
            assert_eq!(
                e.pipeline().unwrap().materialized().rows,
                sp.materialized_view(i).rows
            );
        }
        // Sub-additive state: the shared join is paid for once.
        let duplicated: usize = solo
            .iter()
            .map(|e| e.pipeline().unwrap().state_rows())
            .sum();
        assert!(
            sp.state_rows() < duplicated,
            "shared {} !< duplicated {duplicated}",
            sp.state_rows()
        );
    }

    #[test]
    fn reoptimize_swaps_plan_and_preserves_views() {
        // Keyed NlJoin: the re-optimizer turns it into a HashJoin once it
        // sees any rates, so the swap always fires.
        let plan = Plan::values(placeholder(&["k", "ts", "te"]))
            .nl_join(
                Plan::values(placeholder(&["k", "ts", "te"])),
                Predicate::col_eq(0, 3),
            )
            .aggregate(vec![0], vec![AggFn::Count]);
        let taps = [SetOp::Except, SetOp::Intersect];
        let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        push_workload(&mut engine, 40);
        for w in [9, 17] {
            engine.advance(w, &mut sink).unwrap();
        }
        let before = engine.pipeline().unwrap().materialized();
        let stats_before = engine.pipeline().unwrap().operator_deltas();
        assert!(
            stats_before.iter().any(|(n, _)| *n == "nl_join"),
            "precondition: frozen plan runs the nested-loop join"
        );
        assert!(engine.pipeline_mut().unwrap().reoptimize());
        let after_swap = engine.pipeline().unwrap();
        assert_eq!(after_swap.reopts(), 1);
        assert!(
            after_swap
                .operator_deltas()
                .iter()
                .any(|(n, _)| *n == "hash_join"),
            "swap should have installed the hash join"
        );
        assert_eq!(after_swap.materialized().rows, before.rows);
        // The swapped pipeline keeps maintaining correctly.
        engine.advance(30, &mut sink).unwrap();
        engine.finish(&mut sink).unwrap();
        let schema = Schema::new(["k", "ts", "te"]);
        let expect = batch_rows(&plan, &sink, &taps, &schema);
        assert!(!expect.is_empty());
        assert_eq!(engine.pipeline().unwrap().materialized().rows, expect);
        // Idempotent: re-running against the same profile is a no-op.
        assert!(!engine.pipeline_mut().unwrap().reoptimize());
    }

    #[test]
    fn engine_reopt_cadence_triggers_swaps() {
        let plan = Plan::values(placeholder(&["k", "ts", "te"]))
            .nl_join(
                Plan::values(placeholder(&["k", "ts", "te"])),
                Predicate::col_eq(0, 3),
            )
            .distinct();
        let taps = [SetOp::Except, SetOp::Intersect];
        let cfg = EngineConfig {
            reopt_every: Some(2),
            ..Default::default()
        };
        let mut engine = StreamEngine::with_plan(cfg, &plan, &taps).unwrap();
        let mut sink = CollectingSink::new();
        push_workload(&mut engine, 40);
        for w in [9, 17, 30] {
            engine.advance(w, &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        assert!(engine.pipeline().unwrap().reopts() >= 1);
        let schema = Schema::new(["k", "ts", "te"]);
        let expect = batch_rows(&plan, &sink, &taps, &schema);
        assert!(!expect.is_empty());
        assert_eq!(engine.pipeline().unwrap().materialized().rows, expect);
    }

    #[test]
    fn describe_reports_sharing_rates_and_views() {
        let join = || {
            Plan::values(placeholder(&["k", "ts", "te"])).hash_join(
                Plan::values(placeholder(&["k", "ts", "te"])),
                vec![0],
                vec![0],
            )
        };
        let plans = [join().distinct(), join().project(vec![0])];
        let taps = vec![
            vec![SetOp::Except, SetOp::Intersect],
            vec![SetOp::Except, SetOp::Intersect],
        ];
        let mut engine = StreamEngine::with_plans(EngineConfig::default(), &plans, &taps).unwrap();
        let mut sink = CollectingSink::new();
        push_workload(&mut engine, 20);
        engine.advance(15, &mut sink).unwrap();
        let text = engine.pipeline().unwrap().describe();
        assert!(text.contains("plans: 2"), "{text}");
        assert!(text.contains("shared(x2)"), "{text}");
        assert!(text.contains("-> view #0"), "{text}");
        assert!(text.contains("-> view #1"), "{text}");
        assert!(text.contains("rate="), "{text}");
    }
}
