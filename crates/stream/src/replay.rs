//! Stream replay: turning a batch relation pair into a reproducible
//! out-of-order arrival sequence with a watermark schedule.
//!
//! A [`StreamScript`] is the deterministic unit the property tests, the
//! benchmarks and the workload adapters share: every tuple of the pair is
//! assigned an *arrival time* `Ts + delay` with `delay ∈ [0, lateness]`
//! drawn from a seeded RNG, arrivals are ordered by that time (any
//! permutation within the lateness bound can occur), and a watermark
//! advance to `arrival_time − lateness` is injected every
//! `advance_every` arrivals — safe by construction: a tuple arriving later
//! has `Ts ≥ arrival − lateness`, so scripts never drop tuples as late.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use tp_core::interval::TimePoint;
use tp_core::ops::SetOp;
use tp_core::relation::TpRelation;
use tp_core::tuple::TpTuple;

use crate::delta::CollectingSink;
use crate::engine::{AdvanceStats, EngineConfig, Side, StreamEngine};

/// One step of a replay.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayEvent {
    /// A tuple arrives on one input side.
    Arrive(Side, TpTuple),
    /// The watermark advances to the given time.
    Advance(TimePoint),
}

/// Parameters of script generation.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Maximum arrival delay after a tuple's start (the lateness bound).
    pub lateness: i64,
    /// A watermark advance is injected every this many arrivals.
    pub advance_every: usize,
    /// RNG seed for the arrival delays.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            lateness: 4,
            advance_every: 64,
            seed: 7,
        }
    }
}

/// A deterministic arrival + watermark sequence over a relation pair.
#[derive(Debug, Clone, Default)]
pub struct StreamScript {
    /// The steps, in replay order.
    pub events: Vec<ReplayEvent>,
}

/// Totals of one script replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayTotals {
    /// Watermark advances executed.
    pub advances: u64,
    /// LAWA windows swept across all advances.
    pub windows: usize,
    /// `Insert` deltas across all ops.
    pub inserts: u64,
    /// `Extend` deltas across all ops.
    pub extends: u64,
    /// Tuples dropped as late `[left, right]` (always zero for generated
    /// scripts).
    pub late: [u64; 2],
}

impl ReplayTotals {
    fn absorb(&mut self, stats: &AdvanceStats) {
        self.advances += 1;
        self.windows += stats.windows;
        self.inserts += stats.inserts;
        self.extends += stats.extends;
    }
}

impl StreamScript {
    /// Builds a script replaying `r` and `s` with out-of-order arrivals
    /// within `cfg.lateness` and periodic watermark advances.
    pub fn from_pair(r: &TpRelation, s: &TpRelation, cfg: &ReplayConfig) -> StreamScript {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let lateness = cfg.lateness.max(0);
        let mut arrivals: Vec<(TimePoint, u64, Side, TpTuple)> = Vec::new();
        for (side, rel) in [(Side::Left, r), (Side::Right, s)] {
            for t in rel.iter() {
                let delay = rng.random_range(0..=lateness);
                // The random tiebreak shuffles equal arrival times, so
                // same-instant arrivals interleave across sides too.
                arrivals.push((
                    t.interval.start() + delay,
                    rng.random::<u64>(),
                    side,
                    t.clone(),
                ));
            }
        }
        arrivals.sort_by_key(|a| (a.0, a.1));

        let advance_every = cfg.advance_every.max(1);
        let mut events = Vec::with_capacity(arrivals.len() + arrivals.len() / advance_every + 2);
        let mut last_w = TimePoint::MIN;
        let mut hi = TimePoint::MIN;
        for (i, (at, _, side, t)) in arrivals.into_iter().enumerate() {
            hi = hi.max(t.interval.end());
            events.push(ReplayEvent::Arrive(side, t));
            if (i + 1) % advance_every == 0 {
                let w = at - lateness;
                if w > last_w {
                    events.push(ReplayEvent::Advance(w));
                    last_w = w;
                }
            }
        }
        if hi > last_w {
            events.push(ReplayEvent::Advance(hi));
        }
        StreamScript { events }
    }

    /// Number of arrival events.
    pub fn arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ReplayEvent::Arrive(..)))
            .count()
    }

    /// Number of watermark advances.
    pub fn advances(&self) -> usize {
        self.events.len() - self.arrivals()
    }

    /// Replays the script into a fresh engine, collecting the materialized
    /// results per operation.
    pub fn run(&self, cfg: EngineConfig) -> (CollectingSink, ReplayTotals) {
        let mut sink = CollectingSink::new();
        let totals = self.run_into(cfg, &mut sink);
        (sink, totals)
    }

    /// Replays the script into the given sink.
    pub fn run_into(
        &self,
        cfg: EngineConfig,
        sink: &mut impl crate::delta::StreamSink,
    ) -> ReplayTotals {
        let mut engine = StreamEngine::new(cfg);
        let mut totals = ReplayTotals::default();
        for event in &self.events {
            match event {
                ReplayEvent::Arrive(side, t) => {
                    engine.push(*side, t.clone());
                }
                ReplayEvent::Advance(w) => {
                    let stats = engine
                        .advance(*w, sink)
                        .expect("script watermarks monotone");
                    totals.absorb(&stats);
                }
            }
        }
        if let Ok(stats) = engine.finish(sink) {
            if stats.windows > 0 {
                totals.absorb(&stats);
            }
        }
        totals.late = engine.late_dropped();
        totals
    }

    /// The naive streaming baseline: on every watermark advance, re-run
    /// batch LAWA over *all* tuples released so far (clipped to the closed
    /// region) and throw the previous result away. Returns the final result
    /// per op — used by benchmarks to quantify what incrementality buys.
    pub fn run_naive_rebatch(&self, ops_list: &[SetOp]) -> Vec<(SetOp, TpRelation)> {
        let mut seen: [Vec<TpTuple>; 2] = [Vec::new(), Vec::new()];
        let mut results: Vec<(SetOp, TpRelation)> =
            ops_list.iter().map(|&op| (op, TpRelation::new())).collect();
        let mut hi = TimePoint::MIN;
        let mut last_w = TimePoint::MIN;
        let rerun =
            |seen: &[Vec<TpTuple>; 2], w: TimePoint, results: &mut Vec<(SetOp, TpRelation)>| {
                let clip = |side: &Vec<TpTuple>| -> TpRelation {
                    let (closed, _) = tp_core::window::split_at_watermark(side.iter().cloned(), w);
                    TpRelation::try_new(closed).expect("clipped inputs duplicate-free")
                };
                let r = clip(&seen[0]);
                let s = clip(&seen[1]);
                for (op, out) in results.iter_mut() {
                    *out = tp_core::ops::apply(*op, &r, &s);
                }
            };
        for event in &self.events {
            match event {
                ReplayEvent::Arrive(side, t) => {
                    hi = hi.max(t.interval.end());
                    seen[side.idx()].push(t.clone());
                }
                ReplayEvent::Advance(w) => {
                    rerun(&seen, *w, &mut results);
                    last_w = *w;
                }
            }
        }
        // Mirror the engine's `finish`: one closing re-run only if the
        // script's last watermark did not already cover everything.
        if hi > last_w {
            rerun(&seen, hi, &mut results);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::fact::Fact;
    use tp_core::interval::Interval;
    use tp_core::ops;
    use tp_core::relation::VarTable;

    fn chain_pair(seed_fact: i64) -> (TpRelation, TpRelation) {
        let mut vars = VarTable::new();
        let mut rows_r = Vec::new();
        let mut rows_s = Vec::new();
        for k in 0..30i64 {
            rows_r.push((Fact::single(seed_fact), Interval::at(9 * k, 9 * k + 6), 0.5));
            rows_s.push((
                Fact::single(seed_fact),
                Interval::at(9 * k + 3, 9 * k + 8),
                0.5,
            ));
        }
        (
            TpRelation::base("r", rows_r, &mut vars).unwrap(),
            TpRelation::base("s", rows_s, &mut vars).unwrap(),
        )
    }

    #[test]
    fn scripts_are_deterministic_and_complete() {
        let (r, s) = chain_pair(1);
        let cfg = ReplayConfig::default();
        let a = StreamScript::from_pair(&r, &s, &cfg);
        let b = StreamScript::from_pair(&r, &s, &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.arrivals(), r.len() + s.len());
        assert!(a.advances() >= 1);
        // Watermarks are strictly increasing.
        let mut last = TimePoint::MIN;
        for e in &a.events {
            if let ReplayEvent::Advance(w) = e {
                assert!(*w > last);
                last = *w;
            }
        }
    }

    #[test]
    fn replayed_results_match_batch_and_drop_nothing() {
        let (r, s) = chain_pair(2);
        for (lateness, every, seed) in [(0, 1, 1), (4, 8, 2), (9, 200, 3)] {
            let script = StreamScript::from_pair(
                &r,
                &s,
                &ReplayConfig {
                    lateness,
                    advance_every: every,
                    seed,
                },
            );
            let (sink, totals) = script.run(EngineConfig {
                verify_batch: true,
                ..Default::default()
            });
            assert_eq!(totals.late, [0, 0], "scripts never drop tuples");
            for op in SetOp::ALL {
                assert_eq!(
                    sink.relation(op).canonicalized(),
                    ops::apply(op, &r, &s).canonicalized(),
                    "lateness {lateness}, every {every}, {op}"
                );
            }
        }
    }

    #[test]
    fn naive_rebatch_reaches_the_same_final_result() {
        let (r, s) = chain_pair(3);
        let script = StreamScript::from_pair(&r, &s, &ReplayConfig::default());
        for (op, out) in script.run_naive_rebatch(&SetOp::ALL) {
            assert_eq!(
                out.canonicalized(),
                ops::apply(op, &r, &s).canonicalized(),
                "{op}"
            );
        }
    }
}
