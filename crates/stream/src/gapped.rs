//! The ingestion index: a gapped, learned-model-indexed buffer for
//! out-of-order tuple arrival.
//!
//! The legacy ingest path buffers arrivals in an unsorted `Vec` and pays a
//! full `O(k log k)` comparison sort at **every** watermark advance — on
//! the sequential path and once per region worker on the parallel path.
//! [`GappedBuffer`] replaces that with the classic gapped-array + learned
//! index combination (PGM/ALEX-style): tuples live in a slot array with
//! deliberate gaps, keyed by `(winTs, seq)`; a piecewise-linear model over
//! the timestamps predicts where a key belongs, so an out-of-order insert
//! lands in the right gap after an ε-bounded local search and at most a
//! short shift — O(1) amortized. A watermark advance then *drains* an
//! already-ordered prefix instead of sorting:
//!
//! * [`GappedBuffer::drain_below`] removes everything starting below the
//!   watermark and returns it in LAWA's `(F, Ts)` [`TpTuple::sort_key`]
//!   order. The index keeps timestamp order for free; the fact-major
//!   regroup is a hash group-by plus a sort over the **distinct facts**
//!   only — `O(k + f log f)` for `k` drained tuples over `f` facts, never
//!   a per-tuple comparison sort.
//! * The drained prefix's timestamp-ordered start points come along for
//!   free ([`Drained::starts`]), which is exactly what the region planner
//!   needs for **exact** tuple-count quantile cuts
//!   (`RegionPlan::balanced_from_index`) — no 2048-sample approximation.
//! * [`GappedBuffer::cut_offsets`] answers the same quantile question for
//!   the *buffered* (not yet drained) population, and
//!   [`GappedBuffer::rank_below`] estimates the buffered load below a
//!   prospective watermark straight off the model — the `StreamServer`
//!   scheduler's per-tenant gauge.
//!
//! ## Retrain policy
//!
//! The model is rebuilt ("retrained") together with the slot layout when
//! the structure degrades, never incrementally patched:
//!
//! * **density overflow** — occupancy crossing `MAX_OCCUPANCY` (7/8), or an
//!   insert finding no gap within [`MAX_SHIFT`] slots of its position;
//! * **model drift** — too many inserts escaping the ε-window around the
//!   model's prediction since the last retrain (each miss costs a full
//!   binary search; a bounded miss *rate* keeps inserts O(1) amortized).
//!
//! Drains never trigger a rebuild: the drained prefix stays dead space
//! until the append frontier reaches the array's end, and the rebuild that
//! fires there re-spaces the survivors over the full retained capacity.
//! Capacity is monotone — it tracks the historical peak buffered load
//! (plus 50 % headroom), so a steady-state stream pays roughly one O(n)
//! rebuild per capacity's worth of inserts — amortized O(1) per tuple.
//!
//! A rebuild re-spaces the entries evenly at [`GAP_FACTOR`]× slack and
//! fits fresh piecewise-linear segments with a shrinking-cone pass bounded
//! by [`MODEL_EPSILON`] slots of error.
//!
//! ## When the legacy buffer still wins
//!
//! The drain's fact regroup sorts the distinct facts; a stream whose every
//! tuple carries a fresh fact (`f ≈ k`) pays `O(k log k)` there and gains
//! nothing over sorting — plus per-insert index upkeep. Timestamp floods
//! (many tuples on one timestamp) similarly defeat any timestamp model:
//! every insert in the flood escapes the ε-window. `BufferKind::Legacy`
//! stays selectable for those shapes (and for differential testing).

use tp_core::arena::FastMap;
use tp_core::interval::TimePoint;
use tp_core::tuple::TpTuple;

/// Index-level observability: retrain/miss counters and the shift-distance
/// histogram in the global [`tp_obs`] registry, plus a `retrain` sub-span
/// timing each rebuild. Counters are one relaxed atomic each, cheap enough
/// for the insert hot path; the module is a no-op while disabled (the
/// `observability` bench's uninstrumented baseline —
/// [`crate::obs::set_obs_enabled`] flips it together with the arena's
/// flag).
mod index_obs {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Globally enables/disables index metric recording (default: on).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    pub(super) fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    struct Handles {
        retrains: Arc<tp_obs::Counter>,
        misses: Arc<tp_obs::Counter>,
        shifts: Arc<tp_obs::Histogram>,
        ctx: u32,
    }

    fn handles() -> &'static Handles {
        static HANDLES: OnceLock<Handles> = OnceLock::new();
        HANDLES.get_or_init(|| {
            let reg = tp_obs::global();
            Handles {
                retrains: reg.counter("tp_index_retrains_total", &[]),
                misses: reg.counter("tp_index_model_misses_total", &[]),
                shifts: reg.histogram("tp_index_shift_distance", &[]),
                ctx: tp_obs::ctx_id("index"),
            }
        })
    }

    /// Counts one ε-window escape (full binary-search fallback).
    pub(super) fn record_miss() {
        if enabled() {
            handles().misses.inc();
        }
    }

    /// Counts one insert that displaced `dist` occupied slots.
    pub(super) fn record_shift(dist: usize) {
        if enabled() {
            handles().shifts.record(dist as u64);
        }
    }

    /// Counts one rebuild and records its `retrain` sub-span (`arg` =
    /// entries re-spaced).
    pub(super) fn record_retrain(ts_ns: u64, dur_ns: u64, entries: u64) {
        if enabled() {
            let h = handles();
            h.retrains.inc();
            tp_obs::record_span("retrain", "sub", ts_ns, dur_ns, h.ctx, entries);
        }
    }

    /// Nanosecond clock read, zero when disabled (rebuilds pass it back to
    /// [`record_retrain`]).
    pub(super) fn now_ns_if_enabled() -> u64 {
        if enabled() {
            tp_obs::now_ns()
        } else {
            0
        }
    }
}

/// Globally enables/disables gapped-index metric recording (default: on).
pub use index_obs::set_enabled as set_obs_enabled;

/// Maximum prediction error (in slots) the piecewise-linear model accepts
/// at retrain time: every key's true slot is within ε of the model's
/// prediction until inserts drift the layout.
pub const MODEL_EPSILON: usize = 16;

/// Half-width of the local search window around a prediction before the
/// insert falls back to a full binary search (a counted *model miss*).
const SEARCH_WINDOW: usize = 4 * MODEL_EPSILON;

/// Farthest an insert will shift neighbors to reach a gap before forcing a
/// rebuild instead.
const MAX_SHIFT: usize = 32;

/// Slot-per-entry ratio after a rebuild (2 = 50 % occupancy).
const GAP_FACTOR: usize = 2;

/// Smallest slot allocation (avoids rebuild thrash on tiny buffers).
const MIN_SLOTS: usize = 16;

/// One occupied slot: the `(winTs, seq)` key plus its tuple. `seq` is the
/// arrival counter — it makes keys unique (distinct facts may share a
/// start point) and the layout deterministic for any arrival order.
#[derive(Debug, Clone)]
struct Slot {
    ts: TimePoint,
    seq: u64,
    tuple: TpTuple,
}

/// One linear segment of the learned model: keys at or above `first_ts`
/// (up to the next segment) predict slot `first_slot + slope · (ts −
/// first_ts)`.
#[derive(Debug, Clone, Copy)]
struct ModelSegment {
    first_ts: TimePoint,
    first_slot: f64,
    slope: f64,
}

/// Per-advance index gauges, drained by
/// [`GappedBuffer::take_epoch_stats`] (the engine resets them every
/// watermark advance and surfaces them through `AdvanceStats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEpochStats {
    /// Tuples inserted since the last drain.
    pub inserts: u64,
    /// Model + layout rebuilds since the last drain.
    pub retrains: u64,
    /// Inserts whose key escaped the ε-window around the model's
    /// prediction (each cost a full binary search).
    pub model_misses: u64,
    /// Histogram of per-insert shift distances; bucket `d` counts inserts
    /// that shifted `d` occupied slots (`MAX_SHIFT` buckets, last bucket
    /// absorbs the tail).
    pub shifts: [u32; MAX_SHIFT + 1],
}

impl Default for IndexEpochStats {
    fn default() -> Self {
        IndexEpochStats {
            inserts: 0,
            retrains: 0,
            model_misses: 0,
            shifts: [0; MAX_SHIFT + 1],
        }
    }
}

impl IndexEpochStats {
    /// Merges another epoch's counters into this one (the engine combines
    /// both sides' buffers).
    pub fn absorb(&mut self, other: &IndexEpochStats) {
        self.inserts += other.inserts;
        self.retrains += other.retrains;
        self.model_misses += other.model_misses;
        for (a, b) in self.shifts.iter_mut().zip(other.shifts.iter()) {
            *a += *b;
        }
    }

    /// The 99th-percentile shift distance (0 when nothing was inserted).
    pub fn shift_p99(&self) -> u32 {
        let total: u64 = self.shifts.iter().map(|&c| u64::from(c)).sum();
        if total == 0 {
            return 0;
        }
        let threshold = total - total / 100; // ceil(0.99 · total)
        let mut seen = 0u64;
        for (d, &c) in self.shifts.iter().enumerate() {
            seen += u64::from(c);
            if seen >= threshold {
                return d as u32;
            }
        }
        MAX_SHIFT as u32
    }
}

/// The closed prefix a drain released.
#[derive(Debug, Clone, Default)]
pub struct Drained {
    /// The drained tuples in LAWA's `(F, Ts)` sort-key order — ready to
    /// sweep, no comparison sort on the tuple count.
    pub tuples: Vec<TpTuple>,
    /// The same tuples' start points in **timestamp** order (the index's
    /// native order) — the exact-quantile input for
    /// `RegionPlan::balanced_from_index`.
    pub starts: Vec<TimePoint>,
}

/// A gapped, learned-index tuple buffer ordered by `(winTs, seq)`. See the
/// module docs for the design; `tp-stream`'s engine owns one per input
/// side under `BufferKind::Sorted`.
#[derive(Debug, Default)]
pub struct GappedBuffer {
    slots: Vec<Option<Slot>>,
    /// Occupied-slot count.
    len: usize,
    /// Index of the first occupied slot (everything below is a drained
    /// gap), `slots.len()` when empty.
    head: usize,
    /// One past the last occupied slot.
    tail: usize,
    /// Arrival counter; the tie-breaking half of the key.
    seq: u64,
    model: Vec<ModelSegment>,
    /// Model misses since the last retrain (drives the drift trigger).
    misses_since_retrain: u64,
    /// Stash for the one insert `place_near` could not complete (picked
    /// back up by the rebuild fallback).
    pending_slot: Option<Slot>,
    epoch: IndexEpochStats,
    retrains_total: u64,
}

impl GappedBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        GappedBuffer::default()
    }

    /// Buffered tuple count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total rebuilds over the buffer's lifetime.
    pub fn retrains_total(&self) -> u64 {
        self.retrains_total
    }

    /// Current gap occupancy in permille (0 when no slots are allocated).
    pub fn occupancy_permille(&self) -> u32 {
        if self.slots.is_empty() {
            0
        } else {
            (self.len * 1000 / self.slots.len()) as u32
        }
    }

    /// Allocated slot count (occupied + gaps).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Iterates the buffered tuples in `(winTs, seq)` order.
    pub fn iter(&self) -> impl Iterator<Item = &TpTuple> {
        self.slots[self.head.min(self.slots.len())..self.tail]
            .iter()
            .filter_map(|s| s.as_ref().map(|s| &s.tuple))
    }

    /// The largest interval end point among the buffered tuples (O(n)
    /// scan; `StreamEngine::finish` calls it once per stream).
    pub fn max_interval_end(&self) -> Option<TimePoint> {
        if self.len == 0 {
            None
        } else {
            self.iter().map(|t| t.interval.end()).max()
        }
    }

    /// Takes and resets the per-advance gauges.
    pub fn take_epoch_stats(&mut self) -> IndexEpochStats {
        std::mem::take(&mut self.epoch)
    }

    /// Inserts one tuple, keyed by its start point and an internal arrival
    /// counter. O(1) amortized: an ε-bounded search around the model's
    /// prediction, a local shift within gap slack, and an occasional O(n)
    /// rebuild paid for by O(n) preceding inserts.
    pub fn push(&mut self, tuple: TpTuple) {
        let ts = tuple.interval.start();
        let seq = self.seq;
        self.seq += 1;
        self.epoch.inserts += 1;
        // Density overflow or accumulated model drift: retrain first, then
        // place into the fresh layout.
        let drifted = self.misses_since_retrain > (self.len as u64 / 8).max(32);
        if self.len + 1 >= self.slots.len() * 7 / 8 || drifted {
            self.rebuild(Some(Slot { ts, seq, tuple }));
            return;
        }
        let pos = self.insertion_point(ts, seq);
        if !self.place_near(pos, Slot { ts, seq, tuple }) {
            // No gap within MAX_SHIFT on either side: rebuild, re-spacing
            // everything (the pending slot rides along).
            let slot = self.pending_slot.take().expect("stashed by place_near");
            self.rebuild(Some(slot));
        }
    }

    /// Drains every tuple starting below `w`, returning the prefix in
    /// `(F, Ts)` sort-key order together with its timestamp-ordered start
    /// points. O(k + f log f) for `k` drained tuples over `f` distinct
    /// facts.
    pub fn drain_below(&mut self, w: TimePoint) -> Drained {
        let boundary = self.lower_bound(w, 0, self.head, self.tail);
        let mut ts_order: Vec<TpTuple> = Vec::new();
        for slot in &mut self.slots[self.head.min(boundary)..boundary] {
            if let Some(s) = slot.take() {
                ts_order.push(s.tuple);
            }
        }
        self.len -= ts_order.len();
        self.head = boundary;
        if self.len == 0 {
            self.head = self.slots.len();
            self.tail = self.head;
        }
        // No rebuild here: the drained prefix stays dead space until the
        // append frontier reaches the array's end, whose rebuild re-spaces
        // over the full retained capacity — one O(n) rebuild per roughly
        // one capacity's worth of inserts, instead of one per drain.
        let starts: Vec<TimePoint> = ts_order.iter().map(|t| t.interval.start()).collect();
        Drained {
            tuples: regroup_fact_major(ts_order),
            starts,
        }
    }

    /// Exact tuple-count quantile start positions of the buffered tuples
    /// below `w`: `cuts[i]` is the start of the `⌈(i+1)·k/regions⌉`-th of
    /// the `k` qualifying tuples. The region planner's per-buffer answer;
    /// the engine combines both sides via
    /// `RegionPlan::balanced_from_index` on the drained starts instead,
    /// which merges the two sides exactly.
    pub fn cut_offsets(&self, w: TimePoint, regions: usize) -> Vec<TimePoint> {
        let regions = regions.max(1);
        let starts: Vec<TimePoint> = self
            .iter()
            .map(|t| t.interval.start())
            .take_while(|&s| s < w)
            .collect();
        let n = starts.len();
        if regions == 1 || n < regions {
            return Vec::new();
        }
        let mut cuts = Vec::with_capacity(regions - 1);
        for k in 1..regions {
            let cut = starts[(k * n / regions).min(n - 1)];
            if cut > starts[0] {
                cuts.push(cut);
            }
        }
        cuts.dedup();
        cuts
    }

    /// Estimated count of buffered tuples starting below `w`, read off the
    /// index in O(log n): the slot boundary for `w` scaled by the current
    /// occupancy. A *scheduling gauge* (the `StreamServer` budget split) —
    /// deterministic but approximate; it never affects results.
    pub fn rank_below(&self, w: TimePoint) -> usize {
        if self.len == 0 {
            return 0;
        }
        let boundary = self.lower_bound(w, 0, self.head, self.tail);
        let span = (self.tail - self.head).max(1);
        (self.len * (boundary - self.head.min(boundary)) / span).min(self.len)
    }

    /// The slot index `i` in `[lo, hi)` such that every occupied slot
    /// below `i` has key < `(ts, seq)` and every occupied slot at or above
    /// has key ≥: binary search with gap skipping, narrowed to the model's
    /// ε-window first.
    fn lower_bound(&self, ts: TimePoint, seq: u64, lo: usize, hi: usize) -> usize {
        let (mut lo, mut hi) = (lo.min(hi), hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            // The probe key: nearest occupied slot at or after mid (gaps
            // carry no key). An all-gap upper half means the answer is in
            // the lower half.
            let mut probe = mid;
            while probe < hi && self.slots[probe].is_none() {
                probe += 1;
            }
            if probe == hi {
                hi = mid;
                continue;
            }
            let s = self.slots[probe].as_ref().expect("probed occupied");
            if (s.ts, s.seq) < (ts, seq) {
                lo = probe + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The insertion slot for a new key: the model's prediction, verified
    /// within the ε-window, with a counted full-search fallback.
    fn insertion_point(&mut self, ts: TimePoint, seq: u64) -> usize {
        let predicted = self.predict(ts);
        let lo = predicted.saturating_sub(SEARCH_WINDOW).max(self.head);
        let hi = (predicted + SEARCH_WINDOW).min(self.tail);
        if lo < hi {
            let pos = self.lower_bound(ts, seq, lo, hi);
            // The windowed result is globally exact iff each side has a
            // witness: an occupied slot below `pos` inside the window
            // proves everything below sorts lower (the array is globally
            // sorted), and one at or above `pos` proves the other side.
            // Window edges touching head/tail need no witness.
            let lo_ok = pos > lo || lo == self.head;
            let hi_ok = hi == self.tail || self.slots[pos..hi].iter().any(|s| s.is_some());
            if lo_ok && hi_ok {
                return pos;
            }
        }
        self.epoch.model_misses += 1;
        self.misses_since_retrain += 1;
        index_obs::record_miss();
        self.lower_bound(ts, seq, self.head, self.tail)
    }

    /// Predicted slot for `ts` (clamped to the occupied span).
    fn predict(&self, ts: TimePoint) -> usize {
        let seg_idx = self.model.partition_point(|seg| seg.first_ts <= ts);
        let Some(seg) = seg_idx.checked_sub(1).and_then(|i| self.model.get(i)) else {
            return self.head;
        };
        let raw = seg.first_slot + seg.slope * (ts - seg.first_ts) as f64;
        let clamped = raw.clamp(0.0, (self.slots.len().saturating_sub(1)) as f64);
        (clamped as usize).clamp(self.head, self.tail.saturating_sub(1).max(self.head))
    }

    /// Places `slot` at insertion point `pos`: straight into a free slot
    /// between its neighbors when the gap slack allows, else shifting the
    /// shortest run of occupied neighbors toward the nearest gap within
    /// `MAX_SHIFT`. Returns false (stashing the slot in `pending_slot`)
    /// when no gap is reachable.
    fn place_near(&mut self, pos: usize, slot: Slot) -> bool {
        // A free slot at the insertion point or directly below it is
        // between the key's neighbors; place into the middle of that free
        // run for slack on both sides (run probe bounded by MAX_SHIFT).
        let anchor = if pos < self.slots.len() && self.slots[pos].is_none() {
            Some(pos)
        } else if pos > 0 && self.slots[pos - 1].is_none() {
            Some(pos - 1)
        } else {
            None
        };
        if let Some(anchor) = anchor {
            // Virgin territory at or beyond the occupied span — the append
            // path, and the common case for mostly-ascending arrivals.
            // Place `GAP_FACTOR − 1` slots past the anchor so consecutive
            // appends keep gaps between them: a slightly-late arrival then
            // lands in a free slot instead of shifting a dense run.
            if anchor >= self.tail {
                let idx = (anchor + GAP_FACTOR - 1).min(self.slots.len() - 1);
                let idx = if self.slots[idx].is_none() {
                    idx
                } else {
                    anchor
                };
                self.occupy(idx, slot);
                self.epoch.shifts[0] += 1;
                index_obs::record_shift(0);
                return true;
            }
            let floor = anchor.saturating_sub(MAX_SHIFT);
            let mut run_lo = anchor;
            while run_lo > floor && self.slots[run_lo - 1].is_none() {
                run_lo -= 1;
            }
            self.occupy(run_lo + (anchor - run_lo) / 2, slot);
            self.epoch.shifts[0] += 1;
            index_obs::record_shift(0);
            return true;
        }
        // `pos` and `pos − 1` are both occupied: shift the shorter run of
        // neighbors toward its nearest gap.
        let right_gap =
            (pos..self.slots.len().min(pos + MAX_SHIFT + 1)).find(|&i| self.slots[i].is_none());
        let left_gap = (pos.saturating_sub(MAX_SHIFT + 1)..pos)
            .rev()
            .find(|&i| self.slots[i].is_none());
        match (left_gap, right_gap) {
            (Some(l), Some(r)) if pos - l <= r - pos => self.shift_left(l, pos, slot),
            (_, Some(r)) => self.shift_right(pos, r, slot),
            (Some(l), None) => self.shift_left(l, pos, slot),
            (None, None) => {
                self.pending_slot = Some(slot);
                return false;
            }
        }
        true
    }

    /// Shifts occupied slots `[pos, gap)` one to the right (into `gap`)
    /// and places at `pos`. The gap may lie beyond the occupied span
    /// (`tail`'s free headroom), so the span is widened first — a slot
    /// outside `[head, tail)` would be invisible to every scan.
    fn shift_right(&mut self, pos: usize, gap: usize, slot: Slot) {
        let dist = gap - pos;
        for i in (pos..gap).rev() {
            self.slots[i + 1] = self.slots[i].take();
        }
        self.tail = self.tail.max(gap + 1);
        self.occupy(pos, slot);
        self.epoch.shifts[dist.min(MAX_SHIFT)] += 1;
        index_obs::record_shift(dist);
    }

    /// Shifts occupied slots `(gap, pos)` one to the left (into `gap`) and
    /// places at `pos − 1`. Everything shifted sorts strictly below the
    /// new key (its insertion point was `pos`), so order is preserved. The
    /// gap may lie below `head` (the drained-prefix region), so the span
    /// is widened first.
    fn shift_left(&mut self, gap: usize, pos: usize, slot: Slot) {
        let dist = pos - gap;
        for i in gap..pos - 1 {
            self.slots[i] = self.slots[i + 1].take();
        }
        self.head = self.head.min(gap);
        self.occupy(pos - 1, slot);
        self.epoch.shifts[dist.min(MAX_SHIFT)] += 1;
        index_obs::record_shift(dist);
    }

    fn occupy(&mut self, idx: usize, slot: Slot) {
        debug_assert!(self.slots[idx].is_none(), "occupying a full slot");
        self.slots[idx] = Some(slot);
        self.len += 1;
        self.head = self.head.min(idx);
        self.tail = self.tail.max(idx + 1);
    }

    /// Rebuild + retrain: gathers the occupied slots (merging `extra` at
    /// its key position when given), re-spaces them at `GAP_FACTOR`× slack
    /// and fits a fresh ε-bounded piecewise-linear model.
    fn rebuild(&mut self, extra: Option<Slot>) {
        let rebuild_t0 = index_obs::now_ns_if_enabled();
        let mut entries: Vec<Slot> = Vec::with_capacity(self.len + 1);
        let lo = self.head.min(self.slots.len());
        let hi = self.tail;
        for slot in &mut self.slots[lo..hi] {
            if let Some(s) = slot.take() {
                entries.push(s);
            }
        }
        if let Some(extra) = extra {
            let at = entries.partition_point(|s| (s.ts, s.seq) < (extra.ts, extra.seq));
            entries.insert(at, extra);
        }
        let n = entries.len();
        // Sizing: GAP_FACTOR× slack over the entries plus half again as
        // trailing headroom, and never below the previous allocation —
        // capacity is monotone and tracks the historical peak buffered
        // load. A steady-state stream that drains every epoch therefore
        // pays roughly one re-spacing rebuild per capacity's worth of
        // inserts (the append frontier hitting the array's end) instead of
        // re-growing through several O(n) rebuilds per epoch.
        let span = (n * GAP_FACTOR).max(MIN_SLOTS);
        let slots_needed = (span + span / 2).max(self.slots.len());
        self.slots.clear();
        self.slots.resize_with(slots_needed, || None);
        self.len = n;
        self.head = if n == 0 { slots_needed } else { 0 };
        self.tail = if n == 0 {
            slots_needed
        } else {
            (n - 1) * GAP_FACTOR + 1
        };
        self.model = Vec::new();
        let mut trainer = ConeTrainer::default();
        for (rank, entry) in entries.into_iter().enumerate() {
            let slot_idx = rank * GAP_FACTOR;
            trainer.observe(entry.ts, slot_idx, &mut self.model);
            self.slots[slot_idx] = Some(entry);
        }
        trainer.finish(&mut self.model);
        self.retrains_total += 1;
        self.epoch.retrains += 1;
        self.misses_since_retrain = 0;
        index_obs::record_retrain(
            rebuild_t0,
            index_obs::now_ns_if_enabled().saturating_sub(rebuild_t0),
            n as u64,
        );
    }
}

/// Shrinking-cone construction of the piecewise-linear model: maintain the
/// feasible slope interval that keeps every observed `(ts, slot)` within
/// `MODEL_EPSILON` of the segment line; when it empties, close the segment
/// at the midpoint slope and start a new one.
#[derive(Debug, Default)]
struct ConeTrainer {
    open: Option<OpenSegment>,
}

#[derive(Debug, Clone, Copy)]
struct OpenSegment {
    first_ts: TimePoint,
    first_slot: usize,
    slope_lo: f64,
    slope_hi: f64,
}

impl ConeTrainer {
    fn observe(&mut self, ts: TimePoint, slot: usize, out: &mut Vec<ModelSegment>) {
        let Some(seg) = &mut self.open else {
            self.open = Some(OpenSegment {
                first_ts: ts,
                first_slot: slot,
                slope_lo: 0.0,
                slope_hi: f64::INFINITY,
            });
            return;
        };
        let dx = (ts - seg.first_ts) as f64;
        if dx <= 0.0 {
            // Duplicate timestamp: the segment predicts `first_slot` for
            // it; fine while the run stays within ε, else close.
            if slot - seg.first_slot > MODEL_EPSILON {
                let closed = *seg;
                Self::close(closed, out);
                self.open = Some(OpenSegment {
                    first_ts: ts,
                    first_slot: slot,
                    slope_lo: 0.0,
                    slope_hi: f64::INFINITY,
                });
            }
            return;
        }
        let dy = (slot - seg.first_slot) as f64;
        let eps = MODEL_EPSILON as f64;
        let lo = ((dy - eps) / dx).max(0.0);
        let hi = (dy + eps) / dx;
        let new_lo = seg.slope_lo.max(lo);
        let new_hi = seg.slope_hi.min(hi);
        if new_lo > new_hi {
            let closed = *seg;
            Self::close(closed, out);
            self.open = Some(OpenSegment {
                first_ts: ts,
                first_slot: slot,
                slope_lo: 0.0,
                slope_hi: f64::INFINITY,
            });
        } else {
            seg.slope_lo = new_lo;
            seg.slope_hi = new_hi;
        }
    }

    fn finish(self, out: &mut Vec<ModelSegment>) {
        if let Some(seg) = self.open {
            Self::close(seg, out);
        }
    }

    fn close(seg: OpenSegment, out: &mut Vec<ModelSegment>) {
        let slope = if seg.slope_hi.is_finite() {
            (seg.slope_lo + seg.slope_hi) / 2.0
        } else {
            // Single-point (or duplicate-run) segment: flat prediction.
            seg.slope_lo
        };
        out.push(ModelSegment {
            first_ts: seg.first_ts,
            first_slot: seg.first_slot as f64,
            slope,
        });
    }
}

/// Regroups a timestamp-ordered tuple list into LAWA's fact-major
/// `(F, Ts)` order: hash group-by (per-fact timestamp order is inherited),
/// sort the distinct facts, concatenate. O(k + f log f).
fn regroup_fact_major(ts_order: Vec<TpTuple>) -> Vec<TpTuple> {
    let total = ts_order.len();
    let mut index: FastMap<tp_core::fact::Fact, usize> = FastMap::default();
    let mut groups: Vec<Vec<TpTuple>> = Vec::new();
    for t in ts_order {
        let gi = *index.entry(t.fact.clone()).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[gi].push(t);
    }
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by(|&a, &b| groups[a][0].fact.cmp(&groups[b][0].fact));
    let mut out = Vec::with_capacity(total);
    for gi in order {
        out.append(&mut groups[gi]);
    }
    out
}

/// Merges two `(F, Ts)` sort-key-ordered tuple lists into one. The engine
/// uses it to join the carried residuals (fact-ordered, all starting at
/// the previous watermark) with a drained prefix — O(n), no sort.
pub(crate) fn merge_by_sort_key(a: Vec<TpTuple>, b: Vec<TpTuple>) -> Vec<TpTuple> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if x.sort_key() <= y.sort_key() {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(ia.next().expect("peeked")),
            (None, Some(_)) => out.push(ib.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::interval::Interval;
    use tp_core::lineage::Lineage;
    use tp_core::relation::VarTable;

    fn tuple(vars: &mut VarTable, fact: i64, s: i64, e: i64) -> TpTuple {
        let id = vars.register(format!("v{fact}_{s}"), 0.5).unwrap();
        TpTuple::new(
            tp_core::fact::Fact::single(fact),
            Lineage::var(id),
            Interval::at(s, e),
        )
    }

    /// The reference drain: stable sort by sort key of everything below w.
    fn reference_drain(pushed: &[TpTuple], w: TimePoint) -> Vec<TpTuple> {
        let mut below: Vec<TpTuple> = pushed
            .iter()
            .filter(|t| t.interval.start() < w)
            .cloned()
            .collect();
        below.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        below
    }

    #[test]
    fn drain_matches_sorted_reference_for_shuffled_arrivals() {
        let mut vars = VarTable::new();
        // Deterministic shuffle: stride through the index space.
        let n = 501i64;
        let tuples: Vec<TpTuple> = (0..n)
            .map(|i| {
                let k = (i * 193) % n; // 193 coprime with 501
                tuple(&mut vars, k % 7, k * 3, k * 3 + 2)
            })
            .collect();
        let mut buf = GappedBuffer::new();
        for t in &tuples {
            buf.push(t.clone());
        }
        assert_eq!(buf.len(), n as usize);
        for w in [0, 100, 700, 701, 1_200, 4_000] {
            let mut probe = GappedBuffer::new();
            for t in &tuples {
                probe.push(t.clone());
            }
            let drained = probe.drain_below(w);
            assert_eq!(drained.tuples, reference_drain(&tuples, w), "w={w}");
            assert_eq!(drained.starts.len(), drained.tuples.len());
            assert!(drained.starts.windows(2).all(|p| p[0] <= p[1]));
            assert_eq!(probe.len(), n as usize - drained.tuples.len());
        }
    }

    #[test]
    fn successive_drains_partition_the_stream() {
        let mut vars = VarTable::new();
        let tuples: Vec<TpTuple> = (0..400i64)
            .rev() // adversarial: fully reversed arrival
            .map(|i| tuple(&mut vars, i % 5, i * 2, i * 2 + 1))
            .collect();
        let mut buf = GappedBuffer::new();
        let mut drained_total = 0usize;
        let mut pushed: Vec<TpTuple> = Vec::new();
        let mut it = tuples.iter();
        for w in [100, 300, 500, 790, 1_000] {
            // Interleave pushes with drains (only tuples still >= previous
            // watermark, to honor the engine's lateness contract).
            for t in it.by_ref().take(80) {
                buf.push(t.clone());
                pushed.push(t.clone());
            }
            let prev: Vec<TpTuple> = pushed
                .iter()
                .filter(|t| t.interval.start() < w)
                .cloned()
                .collect();
            let drained = buf.drain_below(w);
            assert_eq!(drained.tuples, reference_drain(&prev, w), "w={w}");
            drained_total += drained.tuples.len();
            pushed.retain(|t| t.interval.start() >= w);
        }
        // Everything pushed was eventually drained or still buffered.
        assert_eq!(drained_total + buf.len(), 400);
    }

    #[test]
    fn duplicate_timestamps_keep_arrival_order_within_ts() {
        let mut vars = VarTable::new();
        // 64 facts all starting at ts 10 — a timestamp flood.
        let tuples: Vec<TpTuple> = (0..64i64).map(|f| tuple(&mut vars, f, 10, 12)).collect();
        let mut buf = GappedBuffer::new();
        for t in tuples.iter().rev() {
            buf.push(t.clone());
        }
        let drained = buf.drain_below(11);
        assert_eq!(drained.tuples, reference_drain(&tuples, 11));
        assert!(buf.is_empty());
    }

    #[test]
    fn occupancy_and_retrains_stay_sane_under_churn() {
        let mut vars = VarTable::new();
        let mut buf = GappedBuffer::new();
        let mut total_inserts = 0u64;
        for epoch in 0..50i64 {
            for k in 0..64i64 {
                let s = epoch * 100 + (k * 37) % 100;
                buf.push(tuple(&mut vars, k % 8, s, s + 3));
                total_inserts += 1;
            }
            let _ = buf.drain_below(epoch * 100 + 90);
            let occ = buf.occupancy_permille();
            assert!(occ <= 1000, "occupancy over 100%: {occ}");
            if !buf.is_empty() {
                assert!(occ > 0);
            }
        }
        // Amortized O(1): rebuilds bounded by a small multiple of drains,
        // far below one per insert.
        assert!(
            buf.retrains_total() < total_inserts / 8,
            "{} retrains for {} inserts",
            buf.retrains_total(),
            total_inserts
        );
        let stats = buf.take_epoch_stats();
        assert!(stats.shift_p99() <= MAX_SHIFT as u32);
    }

    #[test]
    fn cut_offsets_are_exact_quantiles() {
        let mut vars = VarTable::new();
        let mut buf = GappedBuffer::new();
        for i in 0..100i64 {
            buf.push(tuple(&mut vars, i, i * 10, i * 10 + 5));
        }
        let cuts = buf.cut_offsets(1_000, 4);
        assert_eq!(cuts, vec![250, 500, 750]);
        // Quantiles over the prefix below a tighter watermark.
        let cuts = buf.cut_offsets(500, 2);
        assert_eq!(cuts, vec![250]);
        // Too few tuples: no cuts.
        assert!(buf.cut_offsets(15, 4).is_empty());
    }

    #[test]
    fn rank_below_tracks_the_true_rank() {
        let mut vars = VarTable::new();
        let mut buf = GappedBuffer::new();
        for i in 0..1_000i64 {
            let k = (i * 607) % 1_000;
            buf.push(tuple(&mut vars, k, k, k + 1));
        }
        for w in [0i64, 100, 500, 999, 2_000] {
            let truth = w.clamp(0, 1_000) as usize;
            let est = buf.rank_below(w);
            let err = truth.abs_diff(est);
            assert!(
                err <= 64,
                "rank estimate for {w}: {est} vs true {truth} (err {err})"
            );
        }
    }

    #[test]
    fn merge_by_sort_key_is_a_stable_sorted_merge() {
        let mut vars = VarTable::new();
        let a = vec![tuple(&mut vars, 1, 0, 2), tuple(&mut vars, 3, 5, 6)];
        let b = vec![tuple(&mut vars, 1, 3, 4), tuple(&mut vars, 2, 0, 1)];
        let merged = merge_by_sort_key(a.clone(), b.clone());
        let mut reference = [a, b].concat();
        reference.sort_by(|x, y| x.sort_key().cmp(&y.sort_key()));
        assert_eq!(merged, reference);
    }
}
