//! Epoch-partitioned execution and the arena-cache release scope.
//!
//! The timeline is cut into fixed-width **epochs**. Because a LAWA window
//! never spans a point where both inputs are clipped, each epoch can be
//! swept independently over the inputs clipped to its range; outputs are
//! stitched back by sorting and coalescing (the artificial epoch-boundary
//! cuts carry identical lineage handles on both sides, so
//! [`TpRelation::coalesce`] merges exactly them — the same argument as the
//! streaming engine's `Extend` deltas). Workers process disjoint epoch
//! ranges with scoped threads.
//!
//! Each finalized epoch may **release arena-side caches**: an
//! [`EpochScope`] snapshots the arena high-water marks when the epoch
//! begins ([`tp_core::arena::LineageArena::stamp`]) and
//! [`EpochScope::release_marginals`] evicts the memoized marginals of every
//! node interned after the snapshot from a
//! [`VarTable`]. Dropping cache entries is always sound (they are
//! recomputed on demand); for a long-running stream it is the difference
//! between a cache proportional to *live* lineage and one proportional to
//! *all lineage ever built* — the first concrete step toward the ROADMAP's
//! epoch-based arena reclamation.

use tp_core::arena::{ArenaStamp, LineageArena, SegmentId, SegmentState};
use tp_core::interval::Interval;
use tp_core::ops::{self, SetOp};
use tp_core::relation::{TpRelation, VarTable};
use tp_core::tuple::TpTuple;

/// What [`EpochScope::release_storage`] reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReleasedStorage {
    /// Arena segments retired.
    pub segments: usize,
    /// Interned nodes whose storage was released.
    pub nodes: u64,
}

/// Brackets a phase of lineage construction; see the module docs.
///
/// Scopes are relative to the thread's *current* arena (the global one by
/// default, or a private arena entered via
/// [`LineageArena::enter`]); release calls must run under the same arena.
#[derive(Debug, Clone)]
pub struct EpochScope {
    stamp: ArenaStamp,
    /// First segment that holds only epoch-local nodes: everything the
    /// epoch interned lands in `first_local..=<open at release time>`,
    /// except that under [`EpochScope::begin`] the boundary segment is
    /// shared with pre-epoch nodes and is skipped by storage release
    /// ([`EpochScope::begin_sealed`] makes the boundary clean).
    first_local: SegmentId,
}

impl EpochScope {
    /// Opens a scope: nodes interned from now on count as epoch-local.
    pub fn begin() -> Self {
        let stamp = LineageArena::with_current(|a| a.stamp());
        let first_local = if stamp.segment_len() == 0 {
            stamp.segment()
        } else {
            // The open segment already holds pre-epoch nodes; only
            // segments opened after it are fully epoch-local.
            SegmentId(stamp.segment().0 + 1)
        };
        EpochScope { stamp, first_local }
    }

    /// Opens a scope on a fresh segment: the current open segment is
    /// sealed first, so *every* node the epoch interns lives in segments
    /// the scope can later retire ([`EpochScope::release_storage`]).
    pub fn begin_sealed() -> Self {
        LineageArena::with_current(|a| {
            let _ = a.seal();
        });
        Self::begin()
    }

    /// The arena snapshot taken at construction.
    pub fn stamp(&self) -> &ArenaStamp {
        &self.stamp
    }

    /// Evicts the memoized marginals of every epoch-local node from
    /// `vars`. Call once the epoch's outputs are consumed.
    pub fn release_marginals(&self, vars: &VarTable) {
        vars.release_marginals_after(&self.stamp);
    }

    /// Reclaims the **node storage** of the epoch: seals the open segment
    /// and retires every fully-epoch-local, unpinned segment, releasing
    /// the matching `vars` marginal entries per segment (O(1) each).
    ///
    /// Caller contract: every lineage handle built during the scope has
    /// been consumed (valuated, materialized as a tree, or discarded) —
    /// fresh traversals of a retired handle panic. Pinned segments are
    /// skipped, not waited for. Composite results that *reference*
    /// pre-epoch lineage are fine to retire — liveness concerns the
    /// handles held, not the nodes referenced by dead handles.
    pub fn release_storage(&self, vars: &VarTable) -> ReleasedStorage {
        LineageArena::with_current(|arena| {
            let end = match arena.seal() {
                Some(sealed) => sealed.0,
                // Open segment empty: everything sealed lies below it.
                None => arena.open_segment().0.saturating_sub(1),
            };
            let mut released = ReleasedStorage::default();
            for id in self.first_local.0..=end {
                let seg = SegmentId(id);
                if arena.segment_state(seg) != Some(SegmentState::Sealed) {
                    continue;
                }
                if let Ok(freed) = arena.retire(seg) {
                    vars.release_marginals_for_segment(seg);
                    released.segments += 1;
                    released.nodes += freed.nodes;
                }
            }
            released
        })
    }
}

/// Parameters of the partitioned executor.
#[derive(Debug, Clone, Copy)]
pub struct EpochConfig {
    /// Time points per epoch (clamped to ≥ 1).
    pub epoch_width: i64,
    /// Worker threads (clamped to ≥ 1). Each worker sweeps a contiguous
    /// block of epochs, in timeline order.
    pub threads: usize,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            epoch_width: 1024,
            threads: 4,
        }
    }
}

/// Buckets `rel` into `epochs` slices of `width` time points starting at
/// `lo`, clipping tuples at epoch borders (lineage preserved). One pass
/// over the relation; a tuple spanning `k` epochs contributes `k` clipped
/// pieces (inherent to the partitioning).
fn bucket_by_epoch(rel: &TpRelation, lo: i64, width: i64, epochs: i64) -> Vec<Vec<TpTuple>> {
    let mut buckets: Vec<Vec<TpTuple>> = vec![Vec::new(); epochs as usize];
    for t in rel.iter() {
        let epoch_of =
            |p: i64| (((p as i128 - lo as i128) / width as i128) as i64).clamp(0, epochs - 1);
        let first = epoch_of(t.interval.start());
        let last = epoch_of(t.interval.end() - 1);
        for e in first..=last {
            let (elo, ehi) = (
                (lo as i128 + e as i128 * width as i128) as i64,
                (lo as i128 + (e as i128 + 1) * width as i128).min(i64::MAX as i128) as i64,
            );
            let mut c = t.clone();
            c.interval = Interval::at(t.interval.start().max(elo), t.interval.end().min(ehi));
            buckets[e as usize].push(c);
        }
    }
    buckets
}

/// Upper bound on the number of epochs per call, independent of the time
/// hull: a sparse timeline (one tuple at `t≈0`, one at `t≈2^40`) must not
/// allocate a bucket per empty epoch. When the configured width would
/// exceed the cap, epochs are widened — correctness is invariant to the
/// width (wider epochs just mean fewer artificial cuts to coalesce).
const MAX_EPOCHS: i128 = 1 << 16;

/// Computes `r op s` by sweeping fixed-width timeline epochs with worker
/// threads and stitching the per-epoch outputs. Equivalent to
/// [`ops::apply`] for inputs in the model's standard regime (distinct base
/// variables / change-preserving lineage — see the crate docs).
///
/// When `release_caches` is set, every finalized epoch evicts the marginals
/// of its scratch lineage nodes from the given [`VarTable`] (sound: cache
/// misses recompute).
pub fn apply_epoched(
    op: SetOp,
    r: &TpRelation,
    s: &TpRelation,
    cfg: &EpochConfig,
    release_caches: Option<&VarTable>,
) -> TpRelation {
    let hull = match (r.time_range(), s.time_range()) {
        (None, None) => return TpRelation::new(),
        (Some(h), None) | (None, Some(h)) => h,
        (Some(a), Some(b)) => a.hull(&b),
    };
    let lo = hull.start();
    let span = hull.end() as i128 - lo as i128;
    // i128::div_ceil is unstable on this toolchain; operands are positive.
    let ceil_div = |a: i128, b: i128| (a + b - 1) / b;
    let mut width = cfg.epoch_width.max(1) as i128;
    if ceil_div(span, width) > MAX_EPOCHS {
        width = ceil_div(span, MAX_EPOCHS);
    }
    let epochs = ceil_div(span, width) as i64;
    let width = width as i64;
    let threads = cfg.threads.clamp(1, epochs.max(1) as usize);

    // One pass per relation to slice the inputs into per-epoch buckets.
    let r_buckets = bucket_by_epoch(r, lo, width, epochs);
    let s_buckets = bucket_by_epoch(s, lo, width, epochs);

    // Each worker sweeps a contiguous block of epochs and returns its
    // outputs in epoch order.
    let per_worker = (epochs as usize).div_ceil(threads);
    let mut all: Vec<TpTuple> = Vec::new();
    // Workers do not inherit the caller's thread-local arena scope:
    // propagate it so all lineage lands in one store.
    let arena = LineageArena::current_shared();
    let blocks: Vec<Vec<TpTuple>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|wk| {
                let first = wk * per_worker;
                let last = ((wk + 1) * per_worker).min(epochs as usize);
                let r_buckets = &r_buckets;
                let s_buckets = &s_buckets;
                let arena = arena.clone();
                scope.spawn(move || {
                    let _scope = arena.as_ref().map(LineageArena::enter);
                    let mut out: Vec<TpTuple> = Vec::new();
                    for e in first..last {
                        let scope_guard = EpochScope::begin();
                        let re = TpRelation::try_new(r_buckets[e].clone())
                            .expect("clipping preserves duplicate-freeness");
                        let se = TpRelation::try_new(s_buckets[e].clone())
                            .expect("clipping preserves duplicate-freeness");
                        out.extend(ops::apply(op, &re, &se).into_tuples());
                        if let Some(vars) = release_caches {
                            scope_guard.release_marginals(vars);
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("epoch worker panicked"))
            .collect()
    });
    for block in blocks {
        all.extend(block);
    }
    // Stitch: sort to canonical order, then merge the artificial
    // epoch-boundary cuts (adjacent same-fact tuples with the identical
    // lineage handle).
    TpRelation::try_new(all)
        .expect("epoch outputs are duplicate-free")
        .coalesce()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::fact::Fact;
    use tp_core::prob;

    fn pair() -> (TpRelation, TpRelation, VarTable) {
        let mut vars = VarTable::new();
        let mut rows_r = Vec::new();
        let mut rows_s = Vec::new();
        for f in 0..5i64 {
            for k in 0..40i64 {
                rows_r.push((
                    Fact::single(f),
                    Interval::at(25 * k, 25 * k + 18),
                    0.3 + 0.001 * k as f64,
                ));
                rows_s.push((
                    Fact::single(f),
                    Interval::at(25 * k + 9, 25 * k + 24),
                    0.4 + 0.001 * k as f64,
                ));
            }
        }
        let r = TpRelation::base("r", rows_r, &mut vars).unwrap();
        let s = TpRelation::base("s", rows_s, &mut vars).unwrap();
        (r, s, vars)
    }

    #[test]
    fn epoched_equals_batch_for_all_ops_widths_and_threads() {
        let (r, s, _) = pair();
        for op in SetOp::ALL {
            let batch = ops::apply(op, &r, &s).canonicalized();
            for width in [7, 64, 1 << 20] {
                for threads in [1, 3, 8] {
                    let cfg = EpochConfig {
                        epoch_width: width,
                        threads,
                    };
                    let got = apply_epoched(op, &r, &s, &cfg, None).canonicalized();
                    assert_eq!(got, batch, "{op}, width {width}, {threads} threads");
                }
            }
        }
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let empty = TpRelation::new();
        let cfg = EpochConfig::default();
        assert!(apply_epoched(SetOp::Union, &empty, &empty, &cfg, None).is_empty());
    }

    #[test]
    fn sparse_timelines_do_not_allocate_per_empty_epoch() {
        // One tuple near t=0 and one near t=2^40 with a narrow width: the
        // executor must widen epochs (bounded bucket memory) and still
        // match batch.
        let mut vars = VarTable::new();
        let far = 1i64 << 40;
        let r = TpRelation::base(
            "r",
            vec![
                (Fact::single("x"), Interval::at(0, 10), 0.5),
                (Fact::single("x"), Interval::at(far, far + 10), 0.5),
            ],
            &mut vars,
        )
        .unwrap();
        let s = TpRelation::base(
            "s",
            vec![(Fact::single("x"), Interval::at(5, far + 5), 0.5)],
            &mut vars,
        )
        .unwrap();
        let cfg = EpochConfig {
            epoch_width: 16,
            threads: 2,
        };
        for op in SetOp::ALL {
            assert_eq!(
                apply_epoched(op, &r, &s, &cfg, None).canonicalized(),
                ops::apply(op, &r, &s).canonicalized(),
                "{op}"
            );
        }
    }

    #[test]
    fn release_keeps_results_identical_and_shrinks_cache() {
        // Pad the table so this test's lineage nodes live in a variable-id
        // range no other test of this binary interns: the exact-release
        // assertion below needs the intersect-phase nodes to be fresh.
        let mut vars = VarTable::new();
        for _ in 0..10_000 {
            vars.register("pad", 0.5).unwrap();
        }
        let mut rows_r = Vec::new();
        let mut rows_s = Vec::new();
        for k in 0..60i64 {
            rows_r.push((Fact::single(0i64), Interval::at(25 * k, 25 * k + 18), 0.3));
            rows_s.push((
                Fact::single(0i64),
                Interval::at(25 * k + 9, 25 * k + 24),
                0.4,
            ));
        }
        let r = TpRelation::base("r", rows_r, &mut vars).unwrap();
        let s = TpRelation::base("s", rows_s, &mut vars).unwrap();
        let cfg = EpochConfig {
            epoch_width: 50,
            threads: 2,
        };
        // Valuate everything once WITHOUT release: cache holds all nodes.
        let out = apply_epoched(SetOp::Union, &r, &s, &cfg, None);
        let sum_before: f64 = out
            .iter()
            .map(|t| prob::marginal(&t.lineage, &vars).unwrap())
            .sum();
        let cache_full = vars.valuation_cache_len();
        assert!(cache_full > 0);

        // Release everything interned after this point: epoch scraps go,
        // previously cached marginals stay.
        let scope = EpochScope::begin();
        let out2 = apply_epoched(SetOp::Intersect, &r, &s, &cfg, Some(&vars));
        let _sum2: f64 = out2
            .iter()
            .map(|t| prob::marginal(&t.lineage, &vars).unwrap())
            .sum();
        scope.release_marginals(&vars);
        // All intersect-phase marginals were released again.
        assert_eq!(vars.valuation_cache_len(), cache_full);

        // And the released values recompute identically.
        let sum_after: f64 = out
            .iter()
            .map(|t| prob::marginal(&t.lineage, &vars).unwrap())
            .sum();
        assert!((sum_before - sum_after).abs() < 1e-9);
    }

    #[test]
    fn release_storage_retires_epoch_local_segments() {
        // Run in a private arena: storage release on the global arena
        // would race other tests of this binary.
        let arena = tp_core::arena::LineageArena::shared(2);
        let _guard = tp_core::arena::LineageArena::enter(&arena);
        let mut vars = VarTable::new();
        for _ in 0..200 {
            vars.register("v", 0.5).unwrap();
        }
        // Pre-epoch lineage that must survive the release.
        let keep = tp_core::lineage::Lineage::var(tp_core::lineage::TupleId(0));
        let scope = EpochScope::begin_sealed();
        let (r, s) = {
            let mut rows_r = Vec::new();
            let mut rows_s = Vec::new();
            for k in 0..40i64 {
                rows_r.push((Fact::single(0i64), Interval::at(9 * k, 9 * k + 6), 0.5));
                rows_s.push((Fact::single(0i64), Interval::at(9 * k + 3, 9 * k + 8), 0.5));
            }
            (
                TpRelation::base("r", rows_r, &mut vars).unwrap(),
                TpRelation::base("s", rows_s, &mut vars).unwrap(),
            )
        };
        let out = ops::apply(SetOp::Union, &r, &s);
        // Reduce the epoch's outputs to scalars — after this, no handle
        // built inside the scope is needed anymore.
        let sum: f64 = out
            .iter()
            .map(|t| prob::marginal(&t.lineage, &vars).unwrap())
            .sum();
        assert!(sum > 0.0);
        let before = arena.stats();
        let cached_before = vars.valuation_cache_len();
        assert!(cached_before > 0);
        drop(out);
        drop((r, s));
        let released = scope.release_storage(&vars);
        assert!(released.segments >= 1, "nothing retired");
        assert!(released.nodes > 0);
        let after = arena.stats();
        assert!(after.nodes < before.nodes, "no storage reclaimed");
        assert_eq!(
            after.retired_segments,
            before.retired_segments + released.segments
        );
        // Pre-epoch lineage survives and reads fine.
        assert_eq!(keep.size(), 1);
        // Marginals keyed into the retired segments were evicted (O(1)
        // per segment), so the cache shrank with the storage.
        assert!(
            vars.valuation_cache_len() < cached_before,
            "cache kept {} entries",
            vars.valuation_cache_len()
        );
    }

    #[test]
    fn epoch_scope_stamp_monotone() {
        let a = EpochScope::begin();
        let _ = tp_core::lineage::Lineage::var(tp_core::lineage::TupleId(987_654));
        let b = EpochScope::begin();
        assert!(a.stamp().nodes() <= b.stamp().nodes());
    }
}
