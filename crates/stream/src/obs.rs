//! Engine observability: stage spans, labeled metrics, and the shared
//! gauge renderer — the tp-stream glue over [`tp_obs`].
//!
//! ## Stage-span taxonomy
//!
//! Every [`StreamEngine::advance`](crate::StreamEngine::advance) is
//! decomposed into **partition stages** (category `"stage"`) that tile the
//! advance wall time exactly — each stage starts where the previous one
//! ended, so `Σ stage durations = advance duration` by construction:
//!
//! | stage        | covers |
//! |--------------|--------|
//! | `drain`      | buffer release, watermark split, carry merge |
//! | `plan`       | region planning ([`RegionPlan`](tp_core::window::RegionPlan)) |
//! | `sweep`      | the LAWA sweep (sequential or region-sharded) + delta emission |
//! | `finalize`   | watermark publication, tail pruning, `on_watermark` |
//! | `seal_retire`| arena seal + dead-segment retirement (reclaim mode) |
//! | `verify`     | the batch cross-check (`verify_batch` only) |
//!
//! **Sub-spans** (category `"sub"`) overlap their parent stage and are
//! excluded from the tiling sum: `region` (one per worker block of a
//! parallel sweep, recorded on the worker's own thread), `stitch_reduce`
//! (one per round of the pairwise stitch reduction), `emit` (the
//! delta-emission loop of a parallel advance), `retrain` (a gapped-index
//! rebuild, recorded in [`crate::gapped`]), and `valuate_batch` (the
//! columnar marginal kernel, recorded by [`valuate_batch`]). A
//! whole-advance span (category `"advance"`) wraps the stages. All spans of one engine share an interned context label
//! ([`tp_obs::ctx_id`]) — the tenant name under a [`StreamServer`]
//! (crate::StreamServer), `"engine"` otherwise — so exports and tests can
//! filter one run out of the process-wide ring buffers.
//!
//! Metrics and spans never influence engine behavior: an instrumented run
//! emits byte-identical delta logs to an uninstrumented one (asserted by
//! `tests/observability.rs` and the `observability` bench gate).

use std::sync::Arc;

use tp_core::arena::ArenaStats;

pub use tp_obs::{
    chrome_trace_json, ctx_label, global, now_ns, render_all, snapshot_spans, MetricsRegistry,
    Section, SpanEvent,
};
use tp_obs::{ctx_id, record_span, Counter, Gauge, Histogram};

use crate::engine::AdvanceStats;

/// Partition-stage names, in pipeline order. Indices are the `stage`
/// argument of [`StageCursor::stage`].
pub const STAGES: [&str; 6] = [
    "drain",
    "plan",
    "sweep",
    "finalize",
    "seal_retire",
    "verify",
];

/// Index of the `drain` stage.
pub(crate) const STAGE_DRAIN: usize = 0;
/// Index of the `plan` stage.
pub(crate) const STAGE_PLAN: usize = 1;
/// Index of the `sweep` stage.
pub(crate) const STAGE_SWEEP: usize = 2;
/// Index of the `finalize` stage.
pub(crate) const STAGE_FINALIZE: usize = 3;
/// Index of the `seal_retire` stage.
pub(crate) const STAGE_SEAL_RETIRE: usize = 4;
/// Index of the `verify` stage.
pub(crate) const STAGE_VERIFY: usize = 5;

/// Observability configuration of one engine.
#[derive(Clone)]
pub struct ObsConfig {
    /// Record metrics and stage spans for this engine (default: on — the
    /// layer is cheap enough to keep on; the `observability` bench gates
    /// the overhead in CI).
    pub enabled: bool,
    /// Label attached to this engine's metrics (`tenant="..."`) and used
    /// as the span context label. The [`StreamServer`](crate::StreamServer)
    /// sets it to the tenant name; `None` labels nothing and uses the
    /// shared `"engine"` context.
    pub tenant: Option<String>,
    /// Registry receiving this engine's metrics; `None` uses the
    /// process-wide [`tp_obs::global`] registry. Benchmarks and tests
    /// install a private registry to isolate their readings.
    pub registry: Option<Arc<MetricsRegistry>>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            tenant: None,
            registry: None,
        }
    }
}

impl std::fmt::Debug for ObsConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsConfig")
            .field("enabled", &self.enabled)
            .field("tenant", &self.tenant)
            .field("registry", &self.registry.as_ref().map(|_| "custom"))
            .finish()
    }
}

/// Master switch for the *global-flag* instrumentation layers that sit
/// below the engine — the arena (tp-core) and the gapped index — which an
/// [`ObsConfig`] cannot reach per instance. Benchmarks flip this off
/// together with `ObsConfig::enabled` to measure a genuinely
/// uninstrumented baseline.
pub fn set_obs_enabled(on: bool) {
    tp_core::arena::set_obs_enabled(on);
    crate::gapped::set_obs_enabled(on);
}

/// Cached registry handles + span context of one instrumented engine.
/// Cheap to share (`Arc`); recording never locks the registry.
pub(crate) struct EngineObs {
    /// Interned span-context id of this engine.
    pub ctx: u32,
    advances: Arc<Counter>,
    windows: Arc<Counter>,
    inserts: Arc<Counter>,
    extends: Arc<Counter>,
    released: Arc<Counter>,
    late: Arc<Counter>,
    advance_ns: Arc<Histogram>,
    stage_ns: Vec<Arc<Histogram>>,
    /// Pairwise-reduction rounds of the latest sharded stitch (0 while
    /// the engine sweeps sequentially).
    stitch_depth: Arc<Gauge>,
}

impl EngineObs {
    /// Builds the handles, or `None` when disabled.
    pub fn from_config(cfg: &ObsConfig) -> Option<Arc<EngineObs>> {
        if !cfg.enabled {
            return None;
        }
        let reg: &MetricsRegistry = match &cfg.registry {
            Some(r) => r,
            None => global(),
        };
        let tenant = cfg.tenant.as_deref();
        let labels: Vec<(&str, &str)> = match tenant {
            Some(t) => vec![("tenant", t)],
            None => Vec::new(),
        };
        let stage_ns = STAGES
            .iter()
            .map(|stage| {
                let mut l = labels.clone();
                l.push(("stage", stage));
                reg.histogram("tp_stage_ns", &l)
            })
            .collect();
        Some(Arc::new(EngineObs {
            ctx: ctx_id(tenant.unwrap_or("engine")),
            advances: reg.counter("tp_advances_total", &labels),
            windows: reg.counter("tp_windows_total", &labels),
            inserts: reg.counter("tp_deltas_insert_total", &labels),
            extends: reg.counter("tp_deltas_extend_total", &labels),
            released: reg.counter("tp_released_tuples_total", &labels),
            late: reg.counter("tp_late_dropped_total", &labels),
            advance_ns: reg.histogram("tp_advance_ns", &labels),
            stage_ns,
            stitch_depth: reg.gauge("tp_stitch_depth", &labels),
        }))
    }

    /// Counts one late-dropped tuple.
    pub fn record_late(&self) {
        self.late.inc();
    }

    /// Records a sub-span (category `"sub"`) under this engine's context.
    pub fn sub_span(&self, name: &'static str, ts_ns: u64, dur_ns: u64, arg: u64) {
        record_span(name, "sub", ts_ns, dur_ns, self.ctx, arg);
    }
}

/// Records a `cat: "sub"` span from a raw context id — the region workers
/// only carry the `Copy` ctx across the thread boundary, not the
/// [`EngineObs`] handle, so the span lands on the *worker's* ring.
pub(crate) fn record_sub_span(name: &'static str, ts_ns: u64, dur_ns: u64, ctx: u32, arg: u64) {
    record_span(name, "sub", ts_ns, dur_ns, ctx, arg);
}

/// The per-advance stage clock: each [`StageCursor::stage`] call closes
/// the interval since the previous boundary, so the recorded stages tile
/// the advance exactly. A disabled cursor (no [`EngineObs`]) is free —
/// it never reads the clock.
pub(crate) struct StageCursor<'a> {
    obs: Option<&'a EngineObs>,
    t0: u64,
    cursor: u64,
}

impl<'a> StageCursor<'a> {
    /// Starts the clock (reads it only when `obs` is live).
    pub fn start(obs: Option<&'a EngineObs>) -> Self {
        let t0 = if obs.is_some() { now_ns() } else { 0 };
        StageCursor {
            obs,
            t0,
            cursor: t0,
        }
    }

    /// Closes the current stage interval as `STAGES[stage]` with payload
    /// `arg`, and starts the next one.
    pub fn stage(&mut self, stage: usize, arg: u64) {
        let Some(obs) = self.obs else { return };
        let now = now_ns();
        let dur = now - self.cursor;
        record_span(STAGES[stage], "stage", self.cursor, dur, obs.ctx, arg);
        obs.stage_ns[stage].record(dur);
        self.cursor = now;
    }

    /// Records the whole-advance span (exactly the union of the recorded
    /// stages) and folds the advance's counters into the registry.
    pub fn finish(self, stats: &AdvanceStats) {
        let Some(obs) = self.obs else { return };
        let dur = self.cursor - self.t0;
        record_span(
            "advance",
            "advance",
            self.t0,
            dur,
            obs.ctx,
            stats.region_tuples as u64,
        );
        obs.advance_ns.record(dur);
        obs.advances.inc();
        obs.windows.add(stats.windows as u64);
        obs.inserts.add(stats.inserts);
        obs.extends.add(stats.extends);
        obs.released
            .add((stats.released[0] + stats.released[1]) as u64);
        obs.stitch_depth.set(stats.stitch_depth as i64);
    }
}

/// Batch-valuates marginals through the columnar kernel
/// ([`tp_core::prob::marginal_batch`]), recording a `valuate_batch`
/// sub-span (category `"sub"`, so the stage tiling is untouched) under
/// the shared `"valuation"` context with the batch size as payload. The
/// kernel itself also bumps `tp_valuation_batched_nodes_total` for every
/// node it resolves columnar-side. This is the instrumented valuation
/// entry point shared by the repl, the examples and the bench harness;
/// callers that want raw access use `tp_core::prob::marginal_batch`
/// directly.
pub fn valuate_batch(
    lineages: &[tp_core::lineage::Lineage],
    vars: &tp_core::relation::VarTable,
) -> tp_core::error::Result<Vec<f64>> {
    let t0 = now_ns();
    let out = tp_core::prob::marginal_batch(lineages, vars);
    let dur = now_ns() - t0;
    record_span(
        "valuate_batch",
        "sub",
        t0,
        dur,
        ctx_id("valuation"),
        lineages.len() as u64,
    );
    out
}

/// Renders one advance's [`AdvanceStats`] as a [`Section`] — the single
/// formatting path shared by the repl commands and the example summaries
/// (each used to hand-format its own subset).
pub fn advance_section(stats: &AdvanceStats) -> Section {
    Section::new(format!("advance → {}", stats.watermark))
        .row("windows", stats.windows)
        .row(
            "deltas",
            format!("{} inserts + {} extends", stats.inserts, stats.extends),
        )
        .row(
            "released [l, r]",
            format!("[{}, {}]", stats.released[0], stats.released[1]),
        )
        .row(
            "carried [l, r]",
            format!("[{}, {}]", stats.carried[0], stats.carried[1]),
        )
        .row(
            "regions",
            format!(
                "{} ({} pieces, balance {:.2})",
                stats.regions_used,
                stats.region_tuples,
                stats.region_balance()
            ),
        )
        .row_opt(
            "stitch depth",
            (stats.stitch_depth > 0).then(|| format!("{} rounds", stats.stitch_depth)),
        )
        .row(
            "gap occupancy",
            format!("{}‰", stats.gap_occupancy_permille),
        )
        .row(
            "index",
            format!(
                "{} rebuilds, {} model misses, shift p99 {}",
                stats.index_retrains, stats.index_model_misses, stats.shift_distance_p99
            ),
        )
        .row_opt(
            "retired",
            (stats.retired_segments > 0 || stats.retired_nodes > 0).then(|| {
                format!(
                    "{} segments ({} interior) / {} nodes, {} vars released",
                    stats.retired_segments,
                    stats.interior_retired_segments,
                    stats.retired_nodes,
                    stats.released_vars
                )
            }),
        )
        .row_opt(
            "arena",
            (stats.arena_live_nodes > 0).then(|| {
                format!(
                    "{} live nodes, ~{} KiB resident",
                    stats.arena_live_nodes,
                    stats.arena_resident_bytes / 1024
                )
            }),
        )
}

/// Renders [`ArenaStats`] as a [`Section`] — shared by `\arena` and the
/// example summaries.
pub fn arena_section(stats: &ArenaStats) -> Section {
    Section::new("lineage arena")
        .row(
            "live nodes",
            format!(
                "{} ({} interned, {} retired)",
                stats.nodes, stats.total_interned, stats.retired_nodes
            ),
        )
        .row(
            "segments",
            format!(
                "{} ({} live / {} retired)",
                stats.segments, stats.live_segments, stats.retired_segments
            ),
        )
        .row("resident", format!("~{} KiB", stats.resident_bytes / 1024))
        .row("exact var lists", stats.with_var_list)
}

/// Prometheus-style text snapshot of the global registry — the repl's
/// `\metrics` payload.
pub fn metrics_text() -> String {
    global().prometheus_text()
}

/// JSON snapshot of the global registry — the repl's `\metrics json`
/// payload.
pub fn metrics_json() -> String {
    global().json()
}

/// chrome://tracing dump of every span recorded so far — the repl's
/// `\trace <file>` payload. Open in `chrome://tracing` or Perfetto.
pub fn trace_json() -> String {
    chrome_trace_json(&snapshot_spans())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_builds_no_handles() {
        assert!(EngineObs::from_config(&ObsConfig {
            enabled: false,
            ..Default::default()
        })
        .is_none());
    }

    #[test]
    fn tenant_label_lands_on_metrics() {
        let reg = Arc::new(MetricsRegistry::new());
        let obs = EngineObs::from_config(&ObsConfig {
            enabled: true,
            tenant: Some("acme".into()),
            registry: Some(Arc::clone(&reg)),
        })
        .expect("enabled");
        obs.record_late();
        let text = reg.prometheus_text();
        assert!(
            text.contains("tp_late_dropped_total{tenant=\"acme\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn stage_cursor_tiles_the_advance() {
        let reg = Arc::new(MetricsRegistry::new());
        let obs = EngineObs::from_config(&ObsConfig {
            enabled: true,
            tenant: Some("stage-cursor-test".into()),
            registry: Some(Arc::clone(&reg)),
        })
        .expect("enabled");
        let ctx = obs.ctx;
        let mut cursor = StageCursor::start(Some(&obs));
        for stage in 0..STAGES.len() {
            cursor.stage(stage, 0);
        }
        cursor.finish(&AdvanceStats::default());
        let spans: Vec<SpanEvent> = snapshot_spans()
            .into_iter()
            .filter(|e| e.ctx == ctx)
            .collect();
        let advance: Vec<_> = spans.iter().filter(|e| e.cat == "advance").collect();
        assert_eq!(advance.len(), 1);
        let stage_sum: u64 = spans
            .iter()
            .filter(|e| e.cat == "stage")
            .map(|e| e.dur_ns)
            .sum();
        assert_eq!(stage_sum, advance[0].dur_ns, "stages must tile the advance");
    }

    #[test]
    fn sections_render_the_shared_layout() {
        let stats = AdvanceStats {
            watermark: 42,
            windows: 3,
            inserts: 2,
            extends: 1,
            regions_used: 1,
            region_tuples: 5,
            region_max_tuples: 5,
            ..Default::default()
        };
        let out = advance_section(&stats).render();
        assert!(out.starts_with("-- advance → 42 --"), "{out}");
        assert!(out.contains("2 inserts + 1 extends"), "{out}");
    }
}
