//! # tp-stream — Continuous LAWA
//!
//! A streaming execution mode for the TP set operations of the paper: facts
//! arrive continuously and out of order, and the results of `∪Tp`, `∩Tp`
//! and `−Tp` are maintained **incrementally** — consumers receive *deltas*
//! (new or extended output intervals with their lineage) instead of batch
//! re-runs.
//!
//! The batch algorithm already contains the key invariant: a LAWA window
//! over `(-∞, w)` depends only on tuples starting below `w` (Alg. 1 looks
//! at `rValid`/`sValid` and the *upcoming* tuples of the current fact, all
//! of which start below the window's end). So once a **watermark** promises
//! that no tuple with `Ts < w` will arrive anymore, the result prefix below
//! `w` is final. The engine sweeps exactly that prefix — reusing the
//! sequential [`tp_core::window::Lawa`] advancer per advance — and carries
//! tuples crossing the watermark into the next sweep via
//! [`tp_core::window::split_at_watermark`], with their lineage handle
//! unchanged. Hash-consed lineage (PR 1) is what makes the delta merge
//! O(1): an output tuple continues across a cut iff the adjacent tuple
//! carries the *same* `LineageRef`.
//!
//! ## Module map
//!
//! | module | content |
//! |---|---|
//! | [`engine`] | [`StreamEngine`]: ingestion, watermarks, incremental sweep (optionally sharded over workers by timeline region, byte-identical), delta emission |
//! | [`gapped`] | [`GappedBuffer`]: the gapped learned timestamp index behind sort-free ingestion |
//! | [`delta`] | [`Delta`], the [`StreamSink`] trait, collecting/counting sinks |
//! | [`epoch`] | timeline-partitioned parallel executor + arena cache/storage release scopes |
//! | [`obs`] | stage-level tracing + lock-free metrics for the advance pipeline ([`tp_obs`] façade) |
//! | [`pipeline`] | [`Pipeline`]: a compiled [`tp_relalg::Plan`] running as standing incremental operators over the delta streams |
//! | [`replay`] | deterministic out-of-order replay scripts over batch relation pairs |
//! | [`server`] | [`StreamServer`]: N isolated bounded-memory tenants behind one façade |
//!
//! See `docs/streaming.md` for the watermark/lateness model, the epoch
//! lifecycle, and how the delta semantics map onto the paper's
//! window-advancement invariants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod engine;
pub mod epoch;
pub mod gapped;
pub mod obs;
pub mod pipeline;
pub mod replay;
pub mod server;

pub use delta::{
    CollectingSink, CountingSink, Delta, MaterializedDelta, MaterializingSink, NullSink,
    StreamSink, ValuatedDelta, ValuatingSink,
};
pub use engine::{
    AdvanceStats, BufferKind, EngineConfig, IngestOutcome, ParallelConfig, ReclaimConfig, Side,
    StreamEngine, StreamError, WatermarkPolicy,
};
pub use epoch::{apply_epoched, EpochConfig, EpochScope, ReleasedStorage};
pub use gapped::{Drained, GappedBuffer, IndexEpochStats};
pub use obs::{
    advance_section, arena_section, metrics_json, metrics_text, render_all, set_obs_enabled,
    trace_json, ObsConfig, Section, STAGES,
};
pub use pipeline::{encode_relation, encode_row, PipeTuple, Pipeline, PipelineError};
pub use replay::{ReplayConfig, ReplayEvent, ReplayTotals, StreamScript};
pub use server::{ServerConfig, StreamServer, TenantId};
