//! # tp-bench — the experiment harness of the reproduction
//!
//! One runner per table/figure of the paper's evaluation (§VII). The
//! [`experiments`] module produces structured results; the `experiments`
//! binary prints them in the shape of the paper's plots (one row per input
//! size / parameter value, one column per approach), and the Criterion
//! benches under `benches/` wrap the same workloads for statistically
//! sound micro-measurements.
//!
//! Experiment sizes default to a laptop-friendly fraction of the paper's
//! (which used 64 GB machines and hours of runtime); set the `TP_SCALE`
//! environment variable to a multiplier (e.g. `TP_SCALE=10`) to approach the
//! published sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod runner;

pub use experiments::{
    arena_contention_bench, fig10_meteo, fig11_webkit, fig7_small_synthetic, fig8_large_synthetic,
    fig9a_overlap, fig9b_facts, ingest_index_bench, lawa_op_throughput, lawa_valuation_bench,
    streaming_bench, table2_support, table3_datasets, table4_datasets, BenchReport,
    ContentionBench, ExperimentResult, IngestBench, IngestPoint, LawaValuationBench, OpThroughput,
    Series, StreamingBench,
};
pub use runner::{scale, scaled, time_ms};
