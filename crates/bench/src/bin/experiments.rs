//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p tp-bench --release --bin experiments            # everything
//! cargo run -p tp-bench --release --bin experiments fig7 fig9b # a subset
//! cargo run -p tp-bench --release --bin experiments --csv      # + CSV files
//! TP_SCALE=10 cargo run -p tp-bench --release --bin experiments
//! ```
//!
//! Available experiment names: `table2`, `table3`, `table4`, `fig7`, `fig8`,
//! `fig9a`, `fig9b`, `fig10`, `fig11`, `bench_lawa`. With `--csv`, each
//! figure is also written to `experiments_csv/<id>.csv` for external
//! plotting. `bench_lawa` additionally writes `BENCH_lawa.json` (the
//! memoized-valuation acceptance benchmark) to the working directory.

use tp_bench::experiments::{self, ExperimentResult};

fn emit(result: &ExperimentResult, csv: bool) {
    println!("{}", result.render());
    if csv {
        let dir = std::path::Path::new("experiments_csv");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir:?}: {e}");
            return;
        }
        let name = result
            .id
            .to_ascii_lowercase()
            .replace([' ', '.'], "")
            .replace("fig", "fig_");
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, result.to_csv()) {
            eprintln!("cannot write {path:?}: {e}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let all = names.is_empty() || names.iter().any(|a| *a == "all");
    let want = |name: &str| all || names.iter().any(|a| *a == name);
    let scale = tp_bench::scale();
    println!("tp-bench experiment harness (TP_SCALE={scale})");
    println!("paper: Papaioannou et al., Supporting Set Operations in TP Databases, ICDE 2018\n");

    if want("table2") {
        println!("{}", experiments::table2_support());
    }
    if want("table3") {
        println!("{}", experiments::table3_datasets());
    }
    if want("table4") {
        println!("{}", experiments::table4_datasets());
    }
    if want("fig7") {
        for r in experiments::fig7_small_synthetic() {
            emit(&r, csv);
        }
    }
    if want("fig8") {
        emit(&experiments::fig8_large_synthetic(), csv);
    }
    if want("fig9a") {
        emit(&experiments::fig9a_overlap(), csv);
    }
    if want("fig9b") {
        emit(&experiments::fig9b_facts(), csv);
    }
    if want("fig10") {
        for r in experiments::fig10_meteo() {
            emit(&r, csv);
        }
    }
    if want("fig11") {
        for r in experiments::fig11_webkit() {
            emit(&r, csv);
        }
    }
    if want("bench_lawa") {
        // Paper-shaped workload scaled by TP_SCALE; deep enough union chain
        // that windows share sublineage, several valuation rounds.
        let tuples = tp_bench::scaled(20_000);
        let bench = experiments::lawa_valuation_bench(tuples, 32, 5);
        println!("{}", bench.render());
        let path = std::path::Path::new("BENCH_lawa.json");
        match std::fs::write(path, bench.to_json()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}
