//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p tp-bench --release --bin experiments            # everything
//! cargo run -p tp-bench --release --bin experiments fig7 fig9b # a subset
//! cargo run -p tp-bench --release --bin experiments --csv      # + CSV files
//! TP_SCALE=10 cargo run -p tp-bench --release --bin experiments
//! ```
//!
//! Available experiment names: `table2`, `table3`, `table4`, `fig7`, `fig8`,
//! `fig9a`, `fig9b`, `fig10`, `fig11`, `bench_lawa`, `bench_stream`,
//! `bench_memory`, `bench_tenants`, `bench_parallel_advance`,
//! `bench_ingest`, `bench_observability`, `bench_raw_speed`,
//! `bench_pipeline`, `bench_adaptive`. With
//! `--csv`, each figure is also written to `experiments_csv/<id>.csv` for
//! external plotting. `bench_lawa` additionally writes `BENCH_lawa.json`
//! (memoized valuation + op throughput + arena contention + streaming) to
//! the working directory; `bench_stream` is the CI streaming smoke — a
//! bounded-size replay of the synth workload that exits non-zero unless the
//! streamed results equal batch LAWA and the incremental engine beats naive
//! re-batch by ≥ 2×.

use tp_bench::experiments::{self, ExperimentResult};

fn emit(result: &ExperimentResult, csv: bool) {
    println!("{}", result.render());
    if csv {
        let dir = std::path::Path::new("experiments_csv");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir:?}: {e}");
            return;
        }
        let name = result
            .id
            .to_ascii_lowercase()
            .replace([' ', '.'], "")
            .replace("fig", "fig_");
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, result.to_csv()) {
            eprintln!("cannot write {path:?}: {e}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let all = names.is_empty() || names.iter().any(|a| *a == "all");
    let want = |name: &str| all || names.iter().any(|a| *a == name);
    let scale = tp_bench::scale();
    println!("tp-bench experiment harness (TP_SCALE={scale})");
    println!("paper: Papaioannou et al., Supporting Set Operations in TP Databases, ICDE 2018\n");

    if want("table2") {
        println!("{}", experiments::table2_support());
    }
    if want("table3") {
        println!("{}", experiments::table3_datasets());
    }
    if want("table4") {
        println!("{}", experiments::table4_datasets());
    }
    if want("fig7") {
        for r in experiments::fig7_small_synthetic() {
            emit(&r, csv);
        }
    }
    if want("fig8") {
        emit(&experiments::fig8_large_synthetic(), csv);
    }
    if want("fig9a") {
        emit(&experiments::fig9a_overlap(), csv);
    }
    if want("fig9b") {
        emit(&experiments::fig9b_facts(), csv);
    }
    if want("fig10") {
        for r in experiments::fig10_meteo() {
            emit(&r, csv);
        }
    }
    if want("fig11") {
        for r in experiments::fig11_webkit() {
            emit(&r, csv);
        }
    }
    if want("bench_lawa") {
        // Paper-shaped workload scaled by TP_SCALE; deep enough union chain
        // that windows share sublineage, several valuation rounds. The
        // report bundles the memoized-valuation acceptance benchmark with
        // the per-operation throughput series, the arena intern-contention
        // micro-benchmark (single lock vs stripes) and the streaming
        // acceptance benchmark (incremental vs naive re-batch).
        let tuples = tp_bench::scaled(20_000);
        let report = experiments::BenchReport {
            valuation: experiments::lawa_valuation_bench(tuples, 32, 5),
            ops: experiments::lawa_op_throughput(&[
                tp_bench::scaled(10_000),
                tp_bench::scaled(20_000),
            ]),
            contention: experiments::arena_contention_bench(4, tp_bench::scaled(40_000)),
            streaming: experiments::streaming_bench(tuples, (2 * tuples / 64).max(1)),
            memory: experiments::memory_bounded_bench(tp_bench::scaled(200).max(24)),
            tenants: experiments::multi_tenant_bench(
                tp_bench::scaled(6).clamp(2, 64),
                tp_bench::scaled(120).max(24),
                4,
            ),
            parallel: experiments::parallel_advance_bench(
                tp_bench::scaled(1_500).max(1_024),
                tp_bench::scaled(24).max(12),
                &[1, 2, 4, 8],
            ),
            ingest: experiments::ingest_index_bench(&[
                tp_bench::scaled(2_000).max(512),
                tp_bench::scaled(8_000).max(1_024),
                tp_bench::scaled(24_000).max(2_048),
            ]),
            observability: experiments::observability_bench(tuples, (2 * tuples / 64).max(1), 3),
            raw_speed: experiments::raw_speed_bench(
                tuples,
                32,
                3,
                tp_bench::scaled(1_500).max(1_024),
                tp_bench::scaled(96).max(48),
                &[1, 2, 4, 8],
            ),
            pipeline: experiments::pipeline_bench(
                tp_bench::scaled(800).max(240),
                tp_bench::scaled(64).max(24),
                32,
                tp_bench::scaled(120).max(48),
            ),
            adaptive: experiments::adaptive_pipeline_bench(
                tp_bench::scaled(800).max(240),
                tp_bench::scaled(64).max(24),
                32,
                3,
                3,
            ),
        };
        println!("{}", report.render());
        let path = std::path::Path::new("BENCH_lawa.json");
        // Run-over-run series: recover the prior file's history (if any),
        // append this run's summary, keep the latest run's full schema at
        // the top level (the CI gates read it unchanged).
        let mut history = std::fs::read_to_string(path)
            .map(|prior| experiments::extract_history(&prior))
            .unwrap_or_default();
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        history.push(report.history_entry(now));
        match std::fs::write(path, report.to_json_with_history(&history)) {
            Ok(()) => println!(
                "wrote {} ({} history entr{})",
                path.display(),
                history.len(),
                if history.len() == 1 { "y" } else { "ies" }
            ),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
    // The streaming smoke runs whenever explicitly named — including next
    // to `all`. Under a bare `all` it is skipped only because `bench_lawa`
    // already measures and gates the same streaming benchmark via
    // BENCH_lawa.json.
    if names.iter().any(|a| *a == "bench_stream") {
        // CI streaming smoke: bounded-size replay, hard-gated.
        let tuples = tp_bench::scaled(20_000);
        let b = experiments::streaming_bench(tuples, (2 * tuples / 64).max(1));
        println!(
            "streaming smoke: {} tuples/rel, {} advances, incremental {:.1} ms vs naive {:.1} ms ({:.2}×), batch_equal={}",
            b.tuples,
            b.advances,
            b.incremental_ms,
            b.naive_rebatch_ms,
            b.speedup(),
            b.batch_equal,
        );
        if !b.batch_equal {
            eprintln!("FAIL: streamed results diverge from batch LAWA");
            std::process::exit(1);
        }
        if b.speedup() < 2.0 {
            eprintln!(
                "FAIL: incremental engine only {:.2}× over naive re-batch (gate: 2×)",
                b.speedup()
            );
            std::process::exit(1);
        }
        println!(
            "ok: streamed ≡ batch, {:.2}× over naive re-batch",
            b.speedup()
        );
    }
    if names.iter().any(|a| *a == "bench_memory") {
        // CI memory-bounded-stream job: replay a sliding-window synth
        // stream through a reclaiming engine for many advances and gate
        // that arena residency plateaus (steady state ≤ 2× one-window
        // footprint) while results stay batch-identical.
        let epochs = tp_bench::scaled(600).max(60);
        let b = experiments::memory_bounded_bench(epochs);
        println!(
            "memory-bounded stream: {} epochs ({} advances, {} tuples/side), \
             one-window {} nodes, steady-state peak {} nodes (ratio {:.2}), \
             retired {} nodes / {} segments, final {} nodes ({} KiB), batch_equal={}",
            b.epochs,
            b.advances,
            b.tuples_per_side,
            b.one_window_nodes,
            b.steady_max_nodes,
            b.plateau_ratio(),
            b.retired_nodes,
            b.retired_segments,
            b.final_nodes,
            b.final_resident_bytes / 1024,
            b.batch_equal,
        );
        if b.advances < 50 {
            eprintln!("FAIL: only {} advances (gate: >= 50 epochs)", b.advances);
            std::process::exit(1);
        }
        if !b.batch_equal {
            eprintln!("FAIL: reclaiming stream diverges from batch LAWA");
            std::process::exit(1);
        }
        if b.plateau_ratio() > 2.0 {
            eprintln!(
                "FAIL: arena residency did not plateau — steady-state {} vs one-window {} ({:.2}×, gate: 2×)",
                b.steady_max_nodes,
                b.one_window_nodes,
                b.plateau_ratio()
            );
            std::process::exit(1);
        }
        println!(
            "ok: bounded memory over {} advances (plateau ratio {:.2} ≤ 2), batch-identical",
            b.advances,
            b.plateau_ratio()
        );
    }
    if names.iter().any(|a| *a == "bench_parallel_advance") {
        // CI parallel-advance-smoke job: one fat tenant (plus the Zipf-hot
        // skewed stream) swept at 1/2/4/8 region workers. Hard gate:
        // streamed ≡ batch at EVERY worker count on both workloads — the
        // byte-identity contract of the region-parallel sweep. The wall
        // speedup gate (≥ 2× at 4 workers) applies only when the machine
        // has ≥ 4 hardware threads; scaling is meaningless on fewer.
        let b = experiments::parallel_advance_bench(
            tp_bench::scaled(1_500).max(1_024),
            tp_bench::scaled(24).max(12),
            &[1, 2, 4, 8],
        );
        println!(
            "parallel advance: {} tuples/side, {} advances, {} hardware threads",
            b.tuples_per_side, b.advances, b.hardware_threads,
        );
        for (name, points) in [("fat tenant", &b.fat), ("skewed", &b.skewed)] {
            for p in points {
                println!(
                    "  {name}: {} workers, {:.1} ms ({:.1} krows/s), regions<={}, balance {:.2}, batch_equal={}",
                    p.workers, p.wall_ms, p.krows_per_s, p.regions_max, p.balance_worst, p.batch_equal,
                );
            }
        }
        if b.advances < 8 {
            eprintln!("FAIL: only {} advances (gate: >= 8)", b.advances);
            std::process::exit(1);
        }
        for p in b.fat.iter().chain(&b.skewed) {
            if !p.batch_equal {
                eprintln!(
                    "FAIL: region-parallel stream diverges from batch LAWA at {} workers",
                    p.workers
                );
                std::process::exit(1);
            }
        }
        // The wall speedup is hardware-dependent (the same treatment as
        // arena_contention): it needs real cores, and shared CI runners
        // are noisy — so it is reported loudly, never hard-gated. The
        // hard gates above (byte-identity at every worker count) are the
        // correctness contract.
        let speedup = b.speedup_at(4);
        if b.hardware_threads >= 4 && speedup < 2.0 {
            eprintln!(
                "WARN: only {speedup:.2}x at 4 workers on {} hardware threads (target: 2x; \
                 informational — wall scaling is hardware-dependent)",
                b.hardware_threads
            );
        }
        println!(
            "ok: batch-identical at every worker count ({speedup:.2}x at 4 workers on {} \
             hardware thread(s))",
            b.hardware_threads
        );
    }
    if names.iter().any(|a| *a == "bench_ingest") {
        // CI ingest-index-smoke job: the sort-vs-index ingestion curve at
        // three sizes × three arrival orders (in-order, bounded-lateness
        // shuffle, adversarial reverse). Hard gates: every point streams
        // batch-identically on BOTH buffer kinds, and the index's gap
        // occupancy stays plausible (0 < occ ≤ 1000‰ — zero means the
        // index never held data, above 1000 means broken accounting). The
        // wall speedup is hardware- and size-dependent and is reported
        // informationally, like the other scaling benches.
        let b = experiments::ingest_index_bench(&[
            tp_bench::scaled(2_000).max(512),
            tp_bench::scaled(8_000).max(1_024),
            tp_bench::scaled(24_000).max(2_048),
        ]);
        println!("ingestion index: sort vs gapped learned index");
        for p in &b.points {
            println!(
                "  {:<9} {:>8} tuples/side  legacy {:>8.1} ms  index {:>8.1} ms  ({:.2}x)  occ {:>4} permille  retrains {:<4} shift-p99 {:<3} batch_equal={}",
                p.order,
                p.tuples,
                p.legacy_ms,
                p.index_ms,
                p.speedup(),
                p.gap_occupancy_permille,
                p.retrains,
                p.shift_p99,
                p.batch_equal,
            );
        }
        if !b.batch_equal() {
            eprintln!("FAIL: an ingest point diverges from batch LAWA");
            std::process::exit(1);
        }
        for p in &b.points {
            if p.gap_occupancy_permille == 0 || p.gap_occupancy_permille > 1000 {
                eprintln!(
                    "FAIL: implausible gap occupancy {} permille at {} ({} tuples/side)",
                    p.gap_occupancy_permille, p.order, p.tuples
                );
                std::process::exit(1);
            }
        }
        let speedup = b.speedup_at_largest();
        if speedup < 1.0 {
            eprintln!(
                "WARN: index only {speedup:.2}x over sort-on-advance at the largest size \
                 (informational — wall ratio is hardware- and size-dependent)"
            );
        }
        println!(
            "ok: batch-identical on both buffer kinds at every point, occupancy sane \
             ({speedup:.2}x at largest size)"
        );
    }
    if names.iter().any(|a| *a == "bench_observability") {
        // CI obs-overhead-smoke job: the same replay fully instrumented
        // (metrics + stage spans, the default) vs force-disabled. Hard
        // gates: byte-identical delta logs, well-formed Prometheus/JSON/
        // chrome-trace exports, stage spans tiling ≥ 95 % of each advance,
        // and instrumented wall within 1.10× of the baseline.
        let tuples = tp_bench::scaled(20_000);
        let b = experiments::observability_bench(tuples, (2 * tuples / 64).max(1), 3);
        println!(
            "observability smoke: {} tuples/rel, {} advances, instrumented {:.1} ms vs \
             baseline {:.1} ms ({:.3}×, min of {} rounds)",
            b.tuples,
            b.advances,
            b.instrumented_ms,
            b.baseline_ms,
            b.overhead_ratio(),
            b.rounds,
        );
        println!(
            "  logs_identical={} prometheus_ok={} json_ok={} trace_ok={} stage_coverage={:.1}%",
            b.logs_identical,
            b.prometheus_ok,
            b.json_ok,
            b.trace_ok,
            b.stage_coverage * 100.0,
        );
        if !b.logs_identical {
            eprintln!("FAIL: instrumented and uninstrumented runs emitted different delta logs");
            std::process::exit(1);
        }
        if !b.prometheus_ok || !b.json_ok {
            eprintln!("FAIL: metrics snapshot malformed or missing expected families");
            std::process::exit(1);
        }
        if !b.trace_ok {
            eprintln!("FAIL: chrome://tracing export empty or malformed");
            std::process::exit(1);
        }
        if b.stage_coverage < 0.95 {
            eprintln!(
                "FAIL: stage spans cover only {:.1}% of advance wall time (gate: >= 95%)",
                b.stage_coverage * 100.0
            );
            std::process::exit(1);
        }
        if b.overhead_ratio() > 1.10 {
            eprintln!(
                "FAIL: observability overhead {:.3}× (gate: <= 1.10×)",
                b.overhead_ratio()
            );
            std::process::exit(1);
        }
        println!(
            "ok: byte-identical logs, exports well-formed, {:.1}% stage coverage, {:.3}× overhead",
            b.stage_coverage * 100.0,
            b.overhead_ratio()
        );
    }
    if names.iter().any(|a| *a == "bench_tenants") {
        // CI multi-tenant-soak job: N tenants with private arenas and
        // sliding var registries behind one StreamServer, ≥ 50 collective
        // watermark waves. Gates: per-tenant steady state ≤ 2× one-window
        // on BOTH memory axes (arena nodes and live VarTable entries), and
        // stream ≡ batch for every tenant.
        let tenants = tp_bench::scaled(6).clamp(2, 64);
        let epochs = tp_bench::scaled(600).max(60);
        let b = experiments::multi_tenant_bench(tenants, epochs, 4);
        println!(
            "multi-tenant soak: {} tenants × {} epochs on {} workers, {} rows in {:.1} ms ({:.1} krows/s)",
            b.tenants.len(),
            b.epochs,
            b.workers,
            b.total_rows,
            b.wall_ms,
            b.krows_per_s(),
        );
        for t in &b.tenants {
            println!(
                "  {}: {} advances, arena {}→{} ({:.2}×), vars {}→{} ({:.2}×), released {} vars / {} segments, batch_equal={}",
                t.name,
                t.advances,
                t.one_window_nodes,
                t.steady_nodes,
                t.node_plateau_ratio(),
                t.one_window_vars,
                t.steady_vars,
                t.var_plateau_ratio(),
                t.released_vars,
                t.retired_segments,
                t.batch_equal,
            );
        }
        if b.min_advances() < 50 {
            eprintln!(
                "FAIL: only {} advance waves (gate: >= 50 epochs)",
                b.min_advances()
            );
            std::process::exit(1);
        }
        if !b.batch_equal() {
            eprintln!("FAIL: a tenant's stream diverges from batch LAWA");
            std::process::exit(1);
        }
        if b.worst_node_ratio() > 2.0 {
            eprintln!(
                "FAIL: a tenant's arena did not plateau ({:.2}×, gate: 2×)",
                b.worst_node_ratio()
            );
            std::process::exit(1);
        }
        if b.worst_var_ratio() > 2.0 {
            eprintln!(
                "FAIL: a tenant's var table did not plateau ({:.2}×, gate: 2×)",
                b.worst_var_ratio()
            );
            std::process::exit(1);
        }
        println!(
            "ok: {} tenants bounded on both axes over {} waves (arena {:.2}×, vars {:.2}× ≤ 2), batch-identical",
            b.tenants.len(),
            b.min_advances(),
            b.worst_node_ratio(),
            b.worst_var_ratio(),
        );
    }
    if names.iter().any(|a| *a == "bench_pipeline") {
        // CI streaming-plans-smoke job: a compiled join + grouped-aggregate
        // alert rule running as a standing incremental pipeline over two
        // replayed streams, vs re-executing the batch plan over the closed
        // region at every watermark. Hard gates: the standing view must
        // equal batch at finish, and under an extend-dominated
        // immortal-facts stream with reclamation the pipeline's operator
        // state must plateau (steady-state peak <= warm-up peak) while
        // segments actually retire underneath it, batch-identically. The
        // wall speedup is informational (1-core CI cannot gate it).
        let b = experiments::pipeline_bench(
            tp_bench::scaled(800).max(240),
            tp_bench::scaled(64).max(24),
            32,
            tp_bench::scaled(120).max(48),
        );
        println!(
            "standing plans: {} tuples/side over {} keys, {} advances, pipeline {:.1} ms vs \
             naive re-plan {:.1} ms ({:.2}×, {} operator deltas, {} view rows), batch_equal={}",
            b.tuples,
            b.facts,
            b.advances,
            b.incremental_ms,
            b.naive_rebatch_ms,
            b.speedup(),
            b.pipeline_deltas,
            b.output_rows,
            b.batch_equal,
        );
        println!(
            "  reclaim-mode plateau: {} → {} state rows over {} epochs ({:.2}×), {} segments \
             retired, batch_equal={}",
            b.warmup_state_rows,
            b.steady_state_rows,
            b.plateau_epochs,
            b.plateau_ratio(),
            b.retired_segments,
            b.plateau_batch_equal,
        );
        if !b.batch_equal {
            eprintln!("FAIL: standing pipeline view diverges from the batch plan");
            std::process::exit(1);
        }
        if !b.plateau_batch_equal {
            eprintln!("FAIL: reclaim-mode pipeline view diverges from the batch plan");
            std::process::exit(1);
        }
        if b.retired_segments == 0 {
            eprintln!("FAIL: reclamation never fired under the pipeline; the plateau is vacuous");
            std::process::exit(1);
        }
        if b.steady_state_rows > b.warmup_state_rows {
            eprintln!(
                "FAIL: pipeline state did not plateau — steady-state {} vs warm-up {} rows \
                 (gate: <= 1.0×)",
                b.steady_state_rows, b.warmup_state_rows
            );
            std::process::exit(1);
        }
        if b.speedup() < 1.0 {
            eprintln!(
                "WARN: standing pipeline only {:.2}x over naive re-plan (informational — \
                 wall ratio is hardware- and size-dependent)",
                b.speedup()
            );
        }
        println!(
            "ok: standing view ≡ batch plan, state plateaued at {:.2}x over {} epochs with {} \
             retires ({:.2}x over naive re-plan)",
            b.plateau_ratio(),
            b.plateau_epochs,
            b.retired_segments,
            b.speedup(),
        );
    }
    if names.iter().any(|a| *a == "bench_adaptive") {
        // CI pipeline-adaptive-smoke job: the three adaptive-pipeline
        // claims, hard-gated on correctness only. (a) a mid-run plan swap
        // (nested-loop → hash join, driven by observed delta rates) must
        // leave the delta log byte-identical and the standing view
        // row-identical to the frozen engine; (b) hash-consed multi-plan
        // state sharing must keep standing rows strictly below the
        // dedicated-engine sum with row-identical views; (c) the
        // lane-blocked batch kernel must match the memoized per-root walk
        // within 1e-12. Wall speedups are informational (1-core CI cannot
        // gate them).
        let b = experiments::adaptive_pipeline_bench(
            tp_bench::scaled(800).max(240),
            tp_bench::scaled(64).max(24),
            32,
            3,
            3,
        );
        println!(
            "adaptive pipelines: {} tuples/side over {} keys, {} advances, frozen {:.1} ms vs \
             re-optimizing {:.1} ms ({:.2}×, {} swap(s)), log_identical={}, views_equal={}",
            b.tuples,
            b.facts,
            b.advances,
            b.frozen_ms,
            b.adaptive_ms,
            b.reopt_speedup(),
            b.swaps,
            b.log_identical,
            b.views_equal,
        );
        println!(
            "  shared state: {} rows vs {} duplicated ({:.2}×, {} shared operators over {} \
             plans), views_equal={}",
            b.shared_state_rows,
            b.duplicated_state_rows,
            b.shared_state_ratio(),
            b.shared_operators,
            b.shared_plans,
            b.shared_views_equal,
        );
        println!(
            "  lane-blocked kernel: {:.1} ms vs {:.1} ms memoized cold ({:.2}×, {} roots, \
             max Δ {:.2e})",
            b.kernel_cold_ms,
            b.memoized_cold_ms,
            b.simd_valuation_speedup(),
            b.valuation_roots,
            b.kernel_max_delta,
        );
        if b.swaps == 0 {
            eprintln!("FAIL: re-optimization never fired; the swap gates are vacuous");
            std::process::exit(1);
        }
        if !b.log_identical {
            eprintln!("FAIL: the mid-run plan swap changed the delta log");
            std::process::exit(1);
        }
        if !b.views_equal {
            eprintln!("FAIL: the mid-run plan swap changed the standing view");
            std::process::exit(1);
        }
        if !b.shared_views_equal {
            eprintln!("FAIL: a shared-pipeline view diverges from its dedicated engine");
            std::process::exit(1);
        }
        if b.shared_state_rows >= b.duplicated_state_rows {
            eprintln!(
                "FAIL: shared pipeline state {} rows not below the duplicated baseline {}",
                b.shared_state_rows, b.duplicated_state_rows
            );
            std::process::exit(1);
        }
        if b.kernel_max_delta > 1e-12 {
            eprintln!(
                "FAIL: lane-blocked kernel diverges from the per-root walk (max Δ {:.2e}, \
                 gate: 1e-12)",
                b.kernel_max_delta
            );
            std::process::exit(1);
        }
        if b.reopt_speedup() < 1.0 {
            eprintln!(
                "WARN: re-optimized run only {:.2}x over the frozen plan (informational — \
                 wall ratio is hardware- and size-dependent)",
                b.reopt_speedup()
            );
        }
        println!(
            "ok: swap invisible in log and view ({} swap(s), {:.2}x over frozen), shared state \
             {:.2}x of duplicated, kernel ≡ walk to {:.2e}",
            b.swaps,
            b.reopt_speedup(),
            b.shared_state_ratio(),
            b.kernel_max_delta,
        );
    }
    if names.iter().any(|a| *a == "bench_raw_speed") {
        // CI raw-speed-smoke job: the three raw-speed claims, hard-gated
        // on correctness only. (a) columnar marginal kernel ≡ per-root
        // memoized walk to 1e-12 on a shared-subformula workload; (b) the
        // pairwise stitch reduction is batch-identical at every worker
        // count; (c) interior-segment reclamation actually fires under an
        // immortal-facts stream and its steady-state residency sits
        // strictly below the prefix-ordered baseline, batch-identically.
        // Wall speedups are informational (1-core CI cannot gate them).
        let tuples = tp_bench::scaled(20_000);
        let b = experiments::raw_speed_bench(
            tuples,
            32,
            3,
            tp_bench::scaled(1_500).max(1_024),
            tp_bench::scaled(96).max(48),
            &[1, 2, 4, 8],
        );
        println!(
            "raw speed: columnar {:.1} ms vs cold walk {:.1} ms ({:.2}×, {} tuples, max Δ {:.2e})",
            b.columnar_ms,
            b.memoized_cold_ms,
            b.valuation_speedup(),
            b.output_tuples,
            b.max_delta,
        );
        for p in &b.stitch {
            println!(
                "  stitch: {} workers, {:.1} ms, depth<={}, batch_equal={}",
                p.workers, p.wall_ms, p.depth_max, p.batch_equal,
            );
        }
        println!(
            "  immortal facts: interior {} B vs prefix {} B steady-state ({:.2}×), {} interior retires, batch_equal={}",
            b.interior_steady_bytes,
            b.prefix_steady_bytes,
            b.residency_ratio(),
            b.interior_retired_segments,
            b.immortal_batch_equal,
        );
        println!(
            "  registry: interior {} vs prefix {} steady-state live vars ({:.2}×)",
            b.interior_steady_live_vars,
            b.prefix_steady_live_vars,
            b.live_vars_ratio(),
        );
        if b.max_delta > 1e-12 {
            eprintln!(
                "FAIL: columnar kernel diverges from the per-root walk (max Δ {:.2e}, gate: 1e-12)",
                b.max_delta
            );
            std::process::exit(1);
        }
        if !b.stitch_equal() {
            eprintln!("FAIL: stitch reduction diverges from batch LAWA at some worker count");
            std::process::exit(1);
        }
        if !b.immortal_batch_equal {
            eprintln!("FAIL: an immortal-facts replay diverges from batch LAWA");
            std::process::exit(1);
        }
        if b.interior_retired_segments == 0 {
            eprintln!("FAIL: interior reclamation never fired under the immortal-facts stream");
            std::process::exit(1);
        }
        if b.interior_steady_bytes >= b.prefix_steady_bytes {
            eprintln!(
                "FAIL: interior steady-state residency {} B not below prefix baseline {} B",
                b.interior_steady_bytes, b.prefix_steady_bytes
            );
            std::process::exit(1);
        }
        if b.interior_steady_live_vars >= b.prefix_steady_live_vars {
            eprintln!(
                "FAIL: interior steady-state live_vars {} not below prefix baseline {} \
                 (cohort-granular release not observable)",
                b.interior_steady_live_vars, b.prefix_steady_live_vars
            );
            std::process::exit(1);
        }
        if b.valuation_speedup() < 1.0 {
            eprintln!(
                "WARN: columnar kernel only {:.2}x over the cold walk (informational — \
                 wall ratio is hardware-dependent)",
                b.valuation_speedup()
            );
        }
        println!(
            "ok: kernel ≡ walk to {:.2e}, stitch batch-identical at every worker count, \
             interior residency {:.2}x of prefix with {} interior retires",
            b.max_delta,
            b.residency_ratio(),
            b.interior_retired_segments,
        );
    }
}
