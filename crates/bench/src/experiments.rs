//! One runner per table and figure of §VII.
//!
//! Every function regenerates the corresponding artifact of the paper at a
//! `TP_SCALE`-adjusted size and returns either a rendered table (Tables
//! II–IV) or an [`ExperimentResult`] (the figures) whose rows are the x-axis
//! values and whose columns are approaches — the same series the paper
//! plots.

use std::fmt::Write as _;

use tp_baselines::Approach;
use tp_core::ops::SetOp;
use tp_core::relation::{TpRelation, VarTable};
use tp_workloads::{
    overlapping_factor, shifted_copy, DatasetStats, MeteoConfig, SynthConfig, WebkitConfig,
};

use crate::runner::{default_cap, run_one, scaled};

/// One line of a figure: an approach and its runtime (ms) per x value
/// (`None` = unsupported or size-capped, rendered as `-`).
#[derive(Debug, Clone)]
pub struct Series {
    /// Approach name.
    pub name: String,
    /// Runtime in milliseconds per x value.
    pub values: Vec<Option<f64>>,
}

/// A regenerated figure.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Identifier, e.g. "Fig. 7a".
    pub id: String,
    /// Human-readable description.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// The x values, already formatted.
    pub xs: Vec<String>,
    /// One series per approach.
    pub series: Vec<Series>,
    /// Free-form annotations (measured overlap factors, caps, …).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Renders the result as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {}: {} ==", self.id, self.title);
        let _ = write!(out, "{:<16}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>14}", s.name);
        }
        let _ = writeln!(out);
        for (i, x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x:<16}");
            for s in &self.series {
                match s.values.get(i).copied().flatten() {
                    Some(ms) => {
                        let _ = write!(out, "{ms:>12.1}ms");
                    }
                    None => {
                        let _ = write!(out, "{:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// The measured values of an approach, if present.
    pub fn series_of(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders the result as CSV (header `x,<approach>…`; empty cells for
    /// unsupported/capped points) — convenient for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{}", s.name);
        }
        let _ = writeln!(out);
        for (i, x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.values.get(i).copied().flatten() {
                    Some(ms) => {
                        let _ = write!(out, ",{ms:.3}");
                    }
                    None => {
                        let _ = write!(out, ",");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn sweep(
    id: &str,
    title: &str,
    x_label: &str,
    approaches: &[Approach],
    op: SetOp,
    inputs: Vec<(String, TpRelation, TpRelation)>,
) -> ExperimentResult {
    let mut series: Vec<Series> = approaches
        .iter()
        .map(|a| Series {
            name: a.name().to_string(),
            values: Vec::with_capacity(inputs.len()),
        })
        .collect();
    let mut xs = Vec::with_capacity(inputs.len());
    for (x, r, s) in &inputs {
        xs.push(x.clone());
        for (a, line) in approaches.iter().zip(series.iter_mut()) {
            line.values.push(run_one(*a, op, r, s, default_cap(*a)));
        }
    }
    ExperimentResult {
        id: id.to_string(),
        title: title.to_string(),
        x_label: x_label.to_string(),
        xs,
        series,
        notes: Vec::new(),
    }
}

/// Table II: the support matrix.
pub fn table2_support() -> String {
    format!(
        "== Table II: approach/operation support ==\n{}",
        tp_baselines::support_matrix()
    )
}

/// Table III: the synthetic robustness datasets and their measured
/// overlapping factors.
pub fn table3_datasets() -> String {
    let tuples = scaled(10_000);
    let mut out = String::from("== Table III: robustness dataset characteristics ==\n");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>12} {:>12} {:>10}",
        "nominal", "measured", "max len (R)", "max len (S)", "tuples"
    );
    for nominal in [0.03, 0.1, 0.4, 0.6, 0.8] {
        let cfg = SynthConfig::table3_preset(nominal, tuples, 17);
        let mut vars = VarTable::new();
        let (r, s) = tp_workloads::synth::generate(&cfg, &mut vars);
        let measured = overlapping_factor(&r, &s);
        let _ = writeln!(
            out,
            "{nominal:<10} {measured:>10.3} {:>12} {:>12} {tuples:>10}",
            cfg.r.max_interval_len, cfg.s.max_interval_len
        );
    }
    out
}

/// Table IV: profiles of the (simulated) real-world datasets.
pub fn table4_datasets() -> String {
    let mut vars = VarTable::new();
    let meteo = tp_workloads::meteo::generate(
        &MeteoConfig {
            tuples: scaled(100_000),
            ..Default::default()
        },
        &mut vars,
    );
    let webkit = tp_workloads::webkit::generate(
        &WebkitConfig {
            files: scaled(20_000),
            tuples: scaled(100_000),
            ..Default::default()
        },
        &mut vars,
    );
    format!(
        "== Table IV: real-world dataset properties (simulated) ==\n{}\n{}",
        DatasetStats::measure(&meteo).render("Meteo (simulated)"),
        DatasetStats::measure(&webkit).render("Webkit (simulated)")
    )
}

fn fig7_inputs(sizes: &[usize]) -> Vec<(String, TpRelation, TpRelation)> {
    sizes
        .iter()
        .map(|&n| {
            let mut vars = VarTable::new();
            let (r, s) = tp_workloads::synth::generate(
                &SynthConfig::single_fact(n, 20 + n as u64),
                &mut vars,
            );
            (format!("{}K", n / 1000), r, s)
        })
        .collect()
}

/// Default x axis of the small-synthetic experiments: the paper's
/// 20K–200K sweep divided by 10 (grow with `TP_SCALE`).
pub fn small_sizes() -> Vec<usize> {
    (1..=10).map(|i| scaled(2_000) * i).collect()
}

/// Fig. 7a/7b/7c: runtime on smaller synthetic datasets (single fact,
/// overlapping factor ≈ 0.6), all applicable approaches per operation.
pub fn fig7_small_synthetic() -> Vec<ExperimentResult> {
    let sizes = small_sizes();
    let inputs = fig7_inputs(&sizes);
    let mut results = vec![
        sweep(
            "Fig. 7a",
            "TP set intersection, smaller synthetic datasets",
            "tuples",
            &[
                Approach::Lawa,
                Approach::Oip,
                Approach::Ti,
                Approach::Tpdb,
                Approach::Norm,
            ],
            SetOp::Intersect,
            inputs.clone(),
        ),
        sweep(
            "Fig. 7b",
            "TP set difference, smaller synthetic datasets",
            "tuples",
            &[Approach::Lawa, Approach::Norm],
            SetOp::Except,
            inputs.clone(),
        ),
        sweep(
            "Fig. 7c",
            "TP set union, smaller synthetic datasets",
            "tuples",
            &[Approach::Lawa, Approach::Tpdb, Approach::Norm],
            SetOp::Union,
            inputs,
        ),
    ];
    for r in &mut results {
        r.notes.push(format!(
            "sizes are paper/10 by default; NORM/TPDB capped at {} tuples (quadratic)",
            scaled(6_000)
        ));
    }
    results
}

/// Fig. 8: TP set intersection on larger synthetic datasets, LAWA vs OIP
/// (the only approaches that scale).
pub fn fig8_large_synthetic() -> ExperimentResult {
    let sizes: Vec<usize> = (1..=5).map(|i| scaled(500_000) * i).collect();
    let inputs = fig7_inputs(&sizes);
    let mut result = sweep(
        "Fig. 8",
        "TP set intersection, larger synthetic datasets",
        "tuples",
        &[Approach::Lawa, Approach::Oip],
        SetOp::Intersect,
        inputs,
    );
    result
        .notes
        .push("paper sweeps 5M-50M; defaults are /10 (TP_SCALE=10 for paper size)".into());
    result
}

/// Fig. 9a: robustness of `∩Tp` against the overlapping factor (LAWA vs
/// OIP, fixed cardinality).
pub fn fig9a_overlap() -> ExperimentResult {
    let tuples = scaled(1_000_000);
    let factors = [0.03, 0.1, 0.4, 0.6, 0.8];
    let inputs: Vec<(String, TpRelation, TpRelation)> = factors
        .iter()
        .map(|&f| {
            let mut vars = VarTable::new();
            let (r, s) = tp_workloads::synth::generate(
                &SynthConfig::table3_preset(f, tuples, 31),
                &mut vars,
            );
            (format!("{:.2}", overlapping_factor(&r, &s)), r, s)
        })
        .collect();
    let mut result = sweep(
        "Fig. 9a",
        "robustness vs overlapping factor (TP set intersection)",
        "overlap",
        &[Approach::Lawa, Approach::Oip],
        SetOp::Intersect,
        inputs,
    );
    result.notes.push(format!(
        "cardinality fixed at {tuples} tuples (paper: 30M); x values are measured factors"
    ));
    result
}

/// Fig. 9b: robustness of `∩Tp` against the number of distinct facts
/// (all five approaches, fixed cardinality).
pub fn fig9b_facts() -> ExperimentResult {
    let tuples = scaled(4_000);
    let fact_counts = [tuples / 2, 100, 10, 5, 1];
    let inputs: Vec<(String, TpRelation, TpRelation)> = fact_counts
        .iter()
        .map(|&facts| {
            let mut vars = VarTable::new();
            let (r, s) = tp_workloads::synth::generate(
                &SynthConfig::with_facts(tuples, facts.max(1), 47),
                &mut vars,
            );
            (format!("{facts}F"), r, s)
        })
        .collect();
    let mut result = sweep(
        "Fig. 9b",
        "robustness vs number of distinct facts (TP set intersection)",
        "facts",
        &[
            Approach::Norm,
            Approach::Lawa,
            Approach::Oip,
            Approach::Ti,
            Approach::Tpdb,
        ],
        SetOp::Intersect,
        inputs,
    );
    result.notes.push(format!(
        "cardinality fixed at {tuples} tuples (paper: 60K), overlap ≈ 0.6"
    ));
    result
}

fn real_world_sweep(
    id_prefix: &str,
    dataset: &str,
    full_r: &TpRelation,
    full_s: &TpRelation,
) -> Vec<ExperimentResult> {
    // Random subsets of increasing size, like the paper's 20K-200K runs.
    let sizes = small_sizes();
    let subset = |rel: &TpRelation, n: usize| -> TpRelation {
        // Deterministic subset: every k-th tuple, preserving duplicate-
        // freeness (a subset of a duplicate-free relation is duplicate-free).
        let k = (rel.len() / n.max(1)).max(1);
        rel.iter()
            .step_by(k)
            .take(n)
            .cloned()
            .collect::<TpRelation>()
    };
    let inputs: Vec<(String, TpRelation, TpRelation)> = sizes
        .iter()
        .map(|&n| {
            (
                format!("{}K", n / 1000),
                subset(full_r, n),
                subset(full_s, n),
            )
        })
        .collect();
    vec![
        sweep(
            &format!("{id_prefix}a"),
            &format!("TP set intersection, {dataset}"),
            "tuples",
            &[
                Approach::Lawa,
                Approach::Oip,
                Approach::Ti,
                Approach::Tpdb,
                Approach::Norm,
            ],
            SetOp::Intersect,
            inputs.clone(),
        ),
        sweep(
            &format!("{id_prefix}b"),
            &format!("TP set difference, {dataset}"),
            "tuples",
            &[Approach::Lawa, Approach::Norm],
            SetOp::Except,
            inputs.clone(),
        ),
        sweep(
            &format!("{id_prefix}c"),
            &format!("TP set union, {dataset}"),
            "tuples",
            &[Approach::Lawa, Approach::Tpdb, Approach::Norm],
            SetOp::Union,
            inputs,
        ),
    ]
}

/// Fig. 10a–c: the three TP set operations over the (simulated) Meteo Swiss
/// dataset and its shifted counterpart.
pub fn fig10_meteo() -> Vec<ExperimentResult> {
    let mut vars = VarTable::new();
    let max_size = *small_sizes().last().expect("non-empty");
    let r = tp_workloads::meteo::generate(
        &MeteoConfig {
            tuples: max_size,
            ..Default::default()
        },
        &mut vars,
    );
    let s = shifted_copy(&r, "s", 20 * 600, 5, &mut vars);
    real_world_sweep("Fig. 10", "Meteo Swiss (simulated)", &r, &s)
}

/// Result of the memoized-valuation benchmark backing the lineage-arena
/// acceptance criterion: repeated `prob::marginal` calls on the shared
/// sublineages of overlapping LAWA windows, arena-memoized vs. the legacy
/// un-memoized tree walker.
#[derive(Debug, Clone)]
pub struct LawaValuationBench {
    /// Tuples per base relation.
    pub tuples: usize,
    /// Number of chained `∪Tp` levels (deepens the shared sublineages).
    pub levels: usize,
    /// Valuation rounds over the final relation.
    pub rounds: usize,
    /// Output tuples valuated per round.
    pub output_tuples: usize,
    /// Total tree-semantic lineage nodes valuated per round.
    pub lineage_nodes: u64,
    /// Milliseconds for `rounds` sweeps with the legacy tree walker.
    pub tree_walker_ms: f64,
    /// Milliseconds for `rounds` sweeps with the arena-memoized marginal.
    pub arena_memoized_ms: f64,
    /// Largest |Σ tree − Σ arena| over the rounds (must be ≈ 0).
    pub max_sum_delta: f64,
}

impl LawaValuationBench {
    /// `tree_walker_ms / arena_memoized_ms`.
    pub fn speedup(&self) -> f64 {
        self.tree_walker_ms / self.arena_memoized_ms.max(1e-9)
    }

    /// Renders the result as a JSON object (hand-rolled; the workspace has
    /// no serde_json).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"lawa_memoized_valuation\",\n",
                "  \"tuples\": {},\n",
                "  \"levels\": {},\n",
                "  \"rounds\": {},\n",
                "  \"output_tuples\": {},\n",
                "  \"lineage_nodes\": {},\n",
                "  \"tree_walker_ms\": {:.3},\n",
                "  \"arena_memoized_ms\": {:.3},\n",
                "  \"speedup\": {:.2},\n",
                "  \"max_sum_delta\": {:.3e},\n",
                "  \"lineage_equality\": \"O(1) LineageRef compare\"\n",
                "}}\n"
            ),
            self.tuples,
            self.levels,
            self.rounds,
            self.output_tuples,
            self.lineage_nodes,
            self.tree_walker_ms,
            self.arena_memoized_ms,
            self.speedup(),
            self.max_sum_delta,
        )
    }

    /// Human-readable summary line.
    pub fn render(&self) -> String {
        format!(
            "== BENCH lawa: memoized valuation ==\n\
             {} tuples × {} union levels → {} output tuples, {} lineage nodes/round\n\
             tree walker   {:>10.1} ms  ({} rounds)\n\
             arena memoized{:>10.1} ms  ({} rounds)\n\
             speedup       {:>10.2}×   (max Σ-delta {:.2e})\n",
            self.tuples,
            self.levels,
            self.output_tuples,
            self.lineage_nodes,
            self.tree_walker_ms,
            self.rounds,
            self.arena_memoized_ms,
            self.rounds,
            self.speedup(),
            self.max_sum_delta,
        )
    }
}

/// Benchmarks repeated marginal valuation over the output of a chain of
/// `∪Tp` operations whose LAWA windows stay aligned — the paper's
/// overlapping-streams scenario, where every window of level `i` carries the
/// level `i−1` window's lineage as a shared subformula. Every output tuple
/// is valuated `rounds` times with (a) the legacy recursive tree walker (no
/// memo; walks the full formula every call) and (b) the arena-backed
/// memoized [`tp_core::prob::marginal`]. Both paths compute identical
/// probabilities; the arena path valuates every *unique* interned node once
/// across all tuples and all rounds.
pub fn lawa_valuation_bench(tuples: usize, levels: usize, rounds: usize) -> LawaValuationBench {
    use tp_core::lineage::LineageTree;

    let (acc, vars) = shared_subformula_workload(tuples, levels);
    let vars = &vars;
    let output_tuples = acc.len();
    let lineage_nodes: u64 = acc.iter().map(|t| t.lineage.size() as u64).sum();

    // Legacy baseline: expand once (not timed), then walk per call.
    let trees: Vec<LineageTree> = acc.iter().map(|t| t.lineage.to_tree()).collect();
    let (tree_walker_ms, tree_sums) = crate::runner::time_ms(|| {
        let mut sums = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let mut sum = 0.0;
            for tree in &trees {
                sum += tree.independent_prob(vars).expect("vars registered");
            }
            sums.push(sum);
        }
        sums
    });

    // Arena path: cold cache (freshly cleared), memoized across tuples and
    // rounds.
    vars.clear_valuation_cache();
    let (arena_memoized_ms, arena_sums) = crate::runner::time_ms(|| {
        let mut sums = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let mut sum = 0.0;
            for t in acc.iter() {
                sum += tp_core::prob::marginal(&t.lineage, vars).expect("vars registered");
            }
            sums.push(sum);
        }
        sums
    });

    let max_sum_delta = tree_sums
        .iter()
        .zip(&arena_sums)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    LawaValuationBench {
        tuples,
        levels,
        rounds,
        output_tuples,
        lineage_nodes,
        tree_walker_ms,
        arena_memoized_ms,
        max_sum_delta,
    }
}

/// Builds the paper's Fig. 4 motif at benchmark scale: per fact, one
/// *long-lived* tuple per level (its lineage accumulates into a deep
/// ∨-chain under repeated `∪Tp`), finally unioned with a stream of many
/// *short* tuples. Every short tuple clips one LAWA window out of the
/// long tuple's validity, so all `cells` windows of a fact carry the same
/// deep chain as a shared subformula — exactly the repeated-lineage
/// pattern both the memoized valuation and the columnar kernel exist for.
/// Shared by `lawa_valuation_bench` and `raw_speed_bench`.
fn shared_subformula_workload(tuples: usize, levels: usize) -> (TpRelation, VarTable) {
    use tp_core::fact::Fact;
    use tp_core::interval::Interval;
    use tp_core::ops::union;

    let facts = (tuples / 100).clamp(1, 512);
    let cells = (tuples / facts).max(1);
    let granule = 10i64;
    let span = cells as i64 * granule;
    let mut vars = VarTable::new();
    let mut rng_p = 0u64;
    let mut next_p = move || {
        // Deterministic pseudo-probabilities in (0.05, 0.95).
        rng_p = rng_p
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        0.05 + 0.9 * ((rng_p >> 11) as f64 / (1u64 << 53) as f64)
    };
    let mut long_level = |tag: &str, vars: &mut VarTable| -> TpRelation {
        let rows: Vec<_> = (0..facts)
            .map(|f| (Fact::single(f as i64), Interval::at(0, span), next_p()))
            .collect();
        TpRelation::base(tag, rows, vars).expect("one long tuple per fact")
    };
    let mut acc = long_level("d0", &mut vars);
    for i in 1..levels.max(2) {
        let next = long_level(&format!("d{i}"), &mut vars);
        acc = union(&acc, &next);
    }
    // The short-tuple stream: `cells` aligned tuples per fact.
    let mut grid_rows = Vec::with_capacity(facts * cells);
    for f in 0..facts {
        for j in 0..cells as i64 {
            grid_rows.push((
                Fact::single(f as i64),
                Interval::at(j * granule, (j + 1) * granule),
                next_p(),
            ));
        }
    }
    let grid = TpRelation::base("s", grid_rows, &mut vars).expect("grid is duplicate-free");
    acc = union(&acc, &grid);
    (acc, vars)
}

/// One per-operation LAWA throughput measurement (the sweep itself, not
/// valuation): guards the `O(n log n)` set-operation hot path against
/// regressions per figure series.
#[derive(Debug, Clone)]
pub struct OpThroughput {
    /// The operation measured.
    pub op: SetOp,
    /// Tuples per input relation.
    pub tuples: usize,
    /// Best-of-three wall milliseconds for one full operation (sort +
    /// sweep + λ-functions).
    pub ms: f64,
    /// Input tuples processed per second, in millions.
    pub mtuples_per_s: f64,
    /// Output cardinality (sanity anchor: Theorem 1 keeps it linear).
    pub output_tuples: usize,
}

/// Measures all three TP set operations on the single-fact synthetic
/// workload at each given size (best of three runs per point).
pub fn lawa_op_throughput(sizes: &[usize]) -> Vec<OpThroughput> {
    let mut out = Vec::new();
    for &tuples in sizes {
        let mut vars = VarTable::new();
        let (r, s) =
            tp_workloads::synth::generate(&SynthConfig::single_fact(tuples, 77), &mut vars);
        for op in SetOp::ALL {
            let mut best = f64::INFINITY;
            let mut output_tuples = 0usize;
            for _ in 0..3 {
                let (ms, res) = crate::runner::time_ms(|| tp_core::ops::apply(op, &r, &s));
                output_tuples = res.len();
                std::hint::black_box(res.len());
                best = best.min(ms);
            }
            let total = (r.len() + s.len()) as f64;
            out.push(OpThroughput {
                op,
                tuples,
                ms: best,
                mtuples_per_s: total / best / 1_000.0,
                output_tuples,
            });
        }
    }
    out
}

/// Result of the arena intern-contention micro-benchmark: the identical
/// multi-threaded intern workload against a single-lock arena (the PR 1
/// design) and against the lock-striped arena.
#[derive(Debug, Clone)]
pub struct ContentionBench {
    /// Concurrent interning threads.
    pub threads: usize,
    /// And-chain nodes built per thread (3 interns per link).
    pub nodes_per_thread: usize,
    /// Lock stripes of the striped arena.
    pub shards: usize,
    /// Wall milliseconds on the single-`RwLock` arena.
    pub single_lock_ms: f64,
    /// Wall milliseconds on the striped arena.
    pub striped_ms: f64,
    /// Hardware threads of the machine the numbers were taken on (stripe
    /// wins need real parallelism; on one core the two layouts tie).
    pub hardware_threads: usize,
}

impl ContentionBench {
    /// `single_lock_ms / striped_ms`.
    pub fn speedup(&self) -> f64 {
        self.single_lock_ms / self.striped_ms.max(1e-9)
    }
}

/// Runs the intern-contention workload: each thread builds its own
/// and-chain over distinct variables (the `ops::apply_parallel` / streaming
/// worker pattern: mostly disjoint nodes) while periodically re-interning a
/// small shared variable pool (the hit path every worker shares).
pub fn arena_contention_bench(threads: usize, nodes_per_thread: usize) -> ContentionBench {
    use tp_core::arena::{LineageArena, LineageNode, MAX_SHARDS};
    use tp_core::lineage::TupleId;

    let run = |shards: usize| -> f64 {
        let arena = LineageArena::with_shards(shards);
        let (ms, _) = crate::runner::time_ms(|| {
            std::thread::scope(|scope| {
                for t in 0..threads as u64 {
                    let arena = &arena;
                    scope.spawn(move || {
                        let base = 1_000_000 + t * 10 * nodes_per_thread as u64;
                        let mut chain = arena.intern(LineageNode::Var(TupleId(base)));
                        for i in 1..nodes_per_thread as u64 {
                            let v = arena.intern(LineageNode::Var(TupleId(base + i)));
                            chain = arena.intern(LineageNode::And(chain, v));
                            // Shared hit-path probe: an already interned
                            // node every worker keeps re-requesting.
                            let _ = arena.intern(LineageNode::Var(TupleId(i % 64)));
                        }
                        std::hint::black_box(chain);
                    });
                }
            });
        });
        ms
    };
    // Warm up the allocator, then measure both layouts on identical work.
    let _ = run(MAX_SHARDS);
    ContentionBench {
        threads,
        nodes_per_thread,
        shards: MAX_SHARDS,
        single_lock_ms: run(1),
        striped_ms: run(MAX_SHARDS),
        hardware_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Result of the streaming acceptance benchmark: the incremental engine
/// against the naive alternative that re-runs batch LAWA over the full
/// released prefix on every watermark advance.
#[derive(Debug, Clone)]
pub struct StreamingBench {
    /// Tuples per input relation.
    pub tuples: usize,
    /// Arrival events replayed.
    pub arrivals: usize,
    /// Watermark advances in the schedule.
    pub advances: u64,
    /// Wall milliseconds for the incremental engine (all three ops from
    /// one sweep per advance).
    pub incremental_ms: f64,
    /// Wall milliseconds for naive re-run-batch-per-watermark (all three
    /// ops).
    pub naive_rebatch_ms: f64,
    /// `Insert` deltas emitted across ops.
    pub inserts: u64,
    /// `Extend` deltas emitted across ops.
    pub extends: u64,
    /// Whether the streamed results are tuple-identical to batch LAWA for
    /// all three operations (checked outside the timed sections).
    pub batch_equal: bool,
}

impl StreamingBench {
    /// `naive_rebatch_ms / incremental_ms`.
    pub fn speedup(&self) -> f64 {
        self.naive_rebatch_ms / self.incremental_ms.max(1e-9)
    }
}

/// Benchmarks continuous LAWA on the single-fact synthetic workload:
/// `tuples` per relation arrive out of order (lateness 4) with a watermark
/// advance every `advance_every` arrivals. The incremental engine sweeps
/// each released prefix once; the naive baseline re-runs batch LAWA over
/// everything released so far at every advance — the "batch re-run" mode
/// of operation the streaming engine exists to replace.
pub fn streaming_bench(tuples: usize, advance_every: usize) -> StreamingBench {
    use tp_core::ops::apply;
    use tp_stream::{CountingSink, EngineConfig, ReplayConfig, StreamScript};

    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(&SynthConfig::single_fact(tuples, 91), &mut vars);
    let script = StreamScript::from_pair(
        &r,
        &s,
        &ReplayConfig {
            lateness: 4,
            advance_every,
            seed: 23,
        },
    );

    // Timed: incremental engine, counting sink (no materialization cost).
    let mut counter = CountingSink::new();
    let (incremental_ms, totals) =
        crate::runner::time_ms(|| script.run_into(EngineConfig::default(), &mut counter));

    // Timed: naive re-run per watermark.
    let (naive_rebatch_ms, naive) =
        crate::runner::time_ms(|| script.run_naive_rebatch(&SetOp::ALL));

    // Untimed: equivalence of both modes with batch.
    let (sink, _) = script.run(EngineConfig::default());
    let batch_equal = SetOp::ALL.iter().all(|&op| {
        let batch = apply(op, &r, &s).canonicalized();
        sink.relation(op).canonicalized() == batch
            && naive
                .iter()
                .find(|(o, _)| *o == op)
                .map(|(_, rel)| rel.canonicalized() == batch)
                .unwrap_or(false)
    });

    StreamingBench {
        tuples,
        arrivals: script.arrivals(),
        advances: totals.advances,
        incremental_ms,
        naive_rebatch_ms,
        inserts: totals.inserts,
        extends: totals.extends,
        batch_equal,
    }
}

/// Result of the bounded-memory streaming benchmark: a sliding-window
/// synthetic stream replayed through a **reclaiming** engine
/// ([`tp_stream::ReclaimConfig`] — private arena, one sealed segment per
/// advance, retirement below the live frontier). The gate: steady-state
/// arena residency must stay within 2× of the one-window warm-up
/// footprint, independent of how many epochs replay, while results stay
/// tuple-identical to batch LAWA.
#[derive(Debug, Clone)]
pub struct MemoryBench {
    /// Epochs generated (one watermark advance each).
    pub epochs: usize,
    /// Watermark advances actually executed.
    pub advances: u64,
    /// Tuples per input side across the whole run.
    pub tuples_per_side: usize,
    /// Peak live arena nodes over the first 8 advances (the one-window
    /// footprint, before retirement has anything to reclaim).
    pub one_window_nodes: usize,
    /// Peak live arena nodes over the second half of the run.
    pub steady_max_nodes: usize,
    /// Live arena nodes after the final advance.
    pub final_nodes: usize,
    /// Segments retired over the run.
    pub retired_segments: u64,
    /// Nodes whose storage retirement released.
    pub retired_nodes: u64,
    /// Resident arena bytes after the final advance.
    pub final_resident_bytes: usize,
    /// Whether the materialized stream output equals batch LAWA for all
    /// three operations.
    pub batch_equal: bool,
}

impl MemoryBench {
    /// `steady_max_nodes / one_window_nodes` — ≤ 2.0 means the arena
    /// plateaued (the CI gate).
    pub fn plateau_ratio(&self) -> f64 {
        self.steady_max_nodes as f64 / self.one_window_nodes.max(1) as f64
    }

    /// The acceptance predicate of the `memory-bounded-stream` CI job.
    pub fn bounded(&self) -> bool {
        self.batch_equal && self.plateau_ratio() <= 2.0
    }
}

/// Replays a sliding-window synthetic stream of `epochs` epochs through a
/// reclaiming engine, sampling live arena nodes after every advance and
/// cross-checking the materialized output against batch LAWA (untimed).
pub fn memory_bounded_bench(epochs: usize) -> MemoryBench {
    use tp_core::ops::apply;
    use tp_stream::{EngineConfig, MaterializingSink, ReclaimConfig, ReplayEvent, StreamEngine};
    use tp_workloads::{sliding_synth_stream, SlidingConfig};

    let epochs = epochs.max(16);
    let mut vars = VarTable::new();
    let w = sliding_synth_stream(
        &SlidingConfig {
            epochs,
            ..Default::default()
        },
        &mut vars,
    );
    let mut engine = StreamEngine::new(EngineConfig {
        reclaim: Some(ReclaimConfig {
            keep_epochs: 2,
            ..Default::default()
        }),
        ..Default::default()
    });
    let mut sink = MaterializingSink::new();
    let mut live_samples: Vec<usize> = Vec::new();
    for event in &w.script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(wm) => {
                engine
                    .advance(*wm, &mut sink)
                    .expect("script watermarks monotone");
                live_samples.push(engine.arena_stats().expect("reclaim engine").nodes);
            }
        }
    }
    engine.finish(&mut sink).expect("final advance");
    let stats = engine.arena_stats().expect("reclaim engine");
    let (retired_segments, retired_nodes) = engine.reclaimed();
    let (one_window_nodes, steady_max_nodes) = peak_window(&live_samples, 8);
    // Untimed equivalence check: re-intern the materialized deltas into
    // the (global) current arena once, then compare per op.
    let streamed = sink.replay();
    let batch_equal = SetOp::ALL
        .iter()
        .all(|&op| streamed.relation(op).canonicalized() == apply(op, &w.r, &w.s).canonicalized());
    MemoryBench {
        epochs,
        advances: live_samples.len() as u64,
        tuples_per_side: w.r.len(),
        one_window_nodes,
        steady_max_nodes,
        final_nodes: stats.nodes,
        retired_segments,
        retired_nodes,
        final_resident_bytes: stats.resident_bytes,
        batch_equal,
    }
}

/// `(one-window, steady-state)` peaks of a per-advance memory sample
/// series: the max over the first `warmup` samples versus the max over
/// the second half — the plateau computation shared by the bounded-memory
/// and multi-tenant benches (mirrored for tests in
/// `tests/common/oracle.rs::assert_plateau`).
fn peak_window(samples: &[usize], warmup: usize) -> (usize, usize) {
    if samples.is_empty() {
        return (0, 0);
    }
    let warmup = warmup.clamp(1, samples.len());
    (
        samples[..warmup].iter().copied().max().unwrap_or(0),
        samples[samples.len() / 2..]
            .iter()
            .copied()
            .max()
            .unwrap_or(0),
    )
}

/// Per-tenant summary of the multi-tenant soak benchmark.
#[derive(Debug, Clone)]
pub struct TenantSummary {
    /// Tenant name.
    pub name: String,
    /// Watermark waves the tenant participated in.
    pub advances: u64,
    /// Rows pushed (vars registered) for the tenant.
    pub pushed: u64,
    /// Peak live arena nodes over the first 8 waves.
    pub one_window_nodes: usize,
    /// Peak live arena nodes over the second half of the run.
    pub steady_nodes: usize,
    /// Peak live `VarTable` entries over the first 8 waves.
    pub one_window_vars: usize,
    /// Peak live `VarTable` entries over the second half of the run.
    pub steady_vars: usize,
    /// Arena segments the tenant's engine retired.
    pub retired_segments: u64,
    /// Variables released from the tenant's sliding registry.
    pub released_vars: u64,
    /// Whether the tenant's stream result equals batch LAWA for all ops.
    pub batch_equal: bool,
}

impl TenantSummary {
    /// Steady-state over one-window ratio of live arena nodes (gate ≤ 2).
    pub fn node_plateau_ratio(&self) -> f64 {
        self.steady_nodes as f64 / self.one_window_nodes.max(1) as f64
    }

    /// Steady-state over one-window ratio of live vars (gate ≤ 2).
    pub fn var_plateau_ratio(&self) -> f64 {
        self.steady_vars as f64 / self.one_window_vars.max(1) as f64
    }
}

/// Result of the multi-tenant soak benchmark: N tenants with private
/// arenas and sliding var registries behind one `StreamServer`, advanced
/// in collective watermark waves sharded over a worker pool. The gates:
/// per-tenant steady state ≤ 2× one-window on **both** memory axes (arena
/// nodes and live `VarTable` entries), and stream ≡ batch per tenant.
#[derive(Debug, Clone)]
pub struct MultiTenantBench {
    /// Per-tenant plateau and equivalence summaries.
    pub tenants: Vec<TenantSummary>,
    /// Worker threads the advance waves were sharded over.
    pub workers: usize,
    /// Epochs generated per tenant.
    pub epochs: usize,
    /// Wall milliseconds for the whole replay — pushes, advance waves,
    /// and the per-wave memory-gauge sampling (two lock reads per tenant
    /// per wave; negligible next to the sweeps, but included).
    pub wall_ms: f64,
    /// Rows pushed across all tenants.
    pub total_rows: u64,
}

impl MultiTenantBench {
    /// Aggregate ingest-to-result throughput in thousand rows per second.
    pub fn krows_per_s(&self) -> f64 {
        self.total_rows as f64 / self.wall_ms.max(1e-9)
    }

    /// Worst per-tenant arena plateau ratio.
    pub fn worst_node_ratio(&self) -> f64 {
        self.tenants
            .iter()
            .map(TenantSummary::node_plateau_ratio)
            .fold(0.0, f64::max)
    }

    /// Worst per-tenant live-var plateau ratio — the `var_table_bounded`
    /// gate.
    pub fn worst_var_ratio(&self) -> f64 {
        self.tenants
            .iter()
            .map(TenantSummary::var_plateau_ratio)
            .fold(0.0, f64::max)
    }

    /// Whether every tenant's stream equals batch.
    pub fn batch_equal(&self) -> bool {
        self.tenants.iter().all(|t| t.batch_equal)
    }

    /// Smallest per-tenant advance count (the ≥ 50 soak gate).
    pub fn min_advances(&self) -> u64 {
        self.tenants.iter().map(|t| t.advances).min().unwrap_or(0)
    }

    /// The acceptance predicate of the `multi-tenant-soak` CI job.
    pub fn bounded(&self) -> bool {
        self.batch_equal() && self.worst_node_ratio() <= 2.0 && self.worst_var_ratio() <= 2.0
    }
}

/// Replays `tenants` independent sliding-window streams of `epochs` epochs
/// through one [`tp_stream::StreamServer`] (advance waves sharded over
/// `workers` threads), sampling per-tenant live arena nodes and live vars
/// after every wave, then cross-checks each tenant against batch LAWA
/// (untimed).
pub fn multi_tenant_bench(tenants: usize, epochs: usize, workers: usize) -> MultiTenantBench {
    use tp_core::ops::apply;
    use tp_stream::{MaterializingSink, ServerConfig, StreamServer, TenantId};
    use tp_workloads::{multi_tenant_stream, replay_waves, MultiTenantConfig};

    let tenants = tenants.max(2);
    let epochs = epochs.max(16);
    let scripts = multi_tenant_stream(&MultiTenantConfig {
        tenants,
        epochs,
        ..Default::default()
    });
    let mut server: StreamServer<MaterializingSink> = StreamServer::new(ServerConfig {
        workers: workers.max(1),
        ..Default::default()
    });
    let ids: Vec<TenantId> = scripts
        .iter()
        .map(|s| server.add_tenant(s.name.clone(), MaterializingSink::new()))
        .collect();
    let mut node_samples = vec![Vec::new(); tenants];
    let mut var_samples = vec![Vec::new(); tenants];
    let (wall_ms, advances) = crate::runner::time_ms(|| {
        replay_waves(&scripts, &mut server, &ids, |server| {
            for (k, &id) in ids.iter().enumerate() {
                node_samples[k].push(server.arena_stats(id).nodes);
                var_samples[k].push(server.vars(id).live_vars());
            }
        })
    });
    for result in server.finish_all() {
        result.expect("finish never regresses");
    }

    // Untimed: per-tenant batch oracle over the same rows.
    let mut summaries = Vec::with_capacity(tenants);
    let mut total_rows = 0u64;
    for (k, script) in scripts.iter().enumerate() {
        let id = ids[k];
        let mut control_vars = tp_core::relation::VarTable::new();
        let (r, s) = script.relations(&mut control_vars);
        let streamed = server.sink(id).replay();
        let batch_equal = SetOp::ALL
            .iter()
            .all(|&op| streamed.relation(op).canonicalized() == apply(op, &r, &s).canonicalized());
        let (one_window_nodes, steady_nodes) = peak_window(&node_samples[k], 8);
        let (one_window_vars, steady_vars) = peak_window(&var_samples[k], 8);
        total_rows += server.pushed(id);
        summaries.push(TenantSummary {
            name: script.name.clone(),
            advances,
            pushed: server.pushed(id),
            one_window_nodes,
            steady_nodes,
            one_window_vars,
            steady_vars,
            retired_segments: server.engine(id).reclaimed().0,
            released_vars: server.engine(id).reclaimed_vars(),
            batch_equal,
        });
    }
    MultiTenantBench {
        tenants: summaries,
        workers: workers.max(1),
        epochs,
        wall_ms,
        total_rows,
    }
}

/// One point of the region-parallel advance scaling curve.
#[derive(Debug, Clone)]
pub struct ParallelAdvancePoint {
    /// Region-worker budget of the engine (1 = sequential sweep).
    pub workers: usize,
    /// Summed wall milliseconds inside `advance`/`finish` — the sharded
    /// sweep path, including the coordinator's serial stitch and delta
    /// emission. The serial ingest between advances (identical at every
    /// worker count) is excluded, so the curve measures what the workers
    /// actually shard.
    pub wall_ms: f64,
    /// Advance throughput: released rows per second of advance time.
    pub krows_per_s: f64,
    /// Largest `AdvanceStats::regions_used` over the replay.
    pub regions_max: usize,
    /// Worst (largest) `AdvanceStats::region_balance` over the replay.
    pub balance_worst: f64,
    /// Whether the streamed result equals batch LAWA for all three ops —
    /// checked untimed, per worker count.
    pub batch_equal: bool,
}

/// Result of the region-parallel single-tenant advance benchmark: one
/// **fat tenant** (every advance releases thousands of tuple pieces)
/// replayed at several worker budgets, plus the Zipf-hot `skewed` stream
/// whose load concentrates in one time region per epoch. Wall-clock
/// scaling needs hardware parallelism — `hardware_threads` records what
/// the run had (the CI smoke enforces the 4-worker speedup only on ≥ 4
/// hardware threads; byte-identity is enforced everywhere).
#[derive(Debug, Clone)]
pub struct ParallelAdvanceBench {
    /// Tuples per input side of the fat-tenant stream.
    pub tuples_per_side: usize,
    /// Watermark advances per replay.
    pub advances: u64,
    /// Hardware threads available to the run.
    pub hardware_threads: usize,
    /// Scaling curve on the evenly loaded fat-tenant stream.
    pub fat: Vec<ParallelAdvancePoint>,
    /// Scaling curve on the Zipf-hot skewed stream.
    pub skewed: Vec<ParallelAdvancePoint>,
}

impl ParallelAdvanceBench {
    /// Fat-tenant wall speedup of `workers` over the sequential sweep.
    pub fn speedup_at(&self, workers: usize) -> f64 {
        let wall = |w: usize| self.fat.iter().find(|p| p.workers == w).map(|p| p.wall_ms);
        match (wall(1), wall(workers)) {
            (Some(base), Some(at)) => base / at.max(1e-9),
            _ => 0.0,
        }
    }

    /// Whether every point of both curves matched batch LAWA.
    pub fn batch_equal(&self) -> bool {
        self.fat.iter().chain(&self.skewed).all(|p| p.batch_equal)
    }
}

/// Replays one workload through an engine with the given region-worker
/// budget: once timed (counting sink), once untimed with a collecting sink
/// for the batch cross-check.
fn parallel_advance_point(
    w: &tp_workloads::StreamWorkload,
    workers: usize,
) -> ParallelAdvancePoint {
    use tp_core::ops::apply;
    use tp_stream::{
        CollectingSink, CountingSink, EngineConfig, ParallelConfig, ReplayEvent, StreamEngine,
    };

    let cfg = || EngineConfig {
        parallel: (workers > 1).then_some(ParallelConfig {
            workers,
            min_tuples: 256,
            cuts: None,
        }),
        ..Default::default()
    };
    let mut regions_max = 1usize;
    let mut balance_worst = 0.0f64;
    // Timed: the advance/finish calls only — the path the workers shard.
    // Ingest between advances is serial by design and identical at every
    // worker count; including it would dilute the curve into measuring
    // the push loop instead of the sweep the gate is about. (Sink
    // emission and stitch run inside advance and ARE counted — they are
    // the coordinator's inherent serial share.)
    let mut engine = StreamEngine::new(cfg());
    let mut sink = CountingSink::new();
    let mut advance_ns = 0u128;
    for event in &w.script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(wm) => {
                let t0 = std::time::Instant::now();
                let stats = engine.advance(*wm, &mut sink).expect("script monotone");
                advance_ns += t0.elapsed().as_nanos();
                regions_max = regions_max.max(stats.regions_used);
                balance_worst = balance_worst.max(stats.region_balance());
            }
        }
    }
    let t0 = std::time::Instant::now();
    engine.finish(&mut sink).expect("final advance");
    advance_ns += t0.elapsed().as_nanos();
    let wall_ms = advance_ns as f64 / 1e6;
    // Untimed: the streamed result at THIS worker count equals batch.
    let mut verify = CollectingSink::new();
    w.script.run_into(cfg(), &mut verify);
    let batch_equal = SetOp::ALL
        .iter()
        .all(|&op| verify.relation(op).canonicalized() == apply(op, &w.r, &w.s).canonicalized());
    let rows = w.script.arrivals() as f64;
    ParallelAdvancePoint {
        workers,
        wall_ms,
        krows_per_s: rows / wall_ms.max(1e-9),
        regions_max,
        balance_worst,
        batch_equal,
    }
}

/// Runs the region-parallel advance scaling benchmark: a fat single-tenant
/// sliding stream (`per_epoch` tuples per side per advance) and the
/// Zipf-hot skewed stream, each replayed at every budget in `workers`.
pub fn parallel_advance_bench(
    per_epoch: usize,
    epochs: usize,
    workers: &[usize],
) -> ParallelAdvanceBench {
    use tp_workloads::{skewed_synth_stream, sliding_synth_stream, SkewedConfig, SlidingConfig};

    let per_epoch = per_epoch.max(64);
    let epochs = epochs.max(8);
    let mut vars = VarTable::new();
    let fat_stream = sliding_synth_stream(
        &SlidingConfig {
            epochs,
            per_epoch,
            facts: 64,
            stride: 4096,
            seed: 29,
        },
        &mut vars,
    );
    let skewed_stream = skewed_synth_stream(
        &SkewedConfig {
            epochs,
            per_epoch,
            stride: 4096,
            ..Default::default()
        },
        &mut vars,
    );
    // Warm-up replays (discarded): the first measured point must not pay
    // allocator growth and page faults for everyone.
    let _ = parallel_advance_point(&fat_stream, 1);
    let _ = parallel_advance_point(&skewed_stream, 1);
    let fat: Vec<ParallelAdvancePoint> = workers
        .iter()
        .map(|&w| parallel_advance_point(&fat_stream, w))
        .collect();
    let skewed: Vec<ParallelAdvancePoint> = workers
        .iter()
        .map(|&w| parallel_advance_point(&skewed_stream, w))
        .collect();
    ParallelAdvanceBench {
        tuples_per_side: fat_stream.r.len(),
        advances: fat_stream.script.advances() as u64,
        hardware_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        fat,
        skewed,
    }
}

/// One measured point of the ingestion benchmark: one arrival order at one
/// input size, the same replay run twice — legacy sorted-`Vec` buffer vs
/// the gapped learned timestamp index — through otherwise identical
/// engines.
#[derive(Debug, Clone)]
pub struct IngestPoint {
    /// Arrival order of the replay: `in_order`, `shuffled` (bounded
    /// lateness) or `reversed` (adversarial newest-first batches).
    pub order: &'static str,
    /// Tuples per input side.
    pub tuples: usize,
    /// Wall time of the full legacy replay (pushes + advances + finish —
    /// ingestion cost surfaces as sorting inside `advance`).
    pub legacy_ms: f64,
    /// Wall time of the same replay on the gapped index (ingestion cost
    /// surfaces as model-guided placement inside `push`).
    pub index_ms: f64,
    /// Highest pre-drain gap occupancy any advance observed, in permille
    /// of allocated slots. Sane values sit in (0, 1000]; the CI smoke
    /// hard-gates that range.
    pub gap_occupancy_permille: u32,
    /// Index rebuilds (re-spacing + model retrain) over the whole replay.
    pub retrains: u64,
    /// Worst per-advance p99 slot-shift distance over the replay.
    pub shift_p99: u32,
    /// Whether BOTH replays produced the batch LAWA results for all ops.
    pub batch_equal: bool,
}

impl IngestPoint {
    /// Legacy-over-index wall speedup (> 1 means the index wins).
    pub fn speedup(&self) -> f64 {
        self.legacy_ms / self.index_ms.max(1e-9)
    }
}

/// Result of the `bench_ingest` experiment: the sort-vs-index ingestion
/// curve — three arrival orders × the requested sizes, each point
/// batch-verified on both buffer kinds.
#[derive(Debug, Clone)]
pub struct IngestBench {
    /// Requested tuples-per-side sizes (ascending).
    pub sizes: Vec<usize>,
    /// One point per (size, arrival order), sizes outermost.
    pub points: Vec<IngestPoint>,
}

impl IngestBench {
    /// Whether every point of the curve matched batch LAWA on both kinds.
    pub fn batch_equal(&self) -> bool {
        self.points.iter().all(|p| p.batch_equal)
    }

    /// Mean legacy-over-index speedup across the arrival orders at the
    /// largest measured size — the headline number of the history series.
    pub fn speedup_at_largest(&self) -> f64 {
        let largest = self.points.iter().map(|p| p.tuples).max().unwrap_or(0);
        let at: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.tuples == largest)
            .map(IngestPoint::speedup)
            .collect();
        if at.is_empty() {
            return 0.0;
        }
        at.iter().sum::<f64>() / at.len() as f64
    }
}

/// Replays `script` once end to end (pushes + advances + finish, all
/// timed: the two buffer kinds pay their ingestion cost in different
/// phases) and cross-checks the streamed result against batch LAWA.
fn ingest_point_run(
    w: &tp_workloads::StreamWorkload,
    script: &tp_stream::StreamScript,
    buffer: tp_stream::BufferKind,
) -> (f64, u32, u64, u32, bool) {
    use tp_core::ops::apply;
    use tp_stream::{CollectingSink, EngineConfig, ReplayEvent, StreamEngine};

    let mut engine = StreamEngine::new(EngineConfig {
        buffer,
        ..Default::default()
    });
    let mut sink = CollectingSink::new();
    let (mut occ, mut retrains, mut shift_p99) = (0u32, 0u64, 0u32);
    let t0 = std::time::Instant::now();
    for event in &script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(wm) => {
                let stats = engine.advance(*wm, &mut sink).expect("script monotone");
                occ = occ.max(stats.gap_occupancy_permille);
                retrains += stats.index_retrains;
                shift_p99 = shift_p99.max(stats.shift_distance_p99);
            }
        }
    }
    engine.finish(&mut sink).expect("final advance");
    let wall_ms = t0.elapsed().as_nanos() as f64 / 1e6;
    let batch_equal = SetOp::ALL
        .iter()
        .all(|&op| sink.relation(op).canonicalized() == apply(op, &w.r, &w.s).canonicalized());
    (wall_ms, occ, retrains, shift_p99, batch_equal)
}

/// Runs the sort-vs-index ingestion benchmark at each size in `sizes`:
/// the same sliding pair replayed in order, with a bounded-lateness
/// shuffle, and with every inter-advance batch reversed (adversarial:
/// each insert lands at the buffer's front).
pub fn ingest_index_bench(sizes: &[usize]) -> IngestBench {
    use tp_stream::{BufferKind, ReplayConfig, ReplayEvent, StreamScript};
    use tp_workloads::{sliding_synth_stream, SlidingConfig};

    const STRIDE: i64 = 4096;
    let mut points = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let epochs = 24usize;
        let per_epoch = (size / epochs).max(8);
        let mut vars = VarTable::new();
        let w = sliding_synth_stream(
            &SlidingConfig {
                epochs,
                per_epoch,
                facts: 64,
                stride: STRIDE,
                seed: 37,
            },
            &mut vars,
        );
        let advance_every = (2 * per_epoch).max(16);
        let in_order = StreamScript::from_pair(
            &w.r,
            &w.s,
            &ReplayConfig {
                lateness: 0,
                advance_every,
                seed: 1,
            },
        );
        let shuffled = StreamScript::from_pair(
            &w.r,
            &w.s,
            &ReplayConfig {
                lateness: STRIDE / 2,
                advance_every,
                seed: 2,
            },
        );
        // Adversarial: every inter-advance batch arrives newest-first, so
        // each insert displaces the batch placed before it.
        let reversed = {
            let mut events = Vec::with_capacity(in_order.events.len());
            let mut batch = Vec::new();
            for ev in &in_order.events {
                match ev {
                    ReplayEvent::Arrive(..) => batch.push(ev.clone()),
                    ReplayEvent::Advance(_) => {
                        batch.reverse();
                        events.append(&mut batch);
                        events.push(ev.clone());
                    }
                }
            }
            batch.reverse();
            events.append(&mut batch);
            StreamScript { events }
        };
        if i == 0 {
            // Warm-up (discarded): the first timed point must not pay
            // allocator growth for everyone.
            let _ = ingest_point_run(&w, &in_order, BufferKind::Legacy);
            let _ = ingest_point_run(&w, &in_order, BufferKind::Sorted);
        }
        for (order, script) in [
            ("in_order", &in_order),
            ("shuffled", &shuffled),
            ("reversed", &reversed),
        ] {
            let (legacy_ms, _, _, _, legacy_eq) = ingest_point_run(&w, script, BufferKind::Legacy);
            let (index_ms, occ, retrains, shift_p99, index_eq) =
                ingest_point_run(&w, script, BufferKind::Sorted);
            points.push(IngestPoint {
                order,
                tuples: w.r.len(),
                legacy_ms,
                index_ms,
                gap_occupancy_permille: occ,
                retrains,
                shift_p99,
                batch_equal: legacy_eq && index_eq,
            });
        }
    }
    IngestBench {
        sizes: sizes.to_vec(),
        points,
    }
}

/// Result of the `bench_observability` experiment: the cost and
/// correctness of the always-on observability layer. The same replay runs
/// fully instrumented (metrics + stage spans, the default) and with every
/// instrumentation layer force-disabled; the gates are
///
/// * **byte-identity** — both runs produce the *identical* delta log
///   (instrumentation must never touch engine logic),
/// * **overhead** — instrumented wall within 1.10× of the baseline
///   (min-of-rounds each, alternating),
/// * **schema** — the Prometheus text and JSON snapshots and the
///   chrome://tracing export are well-formed and carry the expected
///   metric families,
/// * **coverage** — stage spans tile ≥ 95 % of every advance span (1.0 by
///   construction of the stage cursor).
#[derive(Debug, Clone)]
pub struct ObservabilityBench {
    /// Tuples per input relation.
    pub tuples: usize,
    /// Watermark advances in the schedule.
    pub advances: u64,
    /// Timing rounds per variant (min taken).
    pub rounds: usize,
    /// Wall milliseconds of the instrumented replay (min of rounds).
    pub instrumented_ms: f64,
    /// Wall milliseconds of the uninstrumented replay (min of rounds).
    pub baseline_ms: f64,
    /// Whether both variants produced byte-identical delta logs.
    pub logs_identical: bool,
    /// Whether the Prometheus text snapshot carries the expected families.
    pub prometheus_ok: bool,
    /// Whether the JSON snapshot parses as well-formed JSON.
    pub json_ok: bool,
    /// Whether the chrome://tracing export parses and is non-empty.
    pub trace_ok: bool,
    /// Σ stage-span durations / Σ advance-span durations.
    pub stage_coverage: f64,
}

impl ObservabilityBench {
    /// Instrumented-over-baseline wall ratio (the CI gate is ≤ 1.10).
    pub fn overhead_ratio(&self) -> f64 {
        self.instrumented_ms / self.baseline_ms.max(1e-9)
    }

    /// All correctness gates except the overhead ratio (which the smoke
    /// gate checks against its own threshold).
    pub fn correct(&self) -> bool {
        self.logs_identical
            && self.prometheus_ok
            && self.json_ok
            && self.trace_ok
            && self.stage_coverage >= 0.95
    }
}

/// Runs the replay once and returns `(wall_ms, delta log)`. The engine
/// covers the layers under measurement: reclaim mode (arena seal/retire
/// gauges), region-parallel sweeps (worker sub-spans), and the gapped
/// ingestion index (retrain spans, miss/shift metrics).
fn observability_run(
    script: &tp_stream::StreamScript,
    obs: tp_stream::ObsConfig,
) -> (f64, tp_stream::MaterializingSink) {
    use tp_stream::{EngineConfig, MaterializingSink, ParallelConfig, ReclaimConfig};

    let mut sink = MaterializingSink::new();
    let cfg = EngineConfig {
        reclaim: Some(ReclaimConfig::default()),
        parallel: Some(ParallelConfig {
            workers: 2,
            min_tuples: 64,
            cuts: None,
        }),
        obs,
        ..Default::default()
    };
    let (ms, _) = crate::runner::time_ms(|| script.run_into(cfg.clone(), &mut sink));
    (ms, sink)
}

/// Benchmarks the observability layer on the single-fact synthetic
/// workload: `tuples` per relation, a watermark advance every
/// `advance_every` arrivals, `rounds` alternating timing rounds per
/// variant. See [`ObservabilityBench`] for the gates.
pub fn observability_bench(
    tuples: usize,
    advance_every: usize,
    rounds: usize,
) -> ObservabilityBench {
    use tp_stream::{ObsConfig, ReplayConfig, StreamScript};

    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(&SynthConfig::single_fact(tuples, 91), &mut vars);
    let script = StreamScript::from_pair(
        &r,
        &s,
        &ReplayConfig {
            lateness: 4,
            advance_every,
            seed: 23,
        },
    );

    // Readings land in a private registry so the bench measures this run
    // only; the span context is filtered by the unique tenant label below.
    let registry = std::sync::Arc::new(tp_obs::MetricsRegistry::new());
    let ctx_label = "bench-observability";
    let instrumented_cfg = || ObsConfig {
        enabled: true,
        tenant: Some(ctx_label.to_string()),
        registry: Some(std::sync::Arc::clone(&registry)),
    };
    let baseline_cfg = || ObsConfig {
        enabled: false,
        ..Default::default()
    };

    // Warm-up (discarded) + differential pass: both variants must produce
    // byte-identical delta logs.
    let (_, log_on) = observability_run(&script, instrumented_cfg());
    tp_stream::set_obs_enabled(false);
    let (_, log_off) = observability_run(&script, baseline_cfg());
    tp_stream::set_obs_enabled(true);
    let logs_identical = log_on.deltas == log_off.deltas;

    // Alternating timed rounds, min per variant (steady-state cost; the
    // min is robust against scheduler noise on shared runners).
    let (mut instrumented_ms, mut baseline_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds.max(1) {
        tp_obs::clear_trace();
        let (on_ms, _) = observability_run(&script, instrumented_cfg());
        instrumented_ms = instrumented_ms.min(on_ms);
        tp_stream::set_obs_enabled(false);
        let (off_ms, _) = observability_run(&script, baseline_cfg());
        tp_stream::set_obs_enabled(true);
        baseline_ms = baseline_ms.min(off_ms);
    }

    // Export gates, read off the final instrumented round (its spans are
    // the only ones recorded since the last clear).
    let text = registry.prometheus_text();
    let prometheus_ok = [
        "tp_advances_total",
        "tp_advance_ns",
        "tp_stage_ns",
        "tp_windows_total",
    ]
    .iter()
    .all(|name| text.contains(name));
    let json_ok = tp_obs::json::validate(&registry.json()).is_ok();
    let ctx = tp_obs::ctx_id(ctx_label);
    let spans: Vec<_> = tp_obs::snapshot_spans()
        .into_iter()
        .filter(|e| e.ctx == ctx)
        .collect();
    let trace_ok =
        !spans.is_empty() && tp_obs::json::validate(&tp_obs::chrome_trace_json(&spans)).is_ok();
    let stage_sum: u64 = spans
        .iter()
        .filter(|e| e.cat == "stage")
        .map(|e| e.dur_ns)
        .sum();
    let advance_sum: u64 = spans
        .iter()
        .filter(|e| e.cat == "advance")
        .map(|e| e.dur_ns)
        .sum();
    let stage_coverage = stage_sum as f64 / advance_sum.max(1) as f64;

    let advances = script
        .events
        .iter()
        .filter(|e| matches!(e, tp_stream::ReplayEvent::Advance(_)))
        .count() as u64;
    ObservabilityBench {
        tuples,
        advances,
        rounds: rounds.max(1),
        instrumented_ms,
        baseline_ms,
        logs_identical,
        prometheus_ok,
        json_ok,
        trace_ok,
        stage_coverage,
    }
}

/// One stitch-scaling point of the raw-speed pass: the fat sliding stream
/// replayed at one region-worker budget, stitched by pairwise tree
/// reduction instead of the old k-way serial merge.
#[derive(Debug, Clone)]
pub struct RawStitchPoint {
    /// Region-worker budget.
    pub workers: usize,
    /// Wall milliseconds over the advance/finish calls only (the path the
    /// reduction parallelizes).
    pub wall_ms: f64,
    /// Deepest reduction tree any advance built (⌈log₂ regions⌉; 0 for the
    /// sequential sweep).
    pub depth_max: usize,
    /// Whether the streamed result equals batch LAWA for all ops.
    pub batch_equal: bool,
}

/// Result of the `bench_raw_speed` experiment: the three raw-speed claims
/// in one artifact — the columnar marginal kernel vs the per-root memoized
/// walk (both cold), stitch scaling by worker count under the pairwise
/// tree reduction, and the resident-bytes curve of interior-segment
/// reclamation vs the prefix-ordered baseline under an immortal-facts
/// workload.
#[derive(Debug, Clone)]
pub struct RawSpeedBench {
    /// Tuples per base relation of the valuation workload.
    pub tuples: usize,
    /// Chained `∪Tp` levels of the valuation workload.
    pub levels: usize,
    /// Cold valuation passes timed per path.
    pub rounds: usize,
    /// Output tuples valuated per pass.
    pub output_tuples: usize,
    /// Milliseconds for `rounds` cold passes of per-root
    /// [`tp_core::prob::marginal`] (cache cleared before every pass).
    pub memoized_cold_ms: f64,
    /// Milliseconds for `rounds` cold passes of the columnar
    /// [`tp_core::prob::marginal_batch`] (cache cleared before every pass).
    pub columnar_ms: f64,
    /// Largest |per-root delta| between the two paths (must be ≤ 1e-12;
    /// the kernel is bit-identical where the scalar path is exact).
    pub max_delta: f64,
    /// Stitch scaling curve, one point per requested worker budget.
    pub stitch: Vec<RawStitchPoint>,
    /// Epochs of the immortal-facts residency replay.
    pub immortal_epochs: usize,
    /// Advances of the immortal-facts replay.
    pub immortal_advances: u64,
    /// Interior (non-prefix) segment retires the interior-mode run made.
    pub interior_retired_segments: u64,
    /// Steady-state peak resident arena bytes with interior reclamation.
    pub interior_steady_bytes: usize,
    /// Steady-state peak resident arena bytes with the prefix-ordered
    /// baseline (`ReclaimConfig { interior: false }`).
    pub prefix_steady_bytes: usize,
    /// Steady-state peak `live_vars` of the attached registry with
    /// interior reclamation (cohort-granular release).
    pub interior_steady_live_vars: usize,
    /// Steady-state peak `live_vars` with the prefix-ordered baseline.
    pub prefix_steady_live_vars: usize,
    /// Whether BOTH immortal replays (interior and prefix) matched batch
    /// LAWA for all ops.
    pub immortal_batch_equal: bool,
}

impl RawSpeedBench {
    /// `memoized_cold_ms / columnar_ms` (> 1 means the columnar kernel
    /// wins; informational — wall ratios are hardware-dependent).
    pub fn valuation_speedup(&self) -> f64 {
        self.memoized_cold_ms / self.columnar_ms.max(1e-9)
    }

    /// `interior_steady_bytes / prefix_steady_bytes` — must stay < 1.0:
    /// under immortal facts the prefix baseline cannot retire anything
    /// behind the pinned segment, interior reclamation can.
    pub fn residency_ratio(&self) -> f64 {
        self.interior_steady_bytes as f64 / self.prefix_steady_bytes.max(1) as f64
    }

    /// `interior_steady_live_vars / prefix_steady_live_vars` — must stay
    /// < 1.0: cohort-granular release drops the registry slice of every
    /// interior-retired segment while the prefix baseline holds them all
    /// behind the pinned cohort.
    pub fn live_vars_ratio(&self) -> f64 {
        self.interior_steady_live_vars as f64 / self.prefix_steady_live_vars.max(1) as f64
    }

    /// Whether every stitch point matched batch LAWA.
    pub fn stitch_equal(&self) -> bool {
        self.stitch.iter().all(|p| p.batch_equal)
    }

    /// The acceptance predicate of the `raw-speed-smoke` CI job (wall
    /// speedups are informational and not part of it).
    pub fn pass(&self) -> bool {
        self.max_delta <= 1e-12
            && self.stitch_equal()
            && self.immortal_batch_equal
            && self.interior_retired_segments > 0
            && self.interior_steady_bytes < self.prefix_steady_bytes
            && self.interior_steady_live_vars < self.prefix_steady_live_vars
    }
}

/// Replays one workload at one region-worker budget, timing the
/// advance/finish calls (the path the stitch reduction sits on) and
/// recording the deepest reduction tree; batch cross-check untimed.
fn raw_stitch_point(w: &tp_workloads::StreamWorkload, workers: usize) -> RawStitchPoint {
    use tp_core::ops::apply;
    use tp_stream::{
        CollectingSink, CountingSink, EngineConfig, ParallelConfig, ReplayEvent, StreamEngine,
    };

    let cfg = || EngineConfig {
        parallel: (workers > 1).then_some(ParallelConfig {
            workers,
            min_tuples: 256,
            cuts: None,
        }),
        ..Default::default()
    };
    let mut engine = StreamEngine::new(cfg());
    let mut sink = CountingSink::new();
    let mut advance_ns = 0u128;
    let mut depth_max = 0usize;
    for event in &w.script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(wm) => {
                let t0 = std::time::Instant::now();
                let stats = engine.advance(*wm, &mut sink).expect("script monotone");
                advance_ns += t0.elapsed().as_nanos();
                depth_max = depth_max.max(stats.stitch_depth);
            }
        }
    }
    let t0 = std::time::Instant::now();
    engine.finish(&mut sink).expect("final advance");
    advance_ns += t0.elapsed().as_nanos();
    let mut verify = CollectingSink::new();
    w.script.run_into(cfg(), &mut verify);
    let batch_equal = SetOp::ALL
        .iter()
        .all(|&op| verify.relation(op).canonicalized() == apply(op, &w.r, &w.s).canonicalized());
    RawStitchPoint {
        workers,
        wall_ms: advance_ns as f64 / 1e6,
        depth_max,
        batch_equal,
    }
}

/// Replays the immortal-facts stream through a reclaiming engine in one
/// retirement mode with an **attached sliding var registry**, sampling
/// resident arena bytes and registry `live_vars` after every advance.
/// The registry mirrors a real deployment's push-time registration
/// cadence — one variable per arriving tuple — so var cohorts seal with
/// the same boundaries as the arena segments they are bound to, and the
/// cohort-release schedule under test matches production shape.
/// Returns `(resident bytes, live vars, interior retires, batch_equal)`.
fn immortal_residency(
    w: &tp_workloads::StreamWorkload,
    interior: bool,
) -> (Vec<usize>, Vec<usize>, u64, bool) {
    use std::sync::Arc;
    use tp_core::ops::apply;
    use tp_stream::{EngineConfig, MaterializingSink, ReclaimConfig, ReplayEvent, StreamEngine};

    let vars = Arc::new(VarTable::new());
    let mut engine = StreamEngine::new(EngineConfig {
        reclaim: Some(ReclaimConfig {
            keep_epochs: 2,
            interior,
            vars: Some(Arc::clone(&vars)),
            ..Default::default()
        }),
        ..Default::default()
    });
    let mut sink = MaterializingSink::new();
    let mut resident: Vec<usize> = Vec::new();
    let mut live_vars: Vec<usize> = Vec::new();
    let mut interior_retired = 0u64;
    let mut registered = 0u64;
    for event in &w.script.events {
        match event {
            ReplayEvent::Arrive(side, t) => {
                vars.register_shared(format!("m{registered}"), 0.5)
                    .expect("bench registry accepts registration");
                registered += 1;
                engine.push(*side, t.clone());
            }
            ReplayEvent::Advance(wm) => {
                let stats = engine
                    .advance(*wm, &mut sink)
                    .expect("script watermarks monotone");
                interior_retired += stats.interior_retired_segments;
                resident.push(engine.arena_stats().expect("reclaim engine").resident_bytes);
                live_vars.push(vars.live_vars());
            }
        }
    }
    let fin = engine.finish(&mut sink).expect("final advance");
    interior_retired += fin.interior_retired_segments;
    let streamed = sink.replay();
    let batch_equal = SetOp::ALL
        .iter()
        .all(|&op| streamed.relation(op).canonicalized() == apply(op, &w.r, &w.s).canonicalized());
    (resident, live_vars, interior_retired, batch_equal)
}

/// Runs the raw-speed pass benchmark: columnar marginal kernel vs the
/// per-root memoized walk (both cold, `rounds` passes each), pairwise
/// stitch reduction scaling at every budget in `workers`, and the
/// interior-vs-prefix resident-bytes comparison under the immortal-facts
/// workload (`epochs.max(48)` epochs).
pub fn raw_speed_bench(
    tuples: usize,
    levels: usize,
    rounds: usize,
    per_epoch: usize,
    epochs: usize,
    workers: &[usize],
) -> RawSpeedBench {
    use tp_workloads::{
        immortal_facts_stream, sliding_synth_stream, ImmortalConfig, SlidingConfig,
    };

    let rounds = rounds.max(1);
    // Columnar kernel vs per-root memoized walk, both cold: the kernel's
    // claim is first-pass (post-advance / post-retire) valuation speed, so
    // the memo cache is cleared before every timed pass on both paths. The
    // comparison runs in a **shared** arena deliberately salted with
    // unrelated resident lineage on both sides of the workload — the
    // kernel's walk is pruned to the roots' reachable cones, so bystander
    // nodes in the same segment range must cost it nothing. (The PR 8
    // version hid the dense-walk sensitivity in a private arena.)
    let (memoized_cold_ms, columnar_ms, max_delta, output_tuples) = {
        let arena = tp_core::arena::LineageArena::shared(4);
        let _scope = tp_core::arena::LineageArena::enter(&arena);
        let clutter = |tag: u64, n: usize| {
            use tp_core::arena::LineageNode;
            use tp_core::lineage::TupleId;
            let base = 50_000_000 + tag * 10_000_000;
            let mut chain = arena.intern(LineageNode::Var(TupleId(base)));
            for i in 1..n.max(2) as u64 {
                let v = arena.intern(LineageNode::Var(TupleId(base + i)));
                chain = arena.intern(LineageNode::Or(chain, v));
            }
            chain
        };
        // Another query's resident 1OF lineage, interned before the
        // workload so it sits squarely inside the roots' segment range.
        let _bystander_lo = clutter(0, tuples * levels.max(2));
        let (acc, vars) = shared_subformula_workload(tuples, levels);
        let _bystander_hi = clutter(1, tuples * levels.max(2));
        let lineages: Vec<_> = acc.iter().map(|t| t.lineage).collect();
        let (memoized_cold_ms, scalar) = crate::runner::time_ms(|| {
            let mut out = Vec::new();
            for _ in 0..rounds {
                vars.clear_valuation_cache();
                out = lineages
                    .iter()
                    .map(|l| tp_core::prob::marginal(l, &vars).expect("vars registered"))
                    .collect();
            }
            out
        });
        let (columnar_ms, columnar) = crate::runner::time_ms(|| {
            let mut out = Vec::new();
            for _ in 0..rounds {
                vars.clear_valuation_cache();
                out = tp_core::prob::marginal_batch(&lineages, &vars).expect("vars registered");
            }
            out
        });
        let max_delta = scalar
            .iter()
            .zip(&columnar)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        (memoized_cold_ms, columnar_ms, max_delta, acc.len())
    };

    // Stitch scaling: the fat sliding stream at every worker budget, with
    // a discarded warm-up replay (allocator growth must not bill the
    // first measured point).
    let mut svars = VarTable::new();
    let fat = sliding_synth_stream(
        &SlidingConfig {
            epochs: (epochs / 4).max(8),
            per_epoch: per_epoch.max(64),
            facts: 64,
            stride: 4096,
            seed: 41,
        },
        &mut svars,
    );
    let _ = raw_stitch_point(&fat, 1);
    let stitch: Vec<RawStitchPoint> = workers.iter().map(|&n| raw_stitch_point(&fat, n)).collect();

    // Residency: the immortal-facts stream pins segment 0 for the whole
    // run, so the prefix baseline cannot retire anything mid-run while
    // interior reclamation punches holes behind the pin.
    let mut ivars = VarTable::new();
    let immortal = immortal_facts_stream(
        &ImmortalConfig {
            epochs: epochs.max(48),
            ..Default::default()
        },
        &mut ivars,
    );
    let (interior_resident, interior_live, interior_retired_segments, i_equal) =
        immortal_residency(&immortal, true);
    let (prefix_resident, prefix_live, _, p_equal) = immortal_residency(&immortal, false);
    let (_, interior_steady_bytes) = peak_window(&interior_resident, 8);
    let (_, prefix_steady_bytes) = peak_window(&prefix_resident, 8);
    let (_, interior_steady_live_vars) = peak_window(&interior_live, 8);
    let (_, prefix_steady_live_vars) = peak_window(&prefix_live, 8);

    RawSpeedBench {
        tuples,
        levels,
        rounds,
        output_tuples,
        memoized_cold_ms,
        columnar_ms,
        max_delta,
        stitch,
        immortal_epochs: epochs.max(48),
        immortal_advances: interior_resident.len() as u64,
        interior_retired_segments,
        interior_steady_bytes,
        prefix_steady_bytes,
        interior_steady_live_vars,
        prefix_steady_live_vars,
        immortal_batch_equal: i_equal && p_equal,
    }
}

/// Result of the `bench_pipeline` experiment: a compiled relational plan
/// — the join + grouped-aggregate alert-rule shape — running as a
/// **standing incremental pipeline** ([`tp_stream::Pipeline`]) over the
/// delta streams of two replayed relations, against the naive twin that
/// re-executes the batch plan over the re-encoded closed region at every
/// watermark; plus the reclaim-mode operator-state plateau under an
/// extend-dominated immortal-facts stream.
#[derive(Debug, Clone)]
pub struct PipelineBench {
    /// Tuples per side of the replayed synth stream.
    pub tuples: usize,
    /// Distinct join keys (facts) the tuples spread over. Spread matters:
    /// IVM join/aggregate maintenance is O(per-key state) per delta, so
    /// the keys/tuples ratio fixes the standing-view cost model.
    pub facts: usize,
    /// Watermark advances of the replayed run (including the final flush).
    pub advances: u64,
    /// Operator deltas the standing pipeline processed over the run.
    pub pipeline_deltas: u64,
    /// Rows of the materialized view after the final advance.
    pub output_rows: usize,
    /// Wall milliseconds of the incremental run — pushes, advances and
    /// final flush with the pipeline attached and maintained per delta.
    pub incremental_ms: f64,
    /// Wall milliseconds of the naive twin: the same replay through a
    /// plain engine, with the batch plan re-executed over the re-encoded
    /// closed region at every advance (the mode of operation a standing
    /// pipeline replaces).
    pub naive_rebatch_ms: f64,
    /// Whether the standing view at finish equals the batch plan over the
    /// fully closed region.
    pub batch_equal: bool,
    /// Epochs of the immortal-facts plateau replay.
    pub plateau_epochs: usize,
    /// Segments the reclaiming engine retired underneath the pipeline.
    pub retired_segments: u64,
    /// Peak pipeline state rows over the warm-up window.
    pub warmup_state_rows: usize,
    /// Peak pipeline state rows over the second half of the run.
    pub steady_state_rows: usize,
    /// Whether the reclaim-mode standing view still equals batch at
    /// finish (owned operator state must survive retirement).
    pub plateau_batch_equal: bool,
}

impl PipelineBench {
    /// `naive_rebatch_ms / incremental_ms` (informational — wall ratios
    /// are hardware-dependent; the equality and plateau gates are the
    /// contract).
    pub fn speedup(&self) -> f64 {
        self.naive_rebatch_ms / self.incremental_ms.max(1e-9)
    }

    /// `steady_state_rows / warmup_state_rows` — must stay ≤ 1.0: under
    /// an extend-dominated stream the pipeline only retracts-and-regrows
    /// standing rows, so its state must not outgrow the warm-up peak.
    pub fn plateau_ratio(&self) -> f64 {
        self.steady_state_rows as f64 / self.warmup_state_rows.max(1) as f64
    }

    /// The acceptance predicate of the `streaming-plans-smoke` CI job
    /// (the wall speedup is informational and not part of it).
    pub fn pass(&self) -> bool {
        self.batch_equal
            && self.plateau_batch_equal
            && self.retired_segments > 0
            && self.steady_state_rows <= self.warmup_state_rows
    }
}

/// Runs the standing-pipeline benchmark. The plan is the alert-rule
/// shape both streaming examples deploy — two sources joined on the fact
/// key, then grouped per key with count/max aggregates — compiled onto
/// the engine's `∪Tp`/`∩Tp` delta streams. Two parts: (1) `tuples` per
/// side replayed out of order with an advance every `advance_every`
/// arrivals, timed against the naive re-execute-batch-per-watermark
/// twin and cross-checked for row identity; (2) an immortal-facts stream
/// advanced `epochs` times through a reclaiming engine, sampling the
/// pipeline's state rows per advance for the plateau gate.
pub fn pipeline_bench(
    tuples: usize,
    facts: usize,
    advance_every: usize,
    epochs: usize,
) -> PipelineBench {
    use tp_core::fact::Fact;
    use tp_core::interval::Interval;
    use tp_core::lineage::{Lineage, TupleId};
    use tp_core::tuple::TpTuple;
    use tp_relalg::{bind_sources, AggFn, Plan, Relation, Row, Schema};
    use tp_stream::{
        encode_relation, CollectingSink, EngineConfig, ReclaimConfig, ReplayConfig, ReplayEvent,
        Side, StreamEngine, StreamScript,
    };

    // Synth facts are single-value, so an encoded source row is [k, ts, te].
    let schema = Schema::new(["k", "ts", "te"]);
    let leaf = || Plan::values(Relation::empty(Schema::new(["k", "ts", "te"])));
    let plan = leaf()
        .hash_join(leaf(), vec![0], vec![0])
        .aggregate(vec![0], vec![AggFn::Count, AggFn::Max(2)]);
    let taps = [SetOp::Union, SetOp::Intersect];
    let batch_rows = |sink: &CollectingSink| -> Vec<Row> {
        let tables: Vec<Relation> = taps
            .iter()
            .map(|&op| encode_relation(&sink.relation(op), &schema))
            .collect();
        let mut rows = bind_sources(&plan, &tables).execute().rows;
        rows.sort();
        rows
    };

    let mut vars = VarTable::new();
    let (r, s) =
        tp_workloads::synth::generate(&SynthConfig::with_facts(tuples, facts, 907), &mut vars);
    let script = StreamScript::from_pair(
        &r,
        &s,
        &ReplayConfig {
            lateness: 6,
            advance_every: advance_every.max(1),
            seed: 29,
        },
    );

    // Timed: the standing pipeline, maintained delta-by-delta.
    let mut engine = StreamEngine::with_plan(EngineConfig::default(), &plan, &taps)
        .expect("alert plan compiles");
    let mut sink = CollectingSink::new();
    let mut advances = 0u64;
    let mut pipeline_deltas = 0u64;
    let (incremental_ms, ()) = crate::runner::time_ms(|| {
        for event in &script.events {
            match event {
                ReplayEvent::Arrive(side, t) => {
                    engine.push(*side, t.clone());
                }
                ReplayEvent::Advance(wm) => {
                    let stats = engine.advance(*wm, &mut sink).expect("script monotone");
                    pipeline_deltas += stats.pipeline_deltas;
                    advances += 1;
                }
            }
        }
        pipeline_deltas += engine
            .finish(&mut sink)
            .expect("final advance")
            .pipeline_deltas;
        advances += 1;
    });
    let streamed = engine
        .pipeline()
        .expect("plan attached")
        .materialized()
        .rows;

    // Timed: the naive twin — plain engine, batch plan re-executed over
    // the full closed region at every advance.
    let mut naive_engine = StreamEngine::new(EngineConfig::default());
    let mut naive_sink = CollectingSink::new();
    let (naive_rebatch_ms, naive_rows) = crate::runner::time_ms(|| {
        for event in &script.events {
            match event {
                ReplayEvent::Arrive(side, t) => {
                    naive_engine.push(*side, t.clone());
                }
                ReplayEvent::Advance(wm) => {
                    naive_engine
                        .advance(*wm, &mut naive_sink)
                        .expect("script monotone");
                    // The re-planned view is recomputed and dropped — the
                    // recomputation IS the cost under measurement.
                    let _ = batch_rows(&naive_sink);
                }
            }
        }
        naive_engine.finish(&mut naive_sink).expect("final advance");
        batch_rows(&naive_sink)
    });
    let batch_equal = streamed == naive_rows;

    // Reclaim-mode plateau: immortal facts cut by the watermark — after
    // warm-up every advance re-emits each fact's output as an Extend, so
    // the pipeline only retracts-and-regrows standing rows while interior
    // reclamation retires engine history underneath its owned state.
    let epochs = epochs.max(24);
    let plateau_facts = facts.clamp(2, 8);
    let mut p_engine = StreamEngine::with_plan(
        EngineConfig {
            reclaim: Some(ReclaimConfig {
                keep_epochs: 2,
                ..Default::default()
            }),
            ..Default::default()
        },
        &plan,
        &taps,
    )
    .expect("alert plan compiles");
    let mut p_sink = CollectingSink::new();
    for f in 0..plateau_facts as i64 {
        for (side, off) in [(Side::Left, 0u64), (Side::Right, 1)] {
            p_engine.push(
                side,
                TpTuple::new(
                    Fact::single(f),
                    Lineage::var(TupleId(f as u64 * 2 + off)),
                    Interval::at(0, epochs as i64 * 10),
                ),
            );
        }
    }
    let mut state_samples = Vec::new();
    for epoch in 0..epochs as i64 {
        p_engine
            .advance((epoch + 1) * 10, &mut p_sink)
            .expect("monotone");
        state_samples.push(p_engine.pipeline().expect("plan attached").state_rows());
    }
    p_engine.finish(&mut p_sink).expect("final advance");
    let (retired_segments, _) = p_engine.reclaimed();
    let (warmup_state_rows, steady_state_rows) = peak_window(&state_samples, 4);
    let plateau_batch_equal = p_engine
        .pipeline()
        .expect("plan attached")
        .materialized()
        .rows
        == batch_rows(&p_sink);

    PipelineBench {
        tuples,
        facts,
        advances,
        pipeline_deltas,
        output_rows: streamed.len(),
        incremental_ms,
        naive_rebatch_ms,
        batch_equal,
        plateau_epochs: epochs,
        retired_segments,
        warmup_state_rows,
        steady_state_rows,
        plateau_batch_equal,
    }
}

/// Result of the `bench_adaptive` experiment: the three adaptive-pipeline
/// claims, hard-gated on correctness. (a) **Rate-aware re-optimization** —
/// the swap-bait alert rule (a keyed nested-loop join the cost model
/// rewrites into a hash join once it has observed source delta rates)
/// replayed through a frozen engine vs one re-optimizing every few
/// advances: the adaptive run must emit a **byte-identical delta log**,
/// keep a row-identical standing view, and (informationally) beat the
/// frozen wall clock. (b) **Multi-plan operator-state sharing** — three
/// alert rules over one shared join compiled into a single pipeline vs
/// three dedicated engines: views row-identical, standing state strictly
/// sub-additive. (c) **Lane-blocked valuation** — the shared views'
/// ∨-folded lineage valuated by the batch kernel vs the memoized per-root
/// walk, both cold, within 1e-12.
#[derive(Debug, Clone)]
pub struct AdaptiveBench {
    /// Tuples per side of the replayed synth stream.
    pub tuples: usize,
    /// Distinct facts (join keys) the tuples spread over.
    pub facts: usize,
    /// Watermark advances of the replayed run (including the final flush).
    pub advances: u64,
    /// Plan swaps the adaptive engine performed mid-run.
    pub swaps: u64,
    /// Wall milliseconds of the frozen engine (keyed nested-loop join for
    /// the whole run).
    pub frozen_ms: f64,
    /// Wall milliseconds of the re-optimizing engine (same replay; the
    /// cost model installs the hash join at the first cadence boundary).
    pub adaptive_ms: f64,
    /// Whether the two delta logs are byte-identical.
    pub log_identical: bool,
    /// Whether the two standing views are row-identical at finish.
    pub views_equal: bool,
    /// Plans compiled into the shared pipeline.
    pub shared_plans: usize,
    /// Physical operators serving more than one plan after hash-consing.
    pub shared_operators: usize,
    /// Standing state rows of the shared pipeline at finish.
    pub shared_state_rows: usize,
    /// Summed standing state rows of the dedicated per-plan engines.
    pub duplicated_state_rows: usize,
    /// Whether every shared view equals its dedicated-engine twin.
    pub shared_views_equal: bool,
    /// Output roots valuated in the kernel comparison.
    pub valuation_roots: usize,
    /// Cold valuation rounds timed (min-of not used; totals compared).
    pub valuation_rounds: usize,
    /// Wall milliseconds of the per-root memoized walk, cache cleared
    /// before every round.
    pub memoized_cold_ms: f64,
    /// Wall milliseconds of the lane-blocked batch kernel, same protocol.
    pub kernel_cold_ms: f64,
    /// Largest |memoized − kernel| over all roots.
    pub kernel_max_delta: f64,
}

impl AdaptiveBench {
    /// `frozen_ms / adaptive_ms` (> 1 means re-planning against observed
    /// rates beat the frozen plan; informational — wall ratios are
    /// hardware-dependent, the log/view identity is the contract).
    pub fn reopt_speedup(&self) -> f64 {
        self.frozen_ms / self.adaptive_ms.max(1e-9)
    }

    /// `shared_state_rows / duplicated_state_rows` — must stay < 1.0:
    /// hash-consed operators hold their state once for all plans.
    pub fn shared_state_ratio(&self) -> f64 {
        self.shared_state_rows as f64 / self.duplicated_state_rows.max(1) as f64
    }

    /// `memoized_cold_ms / kernel_cold_ms` (informational).
    pub fn simd_valuation_speedup(&self) -> f64 {
        self.memoized_cold_ms / self.kernel_cold_ms.max(1e-9)
    }

    /// The acceptance predicate of the `pipeline-adaptive-smoke` CI job
    /// (wall speedups are informational and not part of it).
    pub fn pass(&self) -> bool {
        self.log_identical
            && self.views_equal
            && self.swaps >= 1
            && self.shared_views_equal
            && self.shared_state_rows < self.duplicated_state_rows
            && self.kernel_max_delta <= 1e-12
    }
}

/// Runs the adaptive-pipeline benchmark (see [`AdaptiveBench`]).
pub fn adaptive_pipeline_bench(
    tuples: usize,
    facts: usize,
    advance_every: usize,
    reopt_every: u64,
    rounds: usize,
) -> AdaptiveBench {
    use tp_core::lineage::Lineage;
    use tp_relalg::{AggFn, Plan, Predicate, Relation, Schema};
    use tp_stream::{
        CollectingSink, EngineConfig, MaterializingSink, ReplayConfig, ReplayEvent, StreamEngine,
        StreamScript, StreamSink,
    };

    let leaf = || Plan::values(Relation::empty(Schema::new(["k", "ts", "te"])));
    let mut vars = VarTable::new();
    let (r, s) =
        tp_workloads::synth::generate(&SynthConfig::with_facts(tuples, facts, 907), &mut vars);
    let script = StreamScript::from_pair(
        &r,
        &s,
        &ReplayConfig {
            lateness: 6,
            advance_every: advance_every.max(1),
            seed: 31,
        },
    );
    fn run_script<S: StreamSink>(
        script: &StreamScript,
        engine: &mut StreamEngine,
        sink: &mut S,
    ) -> u64 {
        let mut advances = 0u64;
        for event in &script.events {
            match event {
                ReplayEvent::Arrive(side, t) => {
                    engine.push(*side, t.clone());
                }
                ReplayEvent::Advance(wm) => {
                    engine.advance(*wm, sink).expect("script monotone");
                    advances += 1;
                }
            }
        }
        engine.finish(sink).expect("final advance");
        advances + 1
    }

    // (a) Frozen vs re-optimizing, over the swap-bait rule: a keyed
    // nested-loop join the cost model provably rewrites into a hash join.
    let bait = leaf()
        .nl_join(leaf(), Predicate::col_eq(0, 3))
        .aggregate(vec![0], vec![AggFn::Count, AggFn::Max(2)]);
    let taps = [SetOp::Union, SetOp::Intersect];
    let mut frozen = StreamEngine::with_plan(EngineConfig::default(), &bait, &taps)
        .expect("swap-bait plan compiles");
    let mut frozen_sink = MaterializingSink::new();
    let (frozen_ms, advances) =
        crate::runner::time_ms(|| run_script(&script, &mut frozen, &mut frozen_sink));
    let mut adaptive = StreamEngine::with_plan(
        EngineConfig {
            reopt_every: Some(reopt_every.max(1)),
            ..Default::default()
        },
        &bait,
        &taps,
    )
    .expect("swap-bait plan compiles");
    let mut adaptive_sink = MaterializingSink::new();
    let (adaptive_ms, _) =
        crate::runner::time_ms(|| run_script(&script, &mut adaptive, &mut adaptive_sink));
    let swaps = adaptive.pipeline().expect("plan attached").reopts();
    let log_identical = frozen_sink.deltas == adaptive_sink.deltas;
    let views_equal = frozen
        .pipeline()
        .expect("plan attached")
        .materialized()
        .rows
        == adaptive
            .pipeline()
            .expect("plan attached")
            .materialized()
            .rows;

    // (b) Three alert rules over one shared `∪Tp ⋈ ∩Tp` hash join: one
    // hash-consed pipeline vs three dedicated engines.
    let join = || leaf().hash_join(leaf(), vec![0], vec![0]);
    let plans = vec![
        join().aggregate(vec![0], vec![AggFn::Count, AggFn::Max(2)]),
        join().project(vec![0]).distinct(),
        join().aggregate(vec![0], vec![AggFn::Min(1)]),
    ];
    let plan_taps = vec![vec![SetOp::Union, SetOp::Intersect]; plans.len()];
    let mut shared = StreamEngine::with_plans(EngineConfig::default(), &plans, &plan_taps)
        .expect("shared rules compile");
    let mut shared_sink = CollectingSink::new();
    run_script(&script, &mut shared, &mut shared_sink);
    let mut duplicated_state_rows = 0usize;
    let mut shared_views_equal = true;
    for (i, plan) in plans.iter().enumerate() {
        let mut solo = StreamEngine::with_plan(EngineConfig::default(), plan, &plan_taps[i])
            .expect("rule compiles");
        let mut solo_sink = CollectingSink::new();
        run_script(&script, &mut solo, &mut solo_sink);
        let solo_pipeline = solo.pipeline().expect("plan attached");
        duplicated_state_rows += solo_pipeline.state_rows();
        shared_views_equal &= shared
            .pipeline()
            .expect("plans attached")
            .materialized_view(i)
            .rows
            == solo_pipeline.materialized().rows;
    }
    let shared_pipeline = shared.pipeline().expect("plans attached");
    let shared_operators = shared_pipeline.shared_operators();
    let shared_state_rows = shared_pipeline.state_rows();

    // (c) Lane-blocked kernel vs memoized per-root walk, both cold, over
    // the 1OF view lineage of a shared project/distinct chain (Corollary 1
    // keeps single-tap chains in the kernel's fast path).
    let prefix = || leaf().project(vec![0, 1, 2]).distinct();
    let chains = vec![
        prefix(),
        prefix().project(vec![0, 2]).distinct(),
        prefix().project(vec![0, 1]).distinct(),
    ];
    let chain_taps = vec![vec![SetOp::Union]; chains.len()];
    let mut val_engine = StreamEngine::with_plans(EngineConfig::default(), &chains, &chain_taps)
        .expect("chains compile");
    let mut val_sink = CollectingSink::new();
    run_script(&script, &mut val_engine, &mut val_sink);
    let val_pipeline = val_engine.pipeline().expect("plans attached");
    let lineages: Vec<Lineage> = (0..chains.len())
        .flat_map(|v| val_pipeline.materialized_lineage_view(v))
        .map(|(_, tree)| Lineage::from_tree(&tree))
        .collect();
    let rounds = rounds.max(1);
    let (memoized_cold_ms, scalar) = crate::runner::time_ms(|| {
        let mut out = Vec::new();
        for _ in 0..rounds {
            vars.clear_valuation_cache();
            out = lineages
                .iter()
                .map(|l| tp_core::prob::marginal(l, &vars).expect("vars registered"))
                .collect();
        }
        out
    });
    let (kernel_cold_ms, batched) = crate::runner::time_ms(|| {
        let mut out = Vec::new();
        for _ in 0..rounds {
            vars.clear_valuation_cache();
            out = tp_core::prob::marginal_batch(&lineages, &vars).expect("vars registered");
        }
        out
    });
    let kernel_max_delta = scalar
        .iter()
        .zip(&batched)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    AdaptiveBench {
        tuples,
        facts,
        advances,
        swaps,
        frozen_ms,
        adaptive_ms,
        log_identical,
        views_equal,
        shared_plans: plans.len(),
        shared_operators,
        shared_state_rows,
        duplicated_state_rows,
        shared_views_equal,
        valuation_roots: lineages.len(),
        valuation_rounds: rounds,
        memoized_cold_ms,
        kernel_cold_ms,
        kernel_max_delta,
    }
}

/// The combined `BENCH_lawa.json` artifact: the memoized-valuation
/// acceptance benchmark (top-level fields, unchanged schema) plus the
/// per-operation throughput series, the arena-contention micro-benchmark
/// and the streaming acceptance benchmark.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Memoized valuation vs the legacy tree walker.
    pub valuation: LawaValuationBench,
    /// LAWA operation throughput per op and input size.
    pub ops: Vec<OpThroughput>,
    /// Single-lock vs striped intern table.
    pub contention: ContentionBench,
    /// Incremental engine vs naive re-run per watermark.
    pub streaming: StreamingBench,
    /// Reclaiming engine steady-state residency (bounded-memory gate).
    pub memory: MemoryBench,
    /// Multi-tenant server soak: per-tenant arena + var-table plateaus.
    pub tenants: MultiTenantBench,
    /// Region-parallel single-tenant advance scaling (fat + skewed).
    pub parallel: ParallelAdvanceBench,
    /// Sort-vs-index ingestion curve (gapped learned timestamp index).
    pub ingest: IngestBench,
    /// Observability layer: instrumented-vs-uninstrumented cost + gates.
    pub observability: ObservabilityBench,
    /// Raw-speed pass: columnar kernel, stitch reduction, interior
    /// reclamation.
    pub raw_speed: RawSpeedBench,
    /// Standing incremental pipelines: compiled plan vs naive re-batch.
    pub pipeline: PipelineBench,
    /// Adaptive pipelines: rate-aware re-optimization, multi-plan state
    /// sharing, lane-blocked valuation.
    pub adaptive: AdaptiveBench,
}

impl BenchReport {
    /// Renders the whole report as JSON (hand-rolled; the workspace has no
    /// serde_json). The valuation fields stay top-level so existing
    /// consumers of `BENCH_lawa.json` keep working.
    pub fn to_json(&self) -> String {
        let mut out = self.valuation.to_json();
        // Splice the new sections before the closing brace.
        let tail = out.rfind('}').expect("valuation JSON is an object");
        out.truncate(tail);
        while out.ends_with('\n') {
            out.pop();
        }
        let mut extra = String::new();
        let _ = write!(extra, ",\n  \"lawa_ops\": [");
        for (i, t) in self.ops.iter().enumerate() {
            let _ = write!(
                extra,
                "{}\n    {{\"op\": \"{}\", \"tuples\": {}, \"ms\": {:.3}, \"mtuples_per_s\": {:.3}, \"output_tuples\": {}}}",
                if i > 0 { "," } else { "" },
                t.op.name(),
                t.tuples,
                t.ms,
                t.mtuples_per_s,
                t.output_tuples,
            );
        }
        let _ = write!(
            extra,
            concat!(
                "\n  ],\n",
                "  \"arena_contention\": {{\n",
                "    \"threads\": {},\n",
                "    \"nodes_per_thread\": {},\n",
                "    \"shards\": {},\n",
                "    \"single_lock_ms\": {:.3},\n",
                "    \"striped_ms\": {:.3},\n",
                "    \"speedup\": {:.2},\n",
                "    \"hardware_threads\": {},\n",
                "    \"note\": \"before = single dedup stripe; after = hash-by-node dedup stripes; node storage appends are lock-free in both (segmented arena); stripes need hardware parallelism to win\"\n",
                "  }},\n",
                "  \"streaming\": {{\n",
                "    \"tuples\": {},\n",
                "    \"arrivals\": {},\n",
                "    \"advances\": {},\n",
                "    \"incremental_ms\": {:.3},\n",
                "    \"naive_rebatch_ms\": {:.3},\n",
                "    \"speedup\": {:.2},\n",
                "    \"inserts\": {},\n",
                "    \"extends\": {},\n",
                "    \"batch_equal\": {}\n",
                "  }},\n",
                "  \"memory_bounded\": {{\n",
                "    \"epochs\": {},\n",
                "    \"advances\": {},\n",
                "    \"tuples_per_side\": {},\n",
                "    \"one_window_nodes\": {},\n",
                "    \"steady_max_nodes\": {},\n",
                "    \"final_nodes\": {},\n",
                "    \"retired_segments\": {},\n",
                "    \"retired_nodes\": {},\n",
                "    \"final_resident_bytes\": {},\n",
                "    \"plateau_ratio\": {:.3},\n",
                "    \"batch_equal\": {},\n",
                "    \"note\": \"reclaiming engine: steady-state live nodes must stay <= 2x the one-window footprint\"\n",
                "  }},\n",
                "  \"multi_tenant\": {{\n",
                "    \"tenants\": {},\n",
                "    \"workers\": {},\n",
                "    \"epochs\": {},\n",
                "    \"advances\": {},\n",
                "    \"total_rows\": {},\n",
                "    \"wall_ms\": {:.3},\n",
                "    \"krows_per_s\": {:.3},\n",
                "    \"worst_arena_plateau_ratio\": {:.3},\n",
                "    \"var_table_plateau_ratio\": {:.3},\n",
                "    \"var_table_bounded\": {},\n",
                "    \"batch_equal\": {},\n",
                "    \"note\": \"per-tenant private arenas + sliding var registries: steady state must stay <= 2x one-window on both axes, for every tenant\"\n",
                "  }}\n",
                "}}\n",
            ),
            self.contention.threads,
            self.contention.nodes_per_thread,
            self.contention.shards,
            self.contention.single_lock_ms,
            self.contention.striped_ms,
            self.contention.speedup(),
            self.contention.hardware_threads,
            self.streaming.tuples,
            self.streaming.arrivals,
            self.streaming.advances,
            self.streaming.incremental_ms,
            self.streaming.naive_rebatch_ms,
            self.streaming.speedup(),
            self.streaming.inserts,
            self.streaming.extends,
            self.streaming.batch_equal,
            self.memory.epochs,
            self.memory.advances,
            self.memory.tuples_per_side,
            self.memory.one_window_nodes,
            self.memory.steady_max_nodes,
            self.memory.final_nodes,
            self.memory.retired_segments,
            self.memory.retired_nodes,
            self.memory.final_resident_bytes,
            self.memory.plateau_ratio(),
            self.memory.batch_equal,
            self.tenants.tenants.len(),
            self.tenants.workers,
            self.tenants.epochs,
            self.tenants.min_advances(),
            self.tenants.total_rows,
            self.tenants.wall_ms,
            self.tenants.krows_per_s(),
            self.tenants.worst_node_ratio(),
            self.tenants.worst_var_ratio(),
            self.tenants.worst_var_ratio() <= 2.0,
            self.tenants.batch_equal(),
        );
        out.push_str(&extra);
        // The region-parallel scaling section is spliced in (the section
        // above already closes the root object).
        let tail = out.rfind('}').expect("report JSON is an object");
        out.truncate(tail);
        while out.ends_with('\n') {
            out.pop();
        }
        let curve = |points: &[ParallelAdvancePoint]| {
            let mut s = String::from("[");
            for (i, p) in points.iter().enumerate() {
                let _ = write!(
                    s,
                    "{}\n      {{\"workers\": {}, \"wall_ms\": {:.3}, \"krows_per_s\": {:.3}, \
                     \"regions_max\": {}, \"balance_worst\": {:.3}, \"batch_equal\": {}}}",
                    if i > 0 { "," } else { "" },
                    p.workers,
                    p.wall_ms,
                    p.krows_per_s,
                    p.regions_max,
                    p.balance_worst,
                    p.batch_equal,
                );
            }
            s.push_str("\n    ]");
            s
        };
        let _ = write!(
            out,
            concat!(
                ",\n  \"parallel_advance\": {{\n",
                "    \"tuples_per_side\": {},\n",
                "    \"advances\": {},\n",
                "    \"hardware_threads\": {},\n",
                "    \"speedup_at_4\": {:.2},\n",
                "    \"batch_equal\": {},\n",
                "    \"fat_tenant\": {},\n",
                "    \"skewed\": {},\n",
                "    \"note\": \"one tenant's advance sharded over workers by timeline region; \
                 byte-identical to the sequential sweep at every worker count (CI-gated); wall_ms \
                 sums the advance/finish calls only (the sharded path incl. serial stitch+emit); \
                 the wall speedup is informational — it needs hardware threads, like \
                 arena_contention\"\n",
                "  }}\n",
                "}}\n",
            ),
            self.parallel.tuples_per_side,
            self.parallel.advances,
            self.parallel.hardware_threads,
            self.parallel.speedup_at(4),
            self.parallel.batch_equal(),
            curve(&self.parallel.fat),
            curve(&self.parallel.skewed),
        );
        // The ingestion-index section is spliced in the same way.
        let tail = out.rfind('}').expect("report JSON is an object");
        out.truncate(tail);
        while out.ends_with('\n') {
            out.pop();
        }
        let mut curve = String::from("[");
        for (i, p) in self.ingest.points.iter().enumerate() {
            let _ = write!(
                curve,
                "{}\n      {{\"order\": \"{}\", \"tuples\": {}, \"legacy_ms\": {:.3}, \
                 \"index_ms\": {:.3}, \"speedup\": {:.3}, \"gap_occupancy_permille\": {}, \
                 \"retrains\": {}, \"shift_p99\": {}, \"batch_equal\": {}}}",
                if i > 0 { "," } else { "" },
                p.order,
                p.tuples,
                p.legacy_ms,
                p.index_ms,
                p.speedup(),
                p.gap_occupancy_permille,
                p.retrains,
                p.shift_p99,
                p.batch_equal,
            );
        }
        curve.push_str("\n    ]");
        let _ = write!(
            out,
            concat!(
                ",\n  \"ingest_index\": {{\n",
                "    \"speedup_at_largest\": {:.3},\n",
                "    \"batch_equal\": {},\n",
                "    \"curve\": {},\n",
                "    \"note\": \"same replay, legacy sorted-Vec buffer vs gapped learned timestamp \
                 index; wall time covers pushes + advances + finish so each kind pays its \
                 ingestion cost where it actually lands; every point batch-verified on both \
                 kinds (CI-gated); the wall speedup is informational\"\n",
                "  }}\n",
                "}}\n",
            ),
            self.ingest.speedup_at_largest(),
            self.ingest.batch_equal(),
            curve,
        );
        // The observability section is spliced in the same way.
        let tail = out.rfind('}').expect("report JSON is an object");
        out.truncate(tail);
        while out.ends_with('\n') {
            out.pop();
        }
        let _ = write!(
            out,
            concat!(
                ",\n  \"observability\": {{\n",
                "    \"tuples\": {},\n",
                "    \"advances\": {},\n",
                "    \"rounds\": {},\n",
                "    \"instrumented_ms\": {:.3},\n",
                "    \"baseline_ms\": {:.3},\n",
                "    \"overhead_ratio\": {:.3},\n",
                "    \"logs_identical\": {},\n",
                "    \"prometheus_ok\": {},\n",
                "    \"json_ok\": {},\n",
                "    \"trace_ok\": {},\n",
                "    \"stage_coverage\": {:.4},\n",
                "    \"note\": \"same replay instrumented (metrics + stage spans, the default) vs \
                 force-disabled; the delta logs must be byte-identical, stage spans must tile >= \
                 95% of each advance, and the instrumented wall must stay within 1.10x \
                 (CI-gated)\"\n",
                "  }}\n",
                "}}\n",
            ),
            self.observability.tuples,
            self.observability.advances,
            self.observability.rounds,
            self.observability.instrumented_ms,
            self.observability.baseline_ms,
            self.observability.overhead_ratio(),
            self.observability.logs_identical,
            self.observability.prometheus_ok,
            self.observability.json_ok,
            self.observability.trace_ok,
            self.observability.stage_coverage,
        );
        // The raw-speed section is spliced in the same way.
        let tail = out.rfind('}').expect("report JSON is an object");
        out.truncate(tail);
        while out.ends_with('\n') {
            out.pop();
        }
        let mut curve = String::from("[");
        for (i, p) in self.raw_speed.stitch.iter().enumerate() {
            let _ = write!(
                curve,
                "{}\n      {{\"workers\": {}, \"wall_ms\": {:.3}, \"depth_max\": {}, \
                 \"batch_equal\": {}}}",
                if i > 0 { "," } else { "" },
                p.workers,
                p.wall_ms,
                p.depth_max,
                p.batch_equal,
            );
        }
        curve.push_str("\n    ]");
        let _ = write!(
            out,
            concat!(
                ",\n  \"raw_speed\": {{\n",
                "    \"tuples\": {},\n",
                "    \"levels\": {},\n",
                "    \"rounds\": {},\n",
                "    \"output_tuples\": {},\n",
                "    \"memoized_cold_ms\": {:.3},\n",
                "    \"columnar_ms\": {:.3},\n",
                "    \"valuation_speedup\": {:.3},\n",
                "    \"max_delta\": {:.3e},\n",
                "    \"stitch\": {},\n",
                "    \"immortal_epochs\": {},\n",
                "    \"immortal_advances\": {},\n",
                "    \"interior_retired_segments\": {},\n",
                "    \"interior_steady_bytes\": {},\n",
                "    \"prefix_steady_bytes\": {},\n",
                "    \"residency_ratio\": {:.3},\n",
                "    \"interior_steady_live_vars\": {},\n",
                "    \"prefix_steady_live_vars\": {},\n",
                "    \"live_vars_ratio\": {:.3},\n",
                "    \"batch_equal\": {},\n",
                "    \"note\": \"columnar marginal kernel vs per-root memoized walk (both cold, \
                 in a shared arena salted with bystander lineage; equality <= 1e-12 CI-gated); \
                 pairwise stitch reduction batch-verified at every worker count (CI-gated); \
                 immortal-facts residency AND registry live_vars: interior steady state must \
                 stay strictly below the prefix-ordered baseline on both axes (CI-gated); wall \
                 speedups are informational\"\n",
                "  }}\n",
                "}}\n",
            ),
            self.raw_speed.tuples,
            self.raw_speed.levels,
            self.raw_speed.rounds,
            self.raw_speed.output_tuples,
            self.raw_speed.memoized_cold_ms,
            self.raw_speed.columnar_ms,
            self.raw_speed.valuation_speedup(),
            self.raw_speed.max_delta,
            curve,
            self.raw_speed.immortal_epochs,
            self.raw_speed.immortal_advances,
            self.raw_speed.interior_retired_segments,
            self.raw_speed.interior_steady_bytes,
            self.raw_speed.prefix_steady_bytes,
            self.raw_speed.residency_ratio(),
            self.raw_speed.interior_steady_live_vars,
            self.raw_speed.prefix_steady_live_vars,
            self.raw_speed.live_vars_ratio(),
            self.raw_speed.immortal_batch_equal,
        );
        // The standing-pipelines section is spliced in the same way.
        let tail = out.rfind('}').expect("report JSON is an object");
        out.truncate(tail);
        while out.ends_with('\n') {
            out.pop();
        }
        let _ = write!(
            out,
            concat!(
                ",\n  \"streaming_plans\": {{\n",
                "    \"tuples\": {},\n",
                "    \"facts\": {},\n",
                "    \"advances\": {},\n",
                "    \"pipeline_deltas\": {},\n",
                "    \"output_rows\": {},\n",
                "    \"incremental_ms\": {:.3},\n",
                "    \"naive_rebatch_ms\": {:.3},\n",
                "    \"speedup\": {:.2},\n",
                "    \"batch_equal\": {},\n",
                "    \"plateau_epochs\": {},\n",
                "    \"retired_segments\": {},\n",
                "    \"warmup_state_rows\": {},\n",
                "    \"steady_state_rows\": {},\n",
                "    \"plateau_ratio\": {:.3},\n",
                "    \"plateau_batch_equal\": {},\n",
                "    \"note\": \"a compiled join+aggregate alert rule running as a standing \
                 incremental pipeline over the engine's delta streams, vs re-executing the batch \
                 plan over the re-encoded closed region at every watermark; the view must equal \
                 batch at finish, and under an extend-dominated immortal-facts stream with \
                 reclamation the operator state must plateau at its warm-up peak (both CI-gated); \
                 the wall speedup is informational\"\n",
                "  }}\n",
                "}}\n",
            ),
            self.pipeline.tuples,
            self.pipeline.facts,
            self.pipeline.advances,
            self.pipeline.pipeline_deltas,
            self.pipeline.output_rows,
            self.pipeline.incremental_ms,
            self.pipeline.naive_rebatch_ms,
            self.pipeline.speedup(),
            self.pipeline.batch_equal,
            self.pipeline.plateau_epochs,
            self.pipeline.retired_segments,
            self.pipeline.warmup_state_rows,
            self.pipeline.steady_state_rows,
            self.pipeline.plateau_ratio(),
            self.pipeline.plateau_batch_equal,
        );
        // The adaptive-pipeline section is spliced in the same way.
        let tail = out.rfind('}').expect("report JSON is an object");
        out.truncate(tail);
        while out.ends_with('\n') {
            out.pop();
        }
        let _ = write!(
            out,
            concat!(
                ",\n  \"adaptive_pipeline\": {{\n",
                "    \"tuples\": {},\n",
                "    \"facts\": {},\n",
                "    \"advances\": {},\n",
                "    \"swaps\": {},\n",
                "    \"frozen_ms\": {:.3},\n",
                "    \"adaptive_ms\": {:.3},\n",
                "    \"reopt_speedup\": {:.3},\n",
                "    \"log_identical\": {},\n",
                "    \"views_equal\": {},\n",
                "    \"shared_plans\": {},\n",
                "    \"shared_operators\": {},\n",
                "    \"shared_state_rows\": {},\n",
                "    \"duplicated_state_rows\": {},\n",
                "    \"shared_state_ratio\": {:.3},\n",
                "    \"shared_views_equal\": {},\n",
                "    \"valuation_roots\": {},\n",
                "    \"valuation_rounds\": {},\n",
                "    \"memoized_cold_ms\": {:.3},\n",
                "    \"kernel_cold_ms\": {:.3},\n",
                "    \"simd_valuation_speedup\": {:.3},\n",
                "    \"kernel_max_delta\": {:.3e},\n",
                "    \"note\": \"rate-aware re-optimization (delta log must stay byte-identical \
                 across the mid-run plan swap, CI-gated), hash-consed multi-plan state sharing \
                 (standing rows strictly below the dedicated-engine sum, CI-gated), and the \
                 lane-blocked batch kernel vs the memoized walk (<= 1e-12, CI-gated); wall \
                 speedups are informational\"\n",
                "  }}\n",
                "}}\n",
            ),
            self.adaptive.tuples,
            self.adaptive.facts,
            self.adaptive.advances,
            self.adaptive.swaps,
            self.adaptive.frozen_ms,
            self.adaptive.adaptive_ms,
            self.adaptive.reopt_speedup(),
            self.adaptive.log_identical,
            self.adaptive.views_equal,
            self.adaptive.shared_plans,
            self.adaptive.shared_operators,
            self.adaptive.shared_state_rows,
            self.adaptive.duplicated_state_rows,
            self.adaptive.shared_state_ratio(),
            self.adaptive.shared_views_equal,
            self.adaptive.valuation_roots,
            self.adaptive.valuation_rounds,
            self.adaptive.memoized_cold_ms,
            self.adaptive.kernel_cold_ms,
            self.adaptive.simd_valuation_speedup(),
            self.adaptive.kernel_max_delta,
        );
        out
    }

    /// One flat JSON object summarizing this run — an entry of the
    /// appended `history` series (flat on purpose: the hand-rolled
    /// extractor matches entries without nested brackets).
    pub fn history_entry(&self, generated_unix: u64) -> String {
        format!(
            concat!(
                "{{\"generated_unix\": {}, \"valuation_speedup\": {:.2}, ",
                "\"streaming_speedup\": {:.2}, \"union_mtuples_per_s\": {:.3}, ",
                "\"contention_speedup\": {:.2}, \"memory_plateau_ratio\": {:.3}, ",
                "\"memory_steady_nodes\": {}, \"tenant_var_plateau_ratio\": {:.3}, ",
                "\"tenant_krows_per_s\": {:.3}, \"parallel_speedup_at_4\": {:.2}, ",
                "\"ingest_speedup_at_largest\": {:.3}, \"obs_overhead_ratio\": {:.3}, ",
                "\"raw_valuation_speedup\": {:.2}, \"raw_residency_ratio\": {:.3}, ",
                "\"raw_live_vars_ratio\": {:.3}, \"pipeline_speedup\": {:.2}, ",
                "\"pipeline_plateau_ratio\": {:.3}, \"reopt_speedup\": {:.3}, ",
                "\"shared_state_ratio\": {:.3}, \"simd_valuation_speedup\": {:.3}}}"
            ),
            generated_unix,
            self.valuation.speedup(),
            self.streaming.speedup(),
            self.ops
                .iter()
                .filter(|t| t.op == SetOp::Union)
                .map(|t| t.mtuples_per_s)
                .fold(0.0f64, f64::max),
            self.contention.speedup(),
            self.memory.plateau_ratio(),
            self.memory.steady_max_nodes,
            self.tenants.worst_var_ratio(),
            self.tenants.krows_per_s(),
            self.parallel.speedup_at(4),
            self.ingest.speedup_at_largest(),
            self.observability.overhead_ratio(),
            self.raw_speed.valuation_speedup(),
            self.raw_speed.residency_ratio(),
            self.raw_speed.live_vars_ratio(),
            self.pipeline.speedup(),
            self.pipeline.plateau_ratio(),
            self.adaptive.reopt_speedup(),
            self.adaptive.shared_state_ratio(),
            self.adaptive.simd_valuation_speedup(),
        )
    }

    /// The full artifact with the run-over-run `history` series appended:
    /// the latest run keeps the existing top-level schema (CI gates read
    /// it unchanged), `entries` — prior entries plus this run's — ride
    /// along under `"history"`.
    pub fn to_json_with_history(&self, entries: &[String]) -> String {
        let mut out = self.to_json();
        let tail = out.rfind('}').expect("report JSON is an object");
        out.truncate(tail);
        while out.ends_with('\n') {
            out.pop();
        }
        let mut extra = String::from(",\n  \"history\": [");
        for (i, e) in entries.iter().enumerate() {
            let _ = write!(extra, "{}\n    {}", if i > 0 { "," } else { "" }, e.trim());
        }
        extra.push_str("\n  ]\n}\n");
        out.push_str(&extra);
        out
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = self.valuation.render();
        let _ = writeln!(out, "\n== BENCH lawa: operation throughput ==");
        for t in &self.ops {
            let _ = writeln!(
                out,
                "{:<11} {:>8} tuples/rel  {:>9.2} ms  {:>7.2} Mtuples/s  {:>8} out",
                t.op.name(),
                t.tuples,
                t.ms,
                t.mtuples_per_s,
                t.output_tuples,
            );
        }
        let _ = writeln!(
            out,
            "\n== BENCH lawa: arena intern contention ({} threads × {} chain nodes, {} hw threads) ==\n\
             1 dedup stripe (before) {:>9.1} ms\n\
             {} dedup stripes (after){:>9.1} ms   ({:.2}× — appends are lock-free either way; stripes need hardware parallelism to win)",
            self.contention.threads,
            self.contention.nodes_per_thread,
            self.contention.hardware_threads,
            self.contention.single_lock_ms,
            self.contention.shards,
            self.contention.striped_ms,
            self.contention.speedup(),
        );
        let _ = writeln!(
            out,
            "\n== BENCH lawa: continuous vs naive re-batch ({} tuples/rel, {} advances) ==\n\
             incremental engine     {:>9.1} ms   ({} inserts, {} extends, all 3 ops)\n\
             naive re-run per wmark {:>9.1} ms\n\
             speedup                {:>9.2}×   (batch-equal: {})",
            self.streaming.tuples,
            self.streaming.advances,
            self.streaming.incremental_ms,
            self.streaming.inserts,
            self.streaming.extends,
            self.streaming.naive_rebatch_ms,
            self.streaming.speedup(),
            self.streaming.batch_equal,
        );
        let _ = writeln!(
            out,
            "\n== BENCH lawa: bounded-memory streaming ({} epochs, {} advances) ==\n\
             one-window footprint   {:>9} live nodes\n\
             steady-state peak      {:>9} live nodes   (plateau ratio {:.2}, gate <= 2.0)\n\
             retired                {:>9} nodes over {} segments (final {} nodes, {} KiB resident, batch-equal: {})",
            self.memory.epochs,
            self.memory.advances,
            self.memory.one_window_nodes,
            self.memory.steady_max_nodes,
            self.memory.plateau_ratio(),
            self.memory.retired_nodes,
            self.memory.retired_segments,
            self.memory.final_nodes,
            self.memory.final_resident_bytes / 1024,
            self.memory.batch_equal,
        );
        let _ = writeln!(
            out,
            "\n== BENCH lawa: multi-tenant server ({} tenants × {} epochs, {} workers) ==\n\
             aggregate ingest       {:>9.1} krows/s   ({} rows in {:.1} ms)\n\
             worst arena plateau    {:>9.2}×   (gate <= 2.0)\n\
             worst var-table plateau{:>9.2}×   (gate <= 2.0, batch-equal: {})",
            self.tenants.tenants.len(),
            self.tenants.epochs,
            self.tenants.workers,
            self.tenants.krows_per_s(),
            self.tenants.total_rows,
            self.tenants.wall_ms,
            self.tenants.worst_node_ratio(),
            self.tenants.worst_var_ratio(),
            self.tenants.batch_equal(),
        );
        for t in &self.tenants.tenants {
            let _ = writeln!(
                out,
                "  {:<10} {:>6} rows  arena {:>5}→{:<5} ({:.2}×)  vars {:>5}→{:<5} ({:.2}×)  released {} vars / {} segments",
                t.name,
                t.pushed,
                t.one_window_nodes,
                t.steady_nodes,
                t.node_plateau_ratio(),
                t.one_window_vars,
                t.steady_vars,
                t.var_plateau_ratio(),
                t.released_vars,
                t.retired_segments,
            );
        }
        let _ = writeln!(
            out,
            "\n== BENCH lawa: region-parallel advance ({} tuples/side, {} advances, {} hw threads) ==",
            self.parallel.tuples_per_side,
            self.parallel.advances,
            self.parallel.hardware_threads,
        );
        for (name, points) in [
            ("fat tenant", &self.parallel.fat),
            ("skewed (Zipf-hot)", &self.parallel.skewed),
        ] {
            let _ = writeln!(out, "  {name}:");
            for p in points {
                let _ = writeln!(
                    out,
                    "    {:>2} workers {:>9.1} ms  {:>8.1} krows/s  regions<={:<2} balance {:>5.2}  batch-equal: {}",
                    p.workers,
                    p.wall_ms,
                    p.krows_per_s,
                    p.regions_max,
                    p.balance_worst,
                    p.batch_equal,
                );
            }
        }
        let _ = writeln!(
            out,
            "  speedup at 4 workers: {:.2}x (wall scaling needs hardware threads)",
            self.parallel.speedup_at(4),
        );
        let _ = writeln!(
            out,
            "\n== BENCH lawa: ingestion index (sort vs gapped learned index) =="
        );
        for p in &self.ingest.points {
            let _ = writeln!(
                out,
                "  {:<9} {:>8} tuples/side  legacy {:>8.1} ms  index {:>8.1} ms  ({:.2}x)  occ {:>4}‰  retrains {:<4} shift-p99 {:<3} batch-equal: {}",
                p.order,
                p.tuples,
                p.legacy_ms,
                p.index_ms,
                p.speedup(),
                p.gap_occupancy_permille,
                p.retrains,
                p.shift_p99,
                p.batch_equal,
            );
        }
        let _ = writeln!(
            out,
            "  speedup at largest size: {:.2}x (informational; equality + occupancy are the gates)",
            self.ingest.speedup_at_largest(),
        );
        let _ = writeln!(
            out,
            "\n== BENCH lawa: observability overhead ({} tuples/rel, {} advances, min of {} rounds) ==\n\
             instrumented           {:>9.1} ms   (metrics + stage spans, the default)\n\
             uninstrumented         {:>9.1} ms   (every layer force-disabled)\n\
             overhead               {:>9.2}×   (gate <= 1.10)\n\
             gates                  logs-identical: {}  prometheus: {}  json: {}  trace: {}  stage coverage: {:.1}%",
            self.observability.tuples,
            self.observability.advances,
            self.observability.rounds,
            self.observability.instrumented_ms,
            self.observability.baseline_ms,
            self.observability.overhead_ratio(),
            self.observability.logs_identical,
            self.observability.prometheus_ok,
            self.observability.json_ok,
            self.observability.trace_ok,
            self.observability.stage_coverage * 100.0,
        );
        let _ = writeln!(
            out,
            "\n== BENCH lawa: raw-speed pass ==\n\
             columnar kernel        {:>9.1} ms   vs per-root cold walk {:.1} ms ({:.2}×, {} tuples, max Δ {:.2e})",
            self.raw_speed.columnar_ms,
            self.raw_speed.memoized_cold_ms,
            self.raw_speed.valuation_speedup(),
            self.raw_speed.output_tuples,
            self.raw_speed.max_delta,
        );
        for p in &self.raw_speed.stitch {
            let _ = writeln!(
                out,
                "  stitch reduction: {:>2} workers {:>9.1} ms  depth<={}  batch-equal: {}",
                p.workers, p.wall_ms, p.depth_max, p.batch_equal,
            );
        }
        let _ = writeln!(
            out,
            "  immortal facts:   interior {} B vs prefix {} B steady-state ({:.2}×, {} interior retires over {} advances, batch-equal: {})",
            self.raw_speed.interior_steady_bytes,
            self.raw_speed.prefix_steady_bytes,
            self.raw_speed.residency_ratio(),
            self.raw_speed.interior_retired_segments,
            self.raw_speed.immortal_advances,
            self.raw_speed.immortal_batch_equal,
        );
        let _ = writeln!(
            out,
            "  registry:         interior {} vs prefix {} steady-state live vars ({:.2}×, cohort-granular release)",
            self.raw_speed.interior_steady_live_vars,
            self.raw_speed.prefix_steady_live_vars,
            self.raw_speed.live_vars_ratio(),
        );
        let _ = writeln!(
            out,
            "\n== BENCH lawa: standing plans ({} tuples/side over {} keys, {} advances) ==\n\
             standing pipeline      {:>9.1} ms   ({} operator deltas, {} view rows)\n\
             naive re-plan per wmark{:>9.1} ms\n\
             speedup                {:>9.2}×   (batch-equal: {})\n\
             reclaim-mode plateau   {:>9} → {} state rows over {} epochs ({:.2}×, {} segments retired, batch-equal: {})",
            self.pipeline.tuples,
            self.pipeline.facts,
            self.pipeline.advances,
            self.pipeline.incremental_ms,
            self.pipeline.pipeline_deltas,
            self.pipeline.output_rows,
            self.pipeline.naive_rebatch_ms,
            self.pipeline.speedup(),
            self.pipeline.batch_equal,
            self.pipeline.warmup_state_rows,
            self.pipeline.steady_state_rows,
            self.pipeline.plateau_epochs,
            self.pipeline.plateau_ratio(),
            self.pipeline.retired_segments,
            self.pipeline.plateau_batch_equal,
        );
        let _ = writeln!(
            out,
            "\n== BENCH lawa: adaptive pipelines ({} tuples/side over {} keys, {} advances) ==\n\
             frozen nested-loop plan{:>9.1} ms\n\
             re-optimizing engine   {:>9.1} ms   ({:.2}×, {} swap(s), log-identical: {}, views-equal: {})\n\
             shared state           {:>9} rows vs {} duplicated ({:.2}×, {} shared operators over {} plans, views-equal: {})\n\
             lane-blocked kernel    {:>9.1} ms vs {:.1} ms memoized cold ({:.2}×, {} roots, max Δ {:.1e})",
            self.adaptive.tuples,
            self.adaptive.facts,
            self.adaptive.advances,
            self.adaptive.frozen_ms,
            self.adaptive.adaptive_ms,
            self.adaptive.reopt_speedup(),
            self.adaptive.swaps,
            self.adaptive.log_identical,
            self.adaptive.views_equal,
            self.adaptive.shared_state_rows,
            self.adaptive.duplicated_state_rows,
            self.adaptive.shared_state_ratio(),
            self.adaptive.shared_operators,
            self.adaptive.shared_plans,
            self.adaptive.shared_views_equal,
            self.adaptive.kernel_cold_ms,
            self.adaptive.memoized_cold_ms,
            self.adaptive.simd_valuation_speedup(),
            self.adaptive.valuation_roots,
            self.adaptive.kernel_max_delta,
        );
        out
    }
}

/// Extracts the prior `history` entries of a previously written
/// `BENCH_lawa.json` (hand-rolled: entries are flat objects without
/// nested brackets, by construction of
/// [`BenchReport::history_entry`]). Unknown or malformed files yield an
/// empty history — the series restarts rather than failing the run.
pub fn extract_history(prior_json: &str) -> Vec<String> {
    let Some(start) = prior_json.find("\"history\": [") else {
        return Vec::new();
    };
    let rest = &prior_json[start + "\"history\": [".len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in rest[..end].chars() {
        match ch {
            '{' => {
                depth += 1;
                cur.push(ch);
            }
            '}' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
                if depth == 0 {
                    out.push(std::mem::take(&mut cur).trim().to_string());
                }
            }
            _ => {
                if depth > 0 {
                    cur.push(ch);
                }
            }
        }
    }
    out
}

/// Fig. 11a–c: the three TP set operations over the (simulated) WebKit
/// dataset and its shifted counterpart.
pub fn fig11_webkit() -> Vec<ExperimentResult> {
    let mut vars = VarTable::new();
    let max_size = *small_sizes().last().expect("non-empty");
    let r = tp_workloads::webkit::generate(
        &WebkitConfig {
            files: max_size / 3,
            tuples: max_size,
            ..Default::default()
        },
        &mut vars,
    );
    let s = shifted_copy(&r, "s", 10_000, 5, &mut vars);
    real_world_sweep("Fig. 11", "WebKit (simulated)", &r, &s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lawa_valuation_bench_is_consistent_and_memoization_wins() {
        let b = lawa_valuation_bench(4_000, 48, 8);
        assert!(b.output_tuples > 0);
        assert!(
            b.max_sum_delta < 1e-6,
            "paths disagree: {}",
            b.max_sum_delta
        );
        let json = b.to_json();
        assert!(json.contains("\"experiment\": \"lawa_memoized_valuation\""));
        assert!(json.contains("\"speedup\""));
        // Correctness only here: the ≥2× speedup acceptance criterion is a
        // wall-clock property and is gated in CI's bench-smoke step
        // (release build, dedicated step) — asserting a timing ratio inside
        // `cargo test` on a shared runner would flake on noisy neighbors.
        assert!(b.tree_walker_ms > 0.0 && b.arena_memoized_ms > 0.0);
        assert!(b.speedup().is_finite());
    }

    #[test]
    fn op_throughput_measures_all_ops() {
        let series = lawa_op_throughput(&[400, 800]);
        assert_eq!(series.len(), 6); // 3 ops × 2 sizes
        for t in &series {
            assert!(t.ms >= 0.0);
            assert!(t.mtuples_per_s.is_finite());
            assert!(t.output_tuples > 0, "{} produced nothing", t.op);
        }
    }

    #[test]
    fn contention_bench_runs_both_layouts() {
        let b = arena_contention_bench(2, 500);
        assert!(b.single_lock_ms > 0.0 && b.striped_ms > 0.0);
        assert!(b.speedup().is_finite());
        assert_eq!(b.shards, tp_core::arena::MAX_SHARDS);
        // No wall-clock assertion: stripes only win with real hardware
        // parallelism; CI gates correctness, the JSON records the ratio.
    }

    #[test]
    fn streaming_bench_is_batch_equal() {
        let b = streaming_bench(1_500, 100);
        assert!(b.batch_equal, "stream/naive/batch results diverged");
        assert!(b.advances > 1);
        assert!(b.inserts > 0);
        assert!(b.incremental_ms > 0.0 && b.naive_rebatch_ms > 0.0);
        // The ≥2× wall-clock criterion is gated in CI's bench-smoke step.
        assert!(b.speedup().is_finite());
    }

    #[test]
    fn parallel_advance_bench_is_batch_equal_at_every_worker_count() {
        let b = parallel_advance_bench(256, 8, &[1, 2, 4]);
        assert!(b.batch_equal(), "a worker count diverged from batch");
        assert_eq!(b.fat.len(), 3);
        assert_eq!(b.skewed.len(), 3);
        assert!(b.advances >= 8);
        // Fat advances (~512 pieces) really shard once workers > 1.
        assert!(
            b.fat.iter().skip(1).all(|p| p.regions_max > 1),
            "fat advances never sharded"
        );
        assert!(b.fat.iter().all(|p| p.balance_worst >= 1.0));
        // No wall-clock assertion: scaling needs hardware threads; CI's
        // parallel-advance-smoke gates the 4-worker speedup on >= 4 cores.
        let s = b.speedup_at(4);
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn ingest_bench_is_batch_equal_with_sane_occupancy() {
        let b = ingest_index_bench(&[300, 600]);
        assert_eq!(b.points.len(), 6); // 2 sizes × 3 arrival orders
        assert!(b.batch_equal(), "an ingest point diverged from batch");
        for p in &b.points {
            assert!(
                p.gap_occupancy_permille > 0 && p.gap_occupancy_permille <= 1000,
                "{} @ {}: implausible gap occupancy {}‰",
                p.order,
                p.tuples,
                p.gap_occupancy_permille
            );
            assert!(p.speedup().is_finite() && p.speedup() > 0.0);
        }
        // No wall-clock assertion: the speedup is hardware-dependent and
        // reported informationally; CI gates equality + occupancy only.
        assert!(b.speedup_at_largest() > 0.0);
    }

    #[test]
    fn bench_report_json_keeps_valuation_schema_and_adds_sections() {
        let report = BenchReport {
            valuation: lawa_valuation_bench(800, 8, 2),
            ops: lawa_op_throughput(&[300]),
            contention: arena_contention_bench(2, 200),
            streaming: streaming_bench(600, 80),
            memory: memory_bounded_bench(16),
            tenants: multi_tenant_bench(2, 16, 2),
            parallel: parallel_advance_bench(64, 8, &[1, 2]),
            ingest: ingest_index_bench(&[400]),
            observability: observability_bench(400, 16, 1),
            raw_speed: raw_speed_bench(800, 8, 1, 64, 16, &[1, 2]),
            pipeline: pipeline_bench(160, 16, 16, 24),
            adaptive: adaptive_pipeline_bench(160, 16, 16, 3, 1),
        };
        let json = report.to_json();
        // Existing top-level schema intact (CI's speedup gate reads these).
        assert!(json.contains("\"experiment\": \"lawa_memoized_valuation\""));
        assert!(json.contains("\"speedup\""));
        // New sections present.
        assert!(json.contains("\"lawa_ops\""));
        assert!(json.contains("\"arena_contention\""));
        assert!(json.contains("\"streaming\""));
        assert!(json.contains("\"memory_bounded\""));
        assert!(json.contains("\"multi_tenant\""));
        assert!(json.contains("\"var_table_plateau_ratio\""));
        assert!(json.contains("\"parallel_advance\""));
        assert!(json.contains("\"fat_tenant\""));
        assert!(json.contains("\"skewed\""));
        assert!(json.contains("\"ingest_index\""));
        assert!(json.contains("\"observability\""));
        assert!(json.contains("\"overhead_ratio\""));
        assert!(json.contains("\"raw_speed\""));
        assert!(json.contains("\"interior_steady_bytes\""));
        assert!(json.contains("\"interior_steady_live_vars\""));
        assert!(json.contains("\"live_vars_ratio\""));
        assert!(json.contains("\"streaming_plans\""));
        assert!(json.contains("\"pipeline_deltas\""));
        assert!(json.contains("\"plateau_batch_equal\": true"));
        assert!(json.contains("\"batch_equal\": true"));
        assert!(json.contains("\"adaptive_pipeline\""));
        assert!(json.contains("\"reopt_speedup\""));
        assert!(json.contains("\"shared_state_ratio\""));
        assert!(json.contains("\"simd_valuation_speedup\""));
        assert!(json.contains("\"log_identical\": true"));
        // Balanced braces (hand-rolled JSON sanity).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
        let rendered = report.render();
        assert!(rendered.contains("operation throughput"));
        assert!(rendered.contains("intern contention"));
        assert!(rendered.contains("naive re-batch"));
        assert!(rendered.contains("bounded-memory streaming"));
        assert!(rendered.contains("multi-tenant server"));
        assert!(rendered.contains("region-parallel advance"));
        assert!(rendered.contains("raw-speed pass"));
        assert!(rendered.contains("standing plans"));
        assert!(rendered.contains("adaptive pipelines"));

        // History round trip: a written file's entries are recovered and
        // extended, and the result stays balanced.
        let e1 = report.history_entry(1_000);
        assert!(e1.contains("\"ingest_speedup_at_largest\""));
        assert!(e1.contains("\"raw_valuation_speedup\""));
        assert!(e1.contains("\"pipeline_speedup\""));
        assert!(e1.contains("\"reopt_speedup\""));
        assert!(e1.contains("\"shared_state_ratio\""));
        assert!(e1.contains("\"simd_valuation_speedup\""));
        let with_one = report.to_json_with_history(std::slice::from_ref(&e1));
        assert_eq!(extract_history(&with_one), vec![e1.clone()]);
        let e2 = report.history_entry(2_000);
        let with_two = report.to_json_with_history(&[e1.clone(), e2.clone()]);
        assert_eq!(extract_history(&with_two), vec![e1, e2]);
        assert_eq!(
            with_two.matches('{').count(),
            with_two.matches('}').count(),
            "unbalanced JSON with history: {with_two}"
        );
        assert!(extract_history("{}").is_empty());
    }

    #[test]
    fn pipeline_bench_matches_batch_and_plateaus() {
        let b = pipeline_bench(200, 20, 16, 32);
        assert!(b.batch_equal, "standing view diverged from batch plan");
        assert!(b.plateau_batch_equal, "reclaim-mode view diverged");
        assert!(b.advances > 1);
        assert!(b.pipeline_deltas > 0);
        assert!(b.output_rows > 0, "vacuous: empty view proves nothing");
        assert!(b.retired_segments > 0, "reclaim never fired");
        assert!(
            b.pass(),
            "no plateau: warm-up {} vs steady {} state rows",
            b.warmup_state_rows,
            b.steady_state_rows
        );
        // The wall speedup is hardware-dependent and reported
        // informationally; CI gates equality + the plateau only.
        assert!(b.speedup().is_finite() && b.speedup() > 0.0);
    }

    #[test]
    fn adaptive_bench_passes_all_three_gates() {
        let b = adaptive_pipeline_bench(200, 20, 16, 3, 1);
        assert!(b.swaps >= 1, "re-optimization never fired");
        assert!(b.log_identical, "plan swap changed the delta log");
        assert!(b.views_equal, "plan swap changed the standing view");
        assert!(b.shared_views_equal, "a shared view diverged from solo");
        assert!(
            b.shared_state_rows < b.duplicated_state_rows,
            "shared state {} not sub-additive vs duplicated {}",
            b.shared_state_rows,
            b.duplicated_state_rows
        );
        assert!(b.shared_operators >= 3, "join + sources should be shared");
        assert!(b.valuation_roots > 0, "vacuous: no roots valuated");
        assert!(
            b.kernel_max_delta <= 1e-12,
            "kernel diverged: max Δ {:.3e}",
            b.kernel_max_delta
        );
        assert!(b.pass());
        // Wall ratios are hardware-dependent and informational.
        assert!(b.reopt_speedup().is_finite() && b.reopt_speedup() > 0.0);
        assert!(b.simd_valuation_speedup().is_finite() && b.simd_valuation_speedup() > 0.0);
    }

    #[test]
    fn multi_tenant_bench_is_bounded_on_both_axes() {
        let b = multi_tenant_bench(3, 24, 3);
        assert_eq!(b.tenants.len(), 3);
        assert!(b.min_advances() >= 24, "advances {}", b.min_advances());
        assert!(b.total_rows > 0);
        for t in &b.tenants {
            assert!(t.batch_equal, "{}: stream diverged from batch", t.name);
            assert!(t.retired_segments > 0, "{}: nothing retired", t.name);
            assert!(t.released_vars > 0, "{}: no vars released", t.name);
        }
        assert!(
            b.bounded(),
            "not bounded: arena {:.2}x, vars {:.2}x",
            b.worst_node_ratio(),
            b.worst_var_ratio()
        );
    }

    #[test]
    fn memory_bench_plateaus_and_is_batch_equal() {
        let b = memory_bounded_bench(24);
        assert!(b.batch_equal, "reclaiming stream diverged from batch");
        assert!(b.advances >= 20);
        assert!(b.retired_segments > 0, "nothing was retired");
        assert!(
            b.bounded(),
            "no plateau: ratio {:.2} (one-window {}, steady {})",
            b.plateau_ratio(),
            b.one_window_nodes,
            b.steady_max_nodes
        );
    }

    #[test]
    fn tables_render() {
        let t2 = table2_support();
        assert!(t2.contains("LAWA"));
        assert!(t2.contains("Table II"));
    }

    #[test]
    fn sweep_renders_and_skips_unsupported() {
        let mut vars = VarTable::new();
        let (r, s) = tp_workloads::synth::generate(&SynthConfig::single_fact(200, 3), &mut vars);
        let res = sweep(
            "Fig. X",
            "test",
            "tuples",
            &[Approach::Lawa, Approach::Ti],
            SetOp::Except,
            vec![("200".into(), r, s)],
        );
        assert_eq!(res.series.len(), 2);
        assert!(res.series_of("LAWA").unwrap().values[0].is_some());
        assert!(res.series_of("TI").unwrap().values[0].is_none());
        let rendered = res.render();
        assert!(rendered.contains("Fig. X"));
        assert!(rendered.contains('-'));
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let res = ExperimentResult {
            id: "Fig. T".into(),
            title: "t".into(),
            x_label: "tuples".into(),
            xs: vec!["1K".into(), "2K".into()],
            series: vec![
                Series {
                    name: "LAWA".into(),
                    values: vec![Some(1.5), Some(3.0)],
                },
                Series {
                    name: "NORM".into(),
                    values: vec![Some(9.0), None],
                },
            ],
            notes: vec![],
        };
        let csv = res.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "tuples,LAWA,NORM");
        assert_eq!(lines[1], "1K,1.500,9.000");
        assert_eq!(lines[2], "2K,3.000,"); // capped cell empty
    }
}
