//! Timing helpers and result rendering.

use std::time::Instant;

use tp_baselines::Approach;
use tp_core::ops::SetOp;
use tp_core::relation::TpRelation;

/// Wall-clock milliseconds taken by `f`, plus its result.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// The experiment scale factor from the `TP_SCALE` environment variable
/// (default 1.0). Paper-sized experiments need roughly `TP_SCALE=10`.
pub fn scale() -> f64 {
    std::env::var("TP_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// `n` scaled by [`scale`], rounded, at least 1.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()).round() as usize).max(1)
}

/// Runs one `(approach, op)` measurement. Returns `None` when the approach
/// does not support the operation (Table II) or exceeds its size cap.
///
/// `cap` guards the quadratic approaches: the paper ran them for hours; the
/// default harness skips sizes where a quadratic baseline would dominate
/// total runtime (the printed tables mark these as `-`).
pub fn run_one(
    approach: Approach,
    op: SetOp,
    r: &TpRelation,
    s: &TpRelation,
    cap: Option<usize>,
) -> Option<f64> {
    if !approach.supports(op) {
        return None;
    }
    if let Some(cap) = cap {
        if r.len().max(s.len()) > cap {
            return None;
        }
    }
    let (ms, out) = time_ms(|| approach.run(op, r, s).expect("support checked"));
    // Keep the optimizer honest: the output length must be observed.
    std::hint::black_box(out.len());
    Some(ms)
}

/// Per-approach size cap for the default harness scale. Quadratic
/// approaches (NORM, TPDB) get a cap that keeps a full figure under a few
/// seconds; everything else runs unbounded. Scales with `TP_SCALE`.
pub fn default_cap(approach: Approach) -> Option<usize> {
    match approach {
        Approach::Norm | Approach::Tpdb => Some(scaled(6_000)),
        Approach::Ti => Some(scaled(200_000)),
        Approach::Lawa | Approach::Oip => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_core::fact::Fact;
    use tp_core::interval::Interval;
    use tp_core::relation::VarTable;

    #[test]
    fn time_ms_returns_result() {
        let (ms, v) = time_ms(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn scale_defaults_to_one() {
        // The test environment does not set TP_SCALE.
        if std::env::var("TP_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
            assert_eq!(scaled(100), 100);
        }
    }

    #[test]
    fn run_one_skips_unsupported_and_capped() {
        let mut vars = VarTable::new();
        let r = TpRelation::base(
            "r",
            vec![(Fact::single("x"), Interval::at(1, 5), 0.5)],
            &mut vars,
        )
        .unwrap();
        assert!(run_one(Approach::Ti, SetOp::Except, &r, &r, None).is_none());
        assert!(run_one(Approach::Lawa, SetOp::Except, &r, &r, Some(0)).is_none());
        assert!(run_one(Approach::Lawa, SetOp::Except, &r, &r, Some(10)).is_some());
    }
}
