//! Criterion wrapper of Fig. 8: TP set intersection on the larger synthetic
//! datasets — LAWA vs OIP, the only two approaches that scale past a few
//! hundred thousand tuples.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tp_baselines::Approach;
use tp_core::ops::SetOp;
use tp_core::relation::VarTable;
use tp_workloads::SynthConfig;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08/intersect");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for size in [50_000usize, 200_000] {
        let mut vars = VarTable::new();
        let (r, s) =
            tp_workloads::synth::generate(&SynthConfig::single_fact(size, size as u64), &mut vars);
        group.throughput(Throughput::Elements(2 * size as u64));
        for a in [Approach::Lawa, Approach::Oip] {
            group.bench_with_input(BenchmarkId::new(a.name(), size), &size, |b, _| {
                b.iter(|| a.run(SetOp::Intersect, &r, &s).expect("supported").len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
