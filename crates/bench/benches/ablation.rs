//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * `sort_vs_presorted` — the sort step dominates LAWA's O(n log n) bound;
//!   pre-sorted inputs make the operator linear (§VI-B).
//! * `oip_granules` — OIP's sensitivity to the granule count `k`.
//! * `prob_methods` — 1OF linear valuation vs Shannon expansion vs
//!   Monte-Carlo on the lineage of a repeating query (#P-hard shape).
//! * `window_advance` — raw LAWA window production without filtering
//!   (isolates the sweep from output formation).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tp_baselines::{OipConfig, OipMode};
use tp_core::lineage::Lineage;
use tp_core::ops;
use tp_core::relation::VarTable;
use tp_core::window::Lawa;
use tp_workloads::SynthConfig;

fn bench_sort_vs_presorted(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/sort_vs_presorted");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(&SynthConfig::with_facts(50_000, 100, 3), &mut vars);
    // Shuffled copies: the operator must pay the sort.
    let shuffle = |rel: &tp_core::relation::TpRelation| -> tp_core::relation::TpRelation {
        let mut tuples = rel.tuples().to_vec();
        // Deterministic permutation: reverse then interleave halves.
        tuples.reverse();
        let mid = tuples.len() / 2;
        let (a, b) = tuples.split_at(mid);
        a.iter()
            .zip(b.iter())
            .flat_map(|(x, y)| [x.clone(), y.clone()])
            .chain(tuples.iter().skip(2 * mid).cloned())
            .collect()
    };
    let (ru, su) = (shuffle(&r), shuffle(&s));
    group.bench_function("presorted", |b| b.iter(|| ops::union(&r, &s).len()));
    group.bench_function("unsorted", |b| b.iter(|| ops::union(&ru, &su).len()));
    group.finish();
}

fn bench_oip_granules(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/oip_granules");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(&SynthConfig::single_fact(20_000, 9), &mut vars);
    for g in [1i64, 2, 8, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter(|| {
                tp_baselines::oip::intersect(
                    &r,
                    &s,
                    OipConfig {
                        granule_size: Some(g),
                        mode: OipMode::FactGrouped,
                    },
                )
                .len()
            })
        });
    }
    group.finish();
}

fn bench_prob_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/prob_methods");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    // Lineage of a repeating query: (x0 ∨ x1) ∧ ¬(x0 ∧ x2) ... chained.
    let mut vars = VarTable::new();
    let ids: Vec<_> = (0..12)
        .map(|i| {
            vars.register(format!("x{i}"), 0.4 + 0.04 * i as f64)
                .unwrap()
        })
        .collect();
    let mut lineage = Lineage::var(ids[0]);
    for chunk in ids.windows(3).step_by(2) {
        let or = Lineage::or(&Lineage::var(chunk[0]), &Lineage::var(chunk[1]));
        let and = Lineage::and(&Lineage::var(chunk[0]), &Lineage::var(chunk[2]));
        lineage = Lineage::and(&lineage, &Lineage::and_not(&or, Some(&and)));
    }
    assert!(!lineage.is_one_occurrence_form());
    let one_of = {
        let mut l = Lineage::var(ids[0]);
        for id in &ids[1..] {
            l = Lineage::or(&l, &Lineage::var(*id));
        }
        l
    };
    group.bench_function("independent_1of", |b| {
        b.iter(|| tp_core::prob::independent(&one_of, &vars).unwrap())
    });
    group.bench_function("exact_shannon", |b| {
        b.iter(|| tp_core::prob::exact(&lineage, &vars).unwrap())
    });
    group.bench_function("exact_bdd", |b| {
        b.iter(|| tp_core::bdd::probability(&lineage, &vars).unwrap())
    });
    group.bench_function("monte_carlo_10k", |b| {
        b.iter(|| {
            tp_core::prob::monte_carlo(&lineage, &vars, 10_000, 7)
                .unwrap()
                .estimate
        })
    });
    group.finish();
}

fn bench_window_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/window_advance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(&SynthConfig::single_fact(100_000, 3), &mut vars);
    let (rs, ss) = (r.sorted(), s.sorted());
    group.bench_function("lawa_sweep_only", |b| {
        b.iter(|| Lawa::new(rs.tuples(), ss.tuples()).count())
    });
    group.bench_function("full_union", |b| b.iter(|| ops::union(&rs, &ss).len()));
    group.finish();
}

fn bench_parallel_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/parallel_union");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let mut vars = VarTable::new();
    let (r, s) = tp_workloads::synth::generate(&SynthConfig::with_facts(100_000, 64, 3), &mut vars);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| tp_core::ops::apply_parallel(tp_core::ops::SetOp::Union, &r, &s, t).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sort_vs_presorted,
    bench_oip_granules,
    bench_prob_methods,
    bench_window_advance,
    bench_parallel_ops
);
criterion_main!(benches);
