//! Criterion wrapper of Fig. 9b: robustness of TP set intersection against
//! the number of distinct facts — LAWA flat, the baselines drifting in both
//! directions (OIP pays per-group setup with many facts; the joins pay
//! unselective predicates with few facts).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tp_baselines::Approach;
use tp_core::ops::SetOp;
use tp_core::relation::VarTable;
use tp_workloads::SynthConfig;

fn bench_fig9b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09b/facts");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let tuples = 1_000;
    for facts in [1usize, 10, 500] {
        let mut vars = VarTable::new();
        let (r, s) =
            tp_workloads::synth::generate(&SynthConfig::with_facts(tuples, facts, 47), &mut vars);
        for a in Approach::ALL {
            if !a.supports(SetOp::Intersect) {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(a.name(), format!("{facts}F")),
                &facts,
                |b, _| b.iter(|| a.run(SetOp::Intersect, &r, &s).expect("supported").len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9b);
criterion_main!(benches);
