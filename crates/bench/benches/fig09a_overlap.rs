//! Criterion wrapper of Fig. 9a: robustness of TP set intersection against
//! the overlapping factor. LAWA should be flat; OIP should climb as
//! partitions densify.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tp_baselines::Approach;
use tp_core::ops::SetOp;
use tp_core::relation::VarTable;
use tp_workloads::SynthConfig;

fn bench_fig9a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09a/overlap");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let tuples = 50_000;
    for factor in [0.03f64, 0.4, 0.8] {
        let mut vars = VarTable::new();
        let (r, s) = tp_workloads::synth::generate(
            &SynthConfig::table3_preset(factor, tuples, 31),
            &mut vars,
        );
        for a in [Approach::Lawa, Approach::Oip] {
            group.bench_with_input(
                BenchmarkId::new(a.name(), format!("{factor}")),
                &factor,
                |b, _| b.iter(|| a.run(SetOp::Intersect, &r, &s).expect("supported").len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9a);
criterion_main!(benches);
