//! Criterion wrapper of Fig. 7a/7b/7c: the three TP set operations on the
//! smaller synthetic datasets (single fact, overlap ≈ 0.6), all applicable
//! approaches. Sizes are kept tiny so `cargo bench` terminates quickly; the
//! `experiments` binary runs the full sweeps.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tp_baselines::Approach;
use tp_core::ops::SetOp;
use tp_core::relation::VarTable;
use tp_workloads::SynthConfig;

fn bench_fig7(c: &mut Criterion) {
    for (op, approaches) in [
        (
            SetOp::Intersect,
            vec![
                Approach::Lawa,
                Approach::Oip,
                Approach::Ti,
                Approach::Tpdb,
                Approach::Norm,
            ],
        ),
        (SetOp::Except, vec![Approach::Lawa, Approach::Norm]),
        (
            SetOp::Union,
            vec![Approach::Lawa, Approach::Tpdb, Approach::Norm],
        ),
    ] {
        let mut group = c.benchmark_group(format!("fig07/{}", op.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(900));
        for size in [500usize, 2_000] {
            let mut vars = VarTable::new();
            let (r, s) = tp_workloads::synth::generate(
                &SynthConfig::single_fact(size, size as u64),
                &mut vars,
            );
            for a in &approaches {
                // Quadratic approaches only at the small size.
                if matches!(a, Approach::Norm | Approach::Tpdb) && size > 500 {
                    continue;
                }
                group.bench_with_input(BenchmarkId::new(a.name(), size), &size, |b, _| {
                    b.iter(|| a.run(op, &r, &s).expect("supported").len())
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
