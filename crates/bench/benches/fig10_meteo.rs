//! Criterion wrapper of Fig. 10a–c: the three TP set operations over the
//! (simulated) Meteo Swiss dataset and its shifted counterpart.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tp_baselines::Approach;
use tp_core::ops::SetOp;
use tp_core::relation::VarTable;
use tp_workloads::{shifted_copy, MeteoConfig};

fn bench_fig10(c: &mut Criterion) {
    let mut vars = VarTable::new();
    let r = tp_workloads::meteo::generate(
        &MeteoConfig {
            tuples: 5_000,
            ..Default::default()
        },
        &mut vars,
    );
    let s = shifted_copy(&r, "s", 20 * 600, 5, &mut vars);
    // Small subset for the quadratic approaches.
    let r_small: tp_core::relation::TpRelation = r.iter().take(500).cloned().collect();
    let s_small: tp_core::relation::TpRelation = s.iter().take(500).cloned().collect();

    for op in SetOp::ALL {
        let mut group = c.benchmark_group(format!("fig10/{}", op.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_secs(1));
        for a in Approach::ALL {
            if !a.supports(op) {
                continue;
            }
            let quadratic = matches!(a, Approach::Norm | Approach::Tpdb);
            let (rr, ss, n) = if quadratic {
                (&r_small, &s_small, 500)
            } else {
                (&r, &s, 5_000)
            };
            group.bench_with_input(BenchmarkId::new(a.name(), n), &n, |b, _| {
                b.iter(|| a.run(op, rr, ss).expect("supported").len())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
