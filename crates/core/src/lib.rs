//! # tp-core — temporal-probabilistic set operations
//!
//! A from-scratch implementation of the sequenced temporal-probabilistic
//! (TP) data model and the **lineage-aware window advancer (LAWA)** from
//!
//! > K. Papaioannou, M. Theobald, M. Böhlen.
//! > *Supporting Set Operations in Temporal-Probabilistic Databases.*
//! > ICDE 2018, pp. 1180–1191.
//!
//! A TP relation stores tuples `(F, λ, T, p)`: a fact `F`, a Boolean lineage
//! formula `λ` over independent base-tuple variables, a half-open valid-time
//! interval `T = [start, end)`, and a marginal probability `p`. Relations
//! are **duplicate-free**: two tuples with the same fact never overlap in
//! time. Under these conventions the three TP set operations (`∪Tp`, `∩Tp`,
//! `−Tp`) have linearly sized outputs and — with LAWA — linearithmic
//! runtime, while every existing approach the paper surveys is quadratic.
//!
//! ## Quickstart
//!
//! ```
//! use tp_core::prelude::*;
//!
//! // Fig. 1a of the paper: purchases (a), orders (b), stock (c).
//! let mut db = Database::new();
//! db.add_base_relation("a", vec![
//!     (Fact::single("milk"),  Interval::at(2, 10), 0.3),
//!     (Fact::single("chips"), Interval::at(4, 7),  0.8),
//!     (Fact::single("dates"), Interval::at(1, 3),  0.6),
//! ]).unwrap();
//! db.add_base_relation("b", vec![
//!     (Fact::single("milk"),  Interval::at(5, 9), 0.6),
//!     (Fact::single("chips"), Interval::at(3, 6), 0.9),
//! ]).unwrap();
//! db.add_base_relation("c", vec![
//!     (Fact::single("milk"),  Interval::at(1, 4), 0.6),
//!     (Fact::single("milk"),  Interval::at(6, 8), 0.7),
//!     (Fact::single("chips"), Interval::at(4, 5), 0.7),
//!     (Fact::single("chips"), Interval::at(7, 9), 0.8),
//! ]).unwrap();
//!
//! // Q = c −Tp (a ∪Tp b): in stock but neither bought nor ordered.
//! let q = Query::parse("c except (a union b)").unwrap();
//! let result = q.eval(&db).unwrap();
//! assert_eq!(result.len(), 5); // the five tuples of Fig. 1c
//!
//! // Probabilities are derived from lineage; the query is non-repeating,
//! // so every lineage is in one-occurrence form and valuation is linear.
//! assert!(q.is_non_repeating());
//! for t in result.iter() {
//!     let p = prob::marginal(&t.lineage, db.vars()).unwrap();
//!     assert!(p > 0.0 && p <= 1.0);
//! }
//! ```
//!
//! ## Module map
//!
//! | module | paper section | content |
//! |---|---|---|
//! | [`value`], [`fact`], [`interval`] | §III | attribute values, facts, time intervals, Allen relations |
//! | [`arena`] | — | segmented hash-consed lineage forest: `Copy` handles, O(1) equality, lock-free append, seal/retire reclamation |
//! | [`lineage`] | §III, Table I | Boolean lineage + concatenation functions, [`lineage::LineageTree`] compat layer |
//! | [`lineage_xform`] | — | negation normal form, conservative simplification |
//! | [`tuple`](mod@crate::tuple), [`relation`], [`db`] | §III | TP tuples, duplicate-free relations, variable table (with memoized valuation cache), catalog |
//! | [`snapshot`] | §IV | timeslice τᵖₜ + literal Def. 1–3 evaluation (the test oracle) |
//! | [`window`] | §VI-A, Alg. 1 | lineage-aware temporal window + LAWA (O(1) lineage compare per window) |
//! | [`ops`] | §V, §VI-B, Alg. 2–4 | `∪Tp`, `∩Tp`, `−Tp`, selection, projection, join, aggregation, parallel driver |
//! | [`query`], [`parser`] | §V-B, Def. 4 | TP set queries, 1OF/safety analysis, text parser |
//! | [`prob`] | §III, §V-B | linear 1OF valuation, exact Shannon expansion, Monte-Carlo — memoized per arena node |
//! | [`bdd`] | \[24\] | ROBDD compilation of lineage with per-handle compile memo |
//! | [`io`] | — | text persistence of base relations + topological lineage-forest dumps |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod bdd;
pub mod db;
pub mod error;
pub mod fact;
pub mod interval;
pub mod interval_set;
pub mod io;
pub mod lineage;
pub mod lineage_xform;
pub mod ops;
pub mod parser;
pub mod prob;
pub mod query;
pub mod relation;
pub mod snapshot;
pub mod tuple;
pub mod value;
pub mod window;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::arena::{ArenaScope, ArenaStats, LineageArena, LineageRef, SegmentId};
    pub use crate::db::Database;
    pub use crate::error::{Error, Result};
    pub use crate::fact::Fact;
    pub use crate::interval::{AllenRelation, Interval, TimePoint};
    pub use crate::interval_set::IntervalSet;
    pub use crate::lineage::{Lineage, LineageKind, LineageTree, TupleId};
    pub use crate::ops::{apply, except, intersect, project, select, select_attr_eq, union, SetOp};
    pub use crate::prob;
    pub use crate::query::Query;
    pub use crate::relation::{ReleasedVars, TpRelation, VarEpoch, VarTable};
    pub use crate::snapshot::{set_op_by_snapshots, timeslice};
    pub use crate::tuple::TpTuple;
    pub use crate::value::Value;
    pub use crate::window::{Lawa, LineageAwareWindow};
}
